"""Multicore container host: the paper's deployment target end-to-end.

Builds the Table II 10-core chip, places a fleet of containerised
tenants (each with its own syscall-complete profile) across the cores,
and runs them under hardware Draco with shared-L3 interference and
per-core context switching — then compares consolidation levels.

Run with::

    python examples/multicore_containers.py
"""

from repro.experiments import get_context
from repro.kernel.multicore import MultiCoreSystem
from repro.kernel.scheduler import ScheduledProcess

TENANTS = ("nginx", "redis", "mysql", "httpd", "cassandra", "pwgen")
EVENTS = 4000


def tenant_processes():
    processes = []
    for name in TENANTS:
        ctx = get_context(name, events=EVENTS)
        processes.append(
            ScheduledProcess(
                name=name,
                profile=ctx.bundle.complete,
                trace=ctx.trace[:EVENTS],
                work_cycles_per_syscall=ctx.work_cycles,
            )
        )
    return processes


def run_fleet(cores: int):
    system = MultiCoreSystem(cores=cores, quantum_syscalls=250)
    for process in tenant_processes():
        system.assign(process)
    result = system.run()
    return system, result


def main() -> None:
    print(f"{len(TENANTS)} tenants, syscall-complete profiles, hardware Draco\n")
    header = f"{'consolidation':>24s} {'switches':>9s} {'L3 hit':>7s}  " + "".join(
        f"{name:>11s}" for name in TENANTS
    )
    print(header + "   (mean check cycles/syscall)")
    print("-" * len(header))
    for cores in (6, 3, 1):
        system, result = run_fleet(cores)
        switches = sum(result.per_core_switches)
        cells = "".join(f"{result.per_process[name]:11.1f}" for name in TENANTS)
        print(
            f"{len(TENANTS)} tenants on {cores} core(s)".rjust(24)
            + f" {switches:9d} {result.l3_hit_rate:7.2%}  {cells}"
        )
    print(
        "\nEven fully consolidated (6 tenants on 1 core), checking costs stay"
        "\nat tens of cycles per syscall: switches invalidate the SLB/STB but"
        "\nthe per-process VATs refill them from cache-resident memory — the"
        "\nSection VII-B design working as intended."
    )


if __name__ == "__main__":
    main()
