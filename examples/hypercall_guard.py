"""Generality demo: Draco guarding hypercalls and guardian requests.

Section VIII argues the Draco structures apply to any privilege-domain
transition.  This example builds two non-syscall domains with the same
machinery:

1. a Xen-style **hypercall** interface checked for a paravirtualised
   guest (with pinned sched_op / event-channel commands), and
2. a gVisor-Sentry-style **guardian request** interface for a web
   application (file/net I/O with pinned operands).

For each, it shows the policy decisions and how hardware Draco turns
repeated checks into fast SLB hits.

Run with::

    python examples/hypercall_guard.py
"""

from repro.generality import (
    DracoTransitionChecker,
    guest_vm_policy,
    sentry_domain,
    web_app_sentry_policy,
    xen_domain,
)
from repro.generality.hypercalls import SCHEDOP_SHUTDOWN, SCHEDOP_YIELD


def show(checker, domain, requests):
    for label, event in requests:
        first = checker.check_hardware(event)
        again = checker.check_hardware(event)
        verdict = "allow" if first.allowed else "DENY "
        print(
            f"  {verdict}  {label:42s} first={first.flow.name:8s} "
            f"({first.stall_cycles:6.1f} cyc)  repeat={again.flow.name:8s} "
            f"({again.stall_cycles:4.1f} cyc)"
        )


def main() -> None:
    print("== Hypercalls: unprivileged guest (domU) policy")
    xen = xen_domain()
    guest = DracoTransitionChecker.build(xen, guest_vm_policy(xen))
    show(
        guest,
        xen,
        [
            ("sched_op(SCHEDOP_YIELD)", xen.request("sched_op", (SCHEDOP_YIELD, 0), pc=0x10)),
            ("event_channel_op(EVTCHNOP_SEND, port 9)", xen.request("event_channel_op", (4, 9), pc=0x14)),
            ("grant_table_op(map, 12, 1)", xen.request("grant_table_op", (0, 12, 1), pc=0x18)),
            ("sched_op(SCHEDOP_SHUTDOWN)  [not pinned]", xen.request("sched_op", (SCHEDOP_SHUTDOWN, 0), pc=0x10)),
            ("domctl(...)               [privileged]", xen.request("domctl", (1,), pc=0x1C)),
        ],
    )

    print("\n== Guardian requests: web application behind a Sentry")
    sentry = sentry_domain()
    webapp = DracoTransitionChecker.build(sentry, web_app_sentry_policy(sentry))
    show(
        webapp,
        sentry,
        [
            ("net_connect(AF_INET, 443)", sentry.request("net_connect", (2, 443), pc=0x20)),
            ("file_open(O_RDONLY)", sentry.request("file_open", (0, 0), pc=0x24)),
            ("random_bytes(32)", sentry.request("random_bytes", (32,), pc=0x28)),
            ("net_connect(AF_INET, 22)    [ssh: no]", sentry.request("net_connect", (2, 22), pc=0x20)),
            ("mem_map(...)              [not allowed]", sentry.request("mem_map", (4096, 7, 2), pc=0x2C)),
        ],
    )

    print("\nRepeated allowed requests run as FLOW_1 at ~2 cycles: the same")
    print("SPT/VAT/SLB/STB machinery, indexed by request ID instead of SID.")


if __name__ == "__main__":
    main()
