"""Pledge-style sandboxing, accelerated by Draco.

Models an OpenBSD-ish daemon lifecycle (Section II-B / VIII): the
process starts with broad promises, then *shrinks* them after
initialisation — and every stage's policy is enforced through the same
Draco machinery that accelerates Seccomp.

Run with::

    python examples/pledge_sandbox.py
"""

from repro.core import SoftwareDraco, build_process_tables
from repro.os_models import PledgePolicy
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.syscalls.events import make_event

INIT_SYSCALLS = [
    ("openat config", make_event("openat", (0xFFFFFF9C, 0, 0))),
    ("read config", make_event("read", (3, 4096))),
    ("socket", make_event("socket", (2, 1, 0))),
    ("bind", make_event("bind", (4, 16))),
    ("listen", make_event("listen", (4, 128))),
]

SERVE_SYSCALLS = [
    ("accept4", make_event("accept4", (4, 0x80000))),
    ("read request", make_event("read", (5, 8192))),
    ("write response", make_event("write", (5, 700))),
    ("close conn", make_event("close", (5,))),
]

ATTACK_SYSCALLS = [
    ("execve shell", make_event("execve")),
    ("open new file", make_event("openat", (0xFFFFFF9C, 0x241, 0o644))),
    ("fork", make_event("fork")),
]


def checker_for(policy: PledgePolicy) -> SoftwareDraco:
    profile = policy.to_profile()
    module = SeccompKernelModule()
    for program in compile_profile_chunked(profile):
        module.attach(program)
    return SoftwareDraco(build_process_tables(profile), module)


def run_stage(title, policy, calls):
    print(f"--- {title}: pledge({', '.join(sorted(policy.promises))})")
    draco = checker_for(policy)
    for label, event in calls:
        outcome = draco.check(event)
        verdict = "allow" if outcome.allowed else "DENY "
        print(f"    {verdict} {label:18s} ({outcome.path}, {outcome.cycles:.0f} cyc)")
    print()


def main() -> None:
    print("A daemon's pledge lifecycle, checked by software Draco\n")

    # Stage 1: initialisation needs filesystem + network setup rights.
    init_policy = PledgePolicy.of("stdio", "rpath", "inet")
    run_stage("initialisation", init_policy, INIT_SYSCALLS)

    # Stage 2: after setup the daemon *shrinks* to serving-only rights
    # (promises can only ever be dropped).
    serve_policy = init_policy.shrink("rpath")
    run_stage("steady-state serving", serve_policy, SERVE_SYSCALLS)

    # Stage 3: a compromised worker tries to break out.
    run_stage("attack attempts under the shrunk pledge", serve_policy, ATTACK_SYSCALLS)

    print("Pledge policies are ID-whitelists, so Draco validates them from")
    print("the SPT Valid bit alone — the cheapest checking path of all.")


if __name__ == "__main__":
    main()
