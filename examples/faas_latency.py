"""FaaS scenario: security checking vs function latency.

The paper motivates Draco with high-performance containerised services
(Section VIII: "even short delays can impact online revenue").  This
example runs the two FaaS-style functions (grep and pwgen) and a
latency-sensitive server (httpd) under increasingly strict checking,
printing the latency multiplier each security level costs — and what
Draco recovers.

Run with::

    python examples/faas_latency.py
"""

from repro.experiments import get_context

WORKLOADS = ("grep", "pwgen", "httpd")

LEVELS = (
    ("no checking (insecure)", "insecure"),
    ("ID whitelist (docker-default)", "docker-default"),
    ("app IDs (syscall-noargs)", "syscall-noargs"),
    ("app IDs+args (syscall-complete)", "syscall-complete"),
    ("2x checks (near-future)", "syscall-complete-2x"),
)

DRACO = (
    ("software Draco, full checks", "draco-sw-complete-2x"),
    ("hardware Draco, full checks", "draco-hw-complete-2x"),
)


def main() -> None:
    contexts = {name: get_context(name, events=8000) for name in WORKLOADS}

    header = f"{'security level':36s}" + "".join(f"{name:>12s}" for name in WORKLOADS)
    print(header)
    print("-" * len(header))
    for label, regime in LEVELS:
        cells = "".join(
            f"{contexts[name].evaluate(regime).normalized_time:12.3f}"
            for name in WORKLOADS
        )
        print(f"{label:36s}{cells}")
    print("-" * len(header))
    for label, regime in DRACO:
        cells = "".join(
            f"{contexts[name].evaluate(regime).normalized_time:12.3f}"
            for name in WORKLOADS
        )
        print(f"{label:36s}{cells}")

    print("\nReading the table: full argument checking doubled (the paper's")
    print("near-future scenario) costs up to tens of percent of latency with")
    print("conventional Seccomp; hardware Draco delivers the same security at")
    print("~1% — 'both high performance and a high level of security'.")


if __name__ == "__main__":
    main()
