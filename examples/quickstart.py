"""Quickstart: measure system-call checking overhead under every regime.

Builds the nginx workload model, derives its application-specific
Seccomp profiles with the strace-style toolkit, and reports execution
time normalised to an insecure baseline for:

* conventional Seccomp (the paper's Figure 2 configurations),
* software Draco (Figure 11), and
* hardware Draco (Figure 12).

Run with::

    python examples/quickstart.py [workload]
"""

import sys

from repro.experiments import get_context

REGIMES = (
    "insecure",
    "docker-default",
    "syscall-noargs",
    "syscall-complete",
    "syscall-complete-2x",
    "draco-sw-complete",
    "draco-sw-complete-2x",
    "draco-hw-complete",
    "draco-hw-complete-2x",
)


def main(workload: str = None) -> None:
    if workload is None:
        from repro.workloads.catalog import CATALOG

        argv_name = sys.argv[1] if len(sys.argv) > 1 else None
        workload = argv_name if argv_name in CATALOG else "nginx"
    print(f"Workload: {workload}")
    ctx = get_context(workload, events=8000)
    print(f"  calibrated application work: {ctx.work_cycles:.0f} cycles/syscall")
    print(f"  profile: {ctx.bundle.complete.num_syscalls} syscalls, "
          f"{ctx.bundle.complete.num_argument_values_allowed} argument values\n")

    print(f"{'regime':26s} {'normalised time':>16s} {'check cycles':>13s}")
    print("-" * 58)
    for regime in REGIMES:
        result = ctx.evaluate(regime)
        print(
            f"{regime:26s} {result.normalized_time:16.4f} "
            f"{result.mean_check_cycles:13.1f}"
        )
    print("\nThe Draco rows show the paper's result: software Draco cuts the")
    print("argument-checking overhead and stays flat as checks double, while")
    print("hardware Draco is within ~1% of not checking at all.")


if __name__ == "__main__":
    main()
