"""Hardware walkthrough: watch syscalls move through the Draco pipeline.

Steps a hand-written syscall sequence through the per-core hardware
(SPT, STB, SLB, Temporary Buffer), printing the Table I flow each
syscall takes, whether the OS was invoked, and the ROB-head stall.
Then drives a full workload and prints the Figure 13 hit rates.

Run with::

    python examples/hardware_walkthrough.py
"""

from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.experiments import get_context
from repro.kernel.simulator import run_trace
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event

PC_READ = 0x555500
PC_WRITE = 0x555600


def walkthrough() -> None:
    print("== Step-by-step pipeline walkthrough")
    training = SyscallTrace(
        [
            make_event("read", (3, 4096), pc=PC_READ),
            make_event("read", (4, 4096), pc=PC_READ),
            make_event("write", (1, 128), pc=PC_WRITE),
        ]
    )
    profile = generate_complete(training, "demo")
    module = SeccompKernelModule()
    module.attach(compile_linear(profile))
    draco = HardwareDraco(build_process_tables(profile), module)

    script = [
        ("cold read(3, 4096)        ", make_event("read", (3, 4096), pc=PC_READ)),
        ("warm read(3, 4096)        ", make_event("read", (3, 4096), pc=PC_READ)),
        ("new argset read(4, 4096)  ", make_event("read", (4, 4096), pc=PC_READ)),
        ("back to read(3, 4096)     ", make_event("read", (3, 4096), pc=PC_READ)),
        ("cold write(1, 128)        ", make_event("write", (1, 128), pc=PC_WRITE)),
        ("warm write(1, 128)        ", make_event("write", (1, 128), pc=PC_WRITE)),
        ("DENIED read(9, 9)         ", make_event("read", (9, 9), pc=PC_READ)),
    ]
    print(f"{'syscall':28s} {'flow':10s} {'os?':4s} {'stall (cycles)':>14s}")
    for label, event in script:
        result = draco.on_syscall(event)
        print(
            f"{label:28s} {result.flow.name:10s} "
            f"{'yes' if result.os_invoked else 'no':4s} {result.stall_cycles:14.1f}"
        )

    print("\n  context switch -> structures invalidated, VAT survives")
    draco.context_switch(same_process=False)
    draco.resume_process()
    result = draco.on_syscall(make_event("read", (3, 4096), pc=PC_READ))
    print(f"{'read(3,4096) after switch':28s} {result.flow.name:10s} "
          f"{'yes' if result.os_invoked else 'no':4s} {result.stall_cycles:14.1f}")


def hit_rates() -> None:
    print("\n== Figure 13 view: mysql under hardware Draco")
    ctx = get_context("mysql", events=8000)
    regime = ctx.make_regime("draco-hw-complete")
    result = run_trace(
        ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
        workload_name="mysql",
    )
    draco = regime.draco
    print(f"  normalised execution time: {result.normalized_time:.4f}")
    print(f"  STB hit rate:          {draco.stb.hit_rate:7.2%}")
    print(f"  SLB access hit rate:   {draco.slb.access_hit_rate:7.2%}")
    print(f"  SLB preload hit rate:  {draco.slb.preload_hit_rate:7.2%}")
    print(f"  OS invocations:        {draco.stats.os_invocations}")
    print("  flows: " + ", ".join(
        f"{flow.name}={count}" for flow, count in sorted(
            draco.stats.flows.items(), key=lambda kv: -kv[1]
        )
    ))


def main() -> None:
    walkthrough()
    hit_rates()


if __name__ == "__main__":
    main()
