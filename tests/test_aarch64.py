"""Tests for the arm64 table and ABI-agnosticism of the whole stack."""

import pytest

from repro.core.flows import Flow
from repro.core.hardware import HardwareDraco
from repro.core.software import SoftwareDraco, build_process_tables
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile, SyscallRule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.syscalls.table import LINUX_X86_64
from repro.syscalls.table_aarch64 import LINUX_AARCH64


class TestTable:
    @pytest.mark.parametrize(
        "name,number",
        [
            ("read", 63),
            ("write", 64),
            ("openat", 56),
            ("close", 57),
            ("futex", 98),
            ("getpid", 172),
            ("clone", 220),
            ("mmap", 222),
            ("clone3", 435),
        ],
    )
    def test_known_numbers(self, name, number):
        assert LINUX_AARCH64.by_name(name).sid == number

    def test_legacy_calls_absent(self):
        for name in ("open", "fork", "pipe", "dup2", "poll", "select",
                     "epoll_wait", "getdents", "stat"):
            assert name not in LINUX_AARCH64

    def test_signatures_shared_with_x86(self):
        for entry in LINUX_AARCH64:
            base = LINUX_X86_64.by_name(entry.name)
            assert entry.nargs == base.nargs
            assert entry.pointer_mask == base.pointer_mask

    def test_id_spaces_differ(self):
        assert LINUX_AARCH64.by_name("read").sid != LINUX_X86_64.by_name("read").sid

    def test_size(self):
        assert len(LINUX_AARCH64) > 250


class TestAbiAgnosticStack:
    def _trace(self):
        return SyscallTrace(
            [
                make_event("read", (3, 100), pc=0x100, table=LINUX_AARCH64),
                make_event("read", (4, 100), pc=0x100, table=LINUX_AARCH64),
                make_event("getpid", pc=0x104, table=LINUX_AARCH64),
            ]
        )

    def test_profile_generation_over_arm64(self):
        profile = generate_complete(self._trace(), "arm", table=LINUX_AARCH64)
        assert profile.allows(make_event("read", (3, 100), table=LINUX_AARCH64))
        assert not profile.allows(make_event("read", (9, 9), table=LINUX_AARCH64))

    def test_x86_numbering_means_nothing_here(self):
        """SID 0 is read on x86-64 but io_setup on arm64: the profile
        built over the arm64 table must not allow arm64's SID 0."""
        profile = generate_complete(self._trace(), "arm", table=LINUX_AARCH64)
        assert profile.rule_for(63) is not None     # arm64 read
        assert profile.rule_for(0) is None          # arm64 io_setup

    def test_software_draco_over_arm64(self):
        profile = generate_complete(self._trace(), "arm", table=LINUX_AARCH64)
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = SoftwareDraco(
            build_process_tables(profile, table=LINUX_AARCH64), module
        )
        event = make_event("read", (3, 100), table=LINUX_AARCH64)
        assert draco.check(event).allowed
        assert draco.check(event).path == "vat_hit"

    def test_hardware_draco_over_arm64(self):
        profile = generate_complete(self._trace(), "arm", table=LINUX_AARCH64)
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = HardwareDraco(
            build_process_tables(profile, table=LINUX_AARCH64), module
        )
        event = make_event("read", (3, 100), pc=0x100, table=LINUX_AARCH64)
        assert draco.on_syscall(event).flow is Flow.FLOW_6
        assert draco.on_syscall(event).flow is Flow.FLOW_1

    def test_profiles_are_not_portable_across_abis(self):
        """A classic deployment bug our tables make visible: an x86-64
        whitelist interpreted under arm64 numbering allows the wrong
        syscalls entirely."""
        x86_profile = SeccompProfile(
            "x86", [SyscallRule(sid=LINUX_X86_64.by_name("read").sid)]
        )
        arm_read = make_event("read", (1, 1), table=LINUX_AARCH64)
        # The arm64 read (63) is NOT covered by the x86 rule for SID 0.
        assert not x86_profile.allows(arm_read)
