"""Tests for the profile-to-BPF compilers, including the equivalence
property: compiled filters decide exactly like the reference semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import SeccompData
from repro.bpf.verifier import verify
from repro.seccomp.actions import SECCOMP_RET_ALLOW, action_of
from repro.seccomp.compiler import (
    compile_binary_tree,
    compile_linear,
    compile_profile,
    compile_profile_chunked,
)
from repro.seccomp.profile import ArgCmp, ArgSetRule, CmpOp, SeccompProfile, SyscallRule
from repro.seccomp.profiles import build_docker_default
from repro.syscalls.events import make_event
from repro.syscalls.table import LINUX_X86_64, sid
from repro.common.errors import ProfileError


def _toy_profile():
    return SeccompProfile.from_names(
        "toy",
        ["read", "write", "personality", "clone"],
        arg_rules={
            "personality": [
                ArgSetRule((ArgCmp(0, 0),)),
                ArgSetRule((ArgCmp(0, 0xFFFFFFFF),)),
            ],
            "clone": [
                ArgSetRule((ArgCmp(0, 0, op=CmpOp.MASKED_EQ, mask=0x7E020000),))
            ],
        },
    )


@pytest.fixture(params=["linear", "binary_tree"])
def strategy(request):
    return request.param


class TestCompilers:
    def test_programs_verify(self, strategy):
        program = compile_profile(_toy_profile(), strategy)
        verify(program)

    def test_allow_and_deny(self, strategy):
        program = compile_profile(_toy_profile(), strategy)

        def decide(event):
            return action_of(run(program, SeccompData.from_event(event)).return_value)

        assert decide(make_event("read", (3, 10))) == SECCOMP_RET_ALLOW
        assert decide(make_event("mount")) != SECCOMP_RET_ALLOW
        assert decide(make_event("personality", (0xFFFFFFFF,))) == SECCOMP_RET_ALLOW
        assert decide(make_event("personality", (7,))) != SECCOMP_RET_ALLOW

    def test_masked_eq_compiled(self, strategy):
        program = compile_profile(_toy_profile(), strategy)

        def decide(args):
            event = make_event("clone", args)
            return action_of(run(program, SeccompData.from_event(event)).return_value)

        assert decide((0x00010000,)) == SECCOMP_RET_ALLOW
        assert decide((0x10000000,)) != SECCOMP_RET_ALLOW  # CLONE_NEWUSER bit

    def test_wrong_arch_killed(self, strategy):
        program = compile_profile(_toy_profile(), strategy)
        data = SeccompData(nr=0, arch=0xDEAD)
        assert action_of(run(program, data).return_value) != SECCOMP_RET_ALLOW

    def test_unknown_strategy(self):
        with pytest.raises(ProfileError):
            compile_profile(_toy_profile(), "quantum")

    def test_empty_profile(self, strategy):
        profile = SeccompProfile("empty", [])
        program = compile_profile(profile, strategy)
        data = SeccompData(nr=0)
        assert action_of(run(program, data).return_value) != SECCOMP_RET_ALLOW


class TestDispatchCost:
    """The structural claim of Section XII: tree dispatch is much
    cheaper than the linear chain for deep syscalls."""

    def test_tree_beats_linear_on_deep_sid(self):
        docker = build_docker_default()
        linear = compile_linear(docker)
        tree = compile_binary_tree(docker)
        event = make_event("epoll_wait", (4, 512, 100))
        data = SeccompData.from_event(event)
        linear_cost = run(linear, data).instructions_executed
        tree_cost = run(tree, data).instructions_executed
        assert tree_cost < linear_cost / 4

    def test_linear_cost_grows_with_position(self):
        docker = build_docker_default()
        linear = compile_linear(docker)
        early = run(linear, SeccompData.from_event(make_event("read", (1, 2)))).instructions_executed
        late = run(linear, SeccompData.from_event(make_event("openat", (0, 0, 0)))).instructions_executed
        assert late > early


class TestChunking:
    def _big_profile(self):
        """A profile too large for a single BPF program."""
        rules = []
        for entry in LINUX_X86_64:
            checkable = entry.checkable_args
            if not checkable:
                rules.append(SyscallRule(sid=entry.sid))
                continue
            arg_rules = tuple(
                ArgSetRule(tuple(ArgCmp(i, v) for i in checkable))
                for v in range(12)
            )
            rules.append(SyscallRule(sid=entry.sid, arg_rules=arg_rules))
        return SeccompProfile("big", rules)

    def test_splits_when_needed(self):
        programs = compile_profile_chunked(self._big_profile())
        assert len(programs) > 1
        for program in programs:
            assert len(program) <= 4096
            verify(program)

    def test_single_chunk_when_small(self):
        programs = compile_profile_chunked(_toy_profile())
        assert len(programs) == 1

    def test_chunked_equivalence(self):
        """Stacked chunk decisions must equal the reference semantics."""
        from repro.seccomp.engine import SeccompKernelModule

        profile = self._big_profile()
        module = SeccompKernelModule()
        for program in compile_profile_chunked(profile):
            module.attach(program)
        probes = [
            make_event("read", (3, 0)),
            make_event("read", (3, 99)),        # not whitelisted value
            make_event("getpid"),
            make_event("clone3", (5,)),          # high SID range
            make_event("io_uring_setup", (11,)),
            make_event("mount"),
        ]
        for event in probes:
            assert module.check(event).allowed == profile.allows(event), event


# -- property-based equivalence ---------------------------------------------

_NAMES = ("read", "write", "close", "personality", "openat", "futex", "getpid")


@st.composite
def profiles(draw):
    chosen = draw(
        st.lists(st.sampled_from(_NAMES), min_size=1, max_size=5, unique=True)
    )
    arg_rules = {}
    for name in chosen:
        checkable = LINUX_X86_64.by_name(name).checkable_args
        if not checkable or draw(st.booleans()):
            continue
        sets = draw(
            st.lists(
                st.tuples(*[st.integers(0, 3) for _ in checkable]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        arg_rules[name] = [
            ArgSetRule(tuple(ArgCmp(i, v) for i, v in zip(checkable, values)))
            for values in sets
        ]
    return SeccompProfile.from_names("prop", chosen, arg_rules=arg_rules)


@st.composite
def events(draw):
    name = draw(st.sampled_from(_NAMES + ("mount", "ptrace")))
    checkable = LINUX_X86_64.by_name(name).checkable_args
    args = tuple(draw(st.integers(0, 4)) for _ in checkable)
    return make_event(name, args)


class TestEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), event=events(), strategy=st.sampled_from(["linear", "binary_tree"]))
    def test_compiled_matches_reference(self, profile, event, strategy):
        program = compile_profile(profile, strategy)
        result = run(program, SeccompData.from_event(event))
        compiled_allows = action_of(result.return_value) == SECCOMP_RET_ALLOW
        assert compiled_allows == profile.allows(event)
