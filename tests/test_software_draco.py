"""Tests for the software implementation of Draco (Section V-C)."""

import pytest

from repro.core.software import (
    SoftwareDraco,
    bitmask_for_arg_indices,
    build_process_tables,
)
from repro.cpu.params import DEFAULT_SW_COSTS
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.syscalls.events import SyscallTrace, make_event
from repro.syscalls.table import sid


@pytest.fixture
def training_trace():
    return SyscallTrace(
        [
            make_event("read", (3, 100)),
            make_event("read", (4, 100)),
            make_event("write", (1, 64)),
            make_event("getppid"),
        ]
    )


def _draco(profile, times=1):
    tables = build_process_tables(profile)
    module = SeccompKernelModule()
    program = compile_linear(profile)
    for _ in range(times):
        module.attach(program)
    return SoftwareDraco(tables, module)


class TestBitmaskHelper:
    def test_selected_indices(self):
        mask = bitmask_for_arg_indices((0, 2))
        assert mask == 0xFF | (0xFF << 16)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bitmask_for_arg_indices((6,))


class TestBuildProcessTables:
    def test_spt_entries_for_all_rules(self, training_trace):
        profile = generate_complete(training_trace, "t")
        tables = build_process_tables(profile)
        assert len(tables.spt) == profile.num_syscalls

    def test_vat_sized_from_profile(self, training_trace):
        """Section VII-A: tables sized from the profile's argument sets."""
        profile = generate_complete(training_trace, "t")
        tables = build_process_tables(profile)
        read_table = tables.vat.table_for(sid("read"))
        assert read_table.num_slots == 2 * 2  # two argument sets x2

    def test_noargs_profile_has_no_vat(self, training_trace):
        profile = generate_noargs(training_trace, "t")
        tables = build_process_tables(profile)
        assert tables.vat.num_tables == 0

    def test_base_pointers_match_vat(self, training_trace):
        profile = generate_complete(training_trace, "t")
        tables = build_process_tables(profile)
        entry = tables.spt.lookup(sid("read"))
        assert entry.base == tables.vat.table_for(sid("read")).base_address


class TestCheckPaths:
    def test_first_check_runs_filter_then_caches(self, training_trace):
        draco = _draco(generate_complete(training_trace, "t"))
        event = make_event("read", (3, 100))
        first = draco.check(event)
        second = draco.check(event)
        assert first.path == "filter_run"
        assert second.path == "vat_hit"
        assert second.cycles < first.cycles

    def test_spt_only_for_zero_arg_syscalls(self, training_trace):
        draco = _draco(generate_complete(training_trace, "t"))
        outcome = draco.check(make_event("getppid"))
        assert outcome.path == "spt_only"
        assert outcome.allowed

    def test_denied_unknown_syscall(self, training_trace):
        draco = _draco(generate_complete(training_trace, "t"))
        outcome = draco.check(make_event("mount"))
        assert not outcome.allowed
        assert outcome.path == "denied"

    def test_denied_wrong_args(self, training_trace):
        draco = _draco(generate_complete(training_trace, "t"))
        outcome = draco.check(make_event("read", (9, 9)))
        assert not outcome.allowed
        # A denial is never cached.
        assert not draco.check(make_event("read", (9, 9))).allowed

    def test_noargs_profile_all_spt_only(self, training_trace):
        draco = _draco(generate_noargs(training_trace, "t"))
        outcome = draco.check(make_event("read", (77, 77)))
        assert outcome.path == "spt_only"
        assert outcome.cycles == DEFAULT_SW_COSTS.sw_draco_spt_only_cycles

    def test_stats_accumulate(self, training_trace):
        draco = _draco(generate_complete(training_trace, "t"))
        for _ in range(3):
            draco.check(make_event("read", (3, 100)))
        draco.check(make_event("mount"))
        assert draco.stats.vat_hits == 2
        assert draco.stats.filter_runs == 1
        assert draco.stats.denials == 1
        assert draco.stats.total == 4
        assert draco.stats.vat_hit_rate == pytest.approx(2 / 3)


class TestEquivalenceWithSeccomp:
    def test_decisions_match_reference(self, training_trace):
        """Draco caching must never change allow/deny decisions."""
        profile = generate_complete(training_trace, "t")
        draco = _draco(profile)
        probes = [
            make_event("read", (3, 100)),
            make_event("read", (4, 100)),
            make_event("read", (4, 100)),
            make_event("read", (5, 100)),
            make_event("write", (1, 64)),
            make_event("getppid"),
            make_event("mount"),
        ]
        for event in probes:
            assert draco.check(event).allowed == profile.allows(event)

    def test_2x_hit_cost_unchanged(self, training_trace):
        """A VAT hit skips both attached filters: the Draco hit cost is
        independent of the 2x doubling (the paper's key scaling claim)."""
        profile = generate_complete(training_trace, "t")
        once = _draco(profile, times=1)
        twice = _draco(profile, times=2)
        event = make_event("read", (3, 100))
        once.check(event)
        twice.check(event)
        assert once.check(event).cycles == twice.check(event).cycles

    def test_2x_miss_cost_doubles_filter_share(self, training_trace):
        profile = generate_complete(training_trace, "t")
        once = _draco(profile, times=1)
        twice = _draco(profile, times=2)
        event = make_event("read", (3, 100))
        assert twice.check(event).cycles > once.check(event).cycles
