"""Tests for the cBPF instruction set, seccomp_data, and assembler."""

import struct

import pytest

from repro.bpf.assembler import ProgramBuilder
from repro.bpf.insn import (
    BPF_ABS,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    Insn,
    bpf_class,
    jump,
    stmt,
)
from repro.bpf.seccomp_data import (
    ARCH_OFFSET,
    NR_OFFSET,
    SECCOMP_DATA_SIZE,
    SeccompData,
    args_off,
    args_off_high,
)
from repro.common.errors import BpfVerifyError
from repro.syscalls.abi import AUDIT_ARCH_X86_64
from repro.syscalls.events import make_event


class TestInsn:
    def test_fields_validated(self):
        with pytest.raises(ValueError):
            Insn(code=-1)
        with pytest.raises(ValueError):
            Insn(code=0, jt=256)
        with pytest.raises(ValueError):
            Insn(code=0, k=1 << 32)

    def test_helpers(self):
        insn = stmt(BPF_LD | BPF_W | BPF_ABS, 4)
        assert insn.k == 4
        cond = jump(BPF_JMP | BPF_JEQ | BPF_K, 7, 1, 2)
        assert (cond.jt, cond.jf) == (1, 2)

    def test_predicates(self):
        assert stmt(BPF_RET | BPF_K, 0).is_return
        assert jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 0, 0).is_jump
        assert not stmt(BPF_LD | BPF_W | BPF_ABS, 0).is_jump

    def test_mnemonics_cover_classes(self):
        assert "ld" in stmt(BPF_LD | BPF_W | BPF_ABS, 0).mnemonic()
        assert "ret" in stmt(BPF_RET | BPF_K, 5).mnemonic()
        assert "jeq" in jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 0).mnemonic()


class TestSeccompData:
    def test_pack_layout(self):
        data = SeccompData(nr=1, instruction_pointer=0xDEAD, args=(10, 20))
        raw = data.pack()
        assert len(raw) == SECCOMP_DATA_SIZE
        assert struct.unpack_from("<I", raw, NR_OFFSET)[0] == 1
        assert struct.unpack_from("<I", raw, ARCH_OFFSET)[0] == AUDIT_ARCH_X86_64
        assert struct.unpack_from("<Q", raw, args_off(0))[0] == 10
        assert struct.unpack_from("<Q", raw, args_off(1))[0] == 20

    def test_args_padded_to_six(self):
        assert SeccompData(nr=0, args=(1,)).args == (1, 0, 0, 0, 0, 0)

    def test_load_u32_low_high(self):
        value = 0x11223344AABBCCDD
        data = SeccompData(nr=0, args=(value,))
        assert data.load_u32(args_off(0)) == 0xAABBCCDD
        assert data.load_u32(args_off_high(0)) == 0x11223344

    def test_load_alignment(self):
        data = SeccompData(nr=0)
        with pytest.raises(ValueError):
            data.load_u32(2)

    def test_load_bounds(self):
        data = SeccompData(nr=0)
        with pytest.raises(ValueError):
            data.load_u32(SECCOMP_DATA_SIZE)

    def test_from_event(self):
        event = make_event("read", (3, 100), pc=0x42)
        data = SeccompData.from_event(event)
        assert data.nr == 0
        assert data.instruction_pointer == 0x42
        assert data.args[0] == 3

    def test_args_off_range(self):
        with pytest.raises(ValueError):
            args_off(6)


class TestProgramBuilder:
    def test_labels_resolve_forward(self):
        builder = ProgramBuilder()
        builder.ld_abs(0)
        builder.jeq(5, "match", 0)
        builder.ret_k(0)
        builder.label("match")
        builder.ret_k(1)
        program = builder.assemble()
        assert program[1].jt == 1  # skips the ret_k(0)

    def test_backward_jump_rejected(self):
        builder = ProgramBuilder()
        builder.label("start")
        builder.ld_abs(0)
        builder.jmp("start")
        with pytest.raises(BpfVerifyError):
            builder.assemble()

    def test_undefined_label(self):
        builder = ProgramBuilder()
        builder.jmp("nowhere")
        with pytest.raises(BpfVerifyError):
            builder.assemble()

    def test_duplicate_label(self):
        builder = ProgramBuilder()
        builder.label("a")
        with pytest.raises(BpfVerifyError):
            builder.label("a")

    def test_conditional_range_limit(self):
        builder = ProgramBuilder()
        builder.jeq(1, "far", 0)
        for _ in range(300):
            builder.ld_imm(0)
        builder.label("far")
        builder.ret_k(0)
        with pytest.raises(BpfVerifyError):
            builder.assemble()

    def test_ja_reaches_far(self):
        builder = ProgramBuilder()
        builder.jmp("far")
        for _ in range(300):
            builder.ld_imm(0)
        builder.label("far")
        builder.ret_k(0)
        program = builder.assemble()
        assert program[0].k == 300

    def test_and_k_emits_alu(self):
        builder = ProgramBuilder()
        builder.ld_abs(0)
        builder.and_k(0xFF)
        builder.ret_a()
        program = builder.assemble()
        from repro.bpf.insn import BPF_ALU

        assert bpf_class(program[1].code) == BPF_ALU

    def test_len(self):
        builder = ProgramBuilder()
        assert len(builder) == 0
        builder.ret_k(0)
        assert len(builder) == 1
