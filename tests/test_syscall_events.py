"""Tests for syscall events and traces."""

import pytest

from repro.syscalls.events import SyscallEvent, SyscallTrace, make_event
from repro.syscalls.table import sid


class TestSyscallEvent:
    def test_key_identity(self):
        a = SyscallEvent(sid=0, args=(3, 0, 100))
        b = SyscallEvent(sid=0, args=(3, 0, 100), pc=0x999)
        assert a.key == b.key  # PC is not part of the cached identity

    def test_negative_sid_rejected(self):
        with pytest.raises(ValueError):
            SyscallEvent(sid=-1, args=())

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError):
            SyscallEvent(sid=0, args=tuple(range(7)))

    def test_args_coerced_to_int(self):
        event = SyscallEvent(sid=0, args=(True, 2.0 and 2))
        assert event.args == (1, 2)

    def test_name(self):
        assert SyscallEvent(sid=0, args=()).name() == "read"


class TestMakeEvent:
    def test_places_values_on_checkable_slots(self):
        event = make_event("read", (3, 4096))
        # read(fd, buf*, count): values land on slots 0 and 2.
        assert event.args == (3, 0, 4096)

    def test_by_sid(self):
        event = make_event(135, (0xFFFFFFFF,))
        assert event.sid == 135
        assert event.args == (0xFFFFFFFF,)

    def test_no_args(self):
        event = make_event("getppid")
        assert event.args == ()

    def test_too_many_checkable_values(self):
        with pytest.raises(ValueError):
            make_event("close", (1, 2))

    def test_pointer_only_syscall(self):
        event = make_event("stat", ())
        assert event.args == (0, 0)

    def test_pc_recorded(self):
        assert make_event("read", (1, 2), pc=0x1234).pc == 0x1234


class TestSyscallTrace:
    def _trace(self):
        return SyscallTrace(
            [
                make_event("read", (3, 100)),
                make_event("read", (4, 100)),
                make_event("write", (1, 50)),
                make_event("read", (3, 100)),
            ]
        )

    def test_len_and_iter(self):
        trace = self._trace()
        assert len(trace) == 4
        assert [e.sid for e in trace] == [0, 0, 1, 0]

    def test_indexing_and_slicing(self):
        trace = self._trace()
        assert trace[0].sid == 0
        sub = trace[1:3]
        assert isinstance(sub, SyscallTrace)
        assert len(sub) == 2

    def test_unique_sids(self):
        assert self._trace().unique_sids() == (0, 1)

    def test_unique_keys(self):
        assert len(self._trace().unique_keys()) == 3

    def test_argument_sets_for(self):
        sets = self._trace().argument_sets_for(sid("read"))
        assert len(sets) == 2

    def test_append_extend(self):
        trace = SyscallTrace()
        trace.append(make_event("read", (1, 1)))
        trace.extend([make_event("write", (1, 1))])
        assert len(trace) == 2
