"""Tests for the seccomp action-cache bitmap regime (Linux 5.11 legacy)."""

import pytest

from repro.kernel.simulator import run_trace
from repro.kernel.regimes import DracoSwRegime, SeccompRegime
from repro.seccomp.bitmap_cache import SeccompActionCache, SeccompBitmapRegime
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.compiler import compile_linear
from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.syscalls.events import SyscallTrace, make_event
from repro.syscalls.table import sid


@pytest.fixture
def training_trace():
    events = []
    for i in range(200):
        events.append(make_event("read", (3 + i % 4, 100), pc=0x100))
        events.append(make_event("getppid", pc=0x104))
    return SyscallTrace(events)


class TestActionCache:
    def test_noargs_profile_fully_cacheable(self, training_trace):
        profile = generate_noargs(training_trace, "t")
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        cache = SeccompActionCache(module)
        assert cache.hit(sid("read"))
        assert cache.hit(sid("getppid"))
        assert not cache.hit(sid("mount"))  # kill, not allow: no bit

    def test_complete_profile_arg_checked_not_cacheable(self, training_trace):
        profile = generate_complete(training_trace, "t")
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        cache = SeccompActionCache(module)
        assert not cache.hit(sid("read"))      # argument-dependent
        assert cache.hit(sid("getppid"))       # no checkable args

    def test_no_filters_caches_nothing(self):
        cache = SeccompActionCache(SeccompKernelModule())
        assert not cache.hit(0)

    def test_stats(self, training_trace):
        profile = generate_noargs(training_trace, "t")
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        stats = SeccompActionCache(module).stats
        assert stats.cacheable_syscalls == 2
        assert 0 < stats.coverage < 0.05  # 2 of the whole table


class TestBitmapRegime:
    def test_decisions_match_seccomp(self, training_trace):
        profile = generate_complete(training_trace, "t")
        bitmap = SeccompBitmapRegime(profile)
        plain = SeccompRegime(profile)
        probes = [
            make_event("read", (3, 100)),
            make_event("read", (9, 9)),
            make_event("getppid"),
            make_event("mount"),
        ]
        for event in probes:
            assert bitmap.check(event).allowed == plain.check(event).allowed

    def test_bitmap_matches_draco_on_noargs(self, training_trace):
        """ID-only profiles: the bitmap removes filter cost, like Draco."""
        profile = generate_noargs(training_trace, "t")
        bitmap = SeccompBitmapRegime(profile)
        plain = SeccompRegime(profile)
        bitmap_result = run_trace(training_trace, bitmap, 400.0, 150.0)
        plain_result = run_trace(training_trace, plain, 400.0, 150.0)
        assert bitmap_result.mean_check_cycles < plain_result.mean_check_cycles
        assert bitmap.bitmap_hits > 0
        assert bitmap.filter_runs == 0

    def test_bitmap_useless_on_argument_checks(self):
        """The Draco-vs-bitmap gap: argument-checking profiles defeat the
        bitmap (every arg-checked syscall runs the full filter) while
        Draco's VAT still caches them.  A realistic server-like argument
        population (dozens of client fds) makes the filter scans long.
        """
        events = []
        for i in range(600):
            events.append(make_event("read", (8 + i % 48, 4096), pc=0x100))
        trace = SyscallTrace(events)
        profile = generate_complete(trace, "server")
        bitmap = SeccompBitmapRegime(profile)
        draco = DracoSwRegime(profile)
        bitmap_result = run_trace(trace, bitmap, 400.0, 150.0)
        draco_result = run_trace(trace, draco, 400.0, 150.0)
        # The bitmap never helps: every read is argument-checked.
        assert bitmap.bitmap_hits == 0
        assert bitmap.filter_runs == len(trace)
        assert draco_result.mean_check_cycles < bitmap_result.mean_check_cycles

    def test_draco_vs_bitmap_crossover_on_tiny_filters(self, training_trace):
        """Honest flip side: when the argument-checking filter is tiny
        (a couple of argument sets), running it can undercut Draco's
        hash-and-probe hit path — the same near-crossover the paper's
        lightest workloads show in Figure 11."""
        profile = generate_complete(training_trace, "t")
        bitmap = SeccompBitmapRegime(profile)
        draco = DracoSwRegime(profile)
        bitmap_result = run_trace(training_trace, bitmap, 400.0, 150.0)
        draco_result = run_trace(training_trace, draco, 400.0, 150.0)
        assert bitmap.filter_runs >= len(training_trace) // 2
        # Both are within a few tens of cycles of each other here.
        assert abs(
            draco_result.mean_check_cycles - bitmap_result.mean_check_cycles
        ) < 40

    def test_regime_name(self, training_trace):
        profile = generate_noargs(training_trace, "t")
        assert "seccomp-bitmap" in SeccompBitmapRegime(profile).name
