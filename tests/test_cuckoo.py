"""Tests for the 2-ary cuckoo hash table (the VAT's structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, CuckooInsertError
from repro.hashing.cuckoo import CuckooTable


class TestBasics:
    def test_insert_lookup(self):
        table = CuckooTable(8)
        table.insert(b"key", ("value",))
        found = table.lookup(b"key")
        assert found is not None
        assert found.value == ("value",)

    def test_missing_key(self):
        table = CuckooTable(8)
        assert table.lookup(b"nope") is None
        assert b"nope" not in table

    def test_update_in_place(self):
        table = CuckooTable(8)
        table.insert(b"k", 1)
        table.insert(b"k", 2)
        assert table.lookup(b"k").value == 2
        assert len(table) == 1

    def test_which_hash_consistent(self):
        """The hash id returned by insert locates the entry on lookup."""
        table = CuckooTable(16)
        for i in range(6):
            key = bytes([i])
            which = table.insert(key, i)
            found = table.lookup(key)
            assert found.which_hash == which
            assert table.index_for(key, which) == found.slot_index

    def test_candidate_indices(self):
        table = CuckooTable(16)
        i1, i2 = table.candidate_indices(b"abc")
        assert 0 <= i1 < 16 and 0 <= i2 < 16

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            CuckooTable(1)

    def test_remove(self):
        table = CuckooTable(8)
        table.insert(b"k", 1)
        assert table.remove(b"k")
        assert not table.remove(b"k")
        assert len(table) == 0

    def test_evict_any(self):
        table = CuckooTable(8)
        table.insert(b"k", 1)
        assert table.evict_any() == b"k"
        assert table.evict_any() is None

    def test_clear(self):
        table = CuckooTable(8)
        table.insert(b"a", 1)
        table.clear()
        assert len(table) == 0
        assert table.lookup(b"a") is None

    def test_slot_at_bounds(self):
        table = CuckooTable(8)
        with pytest.raises(ConfigError):
            table.slot_at(8)

    def test_items(self):
        table = CuckooTable(8)
        table.insert(b"a", 1)
        table.insert(b"b", 2)
        assert sorted(table.items()) == [(b"a", 1), (b"b", 2)]


class TestRelocation:
    def test_kicks_relocate_residents(self):
        """Filling near capacity exercises relocation; all inserted keys
        must stay findable."""
        table = CuckooTable(64, max_kicks=64)
        keys = [bytes([i, i ^ 0x5A]) for i in range(28)]  # ~44% load
        for i, key in enumerate(keys):
            table.insert(key, i)
        for i, key in enumerate(keys):
            found = table.lookup(key)
            assert found is not None and found.value == i

    def test_insert_failure_raises(self):
        # With 2 slots and 3 keys, some insertion must fail.
        table = CuckooTable(2, max_kicks=8)
        with pytest.raises(CuckooInsertError):
            for i in range(8):
                table.insert(bytes([i]), i)


def _insert_with_eviction(table, key, value):
    """The VAT layer's policy (Section VII-A): each failed relocation
    round drops one entry; retry until the key is resident.  Returns the
    keys dropped along the way."""
    evicted = []
    for _ in range(8):
        try:
            table.insert(key, value)
            return evicted
        except CuckooInsertError as error:
            evicted.append(error.dropped_key)
    resident = table.slot_at(table.index_for(key, 0))
    if resident is not None and resident.key != key:
        evicted.append(resident.key)
    table.force_place(key, value)
    return evicted


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), max_size=24, unique=True))
    def test_surviving_keys_found(self, keys):
        """Every key that was not explicitly evicted remains findable at
        one of its two locations, with a consistent recorded hash."""
        table = CuckooTable(max(4, 2 * len(keys)), max_kicks=64)
        surviving = {}
        for i, key in enumerate(keys):
            for victim in _insert_with_eviction(table, key, i):
                surviving.pop(victim, None)
            surviving[key] = i
        assert len(table) == len(surviving)
        for key, value in surviving.items():
            found = table.lookup(key)
            assert found is not None
            assert found.value == value
            # Invariant: the entry sits where its recorded hash says.
            assert table.index_for(key, found.which_hash) == found.slot_index

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=16, unique=True))
    def test_load_factor_matches_size(self, keys):
        table = CuckooTable(2 * len(keys) + 2, max_kicks=64)
        for i, key in enumerate(keys):
            _insert_with_eviction(table, key, i)
        assert table.load_factor == pytest.approx(len(table) / table.num_slots)


class TestInvariants:
    """Structural invariants under the failure/fallback paths."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=32))
    def test_occupancy_conserved_on_drop(self, keys):
        """When an insert exhausts its kicks, the new key is in and one
        resident is dropped — occupancy must not drift, and __len__ must
        equal the number of occupied slots."""
        table = CuckooTable(4, max_kicks=3)
        for i, key in enumerate(keys):
            before = len(table)
            known = key in table
            try:
                table.insert(key, i)
                if known:
                    assert len(table) == before
                else:
                    assert len(table) == before + 1
            except CuckooInsertError as error:
                # one in, one out: net zero.  The dropped entry may be
                # the new key itself when its cuckoo cycle kicks it back
                # out — dropped_key reports exactly which one survived.
                assert len(table) == before
                assert error.dropped_key not in table or error.dropped_key == key
                assert key in table or error.dropped_key == key
            assert len(table) == sum(
                1 for s in range(table.num_slots) if table.slot_at(s) is not None
            )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=24))
    def test_which_hash_agrees_with_index_for(self, keys):
        """Every occupied slot's recorded hash maps its key back to the
        slot it occupies."""
        table = CuckooTable(8, max_kicks=4)
        for i, key in enumerate(keys):
            try:
                table.insert(key, i)
            except CuckooInsertError:
                pass
            for index in range(table.num_slots):
                slot = table.slot_at(index)
                if slot is not None:
                    assert table.index_for(slot.key, slot.which_hash) == index

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=24),
        st.lists(st.integers(0, 2), min_size=1, max_size=12),
    )
    def test_force_place_and_evict_any_len_consistent(self, keys, ops):
        """force_place and evict_any keep __len__ equal to the actual
        occupied-slot count through arbitrary interleavings."""
        table = CuckooTable(6, max_kicks=2)
        pending = list(keys)

        def occupied():
            return sum(
                1 for s in range(table.num_slots) if table.slot_at(s) is not None
            )

        for op in ops:
            if op == 0 and pending:
                table.force_place(pending.pop(), "forced")
            elif op == 1 and pending:
                key = pending.pop()
                try:
                    table.insert(key, "inserted")
                except CuckooInsertError:
                    pass
            else:
                before = len(table)
                evicted = table.evict_any()
                if evicted is None:
                    assert before == 0
                else:
                    assert len(table) == before - 1
                    assert evicted not in table
            assert len(table) == occupied()

    def test_force_place_on_occupied_slot_replaces(self):
        table = CuckooTable(4)
        table.force_place(b"a", 1)
        # Find a key whose H1 slot collides with b"a"'s.
        target = table.index_for(b"a", 0)
        for byte in range(1, 256):
            key = bytes([byte])
            if key != b"a" and table.index_for(key, 0) == target:
                table.force_place(key, 2)
                assert len(table) == 1
                assert key in table
                break
