"""Tests for trace serialisation (JSONL save/replay)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.syscalls.events import SyscallEvent, SyscallTrace, make_event
from repro.syscalls.serialize import (
    FORMAT_VERSION_RLE,
    TraceFormatError,
    dumps,
    load,
    loads,
    save,
)
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import generate_trace


@pytest.fixture
def trace():
    return SyscallTrace(
        [
            make_event("read", (3, 100), pc=0x100),
            make_event("getppid", pc=0x104),
            make_event("mmap", (4096, 3, 0x22, 0xFFFFFFFF, 0), pc=0x108),
        ]
    )


class TestRoundTrip:
    def test_text_round_trip(self, trace):
        restored = loads(dumps(trace))
        assert len(restored) == len(trace)
        assert [e.key for e in restored] == [e.key for e in trace]
        assert [e.pc for e in restored] == [e.pc for e in trace]

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save(trace, path)
        assert [e.key for e in load(path)] == [e.key for e in trace]

    def test_workload_trace_round_trip(self):
        original = generate_trace(CATALOG["fifo-ipc"], 400)
        restored = loads(dumps(original))
        assert [e.key for e in restored] == [e.key for e in original]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 450),
                st.lists(st.integers(0, 2**63), max_size=6),
                st.integers(0, 2**40),
            ),
            max_size=16,
        )
    )
    def test_property_round_trip(self, raw):
        trace = SyscallTrace(
            SyscallEvent(sid=sid, args=tuple(args), pc=pc) for sid, args, pc in raw
        )
        restored = loads(dumps(trace)) if len(trace) else trace
        assert [e.key for e in restored] == [e.key for e in trace]


class TestRleFormat:
    """Version 2: run-length encoding with an interned event table."""

    def test_round_trip(self, trace):
        restored = loads(dumps(trace, version=FORMAT_VERSION_RLE))
        assert [e.key for e in restored] == [e.key for e in trace]
        assert [e.pc for e in restored] == [e.pc for e in trace]

    def test_workload_round_trip(self):
        original = generate_trace(CATALOG["fifo-ipc"], 400)
        restored = loads(dumps(original, version=FORMAT_VERSION_RLE))
        assert [e.key for e in restored] == [e.key for e in original]

    def test_interning_preserves_identity_runs(self):
        """Re-loaded traces intern one instance per distinct event, so
        iter_runs coalesces with pointer comparisons as for generated
        traces."""
        original = generate_trace(CATALOG["fifo-ipc"], 400)
        restored = loads(dumps(original, version=FORMAT_VERSION_RLE))
        seen = {}
        for event in restored:
            assert seen.setdefault((event.sid, event.args, event.pc), event) is event
        assert list(c for _e, c in restored.iter_runs()) == list(
            c for _e, c in original.iter_runs()
        )

    def test_rle_is_smaller_for_repetitive_traces(self):
        trace = SyscallTrace([make_event("getppid")] * 500)
        assert len(dumps(trace, version=FORMAT_VERSION_RLE)) < len(dumps(trace))

    def test_unknown_write_version_rejected(self, trace):
        with pytest.raises(TraceFormatError):
            dumps(trace, version=3)

    def _header(self, count, distinct):
        return (
            '{"format": "repro-trace", "version": 2, '
            f'"count": {count}, "distinct": {distinct}}}\n'
        )

    def test_bad_distinct_count(self):
        with pytest.raises(TraceFormatError):
            loads('{"format": "repro-trace", "version": 2, "count": 0, "distinct": -1}\n')
        with pytest.raises(TraceFormatError):
            loads(self._header(1, 5) + '{"sid": 0, "args": [], "pc": 0}\n')

    def test_bad_event_line(self):
        with pytest.raises(TraceFormatError):
            loads(self._header(1, 1) + '{"sid": "x"}\n[0, 1]\n')

    def test_run_index_out_of_range(self):
        text = self._header(1, 1) + '{"sid": 0, "args": [], "pc": 0}\n[7, 1]\n'
        with pytest.raises(TraceFormatError):
            loads(text)

    def test_non_positive_run_count(self):
        text = self._header(0, 1) + '{"sid": 0, "args": [], "pc": 0}\n[0, 0]\n'
        with pytest.raises(TraceFormatError):
            loads(text)

    def test_count_mismatch(self):
        text = self._header(9, 1) + '{"sid": 0, "args": [], "pc": 0}\n[0, 3]\n'
        with pytest.raises(TraceFormatError):
            loads(text)


class TestErrors:
    def test_empty_file(self):
        with pytest.raises(TraceFormatError):
            loads("")

    def test_bad_header(self):
        with pytest.raises(TraceFormatError):
            loads("not json\n")

    def test_wrong_format(self):
        with pytest.raises(TraceFormatError):
            loads('{"format": "other", "version": 1}\n')

    def test_wrong_version(self):
        with pytest.raises(TraceFormatError):
            loads('{"format": "repro-trace", "version": 99}\n')

    def test_bad_record(self):
        text = '{"format": "repro-trace", "version": 1, "count": 1}\n{"sid": "x"}\n'
        with pytest.raises(TraceFormatError):
            loads(text)

    def test_count_mismatch(self):
        text = '{"format": "repro-trace", "version": 1, "count": 5}\n'
        text += '{"sid": 0, "args": [], "pc": 0}\n'
        with pytest.raises(TraceFormatError):
            loads(text)
