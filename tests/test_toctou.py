"""TOCTOU-immunity properties (Section II-B).

"Seccomp does not check the values of arguments that are pointers ...
a malicious user could change the contents of the location pointed to
by the pointer after the check."  Accordingly, no layer of this stack
may let a pointer argument's *value* influence a decision or a cache
key — pointer contents are out of scope by construction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import SeccompData
from repro.core.hardware import HardwareDraco
from repro.core.software import SoftwareDraco, build_process_tables
from repro.core.vat import VAT
from repro.core.software import bitmask_for_arg_indices
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallEvent, SyscallTrace, make_event
from repro.syscalls.table import LINUX_X86_64, sid


def _with_pointer_noise(event: SyscallEvent, noise: int) -> SyscallEvent:
    """Overwrite the pointer slots of *event* with attacker values."""
    sdef = LINUX_X86_64.by_sid(event.sid)
    args = list(event.args)
    for index in range(sdef.nargs):
        if sdef.pointer_mask >> index & 1:
            args[index] = noise
    return SyscallEvent(sid=event.sid, args=tuple(args), pc=event.pc)


@pytest.fixture(scope="module")
def stack():
    trace = SyscallTrace(
        [
            make_event("read", (3, 100), pc=0x100),
            make_event("openat", (0xFFFFFF9C, 0, 0), pc=0x104),
            make_event("futex", (128, 1, 0), pc=0x108),
        ]
    )
    profile = generate_complete(trace, "t")
    program = compile_linear(profile)

    def module():
        m = SeccompKernelModule()
        m.attach(program)
        return m

    return profile, program, module


class TestPointerValuesNeverMatter:
    @settings(max_examples=50, deadline=None)
    @given(noise=st.integers(0, 2**64 - 1))
    def test_filter_decision_ignores_pointers(self, stack, noise):
        profile, program, _ = stack
        for name, args in (("read", (3, 100)), ("openat", (0xFFFFFF9C, 0, 0)),
                           ("futex", (128, 1, 0))):
            clean = make_event(name, args)
            noisy = _with_pointer_noise(clean, noise)
            clean_ret = run(program, SeccompData.from_event(clean)).return_value
            noisy_ret = run(program, SeccompData.from_event(noisy)).return_value
            assert clean_ret == noisy_ret

    @settings(max_examples=30, deadline=None)
    @given(noise=st.integers(1, 2**64 - 1))
    def test_vat_key_ignores_pointers(self, stack, noise):
        """The VAT key is built from the Argument Bitmask, which never
        covers pointer slots — attacker-controlled pointer values cannot
        create (or dodge) cache entries."""
        sdef = LINUX_X86_64.by_name("read")
        bitmask = bitmask_for_arg_indices(sdef.checkable_args)
        clean = make_event("read", (3, 100))
        noisy = _with_pointer_noise(clean, noise)
        assert VAT.key_for(clean.args, bitmask) == VAT.key_for(noisy.args, bitmask)

    def test_software_draco_hit_across_pointer_churn(self, stack):
        profile, _, module = stack
        draco = SoftwareDraco(build_process_tables(profile), module())
        first = draco.check(make_event("read", (3, 100)))
        assert first.allowed
        for noise in (0xDEAD, 0xBEEF, 0x7FFF_FFFF_0000):
            noisy = _with_pointer_noise(make_event("read", (3, 100)), noise)
            outcome = draco.check(noisy)
            assert outcome.allowed
            assert outcome.path == "vat_hit"  # same cache entry every time

    def test_hardware_draco_hit_across_pointer_churn(self, stack):
        profile, _, module = stack
        draco = HardwareDraco(build_process_tables(profile), module())
        base = make_event("futex", (128, 1, 0), pc=0x108)
        draco.on_syscall(base)
        for noise in (0x1111, 0x2222):
            noisy = _with_pointer_noise(base, noise)
            result = draco.on_syscall(noisy)
            assert result.allowed
            assert result.stall_cycles <= 10  # SLB-warm despite churn
