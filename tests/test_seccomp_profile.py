"""Tests for the Seccomp profile model and actions."""

import pytest

from repro.common.errors import ProfileError
from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_LOG,
    action_name,
    action_of,
    data_of,
    errno_action,
    is_allow,
    most_restrictive,
)
from repro.seccomp.profile import (
    ArgCmp,
    ArgSetRule,
    CmpOp,
    SeccompProfile,
    SyscallRule,
)
from repro.syscalls.events import make_event
from repro.syscalls.table import sid


class TestActions:
    def test_action_of_strips_data(self):
        assert action_of(SECCOMP_RET_ERRNO | 13) == SECCOMP_RET_ERRNO

    def test_data_of(self):
        assert data_of(errno_action(13)) == 13

    def test_errno_action_bounds(self):
        with pytest.raises(ValueError):
            errno_action(1 << 16)

    def test_is_allow(self):
        assert is_allow(SECCOMP_RET_ALLOW)
        assert not is_allow(SECCOMP_RET_KILL_PROCESS)

    def test_most_restrictive_ordering(self):
        assert most_restrictive(SECCOMP_RET_ALLOW, SECCOMP_RET_KILL_PROCESS) == SECCOMP_RET_KILL_PROCESS
        assert most_restrictive(SECCOMP_RET_LOG, SECCOMP_RET_ERRNO | 1) == SECCOMP_RET_ERRNO | 1
        assert most_restrictive(SECCOMP_RET_KILL_THREAD, SECCOMP_RET_KILL_PROCESS) == SECCOMP_RET_KILL_PROCESS

    def test_action_name(self):
        assert action_name(SECCOMP_RET_ALLOW) == "SECCOMP_RET_ALLOW"


class TestArgCmp:
    def test_eq_matches(self):
        cmp_ = ArgCmp(0, 5)
        assert cmp_.matches((5,))
        assert not cmp_.matches((6,))

    def test_missing_arg_reads_zero(self):
        assert ArgCmp(3, 0).matches((1,))

    def test_masked_eq(self):
        cmp_ = ArgCmp(0, 0, op=CmpOp.MASKED_EQ, mask=0xF0)
        assert cmp_.matches((0x0F,))  # masked bits are zero
        assert not cmp_.matches((0x10,))

    def test_eq_forces_full_mask(self):
        cmp_ = ArgCmp(0, 1, op=CmpOp.EQ, mask=0xF)
        assert cmp_.mask == 0xFFFFFFFFFFFFFFFF

    def test_value_wraps_u64(self):
        assert ArgCmp(0, -1).value == 0xFFFFFFFFFFFFFFFF

    def test_index_bounds(self):
        with pytest.raises(ProfileError):
            ArgCmp(6, 0)


class TestArgSetRule:
    def test_conjunction(self):
        rule = ArgSetRule((ArgCmp(0, 1), ArgCmp(1, 2)))
        assert rule.matches((1, 2))
        assert not rule.matches((1, 3))

    def test_duplicate_index_rejected(self):
        with pytest.raises(ProfileError):
            ArgSetRule((ArgCmp(0, 1), ArgCmp(0, 2)))

    def test_comparisons_sorted(self):
        rule = ArgSetRule((ArgCmp(2, 0), ArgCmp(0, 0)))
        assert [c.arg_index for c in rule.comparisons] == [0, 2]

    def test_empty_matches_everything(self):
        assert ArgSetRule(()).matches((9, 9, 9))


class TestSyscallRule:
    def test_id_only_allows_any_args(self):
        rule = SyscallRule(sid=sid("read"))
        assert rule.allows(make_event("read", (1, 2)))

    def test_wrong_sid(self):
        rule = SyscallRule(sid=sid("read"))
        assert not rule.allows(make_event("write", (1, 2)))

    def test_disjunction_over_arg_sets(self):
        rule = SyscallRule(
            sid=sid("personality"),
            arg_rules=(
                ArgSetRule((ArgCmp(0, 0),)),
                ArgSetRule((ArgCmp(0, 8),)),
            ),
        )
        assert rule.allows(make_event("personality", (0,)))
        assert rule.allows(make_event("personality", (8,)))
        assert not rule.allows(make_event("personality", (1,)))


class TestSeccompProfile:
    def _profile(self):
        return SeccompProfile.from_names(
            "test",
            ["read", "write", "personality"],
            arg_rules={
                "personality": [ArgSetRule((ArgCmp(0, 0xFFFFFFFF),))],
            },
        )

    def test_allows_whitelisted(self):
        profile = self._profile()
        assert profile.allows(make_event("read", (1, 2)))

    def test_denies_unlisted(self):
        assert not self._profile().allows(make_event("mount"))

    def test_arg_check_enforced(self):
        profile = self._profile()
        assert profile.allows(make_event("personality", (0xFFFFFFFF,)))
        assert not profile.allows(make_event("personality", (0,)))

    def test_evaluate_returns_actions(self):
        profile = self._profile()
        assert profile.evaluate(make_event("read", (1, 2))) == SECCOMP_RET_ALLOW
        assert profile.evaluate(make_event("mount")) == SECCOMP_RET_KILL_PROCESS

    def test_metrics(self):
        profile = self._profile()
        assert profile.num_syscalls == 3
        assert profile.num_arguments_checked == 1
        assert profile.num_argument_values_allowed == 1

    def test_duplicate_rule_rejected(self):
        with pytest.raises(ProfileError):
            SeccompProfile("dup", [SyscallRule(0), SyscallRule(0)])

    def test_unknown_sid_rejected(self):
        with pytest.raises(ProfileError):
            SeccompProfile("bad", [SyscallRule(9999)])

    def test_orphan_arg_rules_rejected(self):
        with pytest.raises(ProfileError):
            SeccompProfile.from_names(
                "bad", ["read"], arg_rules={"write": [ArgSetRule(())]}
            )

    def test_rules_sorted_by_sid(self):
        profile = self._profile()
        sids = [rule.sid for rule in profile.rules]
        assert sids == sorted(sids)

    def test_rule_for(self):
        profile = self._profile()
        assert profile.rule_for(sid("read")) is not None
        assert profile.rule_for(sid("mount")) is None
