"""Tests for the extension experiments (flow mix, bitmap, sweeps) and
remaining experiment modules at small scale."""

import pytest

from repro.experiments import (
    bitmap_comparison,
    fig3_locality,
    fig14_arg_distribution,
    flow_mix,
    vat_footprint,
)

EVENTS = 2500
WORKLOADS = ("pipe-ipc", "pwgen")


class TestFlowMix:
    def test_fractions_sum_to_one(self):
        result = flow_mix.run(events=EVENTS, workloads=WORKLOADS)
        for row in result.rows:
            entry = dict(zip(result.columns, row))
            total = sum(
                v for k, v in entry.items() if k.startswith(("FLOW", "SPT", "OS"))
            )
            assert total == pytest.approx(1.0, abs=0.01)

    def test_fast_fraction_consistent(self):
        result = flow_mix.run(events=EVENTS, workloads=WORKLOADS)
        for row in result.rows:
            entry = dict(zip(result.columns, row))
            fast = (
                entry["FLOW_1"] + entry["FLOW_3"] + entry["FLOW_5"] + entry["SPT_ONLY"]
            )
            assert entry["fast_fraction"] == pytest.approx(fast, abs=0.01)


class TestBitmapExperiment:
    def test_small_run_shape(self):
        result = bitmap_comparison.run(events=EVENTS, workloads=("pipe-ipc",))
        rows = {(r[0], r[1]): dict(zip(result.columns, r)) for r in result.rows}
        noargs = rows[("pipe-ipc", "noargs")]
        complete = rows[("pipe-ipc", "complete")]
        assert noargs["bitmap_hit_rate"] > 0.95
        assert complete["bitmap_hit_rate"] < 0.5
        assert complete["draco-hw"] < complete["seccomp"]


class TestFig3Small:
    def test_report_structure(self):
        result = fig3_locality.run(events=EVENTS, top_n=10)
        assert len(result.rows) == 10
        fractions = result.column("fraction_of_calls")
        assert all(0 < f <= 1 for f in fractions)
        assert list(fractions) == sorted(fractions, reverse=True)


class TestFig14Small:
    def test_linux_row_counts_table(self):
        from repro.syscalls.table import LINUX_X86_64

        result = fig14_arg_distribution.run(events=EVENTS, workloads=WORKLOADS)
        linux = result.row_dict("linux")
        total = sum(linux[f"args={n}"] for n in range(7))
        assert total == len(LINUX_X86_64)

    def test_workload_rows_count_events(self):
        result = fig14_arg_distribution.run(events=EVENTS, workloads=("pwgen",))
        row = result.row_dict("pwgen")
        assert sum(row[f"args={n}"] for n in range(7)) == EVENTS


class TestVatSmall:
    def test_geomean_row_present(self):
        result = vat_footprint.run(events=EVENTS, workloads=WORKLOADS)
        names = result.column("workload")
        assert "geomean" in names
        for row in result.rows:
            entry = dict(zip(result.columns, row))
            if entry["workload"] == "geomean":
                assert entry["kilobytes"] > 0
