"""Tests for Table I flow classification."""

import pytest

from repro.core.flows import Flow, classify


class TestClassify:
    @pytest.mark.parametrize(
        "stb,preload,access,expected",
        [
            (True, True, True, Flow.FLOW_1),
            (True, True, False, Flow.FLOW_2),
            (True, False, True, Flow.FLOW_3),
            (True, False, False, Flow.FLOW_4),
            (False, None, True, Flow.FLOW_5),
            (False, None, False, Flow.FLOW_6),
        ],
    )
    def test_lattice(self, stb, preload, access, expected):
        assert classify(stb, preload, access) is expected

    def test_stb_hit_requires_preload_outcome(self):
        with pytest.raises(ValueError):
            classify(True, None, True)

    def test_stb_miss_forbids_preload(self):
        with pytest.raises(ValueError):
            classify(False, True, True)


class TestSpeedClasses:
    def test_fast_flows(self):
        """Table I: flows 1, 3, 5 are fast; 2, 4, 6 are slow."""
        assert Flow.FLOW_1.is_fast
        assert Flow.FLOW_3.is_fast
        assert Flow.FLOW_5.is_fast
        assert not Flow.FLOW_2.is_fast
        assert not Flow.FLOW_4.is_fast
        assert not Flow.FLOW_6.is_fast

    def test_spt_only_fast(self):
        assert Flow.SPT_ONLY.is_fast

    def test_os_check_slow(self):
        assert not Flow.OS_CHECK.is_fast
