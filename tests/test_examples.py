"""Smoke tests: every shipped example stays runnable.

The heavier examples (quickstart, faas_latency, multicore_containers)
share cached workload contexts, so the whole module stays fast after
the first context build.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_examples_directory_complete(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "container_sandbox",
            "hardware_walkthrough",
            "faas_latency",
            "hypercall_guard",
            "pledge_sandbox",
            "multicore_containers",
        } <= names

    def test_container_sandbox(self):
        out = _run_example("container_sandbox")
        assert "KILLED" in out
        assert "blocked 3/3" in out

    def test_pledge_sandbox(self):
        out = _run_example("pledge_sandbox")
        assert "DENY" in out and "allow" in out
        assert "spt_only" in out

    def test_hypercall_guard(self):
        out = _run_example("hypercall_guard")
        assert "FLOW_1" in out
        assert "DENY" in out

    def test_hardware_walkthrough(self):
        out = _run_example("hardware_walkthrough")
        assert "FLOW_6" in out and "FLOW_1" in out
        assert "STB hit rate" in out

    @pytest.mark.slow
    def test_quickstart(self):
        out = _run_example("quickstart")
        assert "draco-hw-complete" in out
        assert "insecure" in out
