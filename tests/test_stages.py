"""Stage-graph orchestrator: differential identity, stage-tier
corruption fallback, cross-experiment dedup, and stage-scoped refresh.

The contract under test (docs/ARCHITECTURE.md): with
``REPRO_STAGE_GRAPH=1`` (the default) the suite runs as a DAG of
content-addressed stages whose markdown output is byte-identical to
the flat engine (``REPRO_STAGE_GRAPH=0``); identical stages requested
by several experiments execute exactly once per cold run; a corrupt
``stages/`` entry always reads as a miss and rebuilds identically; and
``--refresh`` recomputes only terminal (analysis) stages while serving
intermediates from disk.
"""

import json

import pytest

from repro.common import telemetry
from repro.experiments import cache as result_cache
from repro.experiments import engine, runner
from repro.experiments.results import ExperimentResult
from repro.experiments.stages import EvalPlan, build_plan, monolithic_plan

EVENTS = 1200
#: Two-workload slice shared by the dedup / incremental tests: enough
#: to prove per-workload stage sharing without full-catalog runtime.
WORKLOADS = ("nginx", "pipe-ipc")
HW_SUITE = ("fig12", "fig13", "flowmix")
HW_OVERRIDES = {eid: {"workloads": WORKLOADS, "events": EVENTS} for eid in HW_SUITE}


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Fresh on-disk cache and clean in-process memos per test."""
    root = tmp_path / "cache"
    monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(root))
    runner.reset_context_memos()
    telemetry.reset_counters()
    yield root
    runner.reset_context_memos()


def _markdowns(run):
    return {
        o.experiment_id: o.result.to_markdown()
        for o in run.outcomes
        if o.result is not None
    }


def _stage_counters(record):
    return record.simulation["stages"]["counters"]


def _stage_detail(record):
    return record.simulation["stages"]["detail"]


class TestStageTier:
    def test_round_trip(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_stage("eval", "abc123", {"total_cycles": 42})
        assert store.load_stage("eval", "abc123") == {"total_cycles": 42}

    def test_missing_is_a_miss(self, cache_dir):
        assert result_cache.ResultCache().load_stage("eval", "absent") is None

    def test_wrong_kind_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_stage("eval", "abc123", {"x": 1})
        assert store.load_stage("trace", "abc123") is None

    def test_version_mismatch_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_stage("eval", "abc123", {"x": 1})
        path = store.stage_path("eval", "abc123")
        document = json.loads(path.read_text())
        document["version"] = result_cache.STAGE_FORMAT_VERSION + 1
        path.write_text(json.dumps(document))
        assert store.load_stage("eval", "abc123") is None

    def test_garbage_and_truncation_are_misses(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_stage("eval", "abc123", {"x": 1})
        path = store.stage_path("eval", "abc123")
        path.write_text(path.read_text()[:10])
        assert store.load_stage("eval", "abc123") is None
        path.write_text("\x00 not json at all")
        assert store.load_stage("eval", "abc123") is None

    def test_has_result_is_a_stat(self, cache_dir):
        store = result_cache.ResultCache()
        digest = store.result_key("fig13", {"events": 100})
        assert not store.has_result("fig13", digest)
        store.store_result(
            "fig13",
            digest,
            ExperimentResult(
                experiment_id="Fig 13", title="t", columns=("a",), rows=((1,),)
            ),
        )
        assert store.has_result("fig13", digest)


class TestPlanner:
    PLAN = EvalPlan(regimes=("draco-hw-complete",))

    def test_unknown_kwarg_falls_back(self):
        assert build_plan("fig13", self.PLAN, {"bogus": 1}, "d") is None

    def test_unknown_workload_falls_back(self):
        assert build_plan("fig13", self.PLAN, {"workloads": ("nope",)}, "d") is None

    def test_insertion_order_is_topological(self):
        plan = build_plan("fig13", self.PLAN, {"workloads": WORKLOADS}, "d")
        seen = set()
        for key, stage in plan.stages.items():
            assert all(dep in seen for dep in stage.deps), stage.label
            seen.add(key)
        assert plan.terminal == key  # analysis stage comes last

    def test_old_kernel_changes_eval_digests_only(self):
        new = build_plan("fig13", self.PLAN, {"workloads": WORKLOADS}, "d")
        old_plan = EvalPlan(regimes=("draco-hw-complete",), old_kernel=True)
        old = build_plan("fig17", old_plan, {"workloads": WORKLOADS}, "d")
        new_by_kind = {k.kind: set() for k in new.stages.values()}
        for stage in new.stages.values():
            new_by_kind[stage.kind].add(stage.key)
        for stage in old.stages.values():
            if stage.kind in ("trace", "calibration"):
                assert stage.key in new_by_kind[stage.kind], stage.label
            elif stage.kind == "eval":
                assert stage.key not in new_by_kind[stage.kind], stage.label

    def test_monolithic_plan_is_single_terminal_stage(self):
        plan = monolithic_plan("table1", {}, "d")
        assert list(plan.stages) == [plan.terminal]
        assert plan.stages[plan.terminal].kind == "experiment"


class TestDifferential:
    def test_full_registry_markdown_identical(self, cache_dir, monkeypatch):
        """The acceptance bar: every registry artifact byte-identical
        between the stage graph and the flat engine."""
        staged = engine.run_suite(
            events=EVENTS, cache_mode=engine.CACHE_OFF, jobs=4
        )
        assert not staged.failures
        runner.reset_context_memos()
        monkeypatch.setenv(result_cache.STAGE_GRAPH_ENV, "0")
        flat = engine.run_suite(events=EVENTS, cache_mode=engine.CACHE_OFF, jobs=4)
        assert not flat.failures
        assert _markdowns(staged) == _markdowns(flat)
        # The staged records carry stage telemetry; the flat ones don't.
        assert all("stages" in o.record.simulation for o in staged.outcomes)
        assert all("stages" not in o.record.simulation for o in flat.outcomes)


class TestDedup:
    def test_shared_stages_execute_once(self, cache_dir):
        """fig12, fig13 and flowmix all consume the per-workload
        ``draco-hw-complete`` evaluation: one execution, two dedups."""
        run = engine.run_suite(
            HW_SUITE,
            cache_mode=engine.CACHE_OFF,
            run_overrides=HW_OVERRIDES,
        )
        assert not run.failures
        by_id = {o.experiment_id: o.record for o in run.outcomes}
        # fig12 owns everything: per workload a trace, a calibration and
        # three hw evals, plus its own analysis stage.
        assert _stage_counters(by_id["fig12"]) == {
            "executed": len(WORKLOADS) * 5 + 1,
            "hit": 0,
            "dedup": 0,
            "stored": 0,  # cache off: nothing lands on disk
            "failed": 0,
        }
        # fig13 / flowmix execute only their analysis; the trace,
        # calibration and shared eval per workload are dedups.
        for eid in ("fig13", "flowmix"):
            assert _stage_counters(by_id[eid]) == {
                "executed": 1,
                "hit": 0,
                "dedup": len(WORKLOADS) * 3,
                "stored": 0,
                "failed": 0,
            }, eid
        # Globally: every stage label executes at most once per run.
        executed = [
            row["label"]
            for record in by_id.values()
            for row in _stage_detail(record)
            if row["status"] == "exec"
        ]
        assert len(executed) == len(set(executed))

    def test_summary_renders_stage_counters(self, cache_dir):
        run = engine.run_suite(
            ("fig13",),
            cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"workloads": WORKLOADS}},
        )
        rendered = run.report.format_stages()
        assert "REPRO_STAGE_GRAPH" in rendered
        assert "eval" in rendered
        counters = run.report.stage_counters()
        assert counters["executed"] == len(WORKLOADS) * 3 + 1


class TestCorruptionFallback:
    @pytest.mark.parametrize("mode", ["truncated", "garbage"])
    def test_corrupt_stage_entries_rebuild_identically(self, cache_dir, mode):
        """Every ``stages/`` entry corrupted on disk: a refresh run must
        fall back to re-execution (never crash, never serve wrong
        data) and reproduce the cold result byte-for-byte."""
        cold = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_ON, run_overrides=HW_OVERRIDES
        )
        assert not cold.failures
        paths = list((cache_dir / "stages").rglob("*.json"))
        # Trace, calibration and eval stages must all be on disk.
        assert {p.parent.name for p in paths} == {"trace", "calibration", "eval"}
        for path in paths:
            if mode == "truncated":
                path.write_text(path.read_text()[: len(path.read_text()) // 2])
            else:
                path.write_text("\x00\x01 definitely not JSON {")
        runner.reset_context_memos()
        rebuilt = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_REFRESH, run_overrides=HW_OVERRIDES
        )
        assert not rebuilt.failures
        assert _markdowns(rebuilt) == _markdowns(cold)
        # Every corrupted intermediate was a miss: re-executed, not hit.
        for outcome in rebuilt.outcomes:
            assert _stage_counters(outcome.record)["hit"] == 0


class TestRefreshScoping:
    def test_warm_refresh_serves_intermediates(self, cache_dir):
        """``--refresh`` is stage-scoped: terminals recompute while
        trace/calibration/eval stages come from the ``stages/`` tier."""
        cold = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_ON, run_overrides=HW_OVERRIDES
        )
        assert not cold.failures
        runner.reset_context_memos()
        refreshed = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_REFRESH, run_overrides=HW_OVERRIDES
        )
        assert not refreshed.failures
        assert _markdowns(refreshed) == _markdowns(cold)
        by_id = {o.experiment_id: o.record for o in refreshed.outcomes}
        assert by_id["fig12"].cache == telemetry.CACHE_REFRESH
        # fig12: all ten intermediates served from disk, analysis re-run.
        assert _stage_counters(by_id["fig12"]) == {
            "executed": 1,
            "hit": len(WORKLOADS) * 5,
            "dedup": 0,
            "stored": 1,  # the refreshed terminal result
            "failed": 0,
        }
        for row in _stage_detail(by_id["fig12"]):
            expected = "exec" if row["kind"] == "analysis" else "hit"
            assert row["status"] == expected, row

    def test_warm_rerun_is_a_whole_result_hit(self, cache_dir):
        cold = engine.run_suite(
            ("fig13",), cache_mode=engine.CACHE_ON,
            run_overrides={"fig13": {"workloads": WORKLOADS}},
        )
        runner.reset_context_memos()
        warm = engine.run_suite(
            ("fig13",), cache_mode=engine.CACHE_ON,
            run_overrides={"fig13": {"workloads": WORKLOADS}},
        )
        assert warm.outcomes[0].record.cache == telemetry.CACHE_HIT
        assert _markdowns(warm) == _markdowns(cold)


class TestIncrementalInvalidation:
    def test_param_tweak_recomputes_only_that_subgraph(self, cache_dir):
        """Perturbing one experiment's events re-executes exactly its
        stages; every other experiment's intermediates stay hits."""
        cold = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_ON, run_overrides=HW_OVERRIDES
        )
        assert not cold.failures
        runner.reset_context_memos()
        perturbed = {
            eid: dict(kwargs) for eid, kwargs in HW_OVERRIDES.items()
        }
        perturbed["fig12"]["events"] = EVENTS + 37
        rerun = engine.run_suite(
            HW_SUITE, cache_mode=engine.CACHE_REFRESH, run_overrides=perturbed
        )
        assert not rerun.failures
        by_id = {o.experiment_id: o.record for o in rerun.outcomes}
        # fig12's new events invalidate its whole subgraph.
        assert _stage_counters(by_id["fig12"])["executed"] == len(WORKLOADS) * 5 + 1
        assert _stage_counters(by_id["fig12"])["hit"] == 0
        # fig13 / flowmix are untouched: intermediates all hit, only the
        # (always-recomputed-under-refresh) analysis executes.
        for eid in ("fig13", "flowmix"):
            assert _stage_counters(by_id[eid]) == {
                "executed": 1,
                "hit": len(WORKLOADS) * 3,
                "dedup": 0,
                "stored": 1,
                "failed": 0,
            }, eid


class TestFailureIsolation:
    def test_failed_run_captures_traceback(self, cache_dir):
        run = engine.run_suite(
            ("fig13", "table1"),
            cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"workloads": ("no-such-workload",)}},
        )
        by_id = {o.experiment_id: o for o in run.outcomes}
        assert not by_id["fig13"].ok
        assert by_id["fig13"].result is None
        assert "Traceback" in by_id["fig13"].record.error
        assert by_id["table1"].ok


class TestShardMergeTimes:
    def test_wall_is_max_and_cpu_is_sum(self):
        """Satellite fix: concurrent shards report the slowest shard as
        wall time and the summed compute as ``cpu_time_s`` (the old
        summed wall time claimed 4x the real latency under --jobs 4)."""
        result = ExperimentResult(
            experiment_id="Fig 13", title="t", columns=("workload",), rows=(("w",),)
        )
        payloads = [
            {
                "result": result.to_json_dict(),
                "record": telemetry.ExperimentRecord(
                    experiment_id="fig13", cache=telemetry.CACHE_OFF,
                    wall_time_s=wall,
                ).to_json_dict(),
            }
            for wall in (1.0, 3.0, 2.0)
        ]
        merged = engine._merge_shard_payloads("fig13", {}, payloads, engine.CACHE_OFF)
        record = telemetry.ExperimentRecord.from_json_dict(merged["record"])
        assert record.wall_time_s == 3.0
        assert record.cpu_time_s == 6.0

    def test_cpu_time_round_trips_through_json(self):
        record = telemetry.ExperimentRecord(
            experiment_id="x", cpu_time_s=1.23456789
        )
        loaded = telemetry.ExperimentRecord.from_json_dict(record.to_json_dict())
        assert loaded.cpu_time_s == 1.2346
