"""Tests for the cBPF verifier — the kernel's attach-time checks."""

import pytest

from repro.bpf.insn import (
    BPF_ABS,
    BPF_ALU,
    BPF_DIV,
    BPF_H,
    BPF_JA,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_MAXINSNS,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_RET,
    BPF_ST,
    BPF_W,
    Insn,
    jump,
    stmt,
)
from repro.bpf.verifier import verify
from repro.common.errors import BpfVerifyError

RET0 = stmt(BPF_RET | BPF_K, 0)


class TestBasicShape:
    def test_minimal_program(self):
        verify([RET0])

    def test_empty_rejected(self):
        with pytest.raises(BpfVerifyError):
            verify([])

    def test_too_long_rejected(self):
        with pytest.raises(BpfVerifyError):
            verify([RET0] * (BPF_MAXINSNS + 1))

    def test_must_end_with_return(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_W | BPF_ABS, 0)])


class TestJumps:
    def test_in_range_conditional(self):
        verify([jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1), RET0, RET0])

    def test_out_of_range_jt(self):
        with pytest.raises(BpfVerifyError):
            verify([jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 5, 0), RET0])

    def test_out_of_range_ja(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_JMP | BPF_JA, 9), RET0])

    def test_invalid_jump_op(self):
        with pytest.raises(BpfVerifyError):
            verify([Insn(code=BPF_JMP | 0x70), RET0])

    def test_all_paths_must_return(self):
        # jt path returns, jf path falls off the end via a load.
        program = [
            jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 1, 0),
            stmt(BPF_LD | BPF_W | BPF_ABS, 0),
            RET0,
        ]
        verify(program)  # both paths end in the final ret

    def test_fall_through_past_end(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_LD | BPF_W | BPF_ABS, 0)])


class TestLoads:
    def test_seccomp_load_must_be_word(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_H | BPF_ABS, 0), RET0])

    def test_unaligned_load(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_W | BPF_ABS, 2), RET0])

    def test_out_of_bounds_load(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_W | BPF_ABS, 64), RET0])

    def test_scratch_memory_bounds(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_LD | BPF_W | BPF_MEM, BPF_MEMWORDS), RET0])
        verify([stmt(BPF_ST, 0), RET0])
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_ST, BPF_MEMWORDS), RET0])


class TestAlu:
    def test_division_by_zero_constant(self):
        with pytest.raises(BpfVerifyError):
            verify([stmt(BPF_ALU | BPF_DIV | BPF_K, 0), RET0])

    def test_division_by_nonzero_ok(self):
        verify([stmt(BPF_ALU | BPF_DIV | BPF_K, 2), RET0])

    def test_invalid_alu_op(self):
        with pytest.raises(BpfVerifyError):
            verify([Insn(code=BPF_ALU | 0xB0), RET0])
