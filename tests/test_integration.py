"""End-to-end integration tests across the whole stack.

Each test exercises a complete user journey rather than one module:
trace -> profile -> JSON -> redeploy -> Draco; workload -> calibration
-> all regimes; scheduler + SMT + generality interplay.
"""

import json

import pytest

from repro.core import HardwareDraco, SoftwareDraco, build_process_tables
from repro.core.flows import Flow
from repro.experiments.runner import get_context
from repro.kernel.regimes import DracoHwRegime, SeccompRegime
from repro.kernel.simulator import run_trace
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.json_io import profile_from_json, profile_to_json
from repro.seccomp.toolkit import generate_bundle
from repro.tools.profilegen import main as profilegen_main
from repro.tracing.strace import parse_strace
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import generate_trace, profile_trace

EVENTS = 2500


class TestStraceToDracoPipeline:
    """The full operator workflow: record, generate, deploy, accelerate."""

    STRACE = "\n".join(
        [
            'openat(AT_FDCWD, "/srv/index.html", O_RDONLY|O_CLOEXEC) = 7',
            'read(7, "<html>"..., 65536) = 512',
            "close(7) = 0",
            'accept4(3, {sa_family=AF_INET}, [16], SOCK_CLOEXEC) = 8',
            'read(8, "GET /"..., 8192) = 120',
            'write(8, "HTTP/1.1 200"..., 4096) = 700',
            "close(8) = 0",
            "getpid() = 1000",
        ]
        * 4
    )

    def test_record_generate_deploy_accelerate(self, tmp_path):
        # 1. Parse the (real-format) strace log.
        trace = parse_strace(self.STRACE)
        assert len(trace) == 32

        # 2. Generate + export the complete profile via the CLI.
        log = tmp_path / "srv.strace"
        log.write_text(self.STRACE)
        out = tmp_path / "srv.json"
        assert profilegen_main([str(log), "-o", str(out)]) == 0

        # 3. Reload the deployed JSON and bind hardware Draco to it.
        profile = profile_from_json(out.read_text(), name="srv")
        module = SeccompKernelModule()
        for program in compile_profile_chunked(profile):
            module.attach(program)
        draco = HardwareDraco(build_process_tables(profile), module)

        # 4. Replay the recorded trace: everything allowed; repeats fast.
        for event in trace:
            assert draco.on_syscall(event).allowed
        warm = draco.on_syscall(trace[0])
        assert warm.flow in (Flow.FLOW_1, Flow.FLOW_3, Flow.FLOW_5, Flow.SPT_ONLY)

        # 5. Off-trace values are rejected by the same deployment.
        from repro.syscalls.events import make_event

        assert not draco.on_syscall(make_event("read", (9, 9), pc=0x1)).allowed
        assert not draco.on_syscall(make_event("execve", (), pc=0x2)).allowed


class TestJsonRoundTripThroughRegimes:
    def test_workload_profile_survives_deployment(self):
        """Generated profile -> JSON -> reload -> same normalised time
        ordering under every regime."""
        spec = CATALOG["pwgen"]
        trace = generate_trace(spec, EVENTS)
        bundle = generate_bundle(profile_trace(spec, count=2000), "pwgen")
        reloaded = profile_from_json(profile_to_json(bundle.complete), name="pwgen")

        original = run_trace(
            trace, SeccompRegime(bundle.complete), 400.0, 150.0
        ).mean_check_cycles
        redeployed = run_trace(
            trace, SeccompRegime(reloaded), 400.0, 150.0
        ).mean_check_cycles
        # Identical decisions; near-identical cost (rule order may vary).
        assert redeployed == pytest.approx(original, rel=0.10)


class TestCalibratedStackConsistency:
    @pytest.fixture(scope="class")
    def ctx(self):
        return get_context("mq-ipc", events=EVENTS)

    def test_all_regimes_agree_on_decisions(self, ctx):
        """Every regime admits the entire (covered) workload trace."""
        for regime_name in (
            "docker-default", "syscall-complete", "draco-sw-complete",
            "draco-hw-complete",
        ):
            result = ctx.evaluate(regime_name)  # strict=True inside
            assert result.events_measured > 0

    def test_overhead_ordering_stable_across_seeds(self):
        for seed in (11, 22):
            ctx = get_context("mq-ipc", events=EVENTS, seed=seed)
            seccomp = ctx.evaluate("syscall-complete").normalized_time
            sw = ctx.evaluate("draco-sw-complete").normalized_time
            hw = ctx.evaluate("draco-hw-complete").normalized_time
            assert hw < sw < seccomp

    def test_hw_regime_statistics_consistent(self, ctx):
        regime = ctx.make_regime("draco-hw-complete")
        result = run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles
        )
        stats = regime.draco.stats
        assert stats.syscalls == len(ctx.trace)
        assert sum(stats.flows.values()) == stats.syscalls
        # Fast flows dominate in steady state.
        fast = sum(count for flow, count in stats.flows.items() if flow.is_fast)
        assert fast / stats.syscalls > 0.8


class TestSoftwareHardwareAgreement:
    def test_same_profile_same_decisions_different_costs(self):
        spec = CATALOG["fifo-ipc"]
        trace = generate_trace(spec, 1200)
        bundle = generate_bundle(profile_trace(spec, count=1500), "fifo")

        def module():
            m = SeccompKernelModule()
            for program in compile_profile_chunked(bundle.complete):
                m.attach(program)
            return m

        sw = SoftwareDraco(build_process_tables(bundle.complete), module())
        hw = HardwareDraco(build_process_tables(bundle.complete), module())
        sw_cost = 0.0
        hw_cost = 0.0
        for event in trace:
            sw_outcome = sw.check(event)
            hw_outcome = hw.on_syscall(event)
            assert sw_outcome.allowed == hw_outcome.allowed
            sw_cost += sw_outcome.cycles
            hw_cost += hw_outcome.stall_cycles
        # The paper's bottom line, per syscall: hardware << software.
        assert hw_cost < sw_cost / 3
