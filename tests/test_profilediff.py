"""Tests for the profilediff tool."""

import pytest

from repro.seccomp.json_io import profile_to_json
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.tools.profilediff import diff_profiles, main, render, surface


def _profile(events, name="p"):
    return generate_complete(SyscallTrace(events), name)


@pytest.fixture
def old_profile():
    return _profile(
        [make_event("read", (3, 100)), make_event("write", (1, 64)), make_event("getppid")]
    )


@pytest.fixture
def new_profile():
    return _profile(
        [
            make_event("read", (3, 100)),
            make_event("read", (4, 100)),        # new fd value
            make_event("openat", (0, 0, 0)),     # new syscall
            make_event("getppid"),
        ]
    )


class TestDiff:
    def test_added_and_removed_syscalls(self, old_profile, new_profile):
        diff = diff_profiles(old_profile, new_profile)
        assert diff["added_syscalls"] == ("openat",)
        assert diff["removed_syscalls"] == ("write",)

    def test_added_values(self, old_profile, new_profile):
        diff = diff_profiles(old_profile, new_profile)
        added = {(name, index, value) for name, index, value, _ in diff["added_values"]}
        assert ("read", 0, 4) in added

    def test_identical_profiles(self, old_profile):
        diff = diff_profiles(old_profile, old_profile)
        assert not any(diff.values())
        assert "identical" in render(diff)

    def test_surface_counts(self, old_profile):
        names, values = surface(old_profile)
        assert names == {"read", "write", "getppid"}
        assert len(values) == 4  # read: fd+count; write: fd+count

    def test_render_symbols(self, old_profile, new_profile):
        text = render(diff_profiles(old_profile, new_profile))
        assert "+ syscall openat" in text
        assert "- syscall write" in text
        assert "+ value" in text


class TestCli:
    def test_exit_codes(self, tmp_path, old_profile, new_profile, capsys):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(profile_to_json(old_profile))
        new_path.write_text(profile_to_json(new_profile))
        assert main([str(old_path), str(new_path)]) == 1
        assert main([str(old_path), str(old_path)]) == 0
        assert main([str(old_path), str(tmp_path / "missing.json")]) == 2
        out = capsys.readouterr().out
        assert "+ syscall openat" in out

    def test_masked_value_rendering(self, tmp_path, capsys):
        from repro.seccomp.profiles import build_docker_default
        from repro.seccomp.profile import SeccompProfile, SyscallRule

        docker = build_docker_default()
        empty = SeccompProfile("empty", [])
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(profile_to_json(empty))
        b.write_text(profile_to_json(docker))
        assert main([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "clone.arg0 & 0x7e020000" in out
