"""Tests for the Section VIII generality layer (hypercalls, sentry,
sandboxed library calls)."""

import pytest

from repro.core.flows import Flow
from repro.generality.hypercalls import (
    SCHEDOP_SHUTDOWN,
    SCHEDOP_YIELD,
    guest_vm_policy,
    xen_domain,
)
from repro.generality.sentry import (
    library_domain,
    sentry_domain,
    web_app_sentry_policy,
)
from repro.generality.transitions import (
    DracoTransitionChecker,
    RequestDef,
    TransitionDomain,
)
from repro.seccomp.profile import ArgCmp, ArgSetRule


class TestTransitionDomain:
    def test_request_building(self):
        domain = TransitionDomain("toy", [RequestDef(0, "ping", 1), RequestDef(1, "pong", 0)])
        event = domain.request("ping", (42,), pc=0x10)
        assert event.sid == 0
        assert event.args == (42,)

    def test_policy_over_domain(self):
        domain = TransitionDomain("toy", [RequestDef(0, "ping", 1), RequestDef(1, "pong", 0)])
        policy = domain.policy("p", allowed=["pong"])
        assert policy.allows(domain.request("pong"))
        assert not policy.allows(domain.request("ping", (1,)))

    def test_operand_rules(self):
        domain = TransitionDomain("toy", [RequestDef(0, "ping", 1)])
        policy = domain.policy(
            "p", allowed=["ping"],
            operand_rules={"ping": [ArgSetRule((ArgCmp(0, 7),))]},
        )
        assert policy.allows(domain.request("ping", (7,)))
        assert not policy.allows(domain.request("ping", (8,)))


class TestHypercalls:
    @pytest.fixture(scope="class")
    def checker(self):
        domain = xen_domain()
        return domain, DracoTransitionChecker.build(domain, guest_vm_policy(domain))

    def test_allowed_hypercall(self, checker):
        domain, draco = checker
        event = domain.request("sched_op", (SCHEDOP_YIELD, 0), pc=0x100)
        assert draco.check_software(event).allowed
        assert draco.check_hardware(event).allowed

    def test_pinned_command_denied(self, checker):
        domain, draco = checker
        # SCHEDOP_SHUTDOWN is not whitelisted for the guest.
        event = domain.request("sched_op", (SCHEDOP_SHUTDOWN, 0), pc=0x100)
        assert not draco.check_software(event).allowed
        assert not draco.check_hardware(event).allowed

    def test_privileged_hypercall_denied(self, checker):
        domain, draco = checker
        event = domain.request("domctl", (1,), pc=0x104)
        assert not draco.check_hardware(event).allowed

    def test_hardware_caching_kicks_in(self, checker):
        domain, draco = checker
        event = domain.request("event_channel_op", (4, 9), pc=0x200)
        first = draco.check_hardware(event)
        second = draco.check_hardware(event)
        assert first.allowed and second.allowed
        assert second.flow is Flow.FLOW_1
        assert second.stall_cycles < first.stall_cycles

    def test_zero_operand_request_is_spt_only(self, checker):
        domain, draco = checker
        event = domain.request("iret", pc=0x300)
        result = draco.check_hardware(event)
        assert result.allowed
        assert result.flow is Flow.SPT_ONLY


class TestSentryAndLibrary:
    def test_sentry_policy(self):
        domain = sentry_domain()
        draco = DracoTransitionChecker.build(domain, web_app_sentry_policy(domain))
        assert draco.check_software(
            domain.request("net_connect", (2, 443), pc=0x10)
        ).allowed
        assert not draco.check_software(
            domain.request("net_connect", (2, 22), pc=0x10)
        ).allowed
        assert not draco.check_software(
            domain.request("thread_create", (0,), pc=0x14)
        ).allowed

    def test_library_domain(self):
        domain = library_domain()
        policy = domain.policy(
            "decoder",
            allowed=["lib_init", "decode_header", "decode_frame", "free_image"],
            operand_rules={"lib_init": [ArgSetRule((ArgCmp(0, 2),))]},
        )
        draco = DracoTransitionChecker.build(domain, policy)
        assert draco.check_hardware(domain.request("lib_init", (2,), pc=0x20)).allowed
        assert not draco.check_hardware(domain.request("lib_init", (1,), pc=0x20)).allowed
        assert not draco.check_hardware(domain.request("scale_image", (1, 1), pc=0x24)).allowed

    def test_software_cache_reuse(self):
        domain = sentry_domain()
        draco = DracoTransitionChecker.build(domain, web_app_sentry_policy(domain))
        event = domain.request("file_open", (0, 0), pc=0x30)
        first = draco.check_software(event)
        second = draco.check_software(event)
        assert first.path == "filter_run"
        assert second.path == "vat_hit"
