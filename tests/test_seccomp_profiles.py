"""Tests for the canned real-world profiles (Section II-C)."""

import pytest

from repro.seccomp.profiles import (
    DOCKER_DENIED,
    DOCKER_PERSONALITY_VALUES,
    build_docker_default,
    build_firecracker,
    build_gvisor,
)
from repro.syscalls.events import make_event
from repro.syscalls.table import LINUX_X86_64


class TestDockerDefault:
    @pytest.fixture(scope="class")
    def profile(self):
        return build_docker_default()

    def test_broad_whitelist(self, profile):
        """Docker allows most of the ABI (paper: 358 of 403)."""
        assert profile.num_syscalls == len(LINUX_X86_64) - len(
            [n for n in DOCKER_DENIED if n in LINUX_X86_64]
        )
        assert profile.num_syscalls > 0.8 * len(LINUX_X86_64)

    def test_denies_admin_syscalls(self, profile):
        for name in ("mount", "reboot", "init_module", "ptrace", "bpf"):
            assert not profile.allows(make_event(name))

    def test_allows_common_syscalls(self, profile):
        for name in ("read", "write", "openat", "futex", "epoll_wait"):
            event = make_event(name, tuple(0 for _ in LINUX_X86_64.by_name(name).checkable_args))
            assert profile.allows(event)

    def test_personality_values(self, profile):
        for value in DOCKER_PERSONALITY_VALUES:
            assert profile.allows(make_event("personality", (value,)))
        assert not profile.allows(make_event("personality", (0x1234,)))

    def test_clone_namespace_flags_blocked(self, profile):
        assert profile.allows(make_event("clone", (0x00010000,)))
        assert not profile.allows(make_event("clone", (0x10000000,)))  # CLONE_NEWUSER

    def test_few_argument_checks(self, profile):
        """Paper: docker-default checks only a handful of argument values."""
        assert profile.num_argument_values_allowed <= 10


class TestGvisor:
    @pytest.fixture(scope="class")
    def profile(self):
        return build_gvisor()

    def test_syscall_count_matches_paper(self, profile):
        assert profile.num_syscalls == 74

    def test_many_argument_checks(self, profile):
        """Paper: 130 argument checks; ours is the same order."""
        assert 90 <= profile.num_arguments_checked <= 140

    def test_tight_whitelist(self, profile):
        assert not profile.allows(make_event("execve"))
        assert not profile.allows(make_event("ptrace"))

    def test_pinned_arguments(self, profile):
        assert profile.allows(make_event("fcntl", (0, 3, 0)))
        assert not profile.allows(make_event("fcntl", (0, 99, 0)))


class TestFirecracker:
    @pytest.fixture(scope="class")
    def profile(self):
        return build_firecracker()

    def test_syscall_count_matches_paper(self, profile):
        assert profile.num_syscalls == 37

    def test_arg_check_count_matches_paper(self, profile):
        assert profile.num_arguments_checked == 8

    def test_kvm_ioctls_pinned(self, profile):
        assert profile.allows(make_event("ioctl", (0, 0xAE80)))
        assert not profile.allows(make_event("ioctl", (0, 0x1234)))

    def test_af_unix_only(self, profile):
        assert profile.allows(make_event("socket", (1, 0, 0)))
        assert not profile.allows(make_event("socket", (2, 0, 0)))


class TestRelativeStrictness:
    def test_profile_ordering(self):
        """Firecracker < gVisor < docker-default in allowed surface."""
        docker = build_docker_default()
        gvisor = build_gvisor()
        firecracker = build_firecracker()
        assert firecracker.num_syscalls < gvisor.num_syscalls < docker.num_syscalls
