"""Security tests for the Section IX side-channel defenses.

The attack the paper shields against: "An adversary could trigger SLB
preloading followed by a squash, which could then speed-up a subsequent
benign access that uses the same SLB entry and reveal a secret."  The
hardened design (a) defers preload fills to the Temporary Buffer until
the non-speculative access, and (b) never updates SLB LRU state on a
speculative probe.
"""

import pytest

from repro.core.flows import Flow
from repro.core.hardware import HardwareDraco, hash_id_for
from repro.core.software import build_process_tables
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event

PC = 0x400100


def _draco(speculation_safe: bool) -> HardwareDraco:
    training = SyscallTrace(
        [
            make_event("read", (3, 100), pc=PC),
            make_event("read", (4, 100), pc=PC),
        ]
    )
    profile = generate_complete(training, "victim")
    module = SeccompKernelModule()
    module.attach(compile_linear(profile))
    return HardwareDraco(
        build_process_tables(profile), module, speculation_safe=speculation_safe
    )


def _prime_and_squash(draco: HardwareDraco) -> None:
    """Attacker gadget: validate both argsets, retrain the STB to point
    at the victim argset, clear the SLB, trigger a *speculative* preload
    for the victim entry, then squash."""
    draco.on_syscall(make_event("read", (3, 100), pc=PC))   # validate A
    draco.on_syscall(make_event("read", (4, 100), pc=PC))   # validate B (STB -> B)
    draco.slb.invalidate_all()                              # attacker-controlled reset
    draco._preload(make_event("read", (4, 100), pc=PC))     # speculative preload of B
    draco.on_squash()                                       # transient path squashed


class TestSquashLeavesNoState:
    def test_hardened_design_leaks_nothing(self):
        """After a squashed speculative preload, no SLB or temp-buffer
        state remains: architecturally indistinguishable from 'no
        preload ever happened' (the Section IX requirement)."""
        draco = _draco(speculation_safe=True)
        _prime_and_squash(draco)
        assert draco.slb.subtable(3).occupancy == 0
        assert len(draco.temp) == 0

    def test_naive_design_leaks(self):
        """The naive design (direct speculative SLB fill) leaves the
        entry resident after the squash — the residue an attacker can
        time."""
        draco = _draco(speculation_safe=False)
        _prime_and_squash(draco)
        assert draco.slb.subtable(3).occupancy > 0  # residue!

    def test_timing_difference_between_designs(self):
        """The observable channel: a benign access whose own preload has
        not completed (it checks the SLB at the ROB head) is faster on
        the naive design after the squashed speculative preload."""
        safe = _draco(speculation_safe=True)
        naive = _draco(speculation_safe=False)
        probe_event = make_event("read", (4, 100), pc=PC)
        stalls = {}
        for label, draco in (("safe", safe), ("naive", naive)):
            _prime_and_squash(draco)
            draco.preload_enabled = False  # probe reaches ROB head first
            stalls[label] = draco.on_syscall(probe_event).stall_cycles
        assert stalls["naive"] < stalls["safe"]


class TestPreloadProbeSideEffects:
    def test_probe_does_not_refresh_lru(self):
        """Speculative probes must not promote entries: otherwise an
        attacker could keep a victim's entry alive (or evict others)
        transiently."""
        draco = _draco(speculation_safe=True)
        subtable = draco.slb.subtable(2)
        key_a, key_b = b"entry-a", b"entry-b"
        hid_a, hid_b = hash_id_for(key_a, 0), hash_id_for(key_b, 0)
        subtable.fill(0, hid_a, (1, 1))
        clock_before = subtable._clock
        for _ in range(10):
            subtable.preload_probe(0, hid_a)
        assert subtable._clock == clock_before  # no LRU clock movement

    def test_temp_buffer_cleared_on_context_switch(self):
        draco = _draco(speculation_safe=True)
        draco.on_syscall(make_event("read", (3, 100), pc=PC))
        draco.slb.invalidate_all()
        draco._preload(make_event("read", (3, 100), pc=PC))
        assert len(draco.temp) > 0
        draco.context_switch(same_process=False)
        assert len(draco.temp) == 0

    def test_structures_invalidated_across_processes(self):
        """Section IX: 'when a core performs a context switch to a
        different process, the SLB, STB, and SPT are invalidated.'"""
        draco = _draco(speculation_safe=True)
        draco.on_syscall(make_event("read", (3, 100), pc=PC))
        draco.context_switch(same_process=False)
        assert draco.slb.subtable(3).occupancy == 0
        assert draco.stb.occupancy == 0
        assert draco.spt.occupancy == 0
