"""Tests for the design-space sweep harness."""

import pytest

from repro.experiments.sweep import (
    rob_window_points,
    slb_scale_points,
    stb_size_points,
    sweep,
    to_result,
)

EVENTS = 2500


class TestSweepHarness:
    def test_points_produce_observations(self):
        observations = sweep("pipe-ipc", slb_scale_points((0.5, 1.0)), events=EVENTS)
        assert len(observations) == 2
        for obs in observations:
            assert obs.normalized_time >= 1.0
            assert 0 <= obs.stb_hit_rate <= 1

    def test_to_result_table(self):
        observations = sweep("pipe-ipc", stb_size_points((64, 256)), events=EVENTS)
        result = to_result("pipe-ipc", "STB sweep", observations)
        assert result.column("point") == ("stb 64", "stb 256")
        assert len(result.rows) == 2

    def test_stb_sweep_monotone_for_pressured_workload(self):
        """Redis's STB pressure (Fig 13) eases as the STB grows."""
        observations = sweep("redis", stb_size_points((32, 256, 1024)), events=4000)
        rates = [obs.stb_hit_rate for obs in observations]
        assert rates[0] <= rates[1] <= rates[2] + 0.01

    def test_rob_window_affects_preload_hiding(self):
        """A tiny ROB shrinks the dispatch-to-head window, so preload
        latency is no longer hidden: stalls grow (or stay equal)."""
        observations = sweep("mysql", rob_window_points((16, 128)), events=4000)
        small_rob, big_rob = observations
        assert small_rob.mean_stall_cycles >= big_rob.mean_stall_cycles

    def test_canned_point_shapes(self):
        assert len(slb_scale_points((0.25, 1, 4))) == 3
        assert stb_size_points((64,))[0][1].stb_entries == 64
        rob_point = rob_window_points((32,))[0]
        assert rob_point[2].rob_entries == 32
