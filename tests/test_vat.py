"""Tests for the Validated Argument Table."""

import pytest

from repro.core.vat import (
    MIN_TABLE_SLOTS,
    OVERPROVISION_FACTOR,
    VAT,
    VAT_ENTRY_BYTES,
    VatTable,
)
from repro.syscalls.abi import argument_bitmask


def _key(args, nargs=2):
    return VAT.key_for(args, argument_bitmask(nargs))


class TestVatTable:
    def test_sized_by_overprovisioning(self):
        vat = VAT()
        table = vat.ensure_table(0, estimated_arg_sets=10)
        assert table.num_slots == OVERPROVISION_FACTOR * 10

    def test_minimum_size(self):
        vat = VAT()
        table = vat.ensure_table(0, estimated_arg_sets=0)
        assert table.num_slots == MIN_TABLE_SLOTS

    def test_idempotent_ensure(self):
        vat = VAT()
        a = vat.ensure_table(0, estimated_arg_sets=4)
        b = vat.ensure_table(0, estimated_arg_sets=99)
        assert a is b

    def test_lookup_probe_addresses(self):
        vat = VAT()
        table = vat.ensure_table(0, estimated_arg_sets=4)
        key = _key((3, 100))
        probe = table.lookup(key)
        assert not probe.hit
        a1, a2 = probe.addresses
        assert a1 % VAT_ENTRY_BYTES == 0 and a2 % VAT_ENTRY_BYTES == 0
        assert table.base_address <= a1 < table.base_address + table.size_bytes

    def test_insert_then_hit(self):
        vat = VAT()
        vat.ensure_table(0, estimated_arg_sets=4)
        key = _key((3, 100))
        which = vat.insert(0, key, (3, 0, 100))
        probe = vat.lookup(0, key)
        assert probe.hit
        assert probe.which_hash == which
        assert probe.args == (3, 0, 100)

    def test_insert_eviction_on_pressure(self):
        vat = VAT()
        table = vat.ensure_table(0, estimated_arg_sets=0)  # 4 slots
        for i in range(12):
            table.insert(_key((i, 0)), (i, 0))
        assert table.evictions > 0
        assert len(table.table) <= table.num_slots

    def test_tables_have_disjoint_address_ranges(self):
        vat = VAT()
        t1 = vat.ensure_table(0, estimated_arg_sets=8)
        t2 = vat.ensure_table(1, estimated_arg_sets=8)
        end1 = t1.base_address + t1.size_bytes
        assert t2.base_address >= end1


class TestVat:
    def test_lookup_unknown_sid(self):
        assert VAT().lookup(99, b"x") is None

    def test_insert_creates_table_lazily(self):
        vat = VAT()
        vat.insert(7, b"key", (1,))
        assert vat.table_for(7) is not None

    def test_key_for_uses_bitmask(self):
        mask = argument_bitmask(1)
        assert VAT.key_for((0xAB,), mask) == bytes([0xAB] + [0] * 7)

    def test_size_accounting(self):
        vat = VAT()
        vat.ensure_table(0, estimated_arg_sets=8)   # 16 slots
        vat.ensure_table(1, estimated_arg_sets=2)   # 4 slots
        assert vat.size_bytes == (16 + 4) * VAT_ENTRY_BYTES
        assert vat.num_tables == 2

    def test_total_entries(self):
        vat = VAT()
        vat.ensure_table(0, estimated_arg_sets=4)
        vat.insert(0, b"a", (1,))
        vat.insert(0, b"b", (2,))
        assert vat.total_entries == 2

    def test_negative_estimate_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            VAT().ensure_table(0, estimated_arg_sets=-1)
