"""Tests for repro.common.rng — determinism and namespacing."""

import pytest

from repro.common.rng import (
    derive_seed,
    make_rng,
    round_robin_interleave,
    weighted_choice,
    zipf_weights,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_matters(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit(self):
        assert 0 <= derive_seed(123, "x") < 2**64


class TestMakeRng:
    def test_reproducible_stream(self):
        a = make_rng(7, "trace")
        b = make_rng(7, "trace")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_independent_labels(self):
        a = make_rng(7, "x")
        b = make_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestWeightedChoice:
    def test_single_item(self):
        rng = make_rng(0, "t")
        assert weighted_choice(rng, ["only"], [1.0]) == "only"

    def test_respects_zero_weightless(self):
        rng = make_rng(0, "t")
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_length_mismatch(self):
        rng = make_rng(0, "t")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_empty(self):
        rng = make_rng(0, "t")
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])


class TestZipfWeights:
    def test_first_is_largest(self):
        weights = zipf_weights(5)
        assert weights[0] == max(weights)
        assert weights == sorted(weights, reverse=True)

    def test_skew_sharpens(self):
        flat = zipf_weights(4, skew=0.5)
        sharp = zipf_weights(4, skew=2.0)
        assert sharp[3] / sharp[0] < flat[3] / flat[0]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestRoundRobin:
    def test_interleaves(self):
        out = list(round_robin_interleave([[1, 3], [2, 4]]))
        assert out == [1, 2, 3, 4]

    def test_uneven_lengths(self):
        out = list(round_robin_interleave([[1, 3, 5], [2]]))
        assert out == [1, 2, 3, 5]

    def test_empty(self):
        assert list(round_robin_interleave([])) == []
