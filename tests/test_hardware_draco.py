"""Tests for the hardware implementation of Draco (Section VI)."""

import pytest

from repro.core.flows import Flow
from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.syscalls.events import SyscallTrace, make_event

PC_READ = 0x400100
PC_WRITE = 0x400200


@pytest.fixture
def training_trace():
    return SyscallTrace(
        [
            make_event("read", (3, 100), pc=PC_READ),
            make_event("read", (4, 100), pc=PC_READ),
            make_event("write", (1, 64), pc=PC_WRITE),
            make_event("getppid", pc=0x400300),
        ]
    )


def _draco(profile, **kwargs):
    tables = build_process_tables(profile)
    module = SeccompKernelModule()
    module.attach(compile_linear(profile))
    return HardwareDraco(tables, module, **kwargs)


@pytest.fixture
def draco(training_trace):
    return _draco(generate_complete(training_trace, "t"))


class TestFlowProgression:
    def test_cold_then_warm(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        first = draco.on_syscall(event)
        second = draco.on_syscall(event)
        assert first.flow is Flow.FLOW_6
        assert first.os_invoked
        assert second.flow is Flow.FLOW_1
        assert not second.os_invoked
        assert second.stall_cycles < first.stall_cycles

    def test_fast_flow_stall_is_tiny(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        result = draco.on_syscall(event)
        assert result.stall_cycles <= 10

    def test_argset_flip_is_flow_2(self, draco):
        draco.on_syscall(make_event("read", (3, 100), pc=PC_READ))
        draco.on_syscall(make_event("read", (4, 100), pc=PC_READ))
        draco.on_syscall(make_event("read", (3, 100), pc=PC_READ))
        # Re-validate (4,100) at the same PC: STB hash now points at
        # (3,100); both are SLB-resident, so this is flow 1 or 2
        # depending on hash placement — assert it is never OS work.
        result = draco.on_syscall(make_event("read", (4, 100), pc=PC_READ))
        assert not result.os_invoked
        assert result.allowed

    def test_stb_flush_gives_flow_5(self, draco):
        event = make_event("write", (1, 64), pc=PC_WRITE)
        draco.on_syscall(event)
        draco.stb.invalidate_all()
        result = draco.on_syscall(event)
        assert result.flow is Flow.FLOW_5

    def test_slb_flush_gives_flow_3(self, draco):
        event = make_event("write", (1, 64), pc=PC_WRITE)
        draco.on_syscall(event)
        draco.slb.invalidate_all()
        result = draco.on_syscall(event)
        assert result.flow is Flow.FLOW_3
        assert not result.os_invoked  # preload fetched it from the VAT

    def test_spt_only_path(self, draco):
        result = draco.on_syscall(make_event("getppid", pc=0x400300))
        assert result.flow is Flow.SPT_ONLY
        assert result.allowed


class TestDenials:
    def test_unknown_syscall_denied(self, draco):
        result = draco.on_syscall(make_event("mount", pc=0x400400))
        assert not result.allowed
        assert result.os_invoked

    def test_wrong_args_denied_every_time(self, draco):
        event = make_event("read", (9, 9), pc=PC_READ)
        for _ in range(3):
            result = draco.on_syscall(event)
            assert not result.allowed
            assert result.os_invoked  # denials are never cached


class TestEquivalence:
    def test_decisions_match_reference(self, training_trace):
        profile = generate_complete(training_trace, "t")
        draco = _draco(profile)
        probes = [
            make_event("read", (3, 100), pc=PC_READ),
            make_event("read", (4, 100), pc=PC_READ),
            make_event("read", (3, 100), pc=PC_READ),
            make_event("read", (5, 100), pc=PC_READ),
            make_event("write", (1, 64), pc=PC_WRITE),
            make_event("getppid", pc=0x300),
            make_event("mount", pc=0x500),
        ] * 2
        for event in probes:
            assert draco.on_syscall(event).allowed == profile.allows(event)

    def test_noargs_profile_spt_only(self, training_trace):
        draco = _draco(generate_noargs(training_trace, "t"))
        result = draco.on_syscall(make_event("read", (42, 42), pc=PC_READ))
        assert result.flow is Flow.SPT_ONLY
        assert result.allowed


class TestContextSwitch:
    def test_invalidates_structures(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.context_switch(same_process=False)
        assert draco.stb.occupancy == 0
        assert draco.slb.subtable(2).occupancy == 0
        assert draco.spt.occupancy == 0

    def test_same_process_keeps_structures(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.context_switch(same_process=True)
        assert draco.stb.occupancy > 0

    def test_resume_restores_spt(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.context_switch(same_process=False)
        draco.resume_process()
        # SPT warm again: the next check is not an OS SPT miss.
        result = draco.on_syscall(event)
        assert result.allowed
        assert result.flow is not Flow.OS_CHECK

    def test_recovery_after_switch_uses_vat(self, draco):
        """After invalidation the VAT still holds validations, so the
        first re-check walks the VAT (slow flow) but avoids the OS."""
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.context_switch(same_process=False)
        draco.resume_process()
        result = draco.on_syscall(event)
        assert not result.os_invoked


class TestSpeculationSafety:
    def test_squash_clears_temp_buffer(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.slb.invalidate_all()
        # Trigger a preload (STB hit, SLB preload miss) by hand.
        draco._preload(event)
        assert len(draco.temp) > 0
        draco.on_squash()
        assert len(draco.temp) == 0

    def test_preload_probe_never_allocates(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        before = draco.slb.subtable(2).occupancy
        draco._preload(event)
        assert draco.slb.subtable(2).occupancy == before


class TestPreloadDisabled:
    def test_no_preload_still_correct(self, training_trace):
        profile = generate_complete(training_trace, "t")
        draco = _draco(profile, preload_enabled=False)
        event = make_event("read", (3, 100), pc=PC_READ)
        first = draco.on_syscall(event)
        second = draco.on_syscall(event)
        assert first.allowed and second.allowed
        assert second.flow is Flow.FLOW_5  # STB unused -> always miss

    def test_preload_hides_vat_latency(self, training_trace):
        """The ablation the paper motivates: preloading turns SLB misses
        into fast flows."""
        profile = generate_complete(training_trace, "t")
        with_preload = _draco(profile)
        without = _draco(profile, preload_enabled=False)
        event = make_event("write", (1, 64), pc=PC_WRITE)
        for draco in (with_preload, without):
            draco.on_syscall(event)
        with_preload.slb.invalidate_all()
        without.slb.invalidate_all()
        fast = with_preload.on_syscall(event)
        slow = without.on_syscall(event)
        assert fast.stall_cycles < slow.stall_cycles


class TestStats:
    def test_flow_accounting(self, draco):
        event = make_event("read", (3, 100), pc=PC_READ)
        draco.on_syscall(event)
        draco.on_syscall(event)
        stats = draco.stats
        assert stats.syscalls == 2
        assert stats.os_invocations == 1
        assert stats.flows[Flow.FLOW_6] == 1
        assert stats.flows[Flow.FLOW_1] == 1
        assert stats.mean_stall_cycles > 0
