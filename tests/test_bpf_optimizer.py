"""Tests for the cBPF peephole optimizer, including the equivalence
property: optimisation never changes a filter's decision."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.insn import (
    BPF_JA,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    BPF_ABS,
    jump,
    stmt,
)
from repro.bpf.interpreter import run
from repro.bpf.optimizer import eliminate_dead_code, optimize, thread_jumps
from repro.bpf.seccomp_data import NR_OFFSET, SeccompData
from repro.bpf.verifier import verify
from repro.seccomp.compiler import compile_linear, compile_binary_tree
from repro.seccomp.profiles import build_docker_default
from repro.syscalls.events import make_event

RET_A_ = stmt(BPF_RET | BPF_K, 0xA)
RET_B_ = stmt(BPF_RET | BPF_K, 0xB)
LD_NR = stmt(BPF_LD | BPF_W | BPF_ABS, NR_OFFSET)


class TestThreading:
    def test_ja_chain_collapsed(self):
        program = (
            stmt(BPF_JMP | BPF_JA, 1),   # -> index 2
            RET_A_,                      # dead
            stmt(BPF_JMP | BPF_JA, 0),   # -> index 3
            RET_B_,
        )
        threaded = thread_jumps(program)
        # The first instruction now IS the final return.
        assert threaded[0] == RET_B_

    def test_conditional_threaded_through_ja(self):
        program = (
            LD_NR,
            jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),
            stmt(BPF_JMP | BPF_JA, 1),   # taken path -> trampoline -> ret B
            RET_A_,
            RET_B_,
        )
        threaded = thread_jumps(program)
        assert threaded[1].jt == 2  # straight to index 4 (RET_B_)

    def test_decisions_preserved(self):
        program = (
            LD_NR,
            jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),
            stmt(BPF_JMP | BPF_JA, 1),
            RET_A_,
            RET_B_,
        )
        optimized = optimize(program)
        for nr in (5, 6):
            data = SeccompData(nr=nr)
            assert run(program, data).return_value == run(optimized, data).return_value


class TestDeadCode:
    def test_unreachable_removed(self):
        program = (
            stmt(BPF_JMP | BPF_JA, 1),
            RET_A_,          # unreachable
            RET_B_,
        )
        cleaned = eliminate_dead_code(program)
        assert RET_A_ not in cleaned
        assert run(cleaned, SeccompData(nr=0)).return_value == 0xB

    def test_fully_reachable_untouched(self):
        program = (LD_NR, RET_A_)
        assert eliminate_dead_code(program) == program

    def test_offsets_rewritten(self):
        program = (
            LD_NR,
            jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 0, 2),  # jf over 2 insns
            RET_A_,
            RET_A_,          # unreachable (jt falls into index 2)
            RET_B_,
        )
        # Index 3 unreachable: jt->2, jf->4 both survive, jf rewritten.
        cleaned = eliminate_dead_code(program)
        verify(cleaned)
        assert len(cleaned) == 4
        assert run(cleaned, SeccompData(nr=0)).return_value == 0xA
        assert run(cleaned, SeccompData(nr=1)).return_value == 0xB


class TestOnRealFilters:
    @pytest.mark.parametrize("compiler", [compile_linear, compile_binary_tree])
    def test_docker_filter_shrinks_or_equal(self, compiler):
        program = compiler(build_docker_default())
        optimized = optimize(program)
        assert len(optimized) <= len(program)
        verify(optimized)

    @pytest.mark.parametrize("compiler", [compile_linear, compile_binary_tree])
    def test_docker_decisions_unchanged(self, compiler):
        profile = build_docker_default()
        program = compiler(profile)
        optimized = optimize(program)
        probes = [
            make_event("read", (1, 2)),
            make_event("mount"),
            make_event("personality", (0xFFFFFFFF,)),
            make_event("personality", (3,)),
            make_event("clone", (0x10000000,)),
            make_event("epoll_wait", (3, 64, 10)),
            make_event("clone3", (8,)),
        ]
        for event in probes:
            data = SeccompData.from_event(event)
            assert (
                run(program, data).return_value == run(optimized, data).return_value
            ), event

    def test_optimized_executes_fewer_or_equal_insns(self):
        profile = build_docker_default()
        program = compile_binary_tree(profile)
        optimized = optimize(program)
        event = make_event("epoll_wait", (3, 64, 10))
        data = SeccompData.from_event(event)
        assert (
            run(optimized, data).instructions_executed
            <= run(program, data).instructions_executed
        )


# -- property: optimisation is semantics-preserving --------------------------


@st.composite
def random_programs(draw):
    """Small random (verified) programs built from loads, conditionals,
    JAs, and returns."""
    body_len = draw(st.integers(2, 12))
    insns = []
    for pc in range(body_len):
        remaining = body_len - pc - 1
        kind = draw(st.sampled_from(["ld", "jeq", "ja", "ret"]))
        if remaining == 0:
            kind = "ret"
        if kind == "ld":
            insns.append(LD_NR)
        elif kind == "ret":
            insns.append(stmt(BPF_RET | BPF_K, draw(st.integers(0, 3))))
        elif kind == "ja":
            insns.append(stmt(BPF_JMP | BPF_JA, draw(st.integers(0, remaining - 1))))
        else:
            jt = draw(st.integers(0, remaining - 1))
            jf = draw(st.integers(0, remaining - 1))
            insns.append(
                jump(BPF_JMP | BPF_JEQ | BPF_K, draw(st.integers(0, 3)), jt, jf)
            )
    program = tuple(insns) + (stmt(BPF_RET | BPF_K, 99),)
    verify(program)
    return program


class TestProperty:
    @settings(max_examples=80, deadline=None)
    @given(program=random_programs(), nr=st.integers(0, 4))
    def test_optimize_preserves_semantics(self, program, nr):
        optimized = optimize(program)
        data = SeccompData(nr=nr)
        assert run(program, data).return_value == run(optimized, data).return_value

    @settings(max_examples=40, deadline=None)
    @given(program=random_programs())
    def test_optimize_idempotent(self, program):
        once = optimize(program)
        twice = optimize(once)
        assert once == twice
