"""Tests for the process start-up tail in profiling traces."""

import pytest

from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.syscalls.table import LINUX_X86_64, sid
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import generate_trace, profile_trace
from repro.workloads.startup import STARTUP_SYSCALL_NAMES, startup_events


class TestStartupEvents:
    def test_all_names_resolve(self):
        for name in STARTUP_SYSCALL_NAMES:
            assert name in LINUX_X86_64

    def test_sequence_shape(self):
        events = startup_events()
        assert len(events) > 25
        names = [e.name() for e in events]
        assert names[0] == "execve"
        assert "mmap" in names and "arch_prctl" in names

    def test_distinct_pcs(self):
        events = startup_events()
        assert len({e.pc for e in events}) == len(events)

    def test_deterministic(self):
        assert [e.key for e in startup_events()] == [e.key for e in startup_events()]


class TestProfileTraceIntegration:
    def test_profile_includes_startup(self):
        spec = CATALOG["pwgen"]
        profile = generate_complete(profile_trace(spec, count=500), "pwgen")
        assert profile.rule_for(sid("execve")) is not None
        assert profile.rule_for(sid("arch_prctl")) is not None
        assert profile.rule_for(sid("set_tid_address")) is not None

    def test_opt_out(self):
        spec = CATALOG["pwgen"]
        trace = profile_trace(spec, count=200, include_startup=False)
        profile = generate_noargs(trace, "pwgen")
        assert profile.rule_for(sid("execve")) is None

    def test_measurement_traces_exclude_startup(self):
        """Steady-state traces never issue startup-only syscalls."""
        spec = CATALOG["pwgen"]
        measured = generate_trace(spec, 1500)
        assert sid("execve") not in measured.unique_sids()
        assert sid("arch_prctl") not in measured.unique_sids()

    def test_profiles_grow_toward_paper_scale(self):
        """With the startup tail, app profiles approach the paper's
        50-100 allowed syscalls (Figure 15a)."""
        spec = CATALOG["nginx"]
        profile = generate_complete(profile_trace(spec, count=500), "nginx")
        assert 25 <= profile.num_syscalls <= 60

    def test_startup_coverage_of_own_profile(self):
        """Every startup event passes the profile it helped create."""
        spec = CATALOG["grep"]
        profile = generate_complete(profile_trace(spec, count=300), "grep")
        for event in startup_events():
            assert profile.allows(event), event.name()
