"""Tests for the SLB, STB, and Temporary Buffer hardware structures."""

import pytest

from repro.common.errors import ConfigError
from repro.core.hardware import hash_id_for
from repro.core.slb import Slb, SlbSubtable
from repro.core.stb import Stb
from repro.core.temp_buffer import TemporaryBuffer
from repro.cpu.params import DracoHwParams, SlbSubtableParams

KEY_A = b"argset-a"
KEY_B = b"argset-b"


def _pair(key):
    return (hash_id_for(key, 0)[1], hash_id_for(key, 1)[1])


class TestSlbSubtable:
    def _table(self, entries=8, ways=2):
        return SlbSubtable(SlbSubtableParams(arg_count=2, entries=entries, ways=ways))

    def test_fill_then_access(self):
        table = self._table()
        table.fill(0, hash_id_for(KEY_A, 0), (3, 100))
        assert table.access(0, (3, 100), _pair(KEY_A)) is not None

    def test_access_miss_on_wrong_args(self):
        table = self._table()
        table.fill(0, hash_id_for(KEY_A, 0), (3, 100))
        assert table.access(0, (4, 100), _pair(KEY_B)) is None

    def test_preload_probe_by_hash(self):
        table = self._table()
        hid = hash_id_for(KEY_A, 0)
        table.fill(0, hid, (3, 100))
        assert table.preload_probe(0, hid)
        assert not table.preload_probe(0, hash_id_for(KEY_B, 0))

    def test_preload_does_not_update_lru(self):
        """Section IX: speculative probes leave no LRU side effects."""
        table = self._table(entries=2, ways=2)
        hid_a = hash_id_for(KEY_A, 0)
        hid_b = hash_id_for(KEY_B, 0)
        table.fill(0, hid_a, (1,))
        table.fill(0, hid_b, (2,))
        # Probe A speculatively many times; A must NOT become MRU.
        for _ in range(5):
            table.preload_probe(0, hid_a)
        # A non-speculative fill of a third entry evicts the true LRU (A).
        table.fill(0, hash_id_for(b"c", 0), (3,))
        # If probes had refreshed A, B would have been evicted instead.
        sets_with_a = table.access(0, (1,), _pair(KEY_A))
        sets_with_b = table.access(0, (2,), _pair(KEY_B))
        assert (sets_with_a is None) or (sets_with_b is not None)

    def test_lru_eviction_within_set(self):
        table = self._table(entries=2, ways=2)
        table.fill(0, hash_id_for(b"a", 0), (1,))
        table.fill(0, hash_id_for(b"b", 0), (2,))
        table.access(0, (1,), _pair(b"a"))  # refresh a
        table.fill(0, hash_id_for(b"c", 0), (3,))
        # All three map over 1 set (entries/ways = 1): b was LRU.
        assert table.access(0, (2,), _pair(b"b")) is None or table.occupancy <= 2

    def test_fill_updates_existing(self):
        """Refilling the same (sid, args) under the other hash must not
        duplicate the entry when the full hash pair is supplied."""
        table = self._table()
        table.fill(0, hash_id_for(KEY_A, 0), (3, 100), _pair(KEY_A))
        table.fill(0, hash_id_for(KEY_A, 1), (3, 100), _pair(KEY_A))
        assert table.occupancy == 1
        assert table.access(0, (3, 100), _pair(KEY_A)).hash_id == hash_id_for(KEY_A, 1)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            SlbSubtable(SlbSubtableParams(arg_count=1, entries=5, ways=2))

    def test_invalidate_all(self):
        table = self._table()
        table.fill(0, hash_id_for(KEY_A, 0), (1,))
        table.invalidate_all()
        assert table.occupancy == 0


class TestSlb:
    def test_routes_by_arg_count(self):
        slb = Slb()
        slb.fill(0, 2, hash_id_for(KEY_A, 0), (3, 100))
        assert slb.access(0, 2, (3, 100), _pair(KEY_A)) is not None
        assert slb.access(0, 3, (3, 100, 0), _pair(KEY_A)) is None

    def test_unknown_arg_count(self):
        with pytest.raises(ConfigError):
            Slb().access(0, 0, (), _pair(KEY_A))

    def test_stats(self):
        slb = Slb()
        slb.fill(0, 1, hash_id_for(KEY_A, 0), (1,))
        slb.access(0, 1, (1,), _pair(KEY_A))
        slb.access(0, 1, (2,), _pair(KEY_B))
        slb.preload_probe(0, 1, hash_id_for(KEY_A, 0))
        slb.preload_probe(0, 1, hash_id_for(KEY_B, 0))
        assert slb.access_hit_rate == 0.5
        assert slb.preload_hit_rate == 0.5
        slb.reset_stats()
        assert slb.access_hit_rate == 0.0

    def test_table_ii_geometry(self):
        """The subtables match the paper's sizing."""
        hw = DracoHwParams()
        sizes = {sub.arg_count: sub.entries for sub in hw.slb_subtables}
        assert sizes == {1: 32, 2: 64, 3: 64, 4: 32, 5: 32, 6: 16}

    def test_invalidate_all(self):
        slb = Slb()
        slb.fill(0, 1, hash_id_for(KEY_A, 0), (1,))
        slb.invalidate_all()
        assert slb.access(0, 1, (1,), _pair(KEY_A)) is None


class TestStb:
    def test_lookup_after_update(self):
        stb = Stb()
        stb.update(0x400100, sid=0, hash_id=hash_id_for(KEY_A, 0))
        entry = stb.lookup(0x400100)
        assert entry is not None
        assert entry.sid == 0

    def test_miss_on_unknown_pc(self):
        stb = Stb()
        assert stb.lookup(0x999) is None
        assert stb.hit_rate == 0.0

    def test_update_refreshes_hash(self):
        stb = Stb()
        stb.update(0x42 << 2, 0, hash_id_for(KEY_A, 0))
        stb.update(0x42 << 2, 0, hash_id_for(KEY_B, 1))
        assert stb.lookup(0x42 << 2).hash_id == hash_id_for(KEY_B, 1)
        assert stb.occupancy == 1

    def test_set_conflict_eviction(self):
        """Two-way sets: a third conflicting PC evicts the LRU entry."""
        stb = Stb()
        base = 0x1000
        stride = stb.num_sets << 2  # same set, different tags
        pcs = [base, base + stride, base + 2 * stride]
        for pc in pcs:
            stb.update(pc, 0, hash_id_for(KEY_A, 0))
        present = [pc for pc in pcs if stb.lookup(pc) is not None]
        assert len(present) == 2
        assert pcs[0] not in present  # LRU evicted

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            Stb(DracoHwParams(stb_entries=7, stb_ways=2))

    def test_invalidate_all(self):
        stb = Stb()
        stb.update(0x40, 0, hash_id_for(KEY_A, 0))
        stb.invalidate_all()
        assert stb.lookup(0x40) is None


class TestTemporaryBuffer:
    def test_stash_and_claim(self):
        buf = TemporaryBuffer()
        buf.stash(0, hash_id_for(KEY_A, 0), (3, 100))
        entry = buf.take_match(0, (3, 100))
        assert entry is not None
        assert entry.args == (3, 100)
        assert len(buf) == 0  # consumed

    def test_no_match_leaves_entry(self):
        buf = TemporaryBuffer()
        buf.stash(0, hash_id_for(KEY_A, 0), (3, 100))
        assert buf.take_match(0, (4, 100)) is None
        assert len(buf) == 1

    def test_capacity_fifo(self):
        buf = TemporaryBuffer()
        for i in range(12):
            buf.stash(i, hash_id_for(bytes([i]), 0), (i,))
        assert len(buf) == buf.capacity == 8
        assert buf.take_match(0, (0,)) is None  # oldest dropped
        assert buf.take_match(11, (11,)) is not None

    def test_clear_on_squash(self):
        """Section IX: a squash clears all speculative preload state."""
        buf = TemporaryBuffer()
        buf.stash(0, hash_id_for(KEY_A, 0), (1,))
        buf.clear()
        assert len(buf) == 0
