"""Model-based tests: the hardware structures vs. simple reference models.

Each structure (STB, SLB subtable, VAT) is driven with a random
operation sequence alongside an idealised dictionary model.  The
structure may *forget* entries (capacity), but must never fabricate:
every hit it reports must match the model's ground truth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardware import hash_id_for
from repro.core.slb import SlbSubtable
from repro.core.stb import Stb
from repro.core.vat import VAT
from repro.cpu.params import DracoHwParams, SlbSubtableParams
from repro.hashing.crc import CRC64_ECMA, CRC64_NOT_ECMA
from repro.syscalls.abi import argument_bitmask


def _pair(key: bytes):
    return (CRC64_ECMA(key), CRC64_NOT_ECMA(key))


class TestStbAgainstModel:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["update", "lookup", "flush"]),
                st.integers(0, 8),   # pc index
                st.integers(0, 3),   # sid
            ),
            max_size=60,
        )
    )
    def test_no_fabricated_hits(self, ops):
        stb = Stb(DracoHwParams(stb_entries=8, stb_ways=2))
        model = {}
        pcs = [0x1000 + 4 * i for i in range(9)]
        for op, pc_index, sid in ops:
            pc = pcs[pc_index]
            if op == "update":
                hid = hash_id_for(bytes([sid]), 0)
                stb.update(pc, sid, hid)
                model[pc] = (sid, hid)
            elif op == "flush":
                stb.invalidate_all()
                model.clear()
            else:
                entry = stb.lookup(pc)
                if entry is not None:
                    # A hit must agree with the model exactly.
                    assert pc in model
                    assert (entry.sid, entry.hash_id) == model[pc]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=20))
    def test_most_recent_update_wins(self, sids):
        stb = Stb()
        pc = 0x4000
        for sid in sids:
            stb.update(pc, sid, hash_id_for(bytes([sid]), 0))
        assert stb.lookup(pc).sid == sids[-1]


class TestSlbAgainstModel:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["fill", "access", "probe", "flush"]),
                st.integers(0, 2),       # sid
                st.integers(0, 5),       # argset index
            ),
            max_size=60,
        )
    )
    def test_no_fabricated_hits(self, ops):
        subtable = SlbSubtable(SlbSubtableParams(arg_count=2, entries=8, ways=2))
        model = {}
        argsets = [(i, i * 10) for i in range(6)]
        for op, sid, arg_index in ops:
            args = argsets[arg_index]
            key = bytes(args)
            hid = hash_id_for(key, 0)
            if op == "fill":
                subtable.fill(sid, hid, args, _pair(key))
                model[(sid, args)] = hid
            elif op == "flush":
                subtable.invalidate_all()
                model.clear()
            elif op == "access":
                entry = subtable.access(sid, args, _pair(key))
                if entry is not None:
                    assert (sid, args) in model
            else:
                hit = subtable.preload_probe(sid, hid)
                if hit:
                    assert (sid, args) in model

    def test_capacity_respected(self):
        subtable = SlbSubtable(SlbSubtableParams(arg_count=1, entries=4, ways=2))
        for i in range(32):
            key = bytes([i])
            subtable.fill(0, hash_id_for(key, 0), (i,), _pair(key))
        assert subtable.occupancy <= 4


class TestVatAgainstModel:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "lookup"]),
                st.integers(0, 1),    # sid
                st.integers(0, 9),    # arg value
            ),
            max_size=50,
        )
    )
    def test_hits_match_inserts(self, ops):
        vat = VAT()
        vat.ensure_table(0, estimated_arg_sets=16)
        vat.ensure_table(1, estimated_arg_sets=16)
        bitmask = argument_bitmask(1)
        model = set()
        for op, sid, value in ops:
            key = VAT.key_for((value,), bitmask)
            if op == "insert":
                vat.insert(sid, key, (value,))
                model.add((sid, value))
            else:
                probe = vat.lookup(sid, key)
                # At 2x over-provisioning nothing is evicted, so the
                # VAT is *exact*: hit iff inserted.
                assert probe.hit == ((sid, value) in model)
                if probe.hit:
                    assert probe.args == (value,)
