"""Warm pool + experiment service: differential identity, pool
lifecycle, explicit cache threading, single-flight coalescing, watch
invalidation, and the in-memory stage tier.

The contract under test (docs/PERFORMANCE.md, docs/EXPERIMENT_GUIDE.md):
``REPRO_WARM_POOL=1`` (the default) keeps one preloaded worker pool
alive across suites with markdown output byte-identical to the
throwaway-pool path; ``run_suite`` never mutates ``os.environ`` and a
fully-cached parallel run never pays pool dispatch; the service
coalesces identical concurrent requests into one computation, replays
identical later requests from its memo, recomputes exactly the dirty
stage subgraph under watch, and serves hot stage payloads from memory
without touching the ``stages/`` disk tier.
"""

import json
import os
import shutil
import threading

import pytest

from repro.common import telemetry
from repro.experiments import cache as result_cache
from repro.experiments import engine, runner
from repro.experiments import pool as warm_pool
from repro.experiments import stages as stage_graph
from repro.experiments.service import ExperimentService

EVENTS = 1200
WORKLOADS = ("nginx", "pipe-ipc")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Fresh on-disk cache and clean in-process memos per test."""
    root = tmp_path / "cache"
    monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(root))
    runner.reset_context_memos()
    telemetry.reset_counters()
    yield root
    runner.reset_context_memos()


@pytest.fixture(autouse=True)
def _clean_serving_state():
    """Tear down the cross-suite serving layers between tests."""
    yield
    warm_pool.shutdown(wait=False)
    stage_graph.configure_stage_memory(0)
    stage_graph.reset_stage_memory()


def _markdowns(run):
    return {
        o.experiment_id: o.result.to_markdown()
        for o in run.outcomes
        if o.result is not None
    }


class TestWarmPoolDifferential:
    def test_full_registry_markdown_identical(self, cache_dir, monkeypatch):
        """The acceptance bar: every registry artifact byte-identical
        with the warm pool on and off."""
        monkeypatch.setenv(warm_pool.WARM_POOL_ENV, "0")
        throwaway = engine.run_suite(events=EVENTS, cache_mode=engine.CACHE_OFF, jobs=4)
        assert not throwaway.failures
        runner.reset_context_memos()
        monkeypatch.setenv(warm_pool.WARM_POOL_ENV, "1")
        warm = engine.run_suite(events=EVENTS, cache_mode=engine.CACHE_OFF, jobs=4)
        assert not warm.failures
        assert _markdowns(throwaway) == _markdowns(warm)


class TestWarmPool:
    def test_pool_persists_across_suites(self, cache_dir):
        overrides = {"fig13": {"workloads": WORKLOADS, "events": EVENTS}}
        before = warm_pool.stats()["created"]
        # CACHE_OFF so both suites schedule the full DAG over the pool
        # (warm hits would shrink the second to a serial analysis pass).
        engine.run_suite(["fig13"], jobs=2, cache_mode=engine.CACHE_OFF,
                         run_overrides=overrides)
        engine.run_suite(["fig13"], jobs=2, cache_mode=engine.CACHE_OFF,
                         run_overrides=overrides)
        stats = warm_pool.stats()
        assert stats["created"] == before + 1
        assert stats["active"]
        assert stats["suites_served"] == 2

    def test_env_knob_flip_recycles_pool(self, cache_dir, monkeypatch):
        overrides = {"fig13": {"workloads": WORKLOADS, "events": EVENTS}}
        engine.run_suite(["fig13"], jobs=2, cache_mode=engine.CACHE_OFF,
                         run_overrides=overrides)
        first_key = warm_pool.pool_key(2)
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert warm_pool.pool_key(2) != first_key
        recycled_before = warm_pool.stats()["recycled"]
        engine.run_suite(["fig13"], jobs=2, cache_mode=engine.CACHE_OFF,
                         run_overrides=overrides)
        stats = warm_pool.stats()
        assert stats["recycled"] == recycled_before + 1
        assert stats["active"]

    def test_kill_switch_uses_throwaway_pool(self, cache_dir, monkeypatch):
        monkeypatch.setenv(warm_pool.WARM_POOL_ENV, "0")
        created_before = warm_pool.stats()["created"]
        run = engine.run_suite(
            ["fig13"], jobs=2, cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"workloads": WORKLOADS, "events": EVENTS}},
        )
        assert not run.failures
        assert warm_pool.stats()["created"] == created_before

    def test_jobs_change_recycles(self, cache_dir):
        assert warm_pool.pool_key(2) != warm_pool.pool_key(4)


class TestCacheThreading:
    """Satellite: run_suite must not mutate os.environ, and must probe
    all tasks before paying pool dispatch."""

    def test_run_suite_leaves_environ_alone(self, cache_dir, tmp_path, monkeypatch):
        other = tmp_path / "other-cache"
        monkeypatch.delenv(result_cache.CACHE_DISABLE_ENV, raising=False)
        run = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_ON,
            cache_dir=str(other),
            run_overrides={"fig13": {"workloads": WORKLOADS, "events": EVENTS}},
        )
        assert not run.failures
        # The env still points at the fixture cache; the explicit
        # cache_dir won and was never written back to the environment.
        assert os.environ[result_cache.CACHE_DIR_ENV] == str(cache_dir)
        assert result_cache.CACHE_DISABLE_ENV not in os.environ
        assert run.report.cache_dir == str(other)
        assert (other / "results").exists()
        assert not (cache_dir / "results").exists()

    def test_cache_off_does_not_set_disable_env(self, cache_dir):
        run = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"workloads": WORKLOADS, "events": EVENTS}},
        )
        assert not run.failures
        assert result_cache.CACHE_DISABLE_ENV not in os.environ
        assert not (cache_dir / "results").exists()

    def test_fully_cached_parallel_run_skips_the_pool(self, cache_dir, monkeypatch):
        monkeypatch.setenv(result_cache.STAGE_GRAPH_ENV, "0")
        overrides = {
            eid: {"workloads": WORKLOADS, "events": EVENTS}
            for eid in ("fig12", "fig13")
        }
        cold = engine.run_suite(
            ["fig12", "fig13"], jobs=1, cache_mode=engine.CACHE_ON,
            run_overrides=overrides,
        )
        assert not cold.failures

        def _no_pool(jobs, task_count):
            raise AssertionError("fully-cached suite must not start a pool")

        monkeypatch.setattr(warm_pool, "suite_executor", _no_pool)
        monkeypatch.setattr(engine.warm_pool, "suite_executor", _no_pool)
        warm = engine.run_suite(
            ["fig12", "fig13"], jobs=4, cache_mode=engine.CACHE_ON,
            run_overrides=overrides,
        )
        assert not warm.failures
        assert all(r.cache == telemetry.CACHE_HIT for r in warm.report.records)
        assert _markdowns(cold) == _markdowns(warm)


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, cache_dir):
        svc = ExperimentService(jobs=2, cache_dir=str(cache_dir), memo_limit=8)
        request = {
            "op": "run",
            "experiments": ["fig13"],
            "events": EVENTS,
            "run_overrides": {"fig13": {"workloads": list(WORKLOADS)}},
        }
        responses = [None, None]
        barrier = threading.Barrier(2)

        def issue(slot):
            barrier.wait()
            responses[slot] = svc.handle(dict(request))

        threads = [threading.Thread(target=issue, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r["ok"] for r in responses)
        served = sorted(r["served"] for r in responses)
        assert served == ["coalesced", "computed"]
        # One flight, one set of stage executions, shared verbatim.
        assert responses[0]["markdown"] == responses[1]["markdown"]
        assert responses[0]["stage_counters"] == responses[1]["stage_counters"]
        assert responses[0]["stage_counters"]["executed"] > 0
        block = svc.service_block()
        assert block["served"] == {"computed": 1, "memo": 0, "coalesced": 1}

        # A later identical request replays from the memo.
        replay = svc.handle(dict(request))
        assert replay["served"] == "memo"
        assert replay["markdown"] == responses[0]["markdown"]

    def test_memo_distinguishes_parameters(self, cache_dir):
        svc = ExperimentService(jobs=1, cache_dir=str(cache_dir), memo_limit=8)
        base = {
            "op": "run",
            "experiments": ["fig13"],
            "events": EVENTS,
            "run_overrides": {"fig13": {"workloads": list(WORKLOADS)}},
        }
        first = svc.handle(dict(base))
        assert first["served"] == "computed"
        other = dict(base, seed=99)
        second = svc.handle(other)
        assert second["served"] == "computed"
        assert svc.handle(dict(base))["served"] == "memo"
        assert svc.handle(dict(other))["served"] == "memo"


class TestWatch:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))

    def test_watch_recomputes_exactly_the_dirty_subgraph(self, cache_dir, tmp_path):
        svc = ExperimentService(jobs=1, cache_dir=str(cache_dir), memo_limit=8)
        watch_file = tmp_path / "request.json"
        self._write(
            watch_file,
            {
                "experiments": ["fig13"],
                "events": EVENTS,
                "run_overrides": {"fig13": {"workloads": list(WORKLOADS)}},
            },
        )
        digest = svc.watch_tick(watch_file, None)
        assert digest is not None
        assert svc._watch["runs"] == 1

        # Unchanged file: polled, not re-run.
        assert svc.watch_tick(watch_file, digest) == digest
        assert svc._watch["runs"] == 1

        # Perturb the request to a subset of the workloads: every
        # trace / calibration / eval stage is already on disk, so only
        # the new terminal analysis stage may execute.
        self._write(
            watch_file,
            {
                "experiments": ["fig13"],
                "events": EVENTS,
                "run_overrides": {"fig13": {"workloads": [WORKLOADS[0]]}},
            },
        )
        new_digest = svc.watch_tick(watch_file, digest)
        assert new_digest != digest
        assert svc._watch["runs"] == 2
        record = svc._last_report.records[0]
        counters = record.simulation["stages"]["counters"]
        assert counters["executed"] == 1
        assert counters["failed"] == 0
        executed = [
            row for row in record.simulation["stages"]["detail"]
            if row["status"] == "exec"
        ]
        assert [row["kind"] for row in executed] == ["analysis"]
        # The untouched per-workload stages were served, not re-run.
        assert counters["hit"] > 0
        block = svc.service_block()
        assert block["watch"]["checks"] == 3
        assert block["watch"]["runs"] == 2

    def test_watch_survives_unreadable_file(self, cache_dir, tmp_path):
        svc = ExperimentService(jobs=1, cache_dir=str(cache_dir))
        missing = tmp_path / "nope.json"
        assert svc.watch_tick(missing, None) is None
        assert svc._watch["runs"] == 0


class TestStageMemory:
    def test_disabled_by_default(self, cache_dir):
        stats = stage_graph.stage_memory_stats()
        assert stats["limit"] == 0
        run = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_ON,
            run_overrides={"fig13": {"workloads": WORKLOADS, "events": EVENTS}},
        )
        assert not run.failures
        assert stage_graph.stage_memory_stats()["entries"] == 0

    def test_serves_hot_stages_without_the_disk_tier(self, cache_dir):
        stage_graph.configure_stage_memory(128)
        overrides = {"fig13": {"workloads": WORKLOADS, "events": EVENTS}}
        cold = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_ON, run_overrides=overrides
        )
        assert not cold.failures
        assert stage_graph.stage_memory_stats()["stored"] > 0

        # A refresh recomputes the terminal but probes intermediates —
        # now from memory.
        refreshed = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_REFRESH, run_overrides=overrides
        )
        assert not refreshed.failures
        hits_after_refresh = stage_graph.stage_memory_stats()["hits"]
        assert hits_after_refresh > 0

        # Remove the disk tier entirely: the memory tier still serves
        # every intermediate (no stat, no JSON parse, no rebuild).
        shutil.rmtree(cache_dir / "stages")
        again = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_REFRESH, run_overrides=overrides
        )
        assert not again.failures
        counters = again.report.records[0].simulation["stages"]["counters"]
        assert counters["hit"] > 0
        assert counters["executed"] == 1  # the terminal analysis only
        assert _markdowns(cold) == _markdowns(again)

    def test_lru_eviction(self):
        stage_graph.configure_stage_memory(2)
        stage_graph._stage_memory_put("eval", "a", 1)
        stage_graph._stage_memory_put("eval", "b", 2)
        assert stage_graph._stage_memory_get("eval", "a") == 1  # refresh a
        stage_graph._stage_memory_put("eval", "c", 3)  # evicts b
        assert stage_graph._stage_memory_get("eval", "b") is None
        assert stage_graph._stage_memory_get("eval", "a") == 1
        assert stage_graph._stage_memory_get("eval", "c") == 3
        stats = stage_graph.stage_memory_stats()
        assert stats["evicted"] == 1
        assert stats["entries"] == 2


class TestServiceTelemetry:
    def test_report_round_trips_service_block(self, cache_dir):
        svc = ExperimentService(jobs=1, cache_dir=str(cache_dir), memo_limit=8)
        svc.handle({
            "op": "run",
            "experiments": ["fig13"],
            "events": EVENTS,
            "run_overrides": {"fig13": {"workloads": list(WORKLOADS)}},
        })
        path = svc.write_report()
        report = telemetry.RunReport.read(path)
        assert report.service["requests"] == 1
        assert report.service["latency_ms"]["count"] == 1
        assert report.service["latency_ms"]["p50"] > 0
        rendered = report.format_service()
        assert "requests: 1" in rendered
        assert "p95" in rendered
        assert "warm pool" in rendered

    def test_plain_reports_have_no_service_block(self, cache_dir):
        run = engine.run_suite(
            ["fig13"], jobs=1, cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"workloads": WORKLOADS, "events": EVENTS}},
        )
        payload = run.report.to_json_dict()
        assert "service" not in payload
        assert "no service telemetry" in run.report.format_service()
