"""Tests for workload models, trace generation, and the catalog."""

import pytest

from repro.common.errors import ConfigError
from repro.syscalls.table import LINUX_X86_64
from repro.workloads.catalog import (
    CATALOG,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    REGIME_COMPLETE,
    SECCOMP_REGIMES,
)
from repro.workloads.generator import (
    TraceGenerator,
    callsite_pc,
    coverage_trace,
    generate_trace,
    profile_trace,
)
from repro.workloads.model import ArgSetSpec, SyscallSpec, WorkloadSpec


class TestModelValidation:
    def test_argset_width_checked(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(
                name="bad",
                kind="micro",
                description="",
                syscalls=(
                    SyscallSpec("read", 1, (ArgSetSpec(values=(1,)),)),  # needs 2
                ),
            )

    def test_pointer_only_syscall_needs_empty_sets(self):
        spec = WorkloadSpec(
            name="ok",
            kind="micro",
            description="",
            syscalls=(SyscallSpec("stat", 1, ()),),
        )
        assert spec.num_distinct_arg_sets == 1

    def test_duplicate_syscall_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(
                name="bad",
                kind="micro",
                description="",
                syscalls=(
                    SyscallSpec("getpid", 1, ()),
                    SyscallSpec("getpid", 1, ()),
                ),
            )

    def test_bad_kind(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="bad", kind="mini", description="", syscalls=(SyscallSpec("getpid", 1, ()),))

    def test_weights_positive(self):
        with pytest.raises(ConfigError):
            SyscallSpec("read", 0, ())

    def test_stickiness_bounds(self):
        with pytest.raises(ConfigError):
            SyscallSpec("read", 1, (), stickiness=1.5)


class TestCatalog:
    def test_fifteen_workloads(self):
        assert len(CATALOG) == 15
        assert len(MACRO_WORKLOADS) == 8
        assert len(MICRO_WORKLOADS) == 7

    def test_paper_names_present(self):
        for name in ("httpd", "nginx", "elasticsearch", "mysql", "cassandra",
                     "redis", "grep", "pwgen", "sysbench-fio", "hpcc",
                     "unixbench-syscall", "fifo-ipc", "pipe-ipc", "domain-ipc",
                     "mq-ipc"):
            assert name in CATALOG

    def test_all_have_fig2_targets(self):
        for spec in CATALOG.values():
            for regime in SECCOMP_REGIMES:
                assert spec.fig2_targets[regime] > 1.0

    def test_target_averages_match_paper(self):
        """The calibration targets average to the paper's reported
        numbers (within reading-off-the-plot tolerance)."""
        for kind, expectations in (
            ("macro", {"docker-default": 1.05, "syscall-noargs": 1.04,
                       "syscall-complete": 1.14, "syscall-complete-2x": 1.21}),
            ("micro", {"docker-default": 1.12, "syscall-noargs": 1.09,
                       "syscall-complete": 1.25, "syscall-complete-2x": 1.42}),
        ):
            group = [w for w in CATALOG.values() if w.kind == kind]
            for regime, paper in expectations.items():
                avg = sum(w.fig2_targets[regime] for w in group) / len(group)
                assert abs(avg - paper) < 0.035, (kind, regime, avg)

    def test_complete_targets_exceed_noargs(self):
        for spec in CATALOG.values():
            assert spec.fig2_targets[REGIME_COMPLETE] > spec.fig2_targets["syscall-noargs"]

    def test_all_syscalls_resolve(self):
        for spec in CATALOG.values():
            for syscall in spec.syscalls:
                assert syscall.name in LINUX_X86_64


class TestCallsitePcs:
    def test_stable(self):
        assert callsite_pc("a", "read", 0) == callsite_pc("a", "read", 0)

    def test_distinct_sites(self):
        pcs = {callsite_pc("a", "read", i) for i in range(100)}
        assert len(pcs) == 100

    def test_aligned(self):
        assert callsite_pc("a", "read", 0) % 4 == 0


class TestTraceGeneration:
    def test_deterministic(self):
        spec = CATALOG["nginx"]
        a = generate_trace(spec, 500, seed=42)
        b = generate_trace(spec, 500, seed=42)
        assert [e.key for e in a] == [e.key for e in b]

    def test_seed_changes_trace(self):
        spec = CATALOG["nginx"]
        a = generate_trace(spec, 500, seed=1)
        b = generate_trace(spec, 500, seed=2)
        assert [e.key for e in a] != [e.key for e in b]

    def test_only_declared_syscalls(self):
        spec = CATALOG["pwgen"]
        declared = {LINUX_X86_64.by_name(s.name).sid for s in spec.syscalls}
        trace = generate_trace(spec, 1000)
        assert set(trace.unique_sids()) <= declared

    def test_weights_respected(self):
        spec = CATALOG["grep"]
        trace = generate_trace(spec, 5000)
        from collections import Counter

        counts = Counter(e.name() for e in trace)
        assert counts["read"] > counts["write"]

    def test_pcs_belong_to_syscall_callsites(self):
        spec = CATALOG["fifo-ipc"]
        trace = generate_trace(spec, 300)
        valid = set()
        for syscall in spec.syscalls:
            for i in range(syscall.callsites):
                valid.add(callsite_pc(spec.name, syscall.name, i))
        assert {e.pc for e in trace} <= valid


class TestCoverage:
    def test_coverage_trace_has_every_argset(self):
        spec = CATALOG["mysql"]
        cov = coverage_trace(spec)
        expected = sum(max(1, len(s.arg_sets)) for s in spec.syscalls)
        assert len(cov) == expected

    def test_profile_trace_covers_measurement_trace(self):
        """The coverage guarantee: a profile from profile_trace() allows
        every event of any measurement trace (no spurious kills)."""
        from repro.seccomp.toolkit import generate_complete

        spec = CATALOG["redis"]
        profile = generate_complete(profile_trace(spec, count=500), "redis")
        measurement = generate_trace(spec, 2000, seed=777)
        for event in measurement:
            assert profile.allows(event)
