"""Persistent context cache: disk round-trips, corruption fallback,
sound memo keys, and byte-identical Seccomp replay differentials.

The contract under test (docs/EXPERIMENT_GUIDE.md): traces, profile
bundles, filter sweeps, and calibration values persist across processes
keyed by content digests; a corrupt or stale entry always reads as a
miss and the caller rebuilds; and every replayed Seccomp evaluation is
byte-identical to the exact-kernel run it replaces — with
``REPRO_CONTEXT_CACHE=0`` as the kill switch that forces the real path.
"""

import gc
import json
from dataclasses import replace

import pytest

from repro.common import telemetry
from repro.common.memo import memo_insert
from repro.common.rng import DEFAULT_SEED
from repro.cpu.params import DEFAULT_SW_COSTS
from repro.experiments import cache as result_cache
from repro.experiments import fig2_seccomp_overhead, runner, seccomp_replay
from repro.kernel.regimes import SeccompRegime
from repro.seccomp.toolkit import bundle_from_payload, bundle_to_payload
from repro.workloads.catalog import (
    CATALOG,
    REGIME_COMPLETE,
    REGIME_INSECURE,
    SECCOMP_REGIMES,
)

EVENTS = 1500
WORKLOAD = "nginx"
ALL_REGIMES = (REGIME_INSECURE,) + SECCOMP_REGIMES


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Fresh on-disk cache and clean in-process memos per test."""
    root = tmp_path / "cache"
    monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(root))
    runner.reset_context_memos()
    telemetry.reset_counters()
    yield root
    runner.reset_context_memos()


def _evaluate_all(workload=WORKLOAD, events=EVENTS):
    ctx = runner.get_context(workload, events=events)
    return {regime: ctx.evaluate(regime) for regime in ALL_REGIMES}


class TestMemoInsert:
    def test_oldest_first_eviction(self):
        memo = {}
        for key in range(6):
            memo_insert(memo, key, key, limit=4)
        assert list(memo) == [2, 3, 4, 5]

    def test_refresh_does_not_evict_at_limit(self):
        """The old ``.clear()``-at-limit policy wiped a full memo on the
        next insert; refreshing an existing key must never evict."""
        memo = {}
        for key in range(3):
            memo_insert(memo, key, key, limit=3)
        memo_insert(memo, 1, "refreshed", limit=3)
        assert list(memo) == [0, 1, 2]
        assert memo[1] == "refreshed"

    def test_new_key_at_limit_evicts_exactly_one(self):
        memo = {}
        for key in range(3):
            memo_insert(memo, key, key, limit=3)
        memo_insert(memo, 99, 99, limit=3)
        assert list(memo) == [1, 2, 99]

    def test_docker_profile_shared_per_table(self, cache_dir):
        table = CATALOG[WORKLOAD].table
        assert runner._docker_profile_for(table) is runner._docker_profile_for(table)


class TestContextDocuments:
    def test_round_trip(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_context("sweep", "abc123", {"returns": [0, 1]})
        assert store.load_context("sweep", "abc123") == {"returns": [0, 1]}

    def test_wrong_kind_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_context("sweep", "abc123", {"x": 1})
        assert store.load_context("bundle", "abc123") is None

    def test_version_mismatch_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_context("sweep", "abc123", {"x": 1})
        path = store.context_path("sweep", "abc123")
        document = json.loads(path.read_text())
        document["version"] = result_cache.CONTEXT_FORMAT_VERSION + 1
        path.write_text(json.dumps(document))
        assert store.load_context("sweep", "abc123") is None

    def test_missing_data_key_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        path = store.context_path("sweep", "abc123")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {
                    "format": "repro-context",
                    "version": result_cache.CONTEXT_FORMAT_VERSION,
                    "kind": "sweep",
                }
            )
        )
        assert store.load_context("sweep", "abc123") is None

    def test_garbage_and_truncation_are_misses(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_context("sweep", "abc123", {"x": 1})
        path = store.context_path("sweep", "abc123")
        path.write_text(path.read_text()[:10])
        assert store.load_context("sweep", "abc123") is None
        path.write_text("\x00 not json at all")
        assert store.load_context("sweep", "abc123") is None

    def test_trace_corruption_is_a_miss(self, cache_dir):
        from repro.workloads.generator import generate_trace

        store = result_cache.ResultCache()
        trace = generate_trace(CATALOG[WORKLOAD], 200, seed=DEFAULT_SEED)
        store.store_trace_context("t1", trace)
        loaded = store.load_trace_context("t1")
        assert loaded is not None and len(loaded) == 200
        path = store.context_path("trace", "t1", suffix=".jsonl")
        text = path.read_text()
        path.write_text(text.splitlines()[0] + "\n")  # header only
        assert store.load_trace_context("t1") is None
        path.write_text("garbage\n" + text)
        assert store.load_trace_context("t1") is None
        assert store.load_trace_context("absent") is None

    def test_calibration_garbage_is_a_miss(self, cache_dir):
        store = result_cache.ResultCache()
        store.store_calibration("c1", 512.5)
        assert store.load_calibration("c1") == 512.5
        store.calibration_path("c1").write_text('"oops"')
        assert store.load_calibration("c1") is None


def _corrupt(path, mode):
    text = path.read_text()
    if mode == "truncated":
        path.write_text(text[: len(text) // 2])
    elif mode == "garbage":
        path.write_text("\x00\x01 definitely not JSON {")
    else:  # "partial": a structurally valid but incomplete document
        if path.suffix == ".jsonl":
            path.write_text(text.splitlines()[0] + "\n")
        else:
            path.write_text(
                json.dumps(
                    {
                        "format": "repro-context",
                        "version": result_cache.CONTEXT_FORMAT_VERSION,
                        "kind": path.parent.name,
                    }
                )
            )


class TestCorruptionFallback:
    @pytest.mark.parametrize("mode", ["truncated", "garbage", "partial"])
    def test_corrupt_entries_rebuild_identically(self, cache_dir, mode):
        """Every context artifact corrupted on disk: the next run must
        fall back to a rebuild (never crash, never serve wrong data)."""
        reference = _evaluate_all()
        paths = [
            p
            for p in cache_dir.rglob("*")
            if p.is_file() and p.suffix in (".json", ".jsonl")
        ]
        # Trace, bundle, and sweep context entries plus the calibration
        # value must all be on disk before the corruption pass.
        assert {p.parent.name for p in paths} >= {
            "trace",
            "bundle",
            "sweep",
            "calibration",
        }
        for path in paths:
            if mode == "truncated" and path.parent.name == "calibration":
                # A truncated bare JSON number can still parse as a
                # (wrong) number; atomic writes are the guard there.
                continue
            _corrupt(path, mode)
        runner.reset_context_memos()
        assert _evaluate_all() == reference


class TestCalibrationMemoKey:
    """Regression: the memo once keyed on ``id(costs)`` while the hit
    guard pinned only spec and trace, so a different cost set landing on
    a recycled id was served a stale W."""

    @pytest.fixture
    def inputs(self, cache_dir, monkeypatch):
        # Disk tiers off: isolate the in-process memo under test.
        monkeypatch.setenv(result_cache.CACHE_DISABLE_ENV, "1")
        spec = CATALOG[WORKLOAD]
        trace = runner._trace_for(spec, 800, DEFAULT_SEED)
        bundle = runner._bundle_for(spec, DEFAULT_SEED)
        return spec, trace, bundle

    def test_recycled_cost_id_recalibrates(self, inputs):
        spec, trace, bundle = inputs
        costs_a = replace(DEFAULT_SW_COSTS, cycles_per_bpf_insn_jit=5.0)
        w_a = runner.calibrate_work_cycles(spec, trace, bundle, costs_a, "binary_tree")
        recycled_id = id(costs_a)
        del costs_a
        gc.collect()
        # CPython routinely hands the freed slot to the next same-sized
        # allocation; land on it if we can (the assertion below holds
        # either way — the key is the cost *values*, never the id).
        costs_b = replace(DEFAULT_SW_COSTS, cycles_per_bpf_insn_jit=9.0)
        for _ in range(256):
            if id(costs_b) == recycled_id:
                break
            costs_b = replace(DEFAULT_SW_COSTS, cycles_per_bpf_insn_jit=9.0)
        w_b = runner.calibrate_work_cycles(spec, trace, bundle, costs_b, "binary_tree")
        assert w_b != w_a  # a pricier per-insn cost must re-solve W

    def test_equal_costs_hit_across_identities(self, inputs, monkeypatch):
        spec, trace, bundle = inputs
        probes = []
        real_run_trace = runner.run_trace

        def spy(trace_arg, regime, **kwargs):
            probes.append(regime)
            return real_run_trace(trace_arg, regime, **kwargs)

        monkeypatch.setattr(runner, "run_trace", spy)
        w_1 = runner.calibrate_work_cycles(
            spec, trace, bundle, replace(DEFAULT_SW_COSTS), "binary_tree"
        )
        w_2 = runner.calibrate_work_cycles(
            spec, trace, bundle, replace(DEFAULT_SW_COSTS), "binary_tree"
        )
        assert w_1 == w_2
        assert len(probes) == 1  # second distinct-identity object: memo hit


class TestEvalMemoEnvFlip:
    def test_flip_mid_process_does_not_serve_stale(self, cache_dir, monkeypatch):
        """Flipping ``REPRO_CONTEXT_CACHE`` mid-process must re-run the
        evaluation (fresh object), and the fresh run must be
        byte-identical to the replayed one."""
        monkeypatch.setenv(result_cache.CONTEXT_CACHE_ENV, "1")
        ctx = runner.get_context(WORKLOAD, events=EVENTS)
        replayed = ctx.evaluate(REGIME_COMPLETE)
        assert seccomp_replay.replays_served > 0
        monkeypatch.setenv(result_cache.CONTEXT_CACHE_ENV, "0")
        exact = ctx.evaluate(REGIME_COMPLETE)
        assert exact is not replayed  # memo keyed on the env knobs
        assert exact == replayed
        monkeypatch.setenv(result_cache.CONTEXT_CACHE_ENV, "1")
        assert ctx.evaluate(REGIME_COMPLETE) is replayed


class TestReplayDifferential:
    @pytest.mark.parametrize("workload", ["nginx", "pipe-ipc"])
    def test_replay_matches_exact_kernels(self, cache_dir, monkeypatch, workload):
        """The acceptance bar: results byte-identical with the context
        cache on (replay path) and off (exact kernels) for every
        regime."""
        with_cache = _evaluate_all(workload)
        assert seccomp_replay.replays_served > 0
        runner.reset_context_memos()
        monkeypatch.setenv(result_cache.CONTEXT_CACHE_ENV, "0")
        without_cache = _evaluate_all(workload)
        assert seccomp_replay.replays_served == 0
        assert with_cache == without_cache


class TestDiskRoundTrip:
    def test_second_process_loads_instead_of_building(self, cache_dir):
        first = _evaluate_all()
        # 3 sweeps (docker / noargs / complete) serve 5 replays: four
        # figure bars plus the calibration probe.
        assert seccomp_replay.sweeps_built == 3
        assert seccomp_replay.sweeps_loaded == 0
        assert seccomp_replay.replays_served == 5

        runner.reset_context_memos()  # "new process": only disk survives
        telemetry.reset_counters()
        second = _evaluate_all()
        assert second == first
        assert seccomp_replay.sweeps_built == 0
        assert seccomp_replay.sweeps_loaded == 3
        counters = telemetry.counters_snapshot()["context_cache"]
        for kind in ("trace", "bundle", "sweep", "calibration"):
            assert counters[kind]["hit"] > 0, kind
            assert "store" not in counters[kind], kind

    def test_summary_renders_context_cache_line(self, cache_dir):
        _evaluate_all()
        record = telemetry.ExperimentRecord(
            experiment_id="fig2", simulation=telemetry.counters_snapshot()
        )
        report = telemetry.RunReport(records=[record])
        assert report.context_cache()["sweep"]["store"] == 3
        summary = report.format_summary()
        assert "context cache:" in summary
        assert "REPRO_CONTEXT_CACHE" in summary


class TestBundlePayload:
    def test_round_trip_through_json(self, cache_dir):
        spec = CATALOG[WORKLOAD]
        bundle = runner._bundle_for(spec, DEFAULT_SEED)
        payload = json.loads(json.dumps(bundle_to_payload(bundle)))
        rebuilt = bundle_from_payload(payload, spec.name)
        assert rebuilt is not None
        assert rebuilt.noargs.name == bundle.noargs.name
        assert rebuilt.complete.name == bundle.complete.name
        assert rebuilt.noargs.rules == bundle.noargs.rules
        assert rebuilt.complete.rules == bundle.complete.rules

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {"noargs": 1, "complete": []},
            {"noargs": [0], "complete": [["x", []]]},
            {"noargs": [10**9], "complete": []},  # unknown sid
        ],
    )
    def test_malformed_payload_is_a_miss(self, payload):
        assert bundle_from_payload(payload, "w") is None


class TestFig2SharedReplay:
    def test_no_exact_seccomp_evaluations(self, cache_dir, monkeypatch):
        """fig2's Seccomp bars all replay shared sweeps: zero full-trace
        exact Seccomp runs (was 4 per workload + 1 calibration probe),
        well under the <=20-evaluation budget for the full catalog."""
        seccomp_runs = []
        real_run_trace = runner.run_trace

        def spy(trace, regime, **kwargs):
            if isinstance(regime, SeccompRegime):
                seccomp_runs.append(regime.name)
            return real_run_trace(trace, regime, **kwargs)

        monkeypatch.setattr(runner, "run_trace", spy)
        workloads = ("nginx", "pipe-ipc")
        with_cache = fig2_seccomp_overhead.run(events=EVENTS, workloads=workloads)
        assert seccomp_runs == []
        assert seccomp_replay.sweeps_built == 3 * len(workloads)
        assert seccomp_replay.replays_served == 5 * len(workloads)

        runner.reset_context_memos()
        monkeypatch.setenv(result_cache.CONTEXT_CACHE_ENV, "0")
        without_cache = fig2_seccomp_overhead.run(events=EVENTS, workloads=workloads)
        # repr-compare: the paper-target columns carry NaN placeholders,
        # which never compare equal to themselves.
        assert repr(with_cache.rows) == repr(without_cache.rows)
