"""Tests for the experiment layer: runner, calibration, result shapes.

These use short traces and a subset of workloads so the suite stays
fast; the benchmarks regenerate the full artifacts.
"""

import math

import pytest

from repro.common.errors import ConfigError
from repro.experiments import fig2_seccomp_overhead, fig13_hit_rates, fig15_security
from repro.experiments import table1_flows, table2_config, table3_hwcost
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import build_context, get_context
from repro.workloads.catalog import CATALOG, REGIME_COMPLETE

EVENTS = 3000
WORKLOADS = ("nginx", "pipe-ipc")


@pytest.fixture(scope="module")
def nginx_ctx():
    return get_context("nginx", events=EVENTS)


class TestCalibration:
    def test_complete_hits_target(self, nginx_ctx):
        """The calibration contract: syscall-complete lands on its
        Figure 2 target by construction."""
        target = nginx_ctx.spec.fig2_targets[REGIME_COMPLETE]
        measured = nginx_ctx.evaluate(REGIME_COMPLETE).normalized_time
        assert measured == pytest.approx(target, abs=0.02)

    def test_work_cycles_positive(self, nginx_ctx):
        assert nginx_ctx.work_cycles >= 20.0

    def test_missing_target_rejected(self):
        from repro.workloads.model import SyscallSpec, WorkloadSpec

        spec = WorkloadSpec(
            name="untargeted",
            kind="micro",
            description="",
            syscalls=(SyscallSpec("getpid", 1, ()),),
        )
        with pytest.raises(ConfigError):
            build_context(spec, events=100)

    def test_context_cached(self):
        assert get_context("nginx", events=EVENTS) is get_context("nginx", events=EVENTS)


class TestRegimeFactory:
    def test_unknown_regime(self, nginx_ctx):
        with pytest.raises(ConfigError):
            nginx_ctx.make_regime("quantum-draco")

    def test_fresh_instances(self, nginx_ctx):
        a = nginx_ctx.make_regime("syscall-complete")
        b = nginx_ctx.make_regime("syscall-complete")
        assert a is not b

    def test_regime_ordering(self, nginx_ctx):
        """The paper's headline ordering for one workload."""
        insecure = nginx_ctx.evaluate("insecure").normalized_time
        hw = nginx_ctx.evaluate("draco-hw-complete").normalized_time
        sw = nginx_ctx.evaluate("draco-sw-complete").normalized_time
        seccomp = nginx_ctx.evaluate("syscall-complete").normalized_time
        seccomp_2x = nginx_ctx.evaluate("syscall-complete-2x").normalized_time
        assert insecure == 1.0
        assert insecure < hw < sw < seccomp < seccomp_2x

    def test_hw_within_paper_bound(self, nginx_ctx):
        hw = nginx_ctx.evaluate("draco-hw-complete").normalized_time
        assert hw < 1.03

    def test_sw_draco_flat_across_2x(self, nginx_ctx):
        sw = nginx_ctx.evaluate("draco-sw-complete").normalized_time
        sw2x = nginx_ctx.evaluate("draco-sw-complete-2x").normalized_time
        assert abs(sw2x - sw) < 0.02


class TestExperimentResult:
    def test_format_table(self):
        result = ExperimentResult(
            experiment_id="X",
            title="demo",
            columns=("a", "b"),
            rows=((1, 2.5), ("x", 3.0)),
            notes=("hello",),
        )
        text = result.format_table()
        assert "demo" in text and "2.500" in text and "note: hello" in text

    def test_column_and_row_access(self):
        result = ExperimentResult("X", "t", ("k", "v"), (("a", 1), ("b", 2)))
        assert result.column("v") == (1, 2)
        assert result.row_dict("b") == {"k": "b", "v": 2}
        with pytest.raises(KeyError):
            result.row_dict("zzz")


class TestFig2Experiment:
    def test_subset_run(self):
        result = fig2_seccomp_overhead.run(events=EVENTS, workloads=WORKLOADS)
        assert result.experiment_id == "Fig 2"
        names = result.column("workload")
        assert "nginx" in names and "average-macro" in names
        row = result.row_dict("nginx")
        assert row["insecure"] == 1.0
        assert row["syscall-complete-2x"] > row["syscall-complete"] > row["syscall-noargs"]


class TestFig13Experiment:
    def test_hit_rates_in_range(self):
        result = fig13_hit_rates.run(events=EVENTS, workloads=("pipe-ipc",))
        row = result.row_dict("pipe-ipc")
        for key in ("stb_hit_rate", "slb_access_hit_rate", "slb_preload_hit_rate"):
            assert 0.0 <= row[key] <= 1.0
        assert row["stb_hit_rate"] > 0.95  # tiny, sticky workload


class TestFig15Experiment:
    def test_structure(self):
        result = fig15_security.run(events=EVENTS, workloads=WORKLOADS)
        linux = result.row_dict("linux")
        docker = result.row_dict("docker-default")
        nginx = result.row_dict("nginx")
        assert linux["syscalls_allowed"] > docker["syscalls_allowed"]
        assert docker["syscalls_allowed"] > 5 * nginx["syscalls_allowed"]
        assert nginx["argument_values_allowed"] > 50


class TestTableExperiments:
    def test_table1_covers_all_six_flows(self):
        result = table1_flows.run()
        flows = set(result.column("flow"))
        for flow in ("FLOW_1", "FLOW_2", "FLOW_3", "FLOW_4", "FLOW_5", "FLOW_6"):
            assert flow in flows

    def test_table1_fast_flows_are_cheap(self):
        result = table1_flows.run()
        for row in result.rows:
            entry = dict(zip(result.columns, row))
            if entry["paper_speed"] == "fast":
                assert entry["stall_cycles"] <= 10

    def test_table2_matches_paper(self):
        result = table2_config.run()
        for row in result.rows:
            parameter, configured, paper = row
            assert str(configured)  # present and formatted

    def test_table3_has_four_structures(self):
        result = table3_hwcost.run()
        assert len(result.rows) == 4
        for row in result.rows:
            entry = dict(zip(result.columns, row))
            assert entry["area_mm2"] == pytest.approx(entry["paper_area"], rel=0.05)


class TestRegistry:
    def test_registry_complete(self):
        from repro.experiments.registry import REGISTRY, by_id

        ids = {e.experiment_id for e in REGISTRY}
        assert {"fig2", "fig3", "fig11", "fig12", "fig13", "fig14", "fig15",
                "fig16", "fig17", "table1", "table2", "table3", "vat"} <= ids
        assert by_id("fig2").title
        with pytest.raises(KeyError):
            by_id("fig99")
