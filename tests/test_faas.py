"""Tests for the FaaS invocation-lifecycle model."""

import pytest

from repro.common.errors import ConfigError
from repro.kernel.faas import FaaSRunner, compare_deployments
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.workloads.startup import startup_events


def _function_trace(length=120):
    events = []
    for i in range(length):
        events.append(make_event("getrandom", (32, 0), pc=0x200))
        events.append(make_event("write", (1, 33), pc=0x204))
    return SyscallTrace(events[:length])


@pytest.fixture(scope="module")
def profile():
    recording = SyscallTrace(startup_events())
    recording.extend(_function_trace())
    return generate_complete(recording, "fn")


class TestRunner:
    def test_warm_reuses_one_pipeline(self, profile):
        runner = FaaSRunner(profile)
        stats = runner.run(_function_trace(), invocations=4, mode="warm")
        assert len(stats.invocations) == 4
        # Only the first invocation validates through the OS.
        assert stats.invocations[0].os_validations > 0
        assert all(inv.os_validations == 0 for inv in stats.invocations[2:])

    def test_cold_revalidates_every_time(self, profile):
        runner = FaaSRunner(profile)
        stats = runner.run(_function_trace(), invocations=4, mode="cold")
        assert all(inv.os_validations > 0 for inv in stats.invocations)

    def test_warm_cold_gap(self, profile):
        results = compare_deployments(profile, _function_trace(), invocations=5)
        assert results["cold"].mean_check_cycles > results["warm"].mean_check_cycles

    def test_cold_penalty_shrinks_with_longer_functions(self, profile):
        """Amortisation: longer invocations dilute the cold VAT build."""
        runner = FaaSRunner(profile)
        short = runner.run(_function_trace(40), invocations=3, mode="cold")
        long = runner.run(_function_trace(400), invocations=3, mode="cold")
        assert long.mean_check_cycles < short.mean_check_cycles

    def test_first_vs_steady_ratio(self, profile):
        runner = FaaSRunner(profile)
        warm = runner.run(_function_trace(), invocations=5, mode="warm")
        assert warm.first_vs_steady_ratio > 1.5  # cold start is visible
        cold = runner.run(_function_trace(), invocations=5, mode="cold")
        assert cold.first_vs_steady_ratio == pytest.approx(1.0, abs=0.3)

    def test_validation(self, profile):
        runner = FaaSRunner(profile)
        with pytest.raises(ConfigError):
            runner.run(_function_trace(), invocations=0)
        with pytest.raises(ConfigError):
            runner.run(_function_trace(), invocations=1, mode="tepid")

    def test_startup_can_be_excluded(self, profile):
        runner = FaaSRunner(profile, include_startup=False)
        stats = runner.run(_function_trace(60), invocations=1)
        assert stats.invocations[0].syscalls == 60
