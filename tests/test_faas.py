"""Tests for the FaaS invocation-lifecycle model."""

import pytest

from repro.common.errors import ConfigError
from repro.kernel.faas import FaaSRunner, compare_deployments
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.workloads.startup import startup_events


def _function_trace(length=120):
    events = []
    for i in range(length):
        events.append(make_event("getrandom", (32, 0), pc=0x200))
        events.append(make_event("write", (1, 33), pc=0x204))
    return SyscallTrace(events[:length])


@pytest.fixture(scope="module")
def profile():
    recording = SyscallTrace(startup_events())
    recording.extend(_function_trace())
    return generate_complete(recording, "fn")


#: Startup syscalls charged to a fresh process: the recorded sequence
#: minus the trailing exit_group (a serving worker never exits).
STARTUP_LEN = len(startup_events()) - 1


class TestRunner:
    def test_warm_reuses_one_pipeline(self, profile):
        runner = FaaSRunner(profile)
        stats = runner.run(_function_trace(), invocations=4, mode="warm")
        assert len(stats.invocations) == 4
        # Only the first invocation validates through the OS.
        assert stats.invocations[0].os_validations > 0
        assert all(inv.os_validations == 0 for inv in stats.invocations[1:])

    def test_warm_charges_startup_exactly_once(self, profile):
        """Regression: warm invocations used to replay process startup.

        Startup belongs to the worker process's lifetime, not to each
        invocation — invocation 2+ of a warm worker must run only the
        function trace."""
        trace = _function_trace()
        runner = FaaSRunner(profile)
        stats = runner.run(trace, invocations=4, mode="warm")
        assert stats.invocations[0].syscalls == len(trace) + STARTUP_LEN
        assert all(inv.syscalls == len(trace) for inv in stats.invocations[1:])
        # Cold mode starts a fresh process per invocation: every one
        # pays startup.
        cold = runner.run(trace, invocations=3, mode="cold")
        assert all(
            inv.syscalls == len(trace) + STARTUP_LEN for inv in cold.invocations
        )

    def test_cached_startup_and_programs_are_bit_identical(self, profile):
        """Hoisting startup_events() and compile_profile_chunked into
        cached attributes must not change a single stat."""
        from repro.seccomp.compiler import compile_profile_chunked
        from repro.seccomp.engine import SeccompKernelModule
        from repro.core.hardware import HardwareDraco
        from repro.core.software import build_process_tables

        class RecompilingRunner(FaaSRunner):
            def _fresh_pipeline(self):
                # The pre-caching behaviour: recompile per cold start,
                # re-list startup per invocation (via a fresh tuple).
                self._startup = tuple(startup_events()[:-1])
                module = SeccompKernelModule()
                for program in compile_profile_chunked(self.profile):
                    module.attach(program)
                return HardwareDraco(
                    build_process_tables(self.profile, table=self.profile.table),
                    module,
                    processor=self.processor,
                    hw=self.hw,
                    costs=self.costs,
                )

        trace = _function_trace()
        for mode in ("cold", "warm"):
            cached = FaaSRunner(profile).run(trace, invocations=3, mode=mode)
            recompiled = RecompilingRunner(profile).run(trace, invocations=3, mode=mode)
            assert cached == recompiled

    def test_cold_revalidates_every_time(self, profile):
        runner = FaaSRunner(profile)
        stats = runner.run(_function_trace(), invocations=4, mode="cold")
        assert all(inv.os_validations > 0 for inv in stats.invocations)

    def test_warm_cold_gap(self, profile):
        results = compare_deployments(profile, _function_trace(), invocations=5)
        assert results["cold"].mean_check_cycles > results["warm"].mean_check_cycles

    def test_cold_penalty_shrinks_with_longer_functions(self, profile):
        """Amortisation: longer invocations dilute the cold VAT build."""
        runner = FaaSRunner(profile)
        short = runner.run(_function_trace(40), invocations=3, mode="cold")
        long = runner.run(_function_trace(400), invocations=3, mode="cold")
        assert long.mean_check_cycles < short.mean_check_cycles

    def test_first_vs_steady_ratio(self, profile):
        runner = FaaSRunner(profile)
        warm = runner.run(_function_trace(), invocations=5, mode="warm")
        # With startup charged once (not replayed per invocation) the
        # steady mean drops, so the cold-start penalty is starker than
        # the pre-fix 1.5x.
        assert warm.first_vs_steady_ratio > 2.0
        cold = runner.run(_function_trace(), invocations=5, mode="cold")
        assert cold.first_vs_steady_ratio == pytest.approx(1.0, abs=0.3)

    def test_cold_start_gap_grew_with_the_startup_fix(self, profile):
        """The buggy runner replayed startup on every warm invocation,
        inflating steady per-invocation cost (and padding its syscall
        count with free warm replays).  Fixed, each steady invocation
        charges strictly less, so the first-vs-steady gap in cycles per
        invocation grows."""
        trace = _function_trace()
        runner = FaaSRunner(profile)
        fixed = runner.run(trace, invocations=5, mode="warm")
        # Reconstruct the buggy accounting on a single warm pipeline:
        # every invocation prefixed with the startup sequence.
        pipeline = runner._fresh_pipeline()
        buggy = [
            runner._run_invocation(pipeline, trace, index, fresh=True)
            for index in range(5)
        ]
        for fixed_inv, buggy_inv in zip(fixed.invocations[1:], buggy[1:]):
            assert fixed_inv.check_cycles < buggy_inv.check_cycles
            assert fixed_inv.syscalls < buggy_inv.syscalls
        fixed_gap = fixed.invocations[0].check_cycles / fixed.invocations[1].check_cycles
        buggy_gap = buggy[0].check_cycles / buggy[1].check_cycles
        assert fixed_gap > buggy_gap

    def test_validation(self, profile):
        runner = FaaSRunner(profile)
        with pytest.raises(ConfigError):
            runner.run(_function_trace(), invocations=0)
        with pytest.raises(ConfigError):
            runner.run(_function_trace(), invocations=1, mode="tepid")

    def test_startup_can_be_excluded(self, profile):
        runner = FaaSRunner(profile, include_startup=False)
        stats = runner.run(_function_trace(60), invocations=1)
        assert stats.invocations[0].syscalls == 60
