"""Differential tests for the compile-once BPF fast path.

The compiled closures must be observably indistinguishable from the
interpreter: same return value, same ``instructions_executed``, same
runtime errors — over randomized programs, randomized inputs, and the
real bundled profiles (docker-default, gVisor, Firecracker).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.compile import (
    CompiledFilter,
    WORD_ARGS,
    WORD_IP_LO,
    build_key_fn,
    compile_program,
    event_words,
    read_word_indices,
    words_of,
)
from repro.bpf.insn import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_DIV,
    BPF_IMM,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LSH,
    BPF_MEM,
    BPF_MISC,
    BPF_MOD,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BPF_X,
    BPF_XOR,
    jump,
    stmt,
)
from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import IP_OFFSET, NR_OFFSET, SeccompData, args_off
from repro.common.errors import BpfRuntimeError
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.profiles import build_docker_default, build_firecracker, build_gvisor
from repro.syscalls.events import SyscallEvent

# ---------------------------------------------------------------------------
# strategies


def _straight_insn(draw):
    """One non-jump, non-ret instruction."""
    kind = draw(
        st.sampled_from(
            ["ld_imm", "ld_abs", "ld_mem", "ldx_imm", "ldx_mem", "st", "stx",
             "tax", "txa", "alu_k", "alu_x", "neg"]
        )
    )
    k32 = draw(st.integers(0, 2**32 - 1))
    mem = draw(st.integers(0, 15))
    word = draw(st.integers(0, 15))
    if kind == "ld_imm":
        return stmt(BPF_LD | BPF_W | BPF_IMM, k32)
    if kind == "ld_abs":
        return stmt(BPF_LD | BPF_W | BPF_ABS, word * 4)
    if kind == "ld_mem":
        return stmt(BPF_LD | BPF_W | BPF_MEM, mem)
    if kind == "ldx_imm":
        return stmt(BPF_LDX | BPF_W | BPF_IMM, k32)
    if kind == "ldx_mem":
        return stmt(BPF_LDX | BPF_W | BPF_MEM, mem)
    if kind == "st":
        return stmt(BPF_ST, mem)
    if kind == "stx":
        return stmt(BPF_STX, mem)
    if kind == "tax":
        return stmt(BPF_MISC | BPF_TAX)
    if kind == "txa":
        return stmt(BPF_MISC | BPF_TXA)
    if kind == "neg":
        return stmt(BPF_ALU | BPF_NEG)
    ops = (BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_MOD, BPF_AND, BPF_OR,
           BPF_XOR, BPF_LSH, BPF_RSH)
    op = draw(st.sampled_from(ops))
    if kind == "alu_k":
        if op in (BPF_DIV, BPF_MOD):
            k32 = max(k32, 1)  # the verifier rejects constant zero divisors
        if op in (BPF_LSH, BPF_RSH):
            k32 = draw(st.integers(0, 40))
        return stmt(BPF_ALU | op | BPF_K, k32)
    # ALU with X operand: division by a zero X is a *runtime* error the
    # compiled code must reproduce, so it stays in the strategy.
    return stmt(BPF_ALU | op | BPF_X)


@st.composite
def programs(draw):
    """Random verifier-clean programs: a straight-line body sprinkled
    with forward conditional jumps, terminated by a RET (so every path
    returns)."""
    n = draw(st.integers(1, 24))
    insns = []
    for pc in range(n):
        remaining = n - pc - 1  # slots before the final RET
        if remaining >= 1 and draw(st.booleans()) and draw(st.booleans()):
            op = draw(st.sampled_from((BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET)))
            src = draw(st.sampled_from((BPF_K, BPF_X)))
            k = draw(st.integers(0, 2**32 - 1)) if src == BPF_K else 0
            jt = draw(st.integers(0, remaining - 1))
            jf = draw(st.integers(0, remaining - 1))
            insns.append(jump(BPF_JMP | op | src, k, jt, jf))
        else:
            insns.append(_straight_insn(draw))
    ret_a = draw(st.booleans())
    insns.append(
        stmt(BPF_RET | BPF_A)
        if ret_a
        else stmt(BPF_RET | BPF_K, draw(st.integers(0, 2**32 - 1)))
    )
    return insns


seccomp_datas = st.builds(
    SeccompData,
    nr=st.integers(0, 2**32 - 1),
    arch=st.integers(0, 2**32 - 1),
    instruction_pointer=st.integers(0, 2**64 - 1),
    args=st.tuples(*[st.integers(0, 2**64 - 1) for _ in range(6)]),
)


def _differential(program, data):
    """Run both engines; they must agree on result *or* on the error."""
    try:
        expected = run(program, data)
        expected_error = None
    except BpfRuntimeError as exc:
        expected = None
        expected_error = str(exc)
    compiled = compile_program(program)
    try:
        actual = compiled.run(data)
        actual_error = None
    except BpfRuntimeError as exc:
        actual = None
        actual_error = str(exc)
    assert (expected is None) == (actual is None), (
        f"error mismatch: interpreter={expected_error!r} compiled={actual_error!r}"
    )
    if expected is not None:
        assert actual.return_value == expected.return_value
        assert actual.instructions_executed == expected.instructions_executed


# ---------------------------------------------------------------------------
# randomized differential


class TestRandomizedDifferential:
    @settings(max_examples=300, deadline=None)
    @given(program=programs(), data=seccomp_datas)
    def test_compiled_matches_interpreter(self, program, data):
        _differential(program, data)

    @settings(max_examples=100, deadline=None)
    @given(data=seccomp_datas, divisor_op=st.sampled_from((BPF_DIV, BPF_MOD)))
    def test_division_by_x_zero_matches(self, data, divisor_op):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS, NR_OFFSET),
            stmt(BPF_LDX | BPF_W | BPF_IMM, 0),
            stmt(BPF_ALU | divisor_op | BPF_X),
            stmt(BPF_RET | BPF_A),
        ]
        with pytest.raises(BpfRuntimeError):
            run(program, data)
        with pytest.raises(BpfRuntimeError):
            compile_program(program).run(data)


# ---------------------------------------------------------------------------
# bundled-profile differential (the acceptance-criteria sweep)


@pytest.mark.parametrize(
    "builder", [build_docker_default, build_gvisor, build_firecracker]
)
@pytest.mark.parametrize("strategy", ["linear", "binary_tree"])
def test_bundled_profiles_differential(builder, strategy):
    profile = builder()
    sids = sorted({rule.sid for rule in profile.rules})
    probes = [
        SeccompData(nr=sid, args=(value, value, 0, 0, 0, 0))
        for sid in sids[:40] + sids[-10:]
        for value in (0, 1, 0x7E020000, 2**63)
    ] + [SeccompData(nr=999_999), SeccompData(nr=0, arch=0xDEAD)]
    for program in compile_profile_chunked(profile, strategy=strategy):
        compiled = compile_program(program)
        for data in probes:
            expected = run(program, data)
            actual = compiled.run(data)
            assert actual == expected


# ---------------------------------------------------------------------------
# word/key analysis


class TestWordAnalysis:
    def test_words_of_matches_load_u32(self):
        data = SeccompData(
            nr=3, arch=0xC000003E, instruction_pointer=0xABCDEF0123456789,
            args=(1, 2**40, 3, 4, 5, 2**64 - 1),
        )
        words = words_of(data)
        for index in range(16):
            assert words[index] == data.load_u32(index * 4)

    def test_event_words_matches_from_event(self):
        event = SyscallEvent(sid=7, args=(9, 2**33 + 1), pc=0x4000_1234)
        assert event_words(event) == words_of(SeccompData.from_event(event))

    def test_read_word_indices(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS, NR_OFFSET),
            stmt(BPF_LD | BPF_W | BPF_ABS, args_off(2)),
            stmt(BPF_RET | BPF_K, 0),
        ]
        assert read_word_indices(program) == frozenset({0, WORD_ARGS + 4})

    def test_key_distinguishes_ip_when_read(self):
        """Regression: the old (sid, args) memo key aliased events that
        differ only in the instruction pointer, which an IP-reading
        filter can distinguish."""
        key_fn = build_key_fn(frozenset({WORD_IP_LO}))
        a = SyscallEvent(sid=1, args=(), pc=0x1000)
        b = SyscallEvent(sid=1, args=(), pc=0x2000)
        assert key_fn(a) != key_fn(b)
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS, IP_OFFSET),
            jump(BPF_JMP | BPF_JEQ | BPF_K, 0x1000, 0, 1),
            stmt(BPF_RET | BPF_K, 0x7FFF0000),  # ALLOW
            stmt(BPF_RET | BPF_K, 0),           # KILL
        ]
        compiled = compile_program(program)
        assert (
            compiled.run(SeccompData.from_event(a)).return_value
            != compiled.run(SeccompData.from_event(b)).return_value
        )

    def test_key_ignores_unread_args(self):
        key_fn = build_key_fn(frozenset({0}))  # nr only
        a = SyscallEvent(sid=5, args=(1, 2, 3))
        b = SyscallEvent(sid=5, args=(9, 9, 9))
        assert key_fn(a) == key_fn(b)
        assert key_fn(a) != key_fn(SyscallEvent(sid=6, args=(1, 2, 3)))

    def test_key_splits_low_and_high_words(self):
        low_only = build_key_fn(frozenset({WORD_ARGS}))
        a = SyscallEvent(sid=1, args=(0x1_0000_0001,))
        b = SyscallEvent(sid=1, args=(0x2_0000_0001,))  # same low word
        assert low_only(a) == low_only(b)
        both = build_key_fn(frozenset({WORD_ARGS, WORD_ARGS + 1}))
        assert both(a) != both(b)


# ---------------------------------------------------------------------------
# compile cache


class TestCompileCache:
    def test_identical_programs_share_one_compilation(self):
        program = [stmt(BPF_RET | BPF_K, 0)]
        first = compile_program(program)
        second = compile_program(list(program))
        assert isinstance(first, CompiledFilter)
        assert second is first

    def test_source_is_inspectable(self):
        compiled = compile_program(
            [stmt(BPF_LD | BPF_W | BPF_ABS, NR_OFFSET), stmt(BPF_RET | BPF_A)]
        )
        assert "def _s0" in compiled.source
