"""Differential tests for the batched (run-length-encoded) simulation kernel.

The contract under test: with ``REPRO_BULK=1`` (the default) the
simulator consumes run-length-encoded ``(event, count)`` pairs and the
regimes take steady-state shortcuts, yet every ``RunResult`` — cycles,
flows, paths, ledger — is **byte-identical** to the literal per-event
path (``REPRO_BULK=0``).  These tests pin that equivalence across
regimes, workloads, the BPF fast-path toggle, the scheduler and the
multi-core system, plus the supporting pieces: run-length encoding,
pollution credit banking, shard merging and telemetry aggregation.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bulk import bulk_enabled
from repro.cpu.hierarchy import MemoryHierarchy
from repro.syscalls.events import iter_runs, make_event

WORKLOADS = ("nginx", "grep", "pipe-ipc")
REGIMES = (
    "insecure",
    "syscall-complete",
    "draco-sw-complete",
    "draco-hw-complete",
)


def _expand(runs):
    return [event for event, count in runs for _ in range(count)]


# -- run-length encoding ------------------------------------------------


class TestIterRuns:
    def test_coalesces_adjacent_equal_events(self):
        a = make_event("read", (3, 4096))
        b = make_event("write", (1, 128))
        events = [a, a, a, b, a, a]
        assert list(iter_runs(events)) == [(a, 3), (b, 1), (a, 2)]

    def test_empty_and_singleton(self):
        assert list(iter_runs([])) == []
        a = make_event("close", (3,))
        assert list(iter_runs([a])) == [(a, 1)]

    def test_equal_but_distinct_objects_coalesce(self):
        a = make_event("read", (3, 4096))
        b = make_event("read", (3, 4096))
        assert list(iter_runs([a, b])) == [(a, 2)]

    @given(st.lists(st.integers(0, 2), max_size=40))
    def test_roundtrip_and_maximality(self, picks):
        pool = [
            make_event("read", (3, 64)),
            make_event("write", (1, 64)),
            make_event("close", (9,)),
        ]
        events = [pool[i] for i in picks]
        runs = list(iter_runs(events))
        assert _expand(runs) == events
        # Maximality: no two adjacent runs carry the same event value.
        for (left, _), (right, _) in zip(runs, runs[1:]):
            assert left != right

    def test_trace_and_generator_agree_with_events(self):
        from repro.workloads.catalog import CATALOG
        from repro.workloads.generator import TraceGenerator

        # Two generators with one seed: the RNG is stateful per instance.
        runs = TraceGenerator(CATALOG["grep"], seed=11).iter_runs(500)
        events = TraceGenerator(CATALOG["grep"], seed=11).iter_events(500)
        assert _expand(runs) == list(events)


# -- pollution credit banking (satellite bugfix) ------------------------


def _cache_tags(cache):
    return [set(lines) for lines in cache._sets if lines]


def _hierarchy_state(h):
    return (
        dict(h._pollution_credit),
        _cache_tags(h.l1),
        _cache_tags(h.l2),
        _cache_tags(h.l3),
    )


def _warm_hierarchy():
    h = MemoryHierarchy()
    for address in range(0, 64 * 512, 64):
        h.access(address)
    return h


class TestPollutionCredit:
    def test_bulk_quantum_equals_split_quanta(self):
        # The fixed credit banking makes pollution k-linear: one call
        # with k*w cycles evicts exactly as much as k calls with w.
        a, b = _warm_hierarchy(), _warm_hierarchy()
        a.pollute(8 * 40_000)
        for _ in range(8):
            b.pollute(40_000)
        credit_a, *caches_a = _hierarchy_state(a)
        credit_b, *caches_b = _hierarchy_state(b)
        # Evictions (whole sweeps) match exactly; the banked fractional
        # credit agrees up to float summation order.
        assert caches_a == caches_b
        assert credit_a == pytest.approx(credit_b, abs=1e-12)

    def test_small_quanta_still_accumulate_pressure(self):
        # Regression: the pre-fix code zeroed the credit every call, so
        # quanta below one sweep's worth never evicted anything.
        h = _warm_hierarchy()
        before = sum(len(tags) for tags in _cache_tags(h.l1))
        for _ in range(400):
            h.pollute(1_000)
        after = sum(len(tags) for tags in _cache_tags(h.l1))
        assert after < before
        assert h._pollution_credit["L1"] > 0.0

    def test_pollute_repeat_is_bitwise_per_event(self):
        for work, count in ((37_123, 9), (1_000, 250), (60_000, 3)):
            a, b = _warm_hierarchy(), _warm_hierarchy()
            a.pollute_repeat(work, count)
            for _ in range(count):
                b.pollute(work)
            assert _hierarchy_state(a) == _hierarchy_state(b)

    def test_pollute_repeat_noop_edges(self):
        h = _warm_hierarchy()
        state = _hierarchy_state(h)
        h.pollute_repeat(0, 100)
        h.pollute_repeat(50_000, 0)
        assert _hierarchy_state(h) == state


# -- bulk_enabled parsing -----------------------------------------------


@pytest.mark.parametrize(
    "value,expected",
    [(None, True), ("1", True), ("yes", True), ("0", False), ("off", False),
     ("FALSE", False), ("no", False)],
)
def test_bulk_enabled_parsing(monkeypatch, value, expected):
    if value is None:
        monkeypatch.delenv("REPRO_BULK", raising=False)
    else:
        monkeypatch.setenv("REPRO_BULK", value)
    assert bulk_enabled() is expected


# -- differential: run_trace under REPRO_BULK=0 vs 1 --------------------


def _run_result_json(workload, regime_name, monkeypatch, *, bulk, fastpath=True):
    """One (workload, regime) simulation serialized for byte comparison."""
    from repro.experiments.runner import get_context

    monkeypatch.setenv("REPRO_BULK", "1" if bulk else "0")
    monkeypatch.setenv("REPRO_FASTPATH", "1" if fastpath else "0")
    # Run with the ledger and its conservation audit armed so any bulk
    # accounting drift raises inside evaluate() rather than comparing.
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_AUDIT", "1")
    ctx = get_context(workload, events=2_000, seed=7)
    result = ctx.evaluate(regime_name)
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("regime", REGIMES)
def test_bulk_run_results_byte_identical(workload, regime, monkeypatch):
    slow = _run_result_json(workload, regime, monkeypatch, bulk=False)
    fast = _run_result_json(workload, regime, monkeypatch, bulk=True)
    assert fast == slow


@pytest.mark.parametrize("regime", ("syscall-complete", "draco-sw-complete"))
def test_bulk_identity_survives_fastpath_toggle(regime, monkeypatch):
    # REPRO_BULK and REPRO_FASTPATH are independent axes: the bulk
    # identity must hold with the BPF code generator disabled too.
    slow = _run_result_json("grep", regime, monkeypatch, bulk=False, fastpath=False)
    fast = _run_result_json("grep", regime, monkeypatch, bulk=True, fastpath=False)
    assert fast == slow


def test_kill_switch_reaches_regimes(monkeypatch):
    from repro.experiments.runner import get_context

    monkeypatch.setenv("REPRO_BULK", "0")
    ctx = get_context("grep", events=500, seed=7)
    assert ctx.make_regime("syscall-complete")._bulk is False
    assert ctx.make_regime("draco-hw-complete")._bulk is False
    monkeypatch.setenv("REPRO_BULK", "1")
    assert ctx.make_regime("syscall-complete")._bulk is True
    assert ctx.make_regime("draco-hw-complete")._bulk is True


# -- differential: scheduler and multi-core -----------------------------


def _tenant_processes(events=1_500):
    from repro.kernel.scheduler import ScheduledProcess
    from repro.seccomp.toolkit import generate_complete
    from repro.workloads.catalog import CATALOG
    from repro.workloads.generator import TraceGenerator, profile_trace

    processes = []
    for index, name in enumerate(("nginx", "redis", "grep")):
        spec = CATALOG[name]
        profile = generate_complete(profile_trace(spec), name, table=spec.table)
        processes.append(
            ScheduledProcess(
                name=name,
                profile=profile,
                trace=TraceGenerator(spec, seed=11 + index).events(events),
                work_cycles_per_syscall=50_000.0,
            )
        )
    return processes


def _scheduler_snapshot(monkeypatch, *, bulk):
    from repro.kernel.scheduler import RoundRobinScheduler

    monkeypatch.setenv("REPRO_BULK", "1" if bulk else "0")
    scheduler = RoundRobinScheduler(_tenant_processes(), quantum_syscalls=150)
    run = scheduler.run()
    return json.dumps(
        {
            "per_process": run.per_process,
            "context_switches": run.context_switches,
            "flow_cycles": run.per_process_flow_cycles,
        },
        sort_keys=True,
    )


def test_scheduler_bulk_byte_identical(monkeypatch):
    slow = _scheduler_snapshot(monkeypatch, bulk=False)
    fast = _scheduler_snapshot(monkeypatch, bulk=True)
    assert fast == slow


def _multicore_snapshot(monkeypatch, *, bulk):
    from repro.kernel.multicore import MultiCoreSystem

    monkeypatch.setenv("REPRO_BULK", "1" if bulk else "0")
    system = MultiCoreSystem(cores=2, quantum_syscalls=150)
    for process in _tenant_processes(events=1_000):
        system.assign(process)
    run = system.run()
    return json.dumps(
        {
            "per_process": run.per_process,
            "per_core_switches": list(run.per_core_switches),
            "l3_hit_rate": run.l3_hit_rate,
            "flow_cycles": run.per_process_flow_cycles,
        },
        sort_keys=True,
    )


def test_multicore_bulk_byte_identical(monkeypatch):
    slow = _multicore_snapshot(monkeypatch, bulk=False)
    fast = _multicore_snapshot(monkeypatch, bulk=True)
    assert fast == slow


# -- property: splitting a run through check_run conserves outcomes -----


def _coalesce(segments):
    merged = []
    for outcome, count in segments:
        if merged and merged[-1][0] == outcome:
            merged[-1] = (outcome, merged[-1][1] + count)
        else:
            merged.append((outcome, count))
    return [
        (outcome.path, outcome.flow, outcome.cycles, count)
        for outcome, count in merged
    ]


@st.composite
def _splits(draw):
    total = draw(st.integers(1, 48))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, max(total - 1, 1)), max_size=4, unique=True
            )
        )
    ) if total > 1 else []
    parts, previous = [], 0
    for cut in cuts:
        parts.append(cut - previous)
        previous = cut
    parts.append(total - previous)
    return total, parts


@pytest.mark.parametrize(
    "regime_name", ("insecure", "syscall-complete", "draco-hw-complete")
)
@settings(max_examples=25, deadline=None)
@given(split=_splits(), event_index=st.integers(0, 9), prefix=st.integers(0, 8))
def test_check_run_split_conservation(regime_name, split, event_index, prefix):
    """check_run over any partition of a run yields the same coalesced
    outcome segments — and the same total count — as one whole call."""
    from repro.experiments.runner import get_context

    total, parts = split
    ctx = get_context("grep", events=400, seed=13)
    events = list(ctx.trace)
    event = events[event_index * 7 % len(events)]

    whole = ctx.make_regime(regime_name)
    pieces = ctx.make_regime(regime_name)
    # Drive both regimes through an identical prefix so the property
    # also covers warmed steady-state memos, not just cold structures.
    for warm_event in events[:prefix]:
        whole.check(warm_event)
        pieces.check(warm_event)

    work = ctx.work_cycles
    reference = list(whole.check_run(event, total, work))
    observed = []
    for part in parts:
        observed.extend(pieces.check_run(event, part, work))

    assert sum(count for _, count in observed) == total
    assert sum(count for _, count in reference) == total
    assert _coalesce(observed) == _coalesce(reference)


# -- engine sharding ----------------------------------------------------


class TestEngineSharding:
    def test_sharded_results_byte_identical(self, tmp_path):
        from repro.experiments import engine

        from repro.experiments import runner

        serial = engine.run_suite(
            ["fig13"], events=600, seed=5, jobs=1,
            cache_mode=engine.CACHE_OFF, cache_dir=str(tmp_path),
        )
        # The serial pass warms the per-context evaluation memos and
        # fork-based shard workers inherit them; clear so every shard
        # actually simulates and contributes telemetry to the merge.
        runner._cached_context.cache_clear()
        sharded = engine.run_suite(
            ["fig13"], events=600, seed=5, jobs=4,
            cache_mode=engine.CACHE_OFF, cache_dir=str(tmp_path),
        )
        assert sharded.results["fig13"].to_json() == serial.results["fig13"].to_json()
        record = sharded.report.records[0]
        assert record.ok
        # Merged telemetry spans every shard.
        assert record.simulation["traces_run"] >= len(
            serial.results["fig13"].rows
        )

    def test_sharded_run_populates_unsharded_cache(self, tmp_path):
        from repro.common import telemetry
        from repro.experiments import engine

        first = engine.run_suite(
            ["fig13"], events=500, seed=3, jobs=3,
            cache_mode=engine.CACHE_ON, cache_dir=str(tmp_path),
        )
        assert first.report.records[0].cache == telemetry.CACHE_MISS
        # The merged result was stored under the unsharded digest, so a
        # later *serial* run is a whole-result cache hit...
        serial = engine.run_suite(
            ["fig13"], events=500, seed=3, jobs=1,
            cache_mode=engine.CACHE_ON, cache_dir=str(tmp_path),
        )
        assert serial.report.records[0].cache == telemetry.CACHE_HIT
        assert serial.results["fig13"].to_json() == first.results["fig13"].to_json()
        # ...and so is a later sharded run (the pre-shard probe serves
        # the whole result instead of re-fanning out).
        sharded = engine.run_suite(
            ["fig13"], events=500, seed=3, jobs=3,
            cache_mode=engine.CACHE_ON, cache_dir=str(tmp_path),
        )
        assert sharded.report.records[0].cache == telemetry.CACHE_HIT
        assert sharded.results["fig13"].to_json() == first.results["fig13"].to_json()

    def test_explicit_workloads_override_disables_sharding(self, tmp_path):
        from repro.experiments import engine

        run = engine.run_suite(
            ["fig13"], events=400, seed=2, jobs=4,
            cache_mode=engine.CACHE_OFF, cache_dir=str(tmp_path),
            run_overrides={"fig13": {"workloads": ("grep", "redis")}},
        )
        result = run.results["fig13"]
        assert [row[0] for row in result.rows] == ["grep", "redis"]

    def test_merge_shard_rows_recomputes_averages(self):
        from repro.experiments.results import (
            ExperimentResult,
            average_rows_by_kind,
            merge_shard_rows,
        )

        def shard(name, kind, value):
            rows = [(name, kind, value)]
            rows.extend(average_rows_by_kind(rows, 3))
            return ExperimentResult(
                experiment_id="X",
                title="t",
                columns=("workload", "kind", "v"),
                rows=tuple(rows),
            )

        merged = merge_shard_rows(
            [shard("a", "macro", 1.25), shard("b", "macro", 1.35),
             shard("c", "micro", 2.0)],
            decimals=3,
        )
        assert merged.rows == (
            ("a", "macro", 1.25),
            ("b", "macro", 1.35),
            ("c", "micro", 2.0),
            ("average-macro", "macro", 1.3),
            ("average-micro", "micro", 2.0),
        )


# -- telemetry ----------------------------------------------------------


def test_merge_simulations_sums_and_rederives_run_length():
    from repro.common.telemetry import merge_simulations

    a = {
        "traces_run": 2, "events_simulated": 100, "warmup_events": 40,
        "runs_coalesced": 80, "mean_run_length": 1.25,
        "check_cycles": 10.5, "flows": {"seccomp": {"events": 60}},
    }
    b = {
        "traces_run": 1, "events_simulated": 50, "warmup_events": 20,
        "runs_coalesced": 20, "mean_run_length": 2.5,
        "check_cycles": 4.5, "flows": {"seccomp": {"events": 30}},
    }
    merged = merge_simulations([a, b])
    assert merged["traces_run"] == 3
    assert merged["events_simulated"] == 150
    assert merged["runs_coalesced"] == 100
    assert merged["check_cycles"] == 15.0
    assert merged["flows"]["seccomp"]["events"] == 90
    # Derived, not summed: recomputed from the merged totals.
    assert merged["mean_run_length"] == 1.5


def test_run_trace_records_runs_coalesced(monkeypatch):
    from repro.common import telemetry
    from repro.experiments.runner import get_context

    monkeypatch.setenv("REPRO_BULK", "1")
    telemetry.reset_counters()
    ctx = get_context("pipe-ipc", events=1_000, seed=9)
    ctx.evaluate("syscall-complete")
    snapshot = telemetry.counters_snapshot()
    assert 0 < snapshot["runs_coalesced"] <= snapshot["events_simulated"]
    assert snapshot["mean_run_length"] >= 1.0
