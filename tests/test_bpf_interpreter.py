"""Tests for the cBPF interpreter — semantics and instruction counting."""

import pytest

from repro.bpf.assembler import ProgramBuilder
from repro.bpf.insn import (
    BPF_A,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_DIV,
    BPF_IMM,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LSH,
    BPF_MEM,
    BPF_MISC,
    BPF_MOD,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BPF_X,
    BPF_XOR,
    jump,
    stmt,
)
from repro.bpf.interpreter import run, run_many
from repro.bpf.seccomp_data import NR_OFFSET, SeccompData, args_off
from repro.common.errors import BpfRuntimeError

DATA = SeccompData(nr=42, args=(7, 0xFFFFFFFF00000001))


def _run(insns, data=DATA):
    return run(insns, data)


class TestReturns:
    def test_ret_k(self):
        result = _run([stmt(BPF_RET | BPF_K, 123)])
        assert result.return_value == 123
        assert result.instructions_executed == 1

    def test_ret_a(self):
        program = [stmt(BPF_LD | BPF_W | BPF_IMM, 55), stmt(BPF_RET | BPF_A)]
        assert _run(program).return_value == 55


from repro.bpf.insn import BPF_ABS as BPF_ABS_  # noqa: E402


class TestLoads:
    def test_ld_abs_nr(self):
        program = [stmt(BPF_LD | BPF_W | BPF_ABS_, NR_OFFSET), stmt(BPF_RET | BPF_A)]
        assert _run(program).return_value == 42

    def test_ld_abs_arg_words(self):
        low = [stmt(BPF_LD | BPF_W | BPF_ABS_, args_off(1)), stmt(BPF_RET | BPF_A)]
        high = [stmt(BPF_LD | BPF_W | BPF_ABS_, args_off(1) + 4), stmt(BPF_RET | BPF_A)]
        assert _run(low).return_value == 0x00000001
        assert _run(high).return_value == 0xFFFFFFFF

    def test_scratch_store_load(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 9),
            stmt(BPF_ST, 3),
            stmt(BPF_LD | BPF_W | BPF_IMM, 0),
            stmt(BPF_LD | BPF_W | BPF_MEM, 3),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 9

    def test_ldx_and_misc(self):
        program = [
            stmt(BPF_LDX | BPF_W | BPF_IMM, 17),
            stmt(BPF_MISC | BPF_TXA),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 17

    def test_tax(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 5),
            stmt(BPF_MISC | BPF_TAX),
            stmt(BPF_LD | BPF_W | BPF_IMM, 0),
            stmt(BPF_ALU | BPF_ADD | BPF_X, 0),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 5


class TestAluOps:
    @pytest.mark.parametrize(
        "op,k,expected",
        [
            (BPF_ADD, 2, 12),
            (BPF_SUB, 3, 7),
            (BPF_MUL, 4, 40),
            (BPF_DIV, 3, 3),
            (BPF_MOD, 3, 1),
            (BPF_AND, 6, 2),
            (BPF_OR, 5, 15),
            (BPF_XOR, 2, 8),
            (BPF_LSH, 2, 40),
            (BPF_RSH, 1, 5),
        ],
    )
    def test_alu_k(self, op, k, expected):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 10),
            stmt(BPF_ALU | op | BPF_K, k),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == expected

    def test_neg(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 1),
            stmt(BPF_ALU | BPF_NEG, 0),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 0xFFFFFFFF

    def test_add_wraps_u32(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 0xFFFFFFFF),
            stmt(BPF_ALU | BPF_ADD | BPF_K, 2),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 1

    def test_shift_past_width(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_IMM, 1),
            stmt(BPF_ALU | BPF_LSH | BPF_K, 32),
            stmt(BPF_RET | BPF_A),
        ]
        assert _run(program).return_value == 0

    def test_div_by_zero_x_faults(self):
        program = [
            stmt(BPF_LDX | BPF_W | BPF_IMM, 0),
            stmt(BPF_LD | BPF_W | BPF_IMM, 4),
            stmt(BPF_ALU | BPF_DIV | BPF_X, 0),
            stmt(BPF_RET | BPF_A),
        ]
        with pytest.raises(BpfRuntimeError):
            _run(program)


class TestJumps:
    def test_jeq_taken_and_not(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS_, NR_OFFSET),
            jump(BPF_JMP | BPF_JEQ | BPF_K, 42, 0, 1),
            stmt(BPF_RET | BPF_K, 1),
            stmt(BPF_RET | BPF_K, 2),
        ]
        assert _run(program).return_value == 1
        assert _run(program, SeccompData(nr=7)).return_value == 2

    @pytest.mark.parametrize(
        "op,k,nr,expected",
        [
            (BPF_JGT, 41, 42, 1),
            (BPF_JGT, 42, 42, 2),
            (BPF_JGE, 42, 42, 1),
            (BPF_JGE, 43, 42, 2),
            (BPF_JSET, 0x2, 42, 1),  # 42 & 2 != 0
            (BPF_JSET, 0x1, 42, 2),
        ],
    )
    def test_compare_ops(self, op, k, nr, expected):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS_, NR_OFFSET),
            jump(BPF_JMP | op | BPF_K, k, 0, 1),
            stmt(BPF_RET | BPF_K, 1),
            stmt(BPF_RET | BPF_K, 2),
        ]
        assert _run(program, SeccompData(nr=nr)).return_value == expected

    def test_ja_skips(self):
        program = [
            stmt(BPF_JMP | BPF_JA, 1),
            stmt(BPF_RET | BPF_K, 1),
            stmt(BPF_RET | BPF_K, 2),
        ]
        assert _run(program).return_value == 2


class TestInstructionCounting:
    def test_counts_taken_path_only(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS_, NR_OFFSET),
            jump(BPF_JMP | BPF_JEQ | BPF_K, 42, 1, 0),
            stmt(BPF_LD | BPF_W | BPF_IMM, 0),  # skipped when nr == 42
            stmt(BPF_RET | BPF_K, 0),
        ]
        assert _run(program).instructions_executed == 3
        assert _run(program, SeccompData(nr=1)).instructions_executed == 4

    def test_run_many(self):
        program = [stmt(BPF_RET | BPF_K, 0)]
        results = run_many(program, [DATA, SeccompData(nr=1)])
        assert len(results) == 2


class TestBuilderIntegration:
    def test_assembled_program_runs(self):
        builder = ProgramBuilder()
        builder.ld_abs(NR_OFFSET)
        builder.jeq(42, "yes", "no")
        builder.label("yes")
        builder.ret_k(0xAA)
        builder.label("no")
        builder.ret_k(0xBB)
        program = builder.assemble()
        assert run(program, DATA).return_value == 0xAA
        assert run(program, SeccompData(nr=0)).return_value == 0xBB
