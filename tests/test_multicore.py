"""Tests for the multicore system model."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import ProcessorParams
from repro.kernel.multicore import MultiCoreSystem
from repro.kernel.scheduler import ScheduledProcess
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event


def _process(name, fd_base=3, events=300):
    trace = SyscallTrace(
        [
            make_event("read", (fd_base + i % 3, 100), pc=0x100 + fd_base)
            for i in range(events)
        ]
    )
    profile = generate_complete(trace, name)
    return ScheduledProcess(
        name=name, profile=profile, trace=trace, work_cycles_per_syscall=400.0
    )


class TestSharedL3:
    def test_hierarchies_share_one_l3(self):
        shared = SetAssociativeCache(ProcessorParams().l3)
        a = MemoryHierarchy(shared_l3=shared)
        b = MemoryHierarchy(shared_l3=shared)
        a.access(0x1234)       # DRAM fill through a
        a.l1.invalidate(0x1234)
        a.l2.invalidate(0x1234)
        assert b.access(0x1234).level == "L3"  # b sees a's fill

    def test_private_l1_l2(self):
        shared = SetAssociativeCache(ProcessorParams().l3)
        a = MemoryHierarchy(shared_l3=shared)
        b = MemoryHierarchy(shared_l3=shared)
        a.access(0x40)
        assert not b.l1.probe(0x40)
        assert not b.l2.probe(0x40)


class TestPlacement:
    def test_least_loaded_assignment(self):
        system = MultiCoreSystem(cores=2)
        assert system.assign(_process("a")) == 0
        assert system.assign(_process("b", fd_base=10)) == 1
        assert system.assign(_process("c", fd_base=20)) in (0, 1)

    def test_explicit_core(self):
        system = MultiCoreSystem(cores=3)
        assert system.assign(_process("a"), core=2) == 2

    def test_bad_core(self):
        system = MultiCoreSystem(cores=2)
        with pytest.raises(ConfigError):
            system.assign(_process("a"), core=5)

    def test_duplicate_name_rejected(self):
        system = MultiCoreSystem(cores=2)
        system.assign(_process("a"))
        with pytest.raises(ConfigError):
            system.assign(_process("a"), core=1)

    def test_needs_processes(self):
        with pytest.raises(ConfigError):
            MultiCoreSystem(cores=1).run()

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            MultiCoreSystem(cores=0)
        with pytest.raises(ConfigError):
            MultiCoreSystem(quantum_syscalls=0)


class TestExecution:
    def test_all_traces_complete(self):
        system = MultiCoreSystem(cores=2, quantum_syscalls=50)
        for index, name in enumerate("abcd"):
            system.assign(_process(name, fd_base=3 + 8 * index))
        result = system.run()
        assert result.total_syscalls == 4 * 300
        for process in system.processes:
            assert process.done

    def test_own_core_no_switches_when_one_process_per_core(self):
        system = MultiCoreSystem(cores=2, quantum_syscalls=50)
        system.assign(_process("a"), core=0)
        system.assign(_process("b", fd_base=10), core=1)
        result = system.run()
        assert result.per_core_switches == (0, 0)

    def test_sharing_a_core_switches(self):
        system = MultiCoreSystem(cores=1, quantum_syscalls=50)
        system.assign(_process("a"))
        system.assign(_process("b", fd_base=10))
        result = system.run()
        assert result.per_core_switches[0] > 0

    def test_dedicated_cores_cheaper_than_shared_core(self):
        """Giving each tenant its own core avoids the invalidation cost
        of time-sharing — Draco's per-core state stays warm."""
        dedicated = MultiCoreSystem(cores=2, quantum_syscalls=25)
        dedicated.assign(_process("a"), core=0)
        dedicated.assign(_process("b", fd_base=10), core=1)
        dedicated_result = dedicated.run()

        shared = MultiCoreSystem(cores=1, quantum_syscalls=25)
        shared.assign(_process("a"))
        shared.assign(_process("b", fd_base=10))
        shared_result = shared.run()

        dedicated_mean = sum(dedicated_result.per_process.values()) / 2
        shared_mean = sum(shared_result.per_process.values()) / 2
        assert dedicated_mean <= shared_mean

    def test_ten_core_default(self):
        system = MultiCoreSystem()
        assert len(system.cores) == 10

    def test_l3_stats_reported(self):
        system = MultiCoreSystem(cores=2, quantum_syscalls=100)
        system.assign(_process("a"))
        system.assign(_process("b", fd_base=10))
        result = system.run()
        assert 0.0 <= result.l3_hit_rate <= 1.0
