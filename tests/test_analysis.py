"""Tests for the analysis layer: locality, security, hardware cost."""

import pytest

from repro.analysis.hwcost import (
    PAPER_TABLE3,
    SramGeometry,
    draco_hardware_costs,
    sram_cost,
)
from repro.analysis.locality import analyze_locality, merge_reports, reuse_distances
from repro.analysis.security import (
    CONTAINER_RUNTIME_SYSCALLS,
    analyze_profile,
    argument_slots_checked,
)
from repro.cpu.params import DracoHwParams, SlbSubtableParams
from repro.seccomp.profiles import build_docker_default, build_firecracker
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event


@pytest.fixture
def trace():
    events = []
    for _ in range(10):
        events.append(make_event("read", (3, 100)))
        events.append(make_event("read", (3, 100)))
        events.append(make_event("write", (1, 64)))
        events.append(make_event("getppid"))
    return SyscallTrace(events)


class TestReuseDistances:
    def test_immediate_reuse_distance_zero(self):
        trace = SyscallTrace([make_event("read", (3, 1))] * 3)
        distances = reuse_distances(trace)
        assert distances[(0, (3, 0, 1))] == [0, 0]

    def test_interleaved_distance(self):
        trace = SyscallTrace(
            [
                make_event("read", (3, 1)),
                make_event("write", (1, 1)),
                make_event("write", (1, 2)),
                make_event("read", (3, 1)),
            ]
        )
        distances = reuse_distances(trace)
        assert distances[(0, (3, 0, 1))] == [2]

    def test_never_reused(self):
        trace = SyscallTrace([make_event("read", (3, 1)), make_event("read", (4, 1))])
        assert reuse_distances(trace) == {}


class TestLocalityReport:
    def test_fractions_sum_to_one(self, trace):
        report = analyze_locality(trace)
        assert sum(s.fraction for s in report.syscalls) == pytest.approx(1.0)

    def test_sorted_by_frequency(self, trace):
        report = analyze_locality(trace)
        assert report.syscalls[0].name == "read"
        fractions = [s.fraction for s in report.syscalls]
        assert fractions == sorted(fractions, reverse=True)

    def test_top_fraction(self, trace):
        report = analyze_locality(trace)
        assert report.top_fraction(1) == pytest.approx(0.5)
        assert report.top_fraction(10) == pytest.approx(1.0)

    def test_arg_set_fractions(self, trace):
        report = analyze_locality(trace)
        read = next(s for s in report.syscalls if s.name == "read")
        assert read.arg_set_fractions == (1.0,)

    def test_empty_trace(self):
        report = analyze_locality(SyscallTrace())
        assert report.total_calls == 0
        assert report.syscalls == ()

    def test_merge(self, trace):
        merged = merge_reports({"a": analyze_locality(trace), "b": analyze_locality(trace)})
        assert merged.total_calls == 2 * len(trace)
        assert sum(s.fraction for s in merged.syscalls) == pytest.approx(1.0)


class TestSecurityAnalysis:
    def test_docker_metrics(self):
        metrics = analyze_profile(build_docker_default())
        assert metrics.num_syscalls > 250
        assert metrics.num_argument_slots_checked == 2  # personality, clone
        assert metrics.num_argument_values_allowed == 6

    def test_app_profile_much_smaller(self, trace):
        app = analyze_profile(generate_complete(trace, "app"))
        docker = analyze_profile(build_docker_default())
        assert app.num_syscalls < docker.num_syscalls / 10

    def test_runtime_split(self, trace):
        metrics = analyze_profile(generate_complete(trace, "app"))
        assert metrics.num_runtime_syscalls >= 2  # read, write
        assert (
            metrics.num_application_syscalls
            == metrics.num_syscalls - metrics.num_runtime_syscalls
        )

    def test_argument_slots_distinct(self):
        profile = build_firecracker()
        assert argument_slots_checked(profile) == 5  # 5 distinct (sid, arg) slots

    def test_runtime_set_is_sane(self):
        assert "read" in CONTAINER_RUNTIME_SYSCALLS
        assert "mount" not in CONTAINER_RUNTIME_SYSCALLS


class TestHwCost:
    def test_matches_paper_at_design_point(self):
        costs = draco_hardware_costs()
        for name, paper in PAPER_TABLE3.items():
            ours = costs[name]
            assert ours.area_mm2 == pytest.approx(paper.area_mm2, rel=0.01)
            assert ours.access_time_ps == pytest.approx(paper.access_time_ps, rel=0.01)
            assert ours.dynamic_read_energy_pj == pytest.approx(
                paper.dynamic_read_energy_pj, rel=0.01
            )

    def test_all_sram_under_150ps(self):
        """The paper's 2-cycle access-time argument (Section XI-C)."""
        costs = draco_hardware_costs()
        for name in ("SPT", "STB", "SLB"):
            assert costs[name].access_time_ps < 150

    def test_scaling_with_size(self):
        """A doubled SLB must cost more area and leakage."""
        base = draco_hardware_costs()
        doubled = DracoHwParams(
            slb_subtables=tuple(
                SlbSubtableParams(s.arg_count, s.entries * 2, s.ways)
                for s in DracoHwParams().slb_subtables
            )
        )
        bigger = draco_hardware_costs(doubled)
        assert bigger["SLB"].area_mm2 > base["SLB"].area_mm2
        assert bigger["SLB"].leakage_power_mw > base["SLB"].leakage_power_mw

    def test_sram_cost_monotone_in_bits(self):
        small = sram_cost(SramGeometry("s", 64, 64))
        large = sram_cost(SramGeometry("l", 256, 64))
        assert large.area_mm2 > small.area_mm2
        assert large.access_time_ps > small.access_time_ps
