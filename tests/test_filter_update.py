"""Tests for runtime filter tightening (the coherence corner).

seccomp(2) lets a process attach additional filters at any time; every
cached validation must be flushed or the old, looser verdicts would
bypass the new filter — a security bug the flush prevents.
"""

import pytest

from repro.core.hardware import HardwareDraco
from repro.core.software import SoftwareDraco, build_process_tables
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event

PC = 0x100


def _loose_profile():
    trace = SyscallTrace(
        [make_event("read", (3, 100), pc=PC), make_event("read", (4, 100), pc=PC)]
    )
    return generate_complete(trace, "loose")


def _strict_program():
    """A second filter allowing only read(3, 100): read(4, ...) dies."""
    trace = SyscallTrace([make_event("read", (3, 100), pc=PC)])
    return compile_linear(generate_complete(trace, "strict"))


class TestSoftwareFlush:
    def test_stale_validation_never_survives_attach(self):
        profile = _loose_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = SoftwareDraco(build_process_tables(profile), module)

        victim = make_event("read", (4, 100), pc=PC)
        assert draco.check(victim).allowed          # validated and cached
        assert draco.check(victim).path == "vat_hit"

        draco.attach_additional_filter(_strict_program())
        assert not draco.check(victim).allowed      # no stale allow!

    def test_still_allowed_combinations_revalidate(self):
        profile = _loose_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = SoftwareDraco(build_process_tables(profile), module)
        survivor = make_event("read", (3, 100), pc=PC)
        draco.check(survivor)
        draco.attach_additional_filter(_strict_program())
        first = draco.check(survivor)
        assert first.allowed
        assert first.path == "filter_run"           # re-validated fresh
        assert draco.check(survivor).path == "vat_hit"

    def test_without_flush_would_be_a_bug(self):
        """Demonstrate the bug the flush prevents: attaching a filter
        directly to the module (bypassing the Draco-aware path) leaves a
        stale VAT entry that contradicts the module's own decision."""
        profile = _loose_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = SoftwareDraco(build_process_tables(profile), module)
        victim = make_event("read", (4, 100), pc=PC)
        draco.check(victim)
        module.attach(_strict_program())            # raw attach: no flush
        stale = draco.check(victim)
        assert stale.allowed                        # the cache lies...
        assert not module.check(victim).allowed     # ...the filter knows


class TestHardwareFlush:
    def test_stale_slb_and_vat_flushed(self):
        profile = _loose_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = HardwareDraco(build_process_tables(profile), module)

        victim = make_event("read", (4, 100), pc=PC)
        draco.on_syscall(victim)
        assert draco.on_syscall(victim).stall_cycles <= 10  # SLB-warm

        draco.attach_additional_filter(_strict_program())
        result = draco.on_syscall(victim)
        assert not result.allowed
        assert result.os_invoked

    def test_survivors_recover_through_os_path(self):
        profile = _loose_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = HardwareDraco(build_process_tables(profile), module)
        survivor = make_event("read", (3, 100), pc=PC)
        draco.on_syscall(survivor)
        draco.attach_additional_filter(_strict_program())
        first = draco.on_syscall(survivor)
        assert first.allowed and first.os_invoked   # revalidated by the OS
        warm = draco.on_syscall(survivor)
        assert warm.allowed and not warm.os_invoked
