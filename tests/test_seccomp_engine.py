"""Tests for the kernel Seccomp engine: stacking, accounting, memoization."""

import pytest

from repro.bpf.insn import BPF_K, BPF_RET, stmt
from repro.common.errors import BpfVerifyError
from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
)
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile, SyscallRule
from repro.syscalls.events import make_event
from repro.syscalls.table import sid

ALLOW_ALL = (stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW),)
KILL_ALL = (stmt(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS),)
ERRNO_ALL = (stmt(BPF_RET | BPF_K, SECCOMP_RET_ERRNO | 1),)


def _profile(names=("read", "write")):
    return SeccompProfile("t", [SyscallRule(sid=sid(n)) for n in names])


class TestAttach:
    def test_no_filters_allows(self):
        module = SeccompKernelModule()
        decision = module.check(make_event("read", (1, 2)))
        assert decision.allowed
        assert decision.instructions_executed == 0
        assert decision.filters_run == 0

    def test_attach_verifies(self):
        module = SeccompKernelModule()
        with pytest.raises(BpfVerifyError):
            module.attach(())

    def test_enabled_flag(self):
        module = SeccompKernelModule()
        assert not module.enabled
        module.attach(ALLOW_ALL)
        assert module.enabled

    def test_total_instructions(self):
        module = SeccompKernelModule()
        module.attach(ALLOW_ALL)
        module.attach(KILL_ALL)
        assert module.total_instructions == 2


class TestStacking:
    def test_most_restrictive_wins(self):
        module = SeccompKernelModule()
        module.attach(ALLOW_ALL)
        module.attach(KILL_ALL)
        assert not module.check(make_event("read", (1, 2))).allowed

    def test_errno_beats_allow(self):
        module = SeccompKernelModule()
        module.attach(ERRNO_ALL)
        module.attach(ALLOW_ALL)
        decision = module.check(make_event("read", (1, 2)))
        assert not decision.allowed
        assert decision.return_value == SECCOMP_RET_ERRNO | 1

    def test_all_filters_execute(self):
        """Real seccomp runs every attached filter on every syscall."""
        module = SeccompKernelModule()
        module.attach(ALLOW_ALL)
        module.attach(ALLOW_ALL)
        decision = module.check(make_event("read", (1, 2)))
        assert decision.filters_run == 2
        assert decision.instructions_executed == 2

    def test_2x_doubles_instruction_count(self):
        """The syscall-complete-2x construction (Section IV-A)."""
        program = compile_linear(_profile())
        once = SeccompKernelModule()
        once.attach(program)
        twice = SeccompKernelModule()
        twice.attach(program)
        twice.attach(program)
        event = make_event("write", (1, 2))
        assert (
            twice.check(event).instructions_executed
            == 2 * once.check(event).instructions_executed
        )


class TestMemoization:
    def test_memo_consistent(self):
        module = SeccompKernelModule(memoize=True)
        module.attach(compile_linear(_profile()))
        event = make_event("read", (1, 2))
        first = module.check(event)
        second = module.check(event)
        assert first == second

    def test_memo_matches_unmemoized(self):
        program = compile_linear(_profile())
        memoized = SeccompKernelModule(memoize=True)
        plain = SeccompKernelModule(memoize=False)
        memoized.attach(program)
        plain.attach(program)
        for event in (make_event("read", (1, 2)), make_event("mount"), make_event("write", (5, 5))):
            a = memoized.check(event)
            b = plain.check(event)
            assert (a.allowed, a.instructions_executed) == (b.allowed, b.instructions_executed)

    def test_attach_invalidates_memo(self):
        module = SeccompKernelModule(memoize=True)
        module.attach(ALLOW_ALL)
        event = make_event("read", (1, 2))
        assert module.check(event).allowed
        module.attach(KILL_ALL)
        assert not module.check(event).allowed
