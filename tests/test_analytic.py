"""Differential and property tests for the analytic steady-state backend.

The contract under test (see ``docs/PERFORMANCE.md``): with
``REPRO_ANALYTIC=1`` (the default) the simulator computes whole-window
costs from the trace's distinct-event histogram.  For history-free
regimes the result is **value-identical** to the exact kernels; for
hardware Draco the result is extrapolated from a simulated sample, is
flagged ``derived``, and its normalised-time error against the exact
kernel is bounded by the reported ``error_estimate`` (floored at
``HW_ERROR_FLOOR``).  Conservation — flow counts summing exactly to the
measured window — holds on every tier.
"""

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import analytic

#: History-free regimes: the analytic tier replays the histogram exactly.
EXACT_REGIMES = ("insecure", "syscall-complete", "draco-sw-complete")
EXACT_WORKLOADS = ("nginx", "grep", "pipe-ipc")

#: Sampled-tier workloads: the paper's worst cachers (elasticsearch,
#: redis), the slow hierarchy warmer (httpd) and a well-behaved server.
SAMPLED_WORKLOADS = ("httpd", "redis", "nginx")

#: Bound asserted on |nt_analytic - nt_exact| for sampled runs at
#: default event counts — the catalog-wide maximum observed is ~0.011.
SAMPLED_NT_TOLERANCE = 0.02


def _result(workload, regime_name, monkeypatch, *, analytic_on, events=2_000):
    from repro.experiments.runner import get_context

    monkeypatch.setenv("REPRO_ANALYTIC", "1" if analytic_on else "0")
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_AUDIT", "1")
    ctx = get_context(workload, events=events, seed=7)
    return ctx.evaluate(regime_name)


def _as_json(result):
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


# -- exact tier: value-identical to the RLE bulk kernel -----------------


@pytest.mark.parametrize("workload", EXACT_WORKLOADS)
@pytest.mark.parametrize("regime", EXACT_REGIMES)
def test_exact_tier_value_identical(workload, regime, monkeypatch):
    fast = _result(workload, regime, monkeypatch, analytic_on=True)
    assert fast.analytic is not None and fast.analytic.mode == "exact"
    assert not fast.derived
    slow = _result(workload, regime, monkeypatch, analytic_on=False)
    assert slow.analytic is None
    # Strip the provenance field; everything else must match exactly
    # (sort_keys makes the comparison insensitive to dict key order).
    fast_d = dataclasses.asdict(fast)
    slow_d = dataclasses.asdict(slow)
    fast_d.pop("analytic"), slow_d.pop("analytic")
    assert json.dumps(fast_d, sort_keys=True) == json.dumps(slow_d, sort_keys=True)


def test_exact_tier_identical_under_per_event_kernel(monkeypatch):
    # The analytic exact replay must agree with the *per-event* kernel
    # too, not just the RLE bulk kernel it usually displaces.
    monkeypatch.setenv("REPRO_BULK", "0")
    fast = _result("grep", "syscall-complete", monkeypatch, analytic_on=True)
    slow = _result("grep", "syscall-complete", monkeypatch, analytic_on=False)
    fast_d, slow_d = dataclasses.asdict(fast), dataclasses.asdict(slow)
    fast_d.pop("analytic"), slow_d.pop("analytic")
    assert json.dumps(fast_d, sort_keys=True) == json.dumps(slow_d, sort_keys=True)


def test_bitmap_regime_exact_identity(monkeypatch):
    from repro.experiments.runner import get_context
    from repro.kernel.simulator import run_trace
    from repro.seccomp.bitmap_cache import SeccompBitmapRegime

    monkeypatch.setenv("REPRO_LEDGER", "1")
    ctx = get_context("nginx", events=2_000, seed=7)
    snapshots = {}
    for analytic_on in (True, False):
        monkeypatch.setenv("REPRO_ANALYTIC", "1" if analytic_on else "0")
        regime = SeccompBitmapRegime(ctx.bundle.complete)
        result = run_trace(
            ctx.trace,
            regime,
            work_cycles_per_syscall=ctx.work_cycles,
            syscall_base_cycles=ctx.syscall_base_cycles,
            workload_name="nginx",
        )
        payload = dataclasses.asdict(result)
        payload.pop("analytic")
        snapshots[analytic_on] = (
            json.dumps(payload, sort_keys=True),
            regime.bitmap_hits,
            regime.filter_runs,
        )
    assert snapshots[True] == snapshots[False]


# -- sampled tier: bounded error, honest provenance ---------------------


@pytest.mark.parametrize("workload", SAMPLED_WORKLOADS)
def test_sampled_tier_bounded_error(workload, monkeypatch):
    fast = _result(
        workload, "draco-hw-complete", monkeypatch, analytic_on=True, events=12_000
    )
    slow = _result(
        workload, "draco-hw-complete", monkeypatch, analytic_on=False, events=12_000
    )
    assert fast.analytic is not None and fast.analytic.mode == "sampled"
    assert fast.derived and not slow.derived
    assert fast.analytic.events_simulated < slow.events_measured
    delta = abs(fast.normalized_time - slow.normalized_time)
    assert delta <= SAMPLED_NT_TOLERANCE
    # The reported estimate must bound the realised error — that is
    # what makes the `derived` flag honest.
    assert delta <= fast.analytic.error_estimate
    assert fast.analytic.error_estimate >= analytic.HW_ERROR_FLOOR


@pytest.mark.parametrize("analytic_on", (True, False))
def test_flow_conservation_both_tiers(analytic_on, monkeypatch):
    result = _result(
        "httpd", "draco-hw-complete", monkeypatch,
        analytic_on=analytic_on, events=12_000,
    )
    assert sum(result.flow_counts.values()) == result.events_measured


def test_short_traces_stay_exact(monkeypatch):
    # Below HW_MIN_EVENTS the sampled plan must decline and the exact
    # kernels run: unit-sized traces never see extrapolated numbers.
    result = _result(
        "httpd", "draco-hw-complete", monkeypatch, analytic_on=True, events=3_000
    )
    assert not result.derived
    assert result.analytic is None


# -- kill switch and backend seam ---------------------------------------


def test_kill_switch_disables_backend(monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTIC", "0")
    assert not analytic.analytic_enabled()
    assert analytic.resolve_backend() == "bulk"
    monkeypatch.setenv("REPRO_BULK", "0")
    assert analytic.resolve_backend() == "event"
    monkeypatch.delenv("REPRO_ANALYTIC")
    assert analytic.resolve_backend() == "analytic"


def test_resolve_backend_override_and_validation():
    assert analytic.resolve_backend("bulk") == "bulk"
    assert analytic.resolve_backend("event") == "event"
    assert analytic.resolve_backend("analytic") == "analytic"
    with pytest.raises(ValueError):
        analytic.resolve_backend("quantum")


def test_scheduler_backend_seam_degrades_identically(monkeypatch):
    # "analytic" degrades to the exact bulk kernel in the scheduler:
    # both spellings must produce byte-identical accounting.
    from repro.kernel.scheduler import RoundRobinScheduler, ScheduledProcess
    from repro.seccomp.toolkit import generate_complete
    from repro.workloads.catalog import CATALOG
    from repro.workloads.generator import generate_trace

    monkeypatch.setenv("REPRO_LEDGER", "1")

    def snapshot(backend):
        processes = []
        for name in ("grep", "pipe-ipc"):
            trace = list(generate_trace(CATALOG[name], 800, seed=3))
            from repro.syscalls.events import SyscallTrace

            strace = SyscallTrace(trace)
            processes.append(
                ScheduledProcess(
                    name=name,
                    profile=generate_complete(strace, name),
                    trace=strace,
                    work_cycles_per_syscall=200.0,
                )
            )
        sched = RoundRobinScheduler(processes, quantum_syscalls=100)
        result = sched.run(backend=backend)
        return json.dumps(
            {
                "per_process": result.per_process,
                "flows": result.per_process_flows,
                "cycles": result.per_process_flow_cycles,
                "switches": result.context_switches,
            },
            sort_keys=True,
        )

    assert snapshot("analytic") == snapshot("bulk")


def test_result_cache_keyed_on_analytic(monkeypatch, tmp_path):
    # Toggling REPRO_ANALYTIC must never serve a result computed by the
    # other tier from the on-disk cache: the digest carries the tier.
    from repro.experiments import cache

    store = cache.ResultCache(root=tmp_path)
    monkeypatch.setenv("REPRO_ANALYTIC", "1")
    on = store.result_key("fig12", {"events": 100})
    monkeypatch.setenv("REPRO_ANALYTIC", "0")
    off = store.result_key("fig12", {"events": 100})
    assert on != off


# -- RunTrace: the pre-coalesced trace container ------------------------


class TestRunTrace:
    def test_protocol_and_coalescing(self):
        from repro.syscalls.events import RunTrace, make_event

        a = make_event("read", (3, 64))
        b = make_event("write", (1, 64))
        t = RunTrace([(a, 3), (a, 2), (b, 1)])
        assert len(t) == 6
        assert list(t.iter_runs()) == [(a, 5), (b, 1)]
        assert list(t) == [a] * 5 + [b]
        assert t.unique_sids() == tuple(sorted({a.sid, b.sid}))

    def test_rejects_negative_runs(self):
        from repro.syscalls.events import RunTrace, make_event

        with pytest.raises(ValueError):
            RunTrace([(make_event("read", (3, 64)), -1)])

    def test_equivalent_to_expanded_trace(self, monkeypatch):
        from repro.experiments.runner import get_context
        from repro.kernel.simulator import run_trace
        from repro.syscalls.events import RunTrace, SyscallTrace, iter_runs

        monkeypatch.setenv("REPRO_LEDGER", "1")
        ctx = get_context("grep", events=1_500, seed=5)
        expanded = SyscallTrace(list(ctx.trace))
        coalesced = RunTrace(iter_runs(list(ctx.trace)))
        results = []
        for trace in (expanded, coalesced):
            regime = ctx.make_regime("syscall-complete")
            result = run_trace(
                trace,
                regime,
                work_cycles_per_syscall=ctx.work_cycles,
                syscall_base_cycles=ctx.syscall_base_cycles,
                workload_name="grep",
            )
            payload = dataclasses.asdict(result)
            payload.pop("analytic")
            results.append(json.dumps(payload, sort_keys=True))
        assert results[0] == results[1]


# -- plan sizing --------------------------------------------------------


def _windows(total, warmup, distinct, cold):
    """Synthetic TraceWindows: `distinct` values in the warm window plus
    `cold` first-seen values in the measured window."""
    warm_count = warmup // distinct
    warm = tuple((f"w{i}", warm_count) for i in range(distinct - 1))
    warm += ((f"w{distinct - 1}", warmup - warm_count * (distinct - 1)),)
    measured_total = total - warmup
    measured = tuple((f"c{i}", 1) for i in range(cold))
    rest = measured_total - cold
    measured += (("w0", rest),)
    return analytic.TraceWindows(
        total=total,
        warmup=warmup,
        warm=warm,
        measured=measured,
        distinct=distinct + cold,
        distinct_new_measured=cold,
    )


class TestPlanSampledWindow:
    def test_declines_short_traces(self):
        w = _windows(total=8_000, warmup=3_200, distinct=10, cold=0)
        assert analytic.plan_sampled_window(w) is None

    def test_plans_long_traces(self):
        w = _windows(total=12_000, warmup=4_800, distinct=10, cold=0)
        plan = analytic.plan_sampled_window(w)
        assert plan is not None and plan.mode == "sampled"
        assert analytic.HW_WARM_MIN <= plan.warm_events <= analytic.HW_WARM_CAP
        assert plan.sample_events <= analytic.HW_SAMPLE_CAP

    def test_declines_cold_dominated_windows(self):
        cold = int(0.3 * 7_200)
        w = _windows(total=12_000, warmup=4_800, distinct=10, cold=cold)
        assert analytic.plan_sampled_window(w) is None

    def test_transient_repeats_deterministic(self):
        w = _windows(total=12_000, warmup=4_800, distinct=10, cold=0)
        plan = analytic.plan_sampled_window(w, switch_period_events=3_800.0)
        assert plan is not None
        assert plan.transient_repeats == 12_000 // 3_800 - 4_800 // 3_800
        assert 0 < plan.transient_events <= analytic.HW_TRANSIENT_CAP

    def test_warm_shrinks_to_fit_tight_quantum(self):
        # A wide working set pushes warm to its cap; a quantum shorter
        # than warm+sample must shrink the warm prefix, not decline.
        w = _windows(total=12_000, warmup=4_800, distinct=2_000, cold=0)
        wide = analytic.plan_sampled_window(w, switch_period_events=30_000.0)
        tight = analytic.plan_sampled_window(w, switch_period_events=3_000.0)
        assert wide is not None and tight is not None
        assert tight.warm_events < wide.warm_events
        assert (
            tight.warm_events + tight.sample_events
            < analytic.HW_PERIOD_HEADROOM * 3_000.0
        )

    def test_declines_quantum_too_small_for_any_warm(self):
        w = _windows(total=12_000, warmup=4_800, distinct=10, cold=0)
        assert analytic.plan_sampled_window(w, switch_period_events=900.0) is None


# -- closed-form machinery: properties ----------------------------------


@given(
    st.lists(st.floats(0.01, 1.0), min_size=2, max_size=40),
    st.integers(1, 39),
)
@settings(max_examples=60, deadline=None)
def test_che_occupancy_matches_capacity(weights, capacity):
    total = sum(weights)
    probs = [w / total for w in weights]
    if capacity >= len(probs):
        assert analytic.steady_hit_rate(probs, capacity) == 1.0
        return
    t = analytic.che_characteristic_time(probs, capacity)
    occupancy = sum(1 - math.exp(-p * t) for p in probs)
    assert occupancy == pytest.approx(capacity, rel=1e-4)
    hit = analytic.steady_hit_rate(probs, capacity)
    assert 0.0 <= hit <= 1.0
    # Caching can never beat full residency or lose to random eviction
    # of the capacity share under a skew-free lower bound.
    assert hit >= capacity / len(probs) - 1e-9


@given(
    st.floats(1.0, 50.0),
    st.floats(10.0, 5_000.0),
    st.floats(0.1, 100.0),
)
@settings(max_examples=60, deadline=None)
def test_fixed_point_converges_on_contractions(base, budget, start):
    # q = budget / (base + budget/(1+q)) is a contraction on q > 0.
    f = lambda q: budget / (base + budget / (1.0 + q))
    q, iterations = analytic.fixed_point(f, start)
    assert iterations < 256
    assert f(q) == pytest.approx(q, rel=1e-6, abs=1e-6)


@given(
    st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
    st.integers(0, 1_000_000),
)
@settings(max_examples=100, deadline=None)
def test_scale_counts_exact_total_and_proportional(counts, target):
    if sum(counts) == 0:
        counts = counts + [1]
    scaled = analytic.scale_counts(counts, target)
    assert sum(scaled) == target
    assert all(s >= 0 for s in scaled)
    total = sum(counts)
    for raw, out in zip(counts, scaled):
        exact = raw * target / total
        # Largest-remainder rounding stays within one unit of exact.
        assert abs(out - exact) < 1.0 + 1e-9


@given(st.integers(0, 200), st.integers(0, 200), st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_ledger_conservation_under_tier_toggle(a, b, c):
    # Conservation is arithmetic, not statistical: scaled buckets always
    # re-sum to the target regardless of the mix.
    counts = [a, b, c]
    if sum(counts) == 0:
        counts = [1, 0, 0]
    target = a + 2 * b + 3 * c
    assert sum(analytic.scale_counts(counts, target)) == target
