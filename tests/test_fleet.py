"""Tests for the fleet-scale FaaS serving model and its experiment."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ledger
from repro.common.errors import ConfigError
from repro.kernel.fleet import (
    POLICIES,
    POLICY_ROUND_ROBIN,
    POLICY_SHORTEST,
    FleetParams,
    calibrate_classes,
    generate_load,
    simulate_fleet,
)


def _tiny(tenants=40, invocations=1500, **overrides):
    defaults = dict(
        tenants=tenants,
        invocations=invocations,
        function_classes=3,
        workers=12,
        max_containers=30,
        keep_alive_ms=200.0,
    )
    defaults.update(overrides)
    return FleetParams(**defaults)


@pytest.fixture(scope="module")
def tiny_run():
    params = _tiny()
    classes = calibrate_classes(params)
    load = generate_load(params)
    return params, classes, load


class TestLoadGeneration:
    def test_deterministic_and_sorted(self, tiny_run):
        params, _, load = tiny_run
        assert load == generate_load(params)
        assert len(load) == params.invocations
        assert all(a.arrival_ms <= b.arrival_ms for a, b in zip(load, load[1:]))

    def test_popularity_is_skewed(self, tiny_run):
        params, _, load = tiny_run
        counts = {}
        for inv in load:
            counts[inv.tenant] = counts.get(inv.tenant, 0) + 1
        hottest = max(counts.values())
        # Zipf(1.2) over 40 tenants: the head tenant dominates a
        # uniform share (1500/40 = 37.5) by a wide margin.
        assert hottest > 4 * params.invocations / params.tenants

    def test_durations_are_capped(self, tiny_run):
        params, _, load = tiny_run
        assert all(1 <= inv.reps <= params.max_reps for inv in load)

    def test_validation(self):
        with pytest.raises(ConfigError):
            generate_load(FleetParams(tenants=0))
        with pytest.raises(ConfigError):
            generate_load(FleetParams(workers=64, max_containers=10))
        with pytest.raises(ConfigError):
            simulate_fleet(_tiny(invocations=10), policy="fifo")


class TestConservation:
    """Fleet totals must equal the sum of per-tenant ledger buckets."""

    @settings(max_examples=8, deadline=None)
    @given(
        tenants=st.integers(2, 25),
        invocations=st.integers(10, 400),
        workers=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_fleet_equals_sum_of_tenants(self, tenants, invocations, workers, seed):
        params = FleetParams(
            tenants=tenants,
            invocations=invocations,
            seed=seed,
            function_classes=2,
            workers=workers,
            max_containers=workers + 4,
            keep_alive_ms=100.0,
        )
        result = simulate_fleet(params, record_telemetry=False)
        merged = ledger.FlowLedger()
        for tenant in result.per_tenant:
            merged.merge(ledger.FlowLedger(tenant.flow_counts, tenant.flow_cycles))
        assert merged.counts == result.flow_counts
        assert result.syscalls == merged.total_events()
        assert sum(t.syscalls for t in result.per_tenant) == result.syscalls
        want = merged.total_cycles()
        assert result.check_cycles == pytest.approx(want, rel=ledger.CYCLE_RTOL)
        assert sum(t.invocations for t in result.per_tenant) == invocations

    def test_counter_consistency(self, tiny_run):
        params, classes, load = tiny_run
        for policy in POLICIES:
            result = simulate_fleet(
                params, policy, classes=classes, load=load, record_telemetry=False
            )
            counters = result.counters
            assert counters["cold_starts"] + counters["warm_starts"] == len(load)
            assert counters["spawns"] == counters["cold_starts"]
            # Every spawned container is either evicted, expired, or
            # still resident when the simulation drains.
            assert (
                counters["idle_remaining"]
                == counters["spawns"]
                - counters["evictions"]
                - counters["keepalive_expiries"]
            )
            assert 0 <= counters["idle_remaining"] <= params.max_containers
            assert counters["peak_containers"] <= params.max_containers
            assert counters["peak_busy"] <= params.workers
            assert counters["active_tenants"] == len(result.per_tenant)


class TestServing:
    def test_deterministic_under_fixed_seed(self, tiny_run):
        params, classes, load = tiny_run
        first = simulate_fleet(params, classes=classes, load=load, record_telemetry=False)
        second = simulate_fleet(params, record_telemetry=False)  # recompute inputs
        assert first.to_json_dict() == second.to_json_dict()

    def test_shortest_task_cuts_queueing_under_overload(self):
        """The serverless scheduler ablation: with heavy-tailed
        durations and an overloaded pool, shortest-expected-task
        dispatch beats FIFO on mean wait (classic SJF result)."""
        params = _tiny(tenants=30, invocations=2500, workers=4, max_containers=12)
        classes = calibrate_classes(params)
        load = generate_load(params)
        rr = simulate_fleet(
            params, POLICY_ROUND_ROBIN, classes=classes, load=load,
            record_telemetry=False,
        )
        sjf = simulate_fleet(
            params, POLICY_SHORTEST, classes=classes, load=load,
            record_telemetry=False,
        )
        assert rr.wait_ms["mean"] > 0  # genuinely overloaded
        assert sjf.wait_ms["mean"] < rr.wait_ms["mean"]
        assert sjf.wait_ms["p50"] <= rr.wait_ms["p50"]
        # Same arrivals either way.
        assert sjf.invocations == rr.invocations

    def test_keep_alive_expires_idle_containers(self):
        params = _tiny(invocations=800, keep_alive_ms=5.0)
        result = simulate_fleet(params, record_telemetry=False)
        assert result.counters["keepalive_expiries"] > 0

    def test_cold_resume_storms_detected(self):
        # Frequent lulls longer than keep-alive force cold restarts in
        # tight windows.
        params = _tiny(
            invocations=2000,
            keep_alive_ms=50.0,
            lull_every=300,
            storm_window_ms=100.0,
            storm_threshold=5,
        )
        result = simulate_fleet(params, record_telemetry=False)
        assert result.counters["cold_resume_storms"] >= 1
        assert result.counters["max_cold_in_window"] >= params.storm_threshold

    def test_footprint_extrapolation(self, tiny_run):
        params, classes, load = tiny_run
        result = simulate_fleet(
            params, classes=classes, load=load, record_telemetry=False
        )
        per_container = result.footprint["bytes_per_container"]
        assert per_container > 0
        assert result.footprint["extrapolated_gb"] == pytest.approx(
            per_container * params.target_containers / 1024**3
        )
        assert result.footprint["fleet_peak_bytes"] == sum(
            t.footprint_peak_bytes for t in result.per_tenant
        )

    def test_scaling_is_linear_not_quadratic(self):
        """O(N) smoke: 5000 mostly-idle tenants must finish quickly —
        the fleet loops never rescan the whole tenant population."""
        params = FleetParams(
            tenants=5000,
            invocations=10_000,
            function_classes=2,
            workers=32,
            max_containers=64,
            keep_alive_ms=50.0,
        )
        classes = calibrate_classes(params)
        load = generate_load(params)
        started = time.perf_counter()
        result = simulate_fleet(
            params, classes=classes, load=load, record_telemetry=False
        )
        elapsed = time.perf_counter() - started
        assert result.invocations == 10_000
        assert elapsed < 20.0  # generous CI bound; locally ~0.2s


class TestTelemetry:
    def test_record_fleet_counters(self):
        from repro.common import telemetry

        telemetry.reset_counters()
        try:
            params = _tiny(invocations=300)
            simulate_fleet(params)
            snapshot = telemetry.counters_snapshot()
            fleet = snapshot["fleet"][POLICY_ROUND_ROBIN]
            assert fleet["invocations"] == 300
            assert fleet["cold_starts"] + fleet["warm_starts"] == 300
            regime = f"fleet-{POLICY_ROUND_ROBIN}"
            assert snapshot["regime_events"][regime] > 0
            flows = snapshot["flows"][regime]
            assert flows["events"] == sum(flows["counts"].values())
        finally:
            telemetry.reset_counters()


class TestExperiment:
    def test_flat_matches_staged_and_stages_dedupe(self, tmp_path, monkeypatch):
        from repro.experiments.engine import run_suite

        monkeypatch.setenv("REPRO_STAGE_GRAPH", "1")
        staged = run_suite(["fleet"], events=1200, cache_dir=str(tmp_path))
        record = staged.outcomes[0].record
        stages = record.simulation["stages"]
        assert stages["counters"]["executed"] == 5
        assert stages["counters"]["stored"] == 5
        kinds = {row["kind"] for row in stages["detail"]}
        assert {"fleet-load", "fleet-calibration", "fleet-eval", "analysis"} <= kinds

        # Refresh: intermediates dedupe on disk, only analysis re-runs.
        refreshed = run_suite(
            ["fleet"], events=1200, cache_dir=str(tmp_path), cache_mode="refresh"
        )
        counters = refreshed.outcomes[0].record.simulation["stages"]["counters"]
        assert counters["hit"] == 4
        assert counters["executed"] == 1

        monkeypatch.setenv("REPRO_STAGE_GRAPH", "0")
        flat = run_suite(["fleet"], events=1200, cache_mode="off")
        assert (
            flat.results["fleet"].format_table()
            == staged.results["fleet"].format_table()
        )

    def test_summary_renders_fleet_counters(self):
        from repro.experiments.engine import run_suite

        run = run_suite(["fleet"], events=1200, cache_mode="off")
        summary = run.report.format_summary()
        assert "fleet[round-robin]" in summary
        assert "cold-resume storm" in summary
        assert run.report.fleet()[POLICY_SHORTEST]["invocations"] == 1200

    def test_default_params_meet_fleet_scale(self):
        from repro.experiments.fleet_serving import resolve_params

        params = resolve_params()
        assert params.tenants >= 1000
        assert params.invocations >= 100_000
        # Engine smoke runs scale down with the events knob.
        small = resolve_params(events=1200)
        assert small.invocations == 1200
        assert small.tenants < 100
