"""Differential gate for the fleet-capable scheduling-loop refactor.

PR 9 replaced the O(N²) ``while any(not p.done …)`` + full-queue
rescans in :meth:`RoundRobinScheduler.run` and
:meth:`MultiCoreSystem.run` (and the O(N) duplicate-name probe in
:meth:`MultiCoreSystem.assign`) with done-set / rotation bookkeeping.
These tests re-run the *historical* loop bodies — copied verbatim from
the pre-refactor code, driving the same public quantum machinery — and
assert the :class:`ScheduleResult` / :class:`MultiCoreResult` payloads
are byte-identical on the existing test fleets.
"""

from repro.common import analytic as analytic_backend
from repro.common import ledger
from repro.kernel.multicore import MultiCoreSystem
from repro.kernel.scheduler import (
    DracoCore,
    QuantumRecord,
    RoundRobinScheduler,
    ScheduledProcess,
    ScheduleResult,
    _drive_quantum,
)
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event


def _process(name, fds=(3, 4), events=400, work=500.0):
    trace = SyscallTrace(
        [make_event("read", (fds[i % len(fds)], 100), pc=0x100) for i in range(events)]
    )
    profile = generate_complete(trace, name)
    return ScheduledProcess(
        name=name, profile=profile, trace=trace, work_cycles_per_syscall=work
    )


def _mixed_fleet():
    """Uneven trace lengths (staggered completion) plus an already-done
    process — the shapes where loop bookkeeping can drift."""
    return [
        _process("a", events=400),
        _process("b", fds=(7, 8), events=150),
        _process("c", fds=(5, 6), events=730),
        _process("empty", events=0),
        _process("d", fds=(9, 10), events=95),
    ]


def _reference_round_robin(
    processes, quantum, strict=True, backend=None
) -> ScheduleResult:
    """The pre-refactor RoundRobinScheduler.run loop, verbatim."""
    core = DracoCore()
    total = 0
    timelines = ledger.enabled()
    bulk = analytic_backend.resolve_backend(backend) != "event"
    while any(not p.done for p in processes):
        for process in processes:
            if process.done:
                continue
            pipeline = core.schedule(process)
            cold = core.last_schedule_cold
            quantum_start = process.syscalls_run
            cycles_start = process.check_cycles
            end = min(process.cursor + quantum, len(process.trace))
            total += _drive_quantum(
                pipeline, core.hierarchy, process, end, strict, bulk
            )
            if timelines:
                process.quanta.append(
                    QuantumRecord(
                        syscalls=process.syscalls_run - quantum_start,
                        check_cycles=process.check_cycles - cycles_start,
                        cold=cold,
                    )
                )
    return ScheduleResult(
        per_process={p.name: p.mean_check_cycles for p in processes},
        context_switches=core.context_switches,
        total_syscalls=total,
        per_process_flows={p.name: dict(p.flow_counts) for p in processes},
        per_process_flow_cycles={p.name: dict(p.flow_cycles) for p in processes},
    )


def _reference_multicore_run(system, strict=True, backend=None):
    """The pre-refactor MultiCoreSystem.run loop, verbatim (cursor scan
    over the full queue, tuple-rebuilding loop condition)."""
    total = 0
    bulk = analytic_backend.resolve_backend(backend) != "event"
    cursors = [0] * len(system.cores)
    while any(not p.done for p in system.processes):
        progressed = False
        for core_index, core in enumerate(system.cores):
            queue = system._run_queues[core_index]
            if not queue:
                continue
            for offset in range(len(queue)):
                candidate = queue[(cursors[core_index] + offset) % len(queue)]
                if not candidate.done:
                    cursors[core_index] = (
                        cursors[core_index] + offset + 1
                    ) % len(queue)
                    total += system._run_quantum(core, candidate, strict, bulk)
                    progressed = True
                    break
        if not progressed:
            break
    from repro.kernel.multicore import MultiCoreResult

    l3_total = system.shared_l3.hits + system.shared_l3.misses
    return MultiCoreResult(
        per_process={p.name: p.mean_check_cycles for p in system.processes},
        per_core_switches=tuple(core.context_switches for core in system.cores),
        total_syscalls=total,
        l3_hit_rate=system.shared_l3.hits / l3_total if l3_total else 0.0,
        per_process_flows={p.name: dict(p.flow_counts) for p in system.processes},
        per_process_flow_cycles={
            p.name: dict(p.flow_cycles) for p in system.processes
        },
    )


class TestRoundRobinDifferential:
    def test_byte_identical_on_mixed_fleet(self):
        for backend in ("bulk", "event"):
            reference = _reference_round_robin(
                _mixed_fleet(), quantum=100, backend=backend
            )
            refactored = RoundRobinScheduler(
                _mixed_fleet(), quantum_syscalls=100
            ).run(backend=backend)
            assert refactored == reference

    def test_byte_identical_quantum_sweep(self):
        for quantum in (1, 37, 200, 10_000):
            reference = _reference_round_robin(_mixed_fleet(), quantum=quantum)
            refactored = RoundRobinScheduler(
                _mixed_fleet(), quantum_syscalls=quantum
            ).run()
            assert refactored == reference

    def test_quantum_timelines_match(self):
        fleet_a, fleet_b = _mixed_fleet(), _mixed_fleet()
        _reference_round_robin(fleet_a, quantum=64)
        RoundRobinScheduler(fleet_b, quantum_syscalls=64).run()
        for left, right in zip(fleet_a, fleet_b):
            assert left.quanta == right.quanta
            assert left.check_cycles == right.check_cycles


def _mixed_system(cores=3, quantum=100):
    system = MultiCoreSystem(cores=cores, quantum_syscalls=quantum)
    system.assign(_process("a", events=300))
    system.assign(_process("b", fds=(7, 8), events=120))
    system.assign(_process("c", fds=(5, 6), events=470))
    system.assign(_process("empty", events=0))
    system.assign(_process("d", fds=(9, 10), events=45))
    system.assign(_process("e", fds=(11, 12), events=210))
    return system


class TestMultiCoreDifferential:
    def test_byte_identical_on_mixed_system(self):
        for backend in ("bulk", "event"):
            reference = _reference_multicore_run(_mixed_system(), backend=backend)
            refactored = _mixed_system().run(backend=backend)
            assert refactored == reference

    def test_byte_identical_single_core_contention(self):
        system = MultiCoreSystem(cores=1, quantum_syscalls=33)
        for name, events in (("a", 200), ("b", 77), ("c", 0), ("d", 310)):
            system.assign(_process(name, fds=(3 + len(name), 4), events=events))
        reference_system = MultiCoreSystem(cores=1, quantum_syscalls=33)
        for name, events in (("a", 200), ("b", 77), ("c", 0), ("d", 310)):
            reference_system.assign(
                _process(name, fds=(3 + len(name), 4), events=events)
            )
        assert system.run() == _reference_multicore_run(reference_system)
