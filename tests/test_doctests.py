"""Run the module doctests that document the kernel fast paths.

``repro.common.analytic`` and ``repro.common.bulk`` carry executable
examples in their docstrings (the closed-form helpers, the plan sizing
rules, the kill-switch semantics).  Wiring them into pytest keeps the
documentation honest: an example that drifts from the code fails CI.
"""

from __future__ import annotations

import doctest

import pytest


@pytest.mark.parametrize(
    "module_name",
    ["repro.common.analytic", "repro.common.bulk", "repro.common.memo"],
)
def test_module_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctests to run"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest(s) failed"
