"""Tests for the per-flow cycle-accounting ledger and its audits.

Covers the ledger primitives (`repro.common.ledger`), the simulator's
conservation invariant across every regime (with the BPF fast path on
and off), the per-process attribution in the scheduler/multicore
models, the telemetry flows block and its renderers, and regressions
for the warm-up, summary-rendering, and SLB-fill bugfixes.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import ledger, telemetry
from repro.common.errors import SimulationError
from repro.common.telemetry import ExperimentRecord, RunReport
from repro.core.slb import SlbSubtable
from repro.cpu.params import SlbSubtableParams
from repro.kernel.multicore import MultiCoreSystem
from repro.kernel.regimes import (
    DracoHwRegime,
    DracoSwRegime,
    InsecureRegime,
    SeccompRegime,
)
from repro.kernel.scheduler import RoundRobinScheduler, ScheduledProcess
from repro.kernel.simulator import run_trace
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.tools import flowreport


def _trace(events=300, fd_base=3):
    out = []
    for i in range(events):
        out.append(make_event("read", (fd_base + i % 8, 100), pc=0x100))
        out.append(make_event("write", (1, 64 + 8 * (i % 6)), pc=0x200))
        out.append(make_event("epoll_wait", (4, 512, 100), pc=0x300))
    return SyscallTrace(out)


# ---------------------------------------------------------------------------
# FlowLedger primitives


class TestFlowLedger:
    def test_record_and_totals(self):
        led = ledger.FlowLedger()
        led.record(ledger.FLOW_HW_1, 2.0)
        led.record(ledger.FLOW_HW_1, 2.0)
        led.record(ledger.FLOW_HW_6, 7.5)
        assert led.total_events() == 3
        assert led.total_cycles() == 11.5
        assert led.counts[ledger.FLOW_HW_1] == 2

    def test_merge_and_snapshot_are_independent(self):
        a = ledger.FlowLedger()
        a.record(ledger.FLOW_NONE, 0.0)
        snap = a.snapshot()
        a.record(ledger.FLOW_NONE, 1.0)
        assert snap.total_events() == 1
        b = ledger.FlowLedger()
        b.merge(a)
        b.merge(snap)
        assert b.total_events() == 3

    def test_roundtrip_dict(self):
        led = ledger.FlowLedger({"hw.flow1": 2}, {"hw.flow1": 4.125})
        again = ledger.FlowLedger.from_dict(led.as_dict())
        assert again.counts == led.counts and again.cycles == led.cycles

    def test_audit_totals_passes_exactly(self):
        led = ledger.FlowLedger()
        for i in range(100):
            led.record(ledger.FLOW_SW_VAT_HIT, 0.1 * i)
        led.audit_totals(100, led.total_cycles(), scope="t")

    def test_audit_totals_count_drift_raises(self):
        led = ledger.FlowLedger({"none": 3}, {"none": 0.0})
        with pytest.raises(ledger.ConservationError, match="flow counts sum to 3"):
            led.audit_totals(4, 0.0, scope="t")

    def test_audit_totals_cycle_drift_raises(self):
        led = ledger.FlowLedger({"none": 1}, {"none": 2.0})
        with pytest.raises(ledger.ConservationError, match="per-flow cycles"):
            led.audit_totals(1, 3.0, scope="t")

    def test_audit_against_regime_delta(self):
        before = ledger.FlowLedger({"none": 5}, {"none": 10.0})
        after = ledger.FlowLedger({"none": 8}, {"none": 16.0})
        mine = ledger.FlowLedger({"none": 3}, {"none": 6.0})
        mine.audit_against(before, after, scope="t")
        liar = ledger.FlowLedger({"none": 2}, {"none": 6.0})
        with pytest.raises(ledger.ConservationError, match="counted 2 times"):
            liar.audit_against(before, after, scope="t")

    def test_env_gates(self, monkeypatch):
        monkeypatch.setenv(ledger.LEDGER_ENV, "0")
        assert not ledger.enabled()
        assert not ledger.audits_enabled()
        monkeypatch.setenv(ledger.LEDGER_ENV, "1")
        monkeypatch.setenv(ledger.AUDIT_ENV, "off")
        assert ledger.enabled()
        assert not ledger.audits_enabled()


class TestWindowedCounter:
    def test_window_closes_and_appends(self):
        counter = ledger.WindowedCounter(window=4)
        for hit in (True, True, False, False, True, True, True, True):
            counter.record(hit)
        assert counter.timeline == [0.5, 1.0]
        assert counter.hits == 6 and counter.misses == 2
        assert counter.hit_rate == 0.75

    def test_reset(self):
        counter = ledger.WindowedCounter(window=2)
        counter.record(True)
        counter.record(False)
        counter.reset()
        assert counter.total == 0 and counter.timeline == []

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            ledger.WindowedCounter(window=0)


# ---------------------------------------------------------------------------
# Simulator warm-up bugfixes (satellite regressions)


class TestWarmupRegressions:
    def test_warmup_consuming_all_events_raises(self):
        trace = _trace(events=5)  # 15 events
        stream = iter(list(trace)[:6])  # int(15 * 0.4) = 6: all warm-up
        with pytest.raises(SimulationError, match="warm-up consumed all 6 events"):
            run_trace(
                stream,
                InsecureRegime(),
                100.0,
                150.0,
                warmup_fraction=0.4,
                events_total=15,
            )

    def test_stream_ending_inside_warmup_raises(self):
        trace = _trace(events=5)
        stream = iter(list(trace)[:4])
        with pytest.raises(SimulationError, match="inside the warm-up window"):
            run_trace(
                stream,
                InsecureRegime(),
                100.0,
                150.0,
                warmup_fraction=0.4,
                events_total=15,
            )

    def test_short_stream_after_warmup_raises(self):
        trace = _trace(events=5)
        stream = iter(list(trace)[:10])
        with pytest.raises(SimulationError, match="ended after 10 events"):
            run_trace(
                stream,
                InsecureRegime(),
                100.0,
                150.0,
                warmup_fraction=0.4,
                events_total=15,
            )

    def test_exact_length_stream_is_fine(self):
        trace = _trace(events=5)
        result = run_trace(
            iter(list(trace)),
            InsecureRegime(),
            100.0,
            150.0,
            warmup_fraction=0.4,
            events_total=15,
        )
        assert result.events_measured == 9
        assert result.warmup_events == 6


# ---------------------------------------------------------------------------
# RunReport.format_summary bugfix (satellite regression)


class TestSummaryRendering:
    def test_failure_shows_last_traceback_line(self):
        error = (
            "Traceback (most recent call last):\n"
            '  File "x.py", line 1, in <module>\n'
            "ValueError: boom"
        )
        record = ExperimentRecord(experiment_id="exp", status="failed", error=error)
        out = RunReport(records=[record]).format_summary()
        last = out.splitlines()[-1]
        assert last == "FAILED exp: ValueError: boom"
        assert "Traceback" not in last

    def test_long_error_lines_are_truncated(self):
        record = ExperimentRecord(
            experiment_id="exp", status="failed", error="E" * 400
        )
        last = RunReport(records=[record]).format_summary().splitlines()[-1]
        assert last.endswith("...")
        assert len(last) <= len("FAILED exp: ") + 160


# ---------------------------------------------------------------------------
# SlbSubtable.fill ordered-candidate bugfix (satellite regression)


class TestSlbFillOrder:
    def _subtable(self):
        return SlbSubtable(SlbSubtableParams(arg_count=2, entries=8, ways=2))

    def test_fill_updates_in_place_whatever_the_fetching_hash(self):
        sub = self._subtable()
        args = (3, 100)
        pair = (11, 22)
        sub.fill(7, (0, pair[0]), args, hash_pair=pair)
        sub.fill(7, (1, pair[1]), args, hash_pair=pair)
        entries = [e for s in sub._sets for e in s]
        assert len(entries) == 1
        assert entries[0].hash_id == (1, pair[1])

    def test_fetching_hash_set_is_probed_first(self):
        sub = self._subtable()
        args = (3, 100)
        pair = (1, 2)  # distinct sets for sid 0: 1 % 4 and 2 % 4
        # Plant matching entries in *both* candidate sets.
        sub.fill(0, (0, pair[0]), args)
        sub.fill(0, (1, pair[1]), args)
        assert sum(len(s) for s in sub._sets) == 2
        # A refill must deterministically update the fetching hash's
        # copy (the old set-based probe order depended on hash values).
        sub.fill(0, (1, pair[1]), args, hash_pair=pair)
        updated = [e for s in sub._sets for e in s if e.hash_id == (1, pair[1])]
        assert len(updated) == 1

    def test_eviction_is_counted(self):
        sub = SlbSubtable(SlbSubtableParams(arg_count=1, entries=2, ways=2))
        for i in range(3):  # one set, two ways: third fill evicts
            sub.fill(0, (0, 0), (i,), hash_pair=(0, 0))
        assert sub.evictions == 1


# ---------------------------------------------------------------------------
# Conservation across regimes (tentpole invariant)

_SYSCALL_TEMPLATES = (
    ("read", lambda a, b: (3 + a, 100)),
    ("write", lambda a, b: (1, 64 + 8 * b)),
    ("epoll_wait", lambda a, b: (4, 512, 100)),
    ("close", lambda a, b: (3 + a,)),
)


@st.composite
def _random_traces(draw):
    picks = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(_SYSCALL_TEMPLATES) - 1),
                st.integers(0, 4),
                st.integers(0, 3),
            ),
            min_size=40,
            max_size=120,
        )
    )
    events = []
    for index, a, b in picks:
        name, build = _SYSCALL_TEMPLATES[index]
        events.append(make_event(name, build(a, b), pc=0x100 + index))
    return SyscallTrace(events)


def _assert_conserves(result):
    assert sum(result.flow_counts.values()) == result.events_measured
    derived = sum(result.flow_cycles[key] for key in sorted(result.flow_cycles))
    assert derived == result.total_check_cycles  # exact, by construction
    assert sum(result.path_counts.values()) == result.events_measured
    result.flow_ledger().audit_totals(
        result.events_measured, result.total_check_cycles, scope="test"
    )


@pytest.mark.parametrize("fastpath", ["0", "1"])
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(trace=_random_traces())
def test_conservation_across_regimes(fastpath, trace):
    saved = os.environ.get("REPRO_FASTPATH")
    os.environ["REPRO_FASTPATH"] = fastpath
    try:
        profile = generate_complete(trace, "t")
        regimes = (
            InsecureRegime(),
            SeccompRegime(profile),
            DracoSwRegime(profile),
            DracoHwRegime(profile),
        )
        for regime in regimes:
            result = run_trace(trace, regime, 100.0, 150.0, workload_name="w")
            _assert_conserves(result)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = saved


def test_flow_tags_cover_every_event():
    trace = _trace()
    profile = generate_complete(trace, "t")
    result = run_trace(trace, DracoHwRegime(profile), 100.0, 150.0)
    assert set(result.flow_counts) <= set(ledger.FLOW_KEYS)
    hw_flows = [k for k in result.flow_counts if k.startswith("hw.flow")]
    assert hw_flows  # argument syscalls actually exercised Table I flows


def test_untagged_outcomes_fall_back_to_path():
    class BareRegime(InsecureRegime):
        def __init__(self):
            super().__init__()
            self.name = "bare"

        def check(self, event):
            from repro.core.software import CheckOutcome

            return CheckOutcome(allowed=True, cycles=1.0, path="legacy")

        def ledger_snapshot(self):
            return None

    result = run_trace(_trace(events=20), BareRegime(), 100.0, 150.0)
    assert result.flow_counts == {"legacy": result.events_measured}
    _assert_conserves(result)


# ---------------------------------------------------------------------------
# Scheduler / multicore attribution


def _process(name, fd_base=3, events=300):
    trace = SyscallTrace(
        [
            make_event("read", (fd_base + i % 3, 100), pc=0x100 + fd_base)
            for i in range(events)
        ]
    )
    profile = generate_complete(trace, name)
    return ScheduledProcess(
        name=name, profile=profile, trace=trace, work_cycles_per_syscall=400.0
    )


class TestScheduledAttribution:
    def test_multicore_flow_counts_survive_context_switches(self):
        procs = [_process("a", 3), _process("b", 7)]
        system = MultiCoreSystem(cores=1, quantum_syscalls=50)
        for process in procs:
            system.assign(process)
        result = system.run()
        assert result.per_core_switches[0] > 0
        for process in procs:
            counts = result.per_process_flows[process.name]
            assert sum(counts.values()) == process.syscalls_run == len(process.trace)
            cycles = result.per_process_flow_cycles[process.name]
            derived = sum(cycles[key] for key in sorted(cycles))
            assert derived == pytest.approx(process.check_cycles, rel=1e-9)
        # Two tenants on one core: every quantum resumes cold.
        assert procs[0].quanta and all(q.cold for q in procs[0].quanta)
        assert sum(q.syscalls for q in procs[0].quanta) == procs[0].syscalls_run

    def test_single_tenant_quanta_are_warm_after_first(self):
        process = _process("solo", events=200)
        scheduler = RoundRobinScheduler([process], quantum_syscalls=50)
        result = scheduler.run()
        assert result.context_switches == 0
        assert process.quanta[0].cold
        assert not any(q.cold for q in process.quanta[1:])
        counts = result.per_process_flows["solo"]
        assert sum(counts.values()) == result.total_syscalls


# ---------------------------------------------------------------------------
# Telemetry flows block, report aggregation, flowreport tool


@pytest.fixture
def _fresh_counters():
    telemetry.reset_counters()
    yield
    telemetry.reset_counters()


class TestTelemetryFlows:
    def test_snapshot_carries_flows_and_structures(self, _fresh_counters):
        trace = _trace()
        profile = generate_complete(trace, "t")
        run_trace(trace, DracoHwRegime(profile), 100.0, 150.0, workload_name="w")
        snap = telemetry.counters_snapshot()
        assert "flows" in snap and "structures" in snap
        ((regime, block),) = snap["flows"].items()
        assert regime.startswith("draco-hw")
        assert block["events"] == sum(block["counts"].values())
        assert "slb" in snap["structures"][regime]

    def test_report_flows_aggregate_and_conserve(self, _fresh_counters):
        trace = _trace()
        profile = generate_complete(trace, "t")
        run_trace(trace, SeccompRegime(profile), 100.0, 150.0)
        record = ExperimentRecord(
            experiment_id="e", simulation=telemetry.counters_snapshot()
        )
        report = RunReport(records=[record, record])  # two experiments
        flows = report.flows()
        ((_, block),) = flows.items()
        assert block["events"] == 2 * record.simulation["flows"][
            next(iter(record.simulation["flows"]))
        ]["events"]
        assert report.audit_flow_conservation() == []
        assert "conservation: ok" in report.format_flows()

    def test_count_drift_is_detected(self):
        simulation = {
            "traces_run": 1,
            "flows": {
                "r": {
                    "events": 10,
                    "check_cycles": 5.0,
                    "counts": {"none": 9},
                    "cycles": {"none": 5.0},
                }
            },
        }
        report = RunReport(records=[ExperimentRecord("e", simulation=simulation)])
        problems = report.audit_flow_conservation()
        assert problems and "9" in problems[0]
        assert "CONSERVATION DRIFT" in report.format_flows()

    def test_empty_report_renders_hint(self):
        out = RunReport(records=[]).format_flows()
        assert "no flow telemetry" in out


class TestFlowReportTool:
    def test_hw_hit_rates_formulas(self):
        counts = {
            ledger.FLOW_HW_1: 50,
            ledger.FLOW_HW_2: 10,
            ledger.FLOW_HW_3: 20,
            ledger.FLOW_HW_4: 5,
            ledger.FLOW_HW_5: 10,
            ledger.FLOW_HW_6: 5,
        }
        rates = flowreport.hw_hit_rates(counts)
        assert rates["argument_flows"] == 100
        assert rates["stb_hit_rate"] == pytest.approx(0.85)
        assert rates["slb_preload_hit_rate"] == pytest.approx(60 / 85)
        assert rates["slb_access_hit_rate"] == pytest.approx(0.80)

    def _write_report(self, tmp_path, _fresh=None):
        telemetry.reset_counters()
        trace = _trace()
        profile = generate_complete(trace, "t")
        run_trace(trace, DracoHwRegime(profile), 100.0, 150.0, workload_name="w")
        record = ExperimentRecord(
            experiment_id="e", simulation=telemetry.counters_snapshot()
        )
        telemetry.reset_counters()
        report = RunReport(records=[record])
        path = tmp_path / "latest.json"
        report.write(path)
        return report, path

    def test_build_report_document(self, tmp_path):
        report, _ = self._write_report(tmp_path)
        document = flowreport.build_report(report)
        assert document["schema"] == flowreport.SCHEMA
        assert document["conservation"]["ok"]
        ((_, entry),) = document["regimes"].items()
        assert entry["hit_rates"]["argument_flows"] > 0
        assert "slb" in entry["structures"]
        assert 0.0 <= entry["structure_hit_rates"]["vat_hit_rate"] <= 1.0

    def test_cli_check_passes_and_writes(self, tmp_path, capsys):
        _, path = self._write_report(tmp_path)
        out_path = tmp_path / "flows.json"
        code = flowreport.main(
            ["--report", str(path), "--check", "--output", str(out_path)]
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["conservation"]["ok"]

    def test_cli_check_fails_on_drift(self, tmp_path, capsys):
        report = RunReport(
            records=[
                ExperimentRecord(
                    "e",
                    simulation={
                        "traces_run": 1,
                        "flows": {
                            "r": {
                                "events": 2,
                                "check_cycles": 1.0,
                                "counts": {"none": 1},
                                "cycles": {"none": 1.0},
                            }
                        },
                    },
                )
            ]
        )
        path = tmp_path / "bad.json"
        report.write(path)
        assert flowreport.main(["--report", str(path), "--check"]) == 1
        assert "conservation drift" in capsys.readouterr().err

    def test_cli_check_fails_without_flow_telemetry(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        RunReport(records=[ExperimentRecord("e")]).write(path)
        assert flowreport.main(["--report", str(path), "--check"]) == 1
        assert "no flow telemetry" in capsys.readouterr().err
