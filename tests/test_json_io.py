"""Tests for Docker/Moby JSON profile import/export."""

import json

import pytest

from repro.common.errors import ProfileError
from repro.seccomp.json_io import (
    profile_from_dict,
    profile_from_json,
    profile_to_dict,
    profile_to_json,
)
from repro.seccomp.profile import ArgCmp, ArgSetRule, CmpOp, SeccompProfile
from repro.seccomp.profiles import build_docker_default
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event

MOBY_SAMPLE = {
    "defaultAction": "SCMP_ACT_ERRNO",
    "defaultErrnoRet": 1,
    "architectures": ["SCMP_ARCH_X86_64"],
    "syscalls": [
        {"names": ["read", "write", "close"], "action": "SCMP_ACT_ALLOW", "args": []},
        {
            "names": ["personality"],
            "action": "SCMP_ACT_ALLOW",
            "args": [{"index": 0, "value": 0, "valueTwo": 0, "op": "SCMP_CMP_EQ"}],
        },
        {
            "names": ["personality"],
            "action": "SCMP_ACT_ALLOW",
            "args": [
                {"index": 0, "value": 4294967295, "valueTwo": 0, "op": "SCMP_CMP_EQ"}
            ],
        },
        {
            "names": ["clone"],
            "action": "SCMP_ACT_ALLOW",
            "args": [
                {
                    "index": 0,
                    "value": 0x7E020000,
                    "valueTwo": 0,
                    "op": "SCMP_CMP_MASKED_EQ",
                }
            ],
        },
        {"names": ["vm86", "vm86old"], "action": "SCMP_ACT_ALLOW", "args": []},
    ],
}


class TestImport:
    def test_id_rules(self):
        profile = profile_from_dict(MOBY_SAMPLE)
        assert profile.allows(make_event("read", (1, 2)))
        assert not profile.allows(make_event("mount"))

    def test_arg_alternatives(self):
        profile = profile_from_dict(MOBY_SAMPLE)
        assert profile.allows(make_event("personality", (0,)))
        assert profile.allows(make_event("personality", (0xFFFFFFFF,)))
        assert not profile.allows(make_event("personality", (8,)))

    def test_masked_eq_moby_convention(self):
        """value = mask, valueTwo = expected (the real docker layout)."""
        profile = profile_from_dict(MOBY_SAMPLE)
        assert profile.allows(make_event("clone", (0x00010000,)))
        assert not profile.allows(make_event("clone", (0x10000000,)))

    def test_unknown_names_skipped(self):
        """32-bit-only names like vm86 are dropped for the x86-64 table."""
        profile = profile_from_dict(MOBY_SAMPLE)
        assert profile.num_syscalls == 5  # read, write, close, personality, clone

    def test_unknown_action_rejected(self):
        with pytest.raises(ProfileError):
            profile_from_dict({"defaultAction": "SCMP_ACT_BOGUS", "syscalls": []})

    def test_unknown_op_rejected(self):
        data = {
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [
                {
                    "names": ["read"],
                    "action": "SCMP_ACT_ALLOW",
                    "args": [{"index": 0, "value": 1, "op": "SCMP_CMP_LT"}],
                }
            ],
        }
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    def test_from_json_string(self):
        profile = profile_from_json(json.dumps(MOBY_SAMPLE), name="docker")
        assert profile.name == "docker"


class TestExport:
    def test_valid_json(self):
        profile = build_docker_default()
        parsed = json.loads(profile_to_json(profile))
        assert parsed["defaultAction"] == "SCMP_ACT_ERRNO"
        assert parsed["architectures"] == ["SCMP_ARCH_X86_64"]
        assert parsed["syscalls"]

    def test_id_only_names_grouped(self):
        profile = build_docker_default()
        data = profile_to_dict(profile)
        first = data["syscalls"][0]
        assert len(first["names"]) > 200
        assert first["args"] == []


class TestRoundTrip:
    def _roundtrip(self, profile):
        return profile_from_json(profile_to_json(profile), name=profile.name)

    @pytest.mark.parametrize(
        "probe",
        [
            make_event("read", (3, 100)),
            make_event("read", (9, 9)),
            make_event("personality", (0,)),
            make_event("personality", (5,)),
            make_event("clone", (0x00010000,)),
            make_event("clone", (0x10000000,)),
            make_event("mount"),
            make_event("getppid"),
        ],
    )
    def test_docker_default_roundtrip(self, probe):
        original = build_docker_default()
        loaded = self._roundtrip(original)
        assert loaded.allows(probe) == original.allows(probe)

    def test_generated_profile_roundtrip(self):
        trace = SyscallTrace(
            [
                make_event("read", (3, 100)),
                make_event("read", (4, 200)),
                make_event("openat", (0xFFFFFF9C, 0, 0)),
                make_event("getppid"),
            ]
        )
        original = generate_complete(trace, "app")
        loaded = self._roundtrip(original)
        for event in trace:
            assert loaded.allows(event)
        assert not loaded.allows(make_event("read", (5, 100)))
        assert loaded.num_argument_values_allowed == original.num_argument_values_allowed
