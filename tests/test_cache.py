"""Tests for the set-associative cache and the memory hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import CacheParams, ProcessorParams


def _small_cache(ways=2, sets=4, line=64):
    return SetAssociativeCache(
        CacheParams("T", sets * ways * line, ways, access_cycles=1, line_bytes=line)
    )


class TestCache:
    def test_miss_then_hit(self):
        cache = _small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = _small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000 + 63)

    def test_lru_eviction(self):
        cache = _small_cache(ways=2, sets=1, line=64)
        a, b, c = 0x0, 0x40, 0x80
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a -> b is LRU
        cache.access(c)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_no_side_effects(self):
        cache = _small_cache()
        assert not cache.probe(0x1000)
        assert not cache.probe(0x1000)  # still absent: probe didn't allocate
        assert cache.occupancy == 0

    def test_invalidate(self):
        cache = _small_cache()
        cache.access(0x40)
        assert cache.invalidate(0x40)
        assert not cache.probe(0x40)
        assert not cache.invalidate(0x40)

    def test_invalidate_all(self):
        cache = _small_cache()
        for addr in (0, 64, 128):
            cache.access(addr)
        cache.invalidate_all()
        assert cache.occupancy == 0

    def test_evict_lru_fraction(self):
        cache = _small_cache(ways=4, sets=1)
        for i in range(4):
            cache.access(i * 64 * 1)  # same set? addresses 0,64,...: set = line % 1 = 0
        evicted = cache.evict_lru_fraction(0.5)
        assert evicted == 2
        assert cache.occupancy == 2

    def test_evict_fraction_bounds(self):
        with pytest.raises(ConfigError):
            _small_cache().evict_lru_fraction(1.5)

    def test_hit_rate(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == 0.5
        cache.reset_stats()
        assert cache.hit_rate == 0.0

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheParams("bad", 1000, 3, 1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), max_size=64))
    def test_occupancy_bounded_by_capacity(self, addresses):
        cache = _small_cache(ways=2, sets=4)
        for addr in addresses:
            cache.access(addr)
        assert cache.occupancy <= 8


class TestHierarchy:
    def test_latency_ordering(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access(0x1234)
        assert first.level == "DRAM"
        second = hierarchy.access(0x1234)
        assert second.level == "L1"
        assert second.cycles < first.cycles

    def test_fill_path(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0x40)
        hierarchy.l1.invalidate(0x40)
        assert hierarchy.access(0x40).level == "L2"

    def test_parallel_access_is_max(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0x40)  # now L1
        latency = hierarchy.access_parallel((0x40, 0xDEAD00))
        dram = MemoryHierarchy().access(0xDEAD00).cycles
        assert latency == dram

    def test_parallel_empty(self):
        assert MemoryHierarchy().access_parallel(()) == 0

    def test_pollution_evicts(self):
        hierarchy = MemoryHierarchy()
        for i in range(16):
            hierarchy.access(i * 64)
        before = hierarchy.l1.occupancy
        hierarchy.pollute(5_000_000)
        assert hierarchy.l1.occupancy < before

    def test_zero_pollution_noop(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0)
        hierarchy.pollute(0)
        assert hierarchy.l1.probe(0)

    def test_invalidate_all(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0)
        hierarchy.invalidate_all()
        assert hierarchy.access(0).level == "DRAM"

    def test_latencies_match_params(self):
        params = ProcessorParams()
        hierarchy = MemoryHierarchy(params)
        miss = hierarchy.access(0)
        assert miss.cycles == (
            params.l1d.access_cycles
            + params.l2.access_cycles
            + params.l3.access_cycles
            + params.dram_cycles
        )
        hit = hierarchy.access(0)
        assert hit.cycles == params.l1d.access_cycles
