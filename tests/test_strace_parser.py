"""Tests for the strace log parser."""

import pytest

from repro.seccomp.toolkit import generate_complete
from repro.syscalls.table import sid
from repro.tracing.strace import (
    StraceParser,
    parse_strace,
    parse_value,
    split_arguments,
)

SAMPLE_LOG = """\
execve("/usr/bin/cat", ["cat", "/etc/hostname"], 0x7ffd1 /* 24 vars */) = 0
brk(NULL)                               = 0x560a3a9f2000
openat(AT_FDCWD, "/etc/hostname", O_RDONLY) = 3
fstat(3, {st_mode=S_IFREG|0644, st_size=6, ...}) = 0
read(3, "draco\\n", 131072)             = 6
write(1, "draco\\n", 6)                 = 6
read(3, "", 131072)                     = 0
close(3)                                = 0
--- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---
mmap(NULL, 8192, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0) = 0x7f2a1000
[pid  4242] getpid()                    = 4242
12:00:01.123456 futex(0x7f2a2000, FUTEX_WAIT_PRIVATE, 2, NULL) = 0
read(4, 0x7ffd0, 64)                    = -1 EAGAIN (Resource temporarily unavailable)
exit_group(0)                           = ?
"""


class TestSplitArguments:
    def test_simple(self):
        assert split_arguments("1, 2, 3") == ("1", "2", "3")

    def test_nested_struct(self):
        args = split_arguments('3, {st_mode=S_IFREG|0644, st_size=6}, 0')
        assert args == ("3", "{st_mode=S_IFREG|0644, st_size=6}", "0")

    def test_quoted_string_with_commas(self):
        args = split_arguments('1, "a, b, c", 5')
        assert args == ("1", '"a, b, c"', "5")

    def test_escaped_quote_in_string(self):
        args = split_arguments('1, "say \\"hi\\", ok", 2')
        assert len(args) == 3

    def test_empty(self):
        assert split_arguments("") == ()

    def test_array_literal(self):
        args = split_arguments('["cat", "x"], 7')
        assert args == ('["cat", "x"]', "7")


class TestParseValue:
    def test_decimal(self):
        assert parse_value("42", {}) == 42

    def test_hex(self):
        assert parse_value("0x1f", {}) == 0x1F

    def test_octal(self):
        assert parse_value("0644", {}) == 0o644

    def test_negative_wraps(self):
        assert parse_value("-1", {}) == 0xFFFFFFFFFFFFFFFF

    def test_constant(self):
        assert parse_value("O_RDONLY", {"O_RDONLY": 0}) == 0

    def test_flag_or(self):
        constants = {"PROT_READ": 1, "PROT_WRITE": 2}
        assert parse_value("PROT_READ|PROT_WRITE", constants) == 3

    def test_mode_or(self):
        assert parse_value("S_IFREG|0644", {"S_IFREG": 0o100000}) == 0o100644

    def test_string_is_pointer(self):
        assert parse_value('"hello"', {}) is None

    def test_struct_is_pointer(self):
        assert parse_value("{st_size=6}", {}) is None

    def test_unknown_symbol(self):
        assert parse_value("MYSTERY_FLAG", {}) is None

    def test_fd_annotation(self):
        assert parse_value("3</etc/passwd>", {}) == 3


class TestLineParsing:
    def test_basic_line(self):
        parser = StraceParser()
        record = parser.parse_line('close(3)                                = 0')
        assert record.name == "close"
        assert record.raw_args == ("3",)
        assert record.return_value == 0

    def test_pid_prefix(self):
        parser = StraceParser()
        record = parser.parse_line("[pid  4242] getpid()                    = 4242")
        assert record.pid == 4242
        assert record.name == "getpid"

    def test_timestamp_prefix(self):
        parser = StraceParser()
        record = parser.parse_line("12:00:01.123456 getuid() = 1000")
        assert record.name == "getuid"

    def test_signal_line_skipped(self):
        parser = StraceParser()
        assert parser.parse_line("--- SIGCHLD {...} ---") is None

    def test_unfinished_skipped(self):
        parser = StraceParser()
        assert parser.parse_line("read(3,  <unfinished ...>") is None

    def test_errno_suffix(self):
        parser = StraceParser()
        record = parser.parse_line(
            "read(4, 0x7ffd0, 64) = -1 EAGAIN (Resource temporarily unavailable)"
        )
        assert record.return_value == -1

    def test_question_mark_return(self):
        parser = StraceParser()
        record = parser.parse_line("exit_group(0) = ?")
        assert record.return_value is None

    def test_garbage_counted(self):
        parser = StraceParser()
        assert parser.parse_line("not a strace line at all!!") is None
        assert parser.skipped_lines == 1


class TestFullLog:
    def test_events_extracted(self):
        trace = parse_strace(SAMPLE_LOG)
        names = [e.name() for e in trace]
        assert "openat" in names
        assert "read" in names
        assert "exit_group" in names
        # Signal line skipped, all syscall lines kept.
        assert len(trace) == 13

    def test_checkable_values_extracted(self):
        trace = parse_strace(SAMPLE_LOG)
        reads = [e for e in trace if e.sid == sid("read")]
        # read(3, buf*, 131072): fd and count land on slots 0 and 2.
        assert reads[0].args == (3, 0, 131072)

    def test_flags_resolved(self):
        trace = parse_strace(SAMPLE_LOG)
        openat = next(e for e in trace if e.sid == sid("openat"))
        # AT_FDCWD resolved; O_RDONLY == 0; path pointer untouched.
        assert openat.args[0] == 0xFFFFFF9C
        assert openat.args[2] == 0

    def test_mmap_flag_or(self):
        trace = parse_strace(SAMPLE_LOG)
        mmap = next(e for e in trace if e.sid == sid("mmap"))
        assert mmap.args[2] == 3       # PROT_READ|PROT_WRITE
        assert mmap.args[3] == 0x22    # MAP_PRIVATE|MAP_ANONYMOUS

    def test_synthesized_pcs_stable_per_syscall(self):
        trace = parse_strace(SAMPLE_LOG)
        read_pcs = {e.pc for e in trace if e.sid == sid("read")}
        assert len(read_pcs) == 1

    def test_unknown_syscall_recorded(self):
        parser = StraceParser()
        parser.parse("made_up_syscall(1) = 0")
        assert parser.unknown_syscalls == {"made_up_syscall": 1}

    def test_profile_generation_end_to_end(self):
        """The paper's pipeline on a real log: strace -> complete profile."""
        trace = parse_strace(SAMPLE_LOG)
        profile = generate_complete(trace, "cat")
        for event in trace:
            assert profile.allows(event)
        assert not profile.allows(
            trace[0].__class__(sid=sid("mount"), args=(0,) * 5)
        )
