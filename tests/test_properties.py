"""Cross-cutting property-based tests.

The load-bearing invariant of the whole reproduction: no Draco layer —
software caching, hardware SLB/STB pipeline, filter chunking — may ever
change a checking *decision* relative to the reference profile
semantics.  Draco only changes the cost.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardware import HardwareDraco
from repro.core.software import SoftwareDraco, build_process_tables
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import ArgCmp, ArgSetRule, SeccompProfile
from repro.syscalls.events import make_event
from repro.syscalls.table import LINUX_X86_64

_NAMES = ("read", "write", "close", "openat", "futex", "getpid", "personality")


@st.composite
def profile_and_events(draw):
    chosen = draw(
        st.lists(st.sampled_from(_NAMES), min_size=1, max_size=4, unique=True)
    )
    arg_rules = {}
    for name in chosen:
        checkable = LINUX_X86_64.by_name(name).checkable_args
        if not checkable:
            continue
        sets = draw(
            st.lists(
                st.tuples(*[st.integers(0, 2) for _ in checkable]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        arg_rules[name] = [
            ArgSetRule(tuple(ArgCmp(i, v) for i, v in zip(checkable, values)))
            for values in sets
        ]
    profile = SeccompProfile.from_names("prop", chosen, arg_rules=arg_rules)

    events = []
    for _ in range(draw(st.integers(3, 12))):
        name = draw(st.sampled_from(_NAMES + ("mount",)))
        checkable = LINUX_X86_64.by_name(name).checkable_args
        args = tuple(draw(st.integers(0, 3)) for _ in checkable)
        pc = draw(st.sampled_from((0x100, 0x200, 0x300)))
        events.append(make_event(name, args, pc=pc))
    return profile, events


def _module(profile):
    module = SeccompKernelModule()
    for program in compile_profile_chunked(profile):
        module.attach(program)
    return module


class TestDecisionEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(data=profile_and_events())
    def test_software_draco_never_changes_decisions(self, data):
        profile, events = data
        draco = SoftwareDraco(build_process_tables(profile), _module(profile))
        for event in events:
            assert draco.check(event).allowed == profile.allows(event)

    @settings(max_examples=50, deadline=None)
    @given(data=profile_and_events())
    def test_hardware_draco_never_changes_decisions(self, data):
        profile, events = data
        draco = HardwareDraco(build_process_tables(profile), _module(profile))
        for event in events:
            assert draco.on_syscall(event).allowed == profile.allows(event)

    @settings(max_examples=50, deadline=None)
    @given(data=profile_and_events())
    def test_hardware_draco_stable_under_invalidation(self, data):
        """Context switches (structure invalidation) must be decision-
        transparent: re-checking after a switch gives identical verdicts."""
        profile, events = data
        draco = HardwareDraco(build_process_tables(profile), _module(profile))
        before = [draco.on_syscall(e).allowed for e in events]
        draco.context_switch(same_process=False)
        draco.resume_process()
        after = [draco.on_syscall(e).allowed for e in events]
        assert before == after

    @settings(max_examples=40, deadline=None)
    @given(data=profile_and_events())
    def test_seccomp_module_matches_reference(self, data):
        profile, events = data
        module = _module(profile)
        for event in events:
            assert module.check(event).allowed == profile.allows(event)


class TestCostInvariants:
    @settings(max_examples=30, deadline=None)
    @given(data=profile_and_events())
    def test_costs_are_non_negative(self, data):
        profile, events = data
        sw = SoftwareDraco(build_process_tables(profile), _module(profile))
        hw = HardwareDraco(build_process_tables(profile), _module(profile))
        for event in events:
            assert sw.check(event).cycles >= 0
            assert hw.on_syscall(event).stall_cycles >= 0

    @settings(max_examples=30, deadline=None)
    @given(data=profile_and_events())
    def test_repeat_of_allowed_event_is_vat_hit(self, data):
        """Caching property: once validated, an event never reruns the
        filter under software Draco."""
        profile, events = data
        sw = SoftwareDraco(build_process_tables(profile), _module(profile))
        for event in events:
            first = sw.check(event)
            if first.allowed and first.path == "filter_run":
                again = sw.check(event)
                assert again.path == "vat_hit"
                assert again.cycles <= first.cycles
