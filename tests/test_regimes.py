"""Tests for the checking regimes and the syscall-level simulator."""

import pytest

from repro.common.errors import SimulationError
from repro.kernel.regimes import (
    DracoHwRegime,
    DracoSwRegime,
    InsecureRegime,
    SeccompRegime,
)
from repro.kernel.simulator import run_trace
from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.syscalls.events import SyscallTrace, make_event


@pytest.fixture
def trace():
    events = []
    for i in range(300):
        events.append(make_event("read", (3 + i % 8, 100), pc=0x100))
        events.append(make_event("write", (1, 64 + 8 * (i % 6)), pc=0x200))
        events.append(make_event("epoll_wait", (4, 512, 100), pc=0x300))
    return SyscallTrace(events)


@pytest.fixture
def profile(trace):
    return generate_complete(trace, "t")


class TestInsecure:
    def test_zero_cost(self, trace):
        regime = InsecureRegime()
        result = run_trace(trace, regime, 100.0, 150.0)
        assert result.normalized_time == 1.0
        assert result.mean_check_cycles == 0.0


class TestSeccompRegime:
    def test_positive_overhead(self, trace, profile):
        regime = SeccompRegime(profile)
        result = run_trace(trace, regime, 100.0, 150.0)
        assert result.normalized_time > 1.0
        assert result.mean_check_cycles > 0

    def test_2x_costs_more(self, trace, profile):
        once = run_trace(trace, SeccompRegime(profile), 100.0, 150.0)
        twice = run_trace(trace, SeccompRegime(profile, times=2), 100.0, 150.0)
        assert twice.mean_check_cycles > once.mean_check_cycles

    def test_interpreted_costs_more_than_jit(self, trace, profile):
        jit = run_trace(trace, SeccompRegime(profile, use_jit=True), 100.0, 150.0)
        interp = run_trace(trace, SeccompRegime(profile, use_jit=False), 100.0, 150.0)
        assert interp.mean_check_cycles > jit.mean_check_cycles

    def test_tree_cheaper_for_docker(self, trace):
        from repro.seccomp.profiles import build_docker_default

        docker = build_docker_default()
        linear = run_trace(trace, SeccompRegime(docker, compiler="linear"), 100.0, 150.0)
        tree = run_trace(trace, SeccompRegime(docker, compiler="binary_tree"), 100.0, 150.0)
        assert tree.mean_check_cycles < linear.mean_check_cycles

    def test_name(self, profile):
        assert "t:syscall-complete" in SeccompRegime(profile).name
        assert SeccompRegime(profile, times=2).name.endswith("x2")


class TestDracoSwRegime:
    def test_cheaper_than_seccomp_on_hot_trace(self, trace, profile):
        seccomp = run_trace(trace, SeccompRegime(profile, times=2), 100.0, 150.0)
        draco = run_trace(trace, DracoSwRegime(profile, times=2), 100.0, 150.0)
        assert draco.mean_check_cycles < seccomp.mean_check_cycles

    def test_stats_exposed(self, trace, profile):
        regime = DracoSwRegime(profile)
        run_trace(trace, regime, 100.0, 150.0)
        assert regime.stats.vat_hits > 0


class TestDracoHwRegime:
    def test_near_zero_overhead(self, trace, profile):
        regime = DracoHwRegime(profile, context_switch_interval_cycles=None)
        result = run_trace(trace, regime, 1000.0, 150.0)
        assert result.normalized_time < 1.02

    def test_context_switches_add_cost(self, trace, profile):
        steady = DracoHwRegime(profile, context_switch_interval_cycles=None)
        churn = DracoHwRegime(profile, context_switch_interval_cycles=20_000.0)
        steady_result = run_trace(trace, steady, 1000.0, 150.0)
        churn_result = run_trace(trace, churn, 1000.0, 150.0)
        assert churn_result.mean_check_cycles >= steady_result.mean_check_cycles

    def test_paths_labelled_with_flows(self, trace, profile):
        regime = DracoHwRegime(profile, context_switch_interval_cycles=None)
        result = run_trace(trace, regime, 100.0, 150.0)
        assert any(path.startswith("hw:") for path in result.path_counts)


class TestRunTrace:
    def test_strict_denial_raises(self, profile):
        bad = SyscallTrace([make_event("mount")] * 4)
        with pytest.raises(SimulationError):
            run_trace(bad, SeccompRegime(profile), 100.0, 150.0)

    def test_non_strict_counts_denials(self, profile):
        bad = SyscallTrace([make_event("mount")] * 4)
        result = run_trace(bad, SeccompRegime(profile), 100.0, 150.0, strict=False)
        assert result.events_measured > 0

    def test_empty_trace_rejected(self, profile):
        with pytest.raises(SimulationError):
            run_trace(SyscallTrace(), SeccompRegime(profile), 100.0, 150.0)

    def test_bad_warmup(self, trace, profile):
        with pytest.raises(SimulationError):
            run_trace(trace, SeccompRegime(profile), 100.0, 150.0, warmup_fraction=1.0)

    def test_warmup_excluded_from_measurement(self, trace, profile):
        result = run_trace(trace, SeccompRegime(profile), 100.0, 150.0, warmup_fraction=0.5)
        assert result.events_measured == len(trace) - int(len(trace) * 0.5)

    def test_overhead_percent(self, trace, profile):
        result = run_trace(trace, SeccompRegime(profile), 100.0, 150.0)
        assert result.overhead_percent == pytest.approx(
            (result.normalized_time - 1) * 100
        )


class TestProcess:
    def test_kill_on_denial(self, profile):
        from repro.kernel.process import Process, ProcessKilled

        process = Process(name="victim", regime=SeccompRegime(profile))
        process.syscall(make_event("read", (3, 100)))
        with pytest.raises(ProcessKilled):
            process.syscall(make_event("mount"))
        assert not process.alive
        with pytest.raises(ProcessKilled):
            process.syscall(make_event("read", (3, 100)))

    def test_errno_mode_without_kill(self, profile):
        from repro.kernel.process import Process

        process = Process(name="soft", regime=SeccompRegime(profile), kill_on_deny=False)
        outcome = process.syscall(make_event("mount"))
        assert not outcome.allowed
        assert process.alive
        assert process.syscalls_denied == 1

    def test_run_accumulates(self, profile, trace):
        from repro.kernel.process import Process

        process = Process(name="runner", regime=SeccompRegime(profile))
        issued, cycles = process.run(trace[:50])
        assert issued == 50
        assert cycles > 0
        assert process.syscalls_issued == 50

    def test_unique_pids(self):
        from repro.kernel.process import Process

        a, b = Process(name="a"), Process(name="b")
        assert a.pid != b.pid
