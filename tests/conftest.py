"""Shared test configuration.

Redirects the experiment engine's on-disk cache into a per-session
scratch directory so tests neither read stale entries from nor write
into the user's real cache (individual tests may still override
``REPRO_CACHE_DIR`` via monkeypatch).
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
