"""Tests for the Pledge and Windows disable-policy models."""

import pytest

from repro.common.errors import ProfileError
from repro.core.software import SoftwareDraco, build_process_tables
from repro.os_models.pledge import PROMISES, PledgePolicy
from repro.os_models.windows import SYSCALL_CLASSES, SystemCallDisablePolicy
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.syscalls.events import make_event


class TestPledgePolicy:
    def test_stdio_basics(self):
        policy = PledgePolicy.of("stdio")
        assert policy.allows(make_event("read", (0, 10)))
        assert policy.allows(make_event("getpid"))
        assert not policy.allows(make_event("openat", (0, 0, 0)))

    def test_rpath_unlocks_open(self):
        policy = PledgePolicy.of("stdio", "rpath")
        assert policy.allows(make_event("openat", (0, 0, 0)))
        assert not policy.allows(make_event("unlink"))

    def test_inet_vs_unix(self):
        inet = PledgePolicy.of("inet")
        unix = PledgePolicy.of("unix")
        assert inet.allows(make_event("setsockopt", (3, 1, 2, 4)))
        assert not unix.allows(make_event("setsockopt", (3, 1, 2, 4)))
        assert unix.allows(make_event("socketpair", (1, 1, 0)))

    def test_unknown_promise_rejected(self):
        with pytest.raises(ProfileError):
            PledgePolicy.of("stdio", "timetravel")

    def test_shrink_only_drops(self):
        policy = PledgePolicy.of("stdio", "rpath", "inet")
        smaller = policy.shrink("inet")
        assert smaller.promises == frozenset({"stdio", "rpath"})
        assert not smaller.allows(make_event("connect", (3, 16)))
        assert smaller.allows(make_event("read", (0, 1)))

    def test_empty_policy_denies_everything(self):
        policy = PledgePolicy.of()
        assert not policy.allows(make_event("read", (0, 1)))

    def test_all_promise_names_resolve(self):
        from repro.syscalls.table import LINUX_X86_64

        for promise, names in PROMISES.items():
            for name in names:
                assert name in LINUX_X86_64, (promise, name)

    def test_to_profile_matches_policy(self):
        policy = PledgePolicy.of("stdio", "rpath")
        profile = policy.to_profile()
        probes = [
            make_event("read", (0, 1)),
            make_event("openat", (0, 0, 0)),
            make_event("mount"),
            make_event("execve"),
        ]
        for event in probes:
            assert profile.allows(event) == policy.allows(event)

    def test_draco_accelerates_pledge(self):
        """Section VIII: the Draco machinery applies to pledge verbatim."""
        profile = PledgePolicy.of("stdio").to_profile()
        module = SeccompKernelModule()
        module.attach(compile_linear(profile))
        draco = SoftwareDraco(build_process_tables(profile), module)
        event = make_event("read", (0, 64))
        assert draco.check(event).allowed
        assert draco.check(event).path == "spt_only"  # ID-only policy
        assert not draco.check(make_event("execve")).allowed


class TestSystemCallDisablePolicy:
    def test_disallow_gui_class(self):
        policy = SystemCallDisablePolicy.disallow("gui")
        assert not policy.allows(make_event("ioctl", (1, 2)))
        assert policy.allows(make_event("read", (0, 1)))

    def test_nothing_disabled_by_default(self):
        policy = SystemCallDisablePolicy()
        assert policy.allows(make_event("ioctl", (1, 2)))

    def test_multiple_classes(self):
        policy = SystemCallDisablePolicy.disallow("network", "process")
        assert not policy.allows(make_event("socket", (2, 1, 0)))
        assert not policy.allows(make_event("execve"))
        assert policy.allows(make_event("openat", (0, 0, 0)))

    def test_unknown_class_rejected(self):
        with pytest.raises(ProfileError):
            SystemCallDisablePolicy.disallow("quantum")

    def test_to_profile_matches_policy(self):
        policy = SystemCallDisablePolicy.disallow("gui", "network")
        profile = policy.to_profile()
        for name, args in (
            ("ioctl", (1, 2)),
            ("socket", (2, 1, 0)),
            ("read", (0, 1)),
            ("getpid", ()),
        ):
            event = make_event(name, args)
            assert profile.allows(event) == policy.allows(event)

    def test_class_names_resolve(self):
        from repro.syscalls.table import LINUX_X86_64

        for cls_name, names in SYSCALL_CLASSES.items():
            for name in names:
                assert name in LINUX_X86_64, (cls_name, name)
