"""Tests for the abstract cBPF interpreter (action-cache emulation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.abstract import constant_action_for, possible_returns
from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import SeccompData
from repro.seccomp.actions import SECCOMP_RET_ALLOW, SECCOMP_RET_KILL_PROCESS
from repro.seccomp.compiler import compile_linear, compile_binary_tree
from repro.seccomp.profile import ArgCmp, ArgSetRule, SeccompProfile
from repro.seccomp.profiles import build_docker_default
from repro.syscalls.events import make_event
from repro.syscalls.table import LINUX_X86_64, sid


def _profile():
    return SeccompProfile.from_names(
        "abs",
        ["read", "getpid", "personality"],
        arg_rules={
            "personality": [
                ArgSetRule((ArgCmp(0, 0),)),
                ArgSetRule((ArgCmp(0, 0xFFFFFFFF),)),
            ]
        },
    )


class TestConstantAction:
    def test_id_only_rule_is_constant_allow(self):
        program = compile_linear(_profile())
        assert constant_action_for(program, sid("read")) == SECCOMP_RET_ALLOW
        assert constant_action_for(program, sid("getpid")) == SECCOMP_RET_ALLOW

    def test_arg_checked_rule_is_not_constant(self):
        program = compile_linear(_profile())
        assert constant_action_for(program, sid("personality")) is None

    def test_denied_syscall_is_constant_kill(self):
        program = compile_linear(_profile())
        action = constant_action_for(program, sid("mount"))
        assert action == SECCOMP_RET_KILL_PROCESS

    def test_wrong_arch_included(self):
        """With a non-native arch the filter kills; per-arch analysis
        keeps arch pinned, so the native result stays constant."""
        program = compile_linear(_profile())
        returns = possible_returns(program, sid("read"), arch=0xDEAD)
        assert returns == frozenset({SECCOMP_RET_KILL_PROCESS})


class TestPossibleReturns:
    def test_arg_dependent_filter_returns_both(self):
        program = compile_linear(_profile())
        returns = possible_returns(program, sid("personality"))
        assert SECCOMP_RET_ALLOW in returns
        assert SECCOMP_RET_KILL_PROCESS in returns

    def test_soundness_against_concrete_execution(self):
        """Every concretely observed return value must be predicted."""
        program = compile_linear(_profile())
        for name, argsets in (
            ("read", [(0, 0), (5, 5)]),
            ("personality", [(0,), (1,), (0xFFFFFFFF,)]),
            ("mount", [()]),
        ):
            predicted = possible_returns(program, sid(name))
            for args in argsets:
                event = make_event(name, args)
                concrete = run(program, SeccompData.from_event(event)).return_value
                assert concrete in predicted, (name, args)

    @pytest.mark.parametrize("compiler", [compile_linear, compile_binary_tree])
    def test_docker_default_mostly_cacheable(self, compiler):
        """Docker's profile checks arguments on only two syscalls, so
        nearly every allowed syscall is bitmap-cacheable (the upstream
        measurement that justified the 5.11 feature)."""
        profile = build_docker_default()
        program = compiler(profile)
        cacheable = 0
        arg_dependent = []
        probe = [d.sid for d in LINUX_X86_64][:80] + [
            sid("personality"), sid("clone"), sid("mount"),
        ]
        for number in probe:
            action = constant_action_for(program, number)
            if action is not None and action == SECCOMP_RET_ALLOW:
                cacheable += 1
            elif action is None:
                arg_dependent.append(number)
        assert cacheable > 60
        assert set(arg_dependent) == {sid("personality"), sid("clone")}


class TestSoundnessProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        nr=st.sampled_from([0, 1, 39, 135, 165]),
        args=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=3),
    )
    def test_abstract_covers_concrete(self, nr, args):
        program = compile_linear(_profile())
        predicted = possible_returns(program, nr)
        entry = LINUX_X86_64.by_sid(nr)
        checkable = entry.checkable_args
        event = make_event(nr, tuple(args[: len(checkable)]))
        concrete = run(program, SeccompData.from_event(event)).return_value
        assert concrete in predicted
