"""Tests for SMT partitioning (Sections VII-B / IX)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.smt import SmtDraco, partition_hw_params
from repro.core.software import build_process_tables
from repro.cpu.params import DracoHwParams
from repro.seccomp.compiler import compile_linear
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event


def _binding(fds=(3, 4)):
    trace = SyscallTrace([make_event("read", (fd, 100), pc=0x100) for fd in fds])
    profile = generate_complete(trace, "ctx")
    module = SeccompKernelModule()
    module.attach(compile_linear(profile))
    return build_process_tables(profile), module


class TestPartitioning:
    def test_halves_for_two_contexts(self):
        part = partition_hw_params(DracoHwParams(), 2)
        assert part.stb_entries == 128
        assert part.spt_entries == 192
        assert part.slb_subtable_for(2).entries == 32

    def test_respects_associativity(self):
        part = partition_hw_params(DracoHwParams(), 8)
        for sub in part.slb_subtables:
            assert sub.entries % sub.ways == 0
            assert sub.entries >= sub.ways

    def test_single_context_unchanged(self):
        part = partition_hw_params(DracoHwParams(), 1)
        assert part.stb_entries == DracoHwParams().stb_entries

    def test_invalid_contexts(self):
        with pytest.raises(ConfigError):
            partition_hw_params(DracoHwParams(), 0)


class TestSmtDraco:
    def test_contexts_isolated(self):
        """The security property: one context's activity leaves no state
        in another context's partition."""
        smt = SmtDraco([_binding(), _binding(fds=(7, 8))])
        event = make_event("read", (3, 100), pc=0x100)
        smt.on_syscall(0, event)
        smt.on_syscall(0, event)
        assert smt.pipeline(0).stb.occupancy > 0
        assert smt.pipeline(1).stb.occupancy == 0
        assert smt.pipeline(1).slb.subtable(2).occupancy == 0

    def test_each_context_checks_its_own_profile(self):
        smt = SmtDraco([_binding(fds=(3,)), _binding(fds=(7,))])
        ok0 = smt.on_syscall(0, make_event("read", (3, 100), pc=0x100))
        bad0 = smt.on_syscall(0, make_event("read", (7, 100), pc=0x100))
        ok1 = smt.on_syscall(1, make_event("read", (7, 100), pc=0x100))
        assert ok0.allowed and ok1.allowed
        assert not bad0.allowed

    def test_context_switch_only_clears_own_partition(self):
        smt = SmtDraco([_binding(), _binding(fds=(7, 8))])
        smt.on_syscall(0, make_event("read", (3, 100), pc=0x100))
        smt.on_syscall(1, make_event("read", (7, 100), pc=0x100))
        smt.context_switch(0)
        assert smt.pipeline(0).stb.occupancy == 0
        assert smt.pipeline(1).stb.occupancy > 0

    def test_shared_hierarchy(self):
        smt = SmtDraco([_binding(), _binding()])
        assert smt.pipeline(0).hierarchy is smt.pipeline(1).hierarchy

    def test_bad_context_index(self):
        smt = SmtDraco([_binding()])
        with pytest.raises(ConfigError):
            smt.on_syscall(1, make_event("read", (3, 100)))

    def test_needs_bindings(self):
        with pytest.raises(ConfigError):
            SmtDraco([])

    def test_warm_context_stays_fast(self):
        smt = SmtDraco([_binding(), _binding(fds=(7, 8))])
        event = make_event("read", (3, 100), pc=0x100)
        smt.on_syscall(0, event)
        warm = smt.on_syscall(0, event)
        assert warm.stall_cycles <= 10
        # Activity in context 1 does not disturb context 0's warmth.
        for _ in range(20):
            smt.on_syscall(1, make_event("read", (7, 100), pc=0x100))
        still_warm = smt.on_syscall(0, event)
        assert still_warm.stall_cycles <= 10
