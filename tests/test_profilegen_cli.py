"""Tests for the profilegen command-line tool."""

import json

import pytest

from repro.seccomp.json_io import profile_from_json
from repro.syscalls.events import make_event
from repro.tools.profilegen import main

SAMPLE = """\
openat(AT_FDCWD, "/etc/hosts", O_RDONLY|O_CLOEXEC) = 3
read(3, "127.0.0.1 localhost\\n", 4096) = 20
close(3) = 0
getpid() = 99
"""


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "app.strace"
    path.write_text(SAMPLE)
    return path


class TestCli:
    def test_complete_profile_to_file(self, log_file, tmp_path):
        out = tmp_path / "profile.json"
        assert main([str(log_file), "-o", str(out)]) == 0
        profile = profile_from_json(out.read_text(), name="app")
        assert profile.allows(make_event("read", (3, 4096)))
        assert not profile.allows(make_event("read", (4, 4096)))
        assert not profile.allows(make_event("mount"))

    def test_noargs_mode(self, log_file, tmp_path):
        out = tmp_path / "profile.json"
        assert main([str(log_file), "-o", str(out), "--mode", "noargs"]) == 0
        profile = profile_from_json(out.read_text())
        assert profile.allows(make_event("read", (99, 99)))  # any args
        assert not profile.allows(make_event("write", (1, 1)))

    def test_stdout_output(self, log_file, capsys):
        assert main([str(log_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["defaultAction"]
        assert payload["syscalls"]

    def test_stats_flag(self, log_file, capsys):
        assert main([str(log_file), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "profile allows 4 syscalls" in err

    def test_missing_file(self, tmp_path):
        assert main([str(tmp_path / "nope.strace")]) == 2

    def test_empty_log(self, tmp_path):
        empty = tmp_path / "empty.strace"
        empty.write_text("--- SIGINT ---\n")
        assert main([str(empty)]) == 1

    def test_name_override(self, log_file, capsys):
        assert main([str(log_file), "--name", "myapp"]) == 0
        # Name is embedded via the toolkit's "<name>:syscall-complete".
        # The JSON schema has no name field; verify via no crash + output.
        assert json.loads(capsys.readouterr().out)["syscalls"]

    def test_roundtrip_deployable(self, log_file, tmp_path):
        """Generated JSON loads back and enforces the same decisions —
        the deployability contract."""
        out = tmp_path / "p.json"
        main([str(log_file), "-o", str(out)])
        profile = profile_from_json(out.read_text())
        for event in (
            make_event("openat", (0xFFFFFF9C, 0o2000000, 0)),
            make_event("close", (3,)),
            make_event("getpid"),
        ):
            assert profile.allows(event)
