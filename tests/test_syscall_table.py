"""Tests for the x86-64 syscall table substrate."""

import pytest

from repro.common.errors import UnknownSyscallError
from repro.syscalls.table import (
    LINUX_X86_64,
    MAX_SYSCALL_ARGS,
    SyscallDef,
    SyscallTable,
    sid,
)


class TestWellKnownEntries:
    """Spot-check the ABI transcription against known syscall numbers."""

    @pytest.mark.parametrize(
        "number,name",
        [
            (0, "read"),
            (1, "write"),
            (2, "open"),
            (3, "close"),
            (9, "mmap"),
            (39, "getpid"),
            (57, "fork"),
            (59, "execve"),
            (60, "exit"),
            (110, "getppid"),
            (135, "personality"),
            (202, "futex"),
            (232, "epoll_wait"),
            (257, "openat"),
            (288, "accept4"),
            (317, "seccomp"),
            (435, "clone3"),
        ],
    )
    def test_sid_name_mapping(self, number, name):
        assert LINUX_X86_64.by_sid(number).name == name
        assert LINUX_X86_64.by_name(name).sid == number

    @pytest.mark.parametrize(
        "name,nargs",
        [
            ("read", 3),
            ("getpid", 0),
            ("mmap", 6),
            ("futex", 6),
            ("close", 1),
            ("clone", 5),
            ("personality", 1),
        ],
    )
    def test_arg_counts(self, name, nargs):
        assert LINUX_X86_64.by_name(name).nargs == nargs


class TestPointerMasks:
    def test_read_buffer_is_pointer(self):
        entry = LINUX_X86_64.by_name("read")
        assert entry.checkable_args == (0, 2)  # fd and count, not buf

    def test_stat_all_pointers(self):
        entry = LINUX_X86_64.by_name("stat")
        assert entry.num_checkable_args == 0

    def test_futex_checkable(self):
        entry = LINUX_X86_64.by_name("futex")
        # op, val, val3 are values; uaddr, timeout, uaddr2 are pointers.
        assert entry.checkable_args == (1, 2, 5)

    def test_mask_never_wider_than_nargs(self):
        for entry in LINUX_X86_64:
            assert entry.pointer_mask >> entry.nargs == 0


class TestSyscallDefValidation:
    def test_nargs_bounds(self):
        with pytest.raises(ValueError):
            SyscallDef(sid=1000, name="bogus", nargs=MAX_SYSCALL_ARGS + 1)

    def test_pointer_mask_bounds(self):
        with pytest.raises(ValueError):
            SyscallDef(sid=1000, name="bogus", nargs=1, pointer_mask=0b10)


class TestTableIntegrity:
    def test_no_gaps_in_core_range(self):
        for number in range(335):
            assert number in LINUX_X86_64

    def test_io_uring_range_present(self):
        for number in range(424, 436):
            assert number in LINUX_X86_64

    def test_total_count(self):
        assert len(LINUX_X86_64) == 347

    def test_duplicate_sid_rejected(self):
        with pytest.raises(ValueError):
            SyscallTable(
                [SyscallDef(0, "a", 0), SyscallDef(0, "b", 0)]
            )

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            SyscallTable(
                [SyscallDef(0, "a", 0), SyscallDef(1, "a", 0)]
            )

    def test_iteration_sorted(self):
        sids = [entry.sid for entry in LINUX_X86_64]
        assert sids == sorted(sids)


class TestLookup:
    def test_lookup_by_int_str_and_def(self):
        read = LINUX_X86_64.by_name("read")
        assert LINUX_X86_64.lookup(0) is read
        assert LINUX_X86_64.lookup("read") is read
        assert LINUX_X86_64.lookup(read) is read

    def test_unknown_sid(self):
        with pytest.raises(UnknownSyscallError):
            LINUX_X86_64.by_sid(9999)

    def test_unknown_name(self):
        with pytest.raises(UnknownSyscallError):
            LINUX_X86_64.by_name("not_a_syscall")

    def test_unknown_type(self):
        with pytest.raises(UnknownSyscallError):
            LINUX_X86_64.lookup(3.14)

    def test_contains(self):
        assert "read" in LINUX_X86_64
        assert 0 in LINUX_X86_64
        assert "nope" not in LINUX_X86_64
        assert 3.14 not in LINUX_X86_64

    def test_sid_shorthand(self):
        assert sid("personality") == 135

    def test_max_sid(self):
        assert LINUX_X86_64.max_sid == 435

    def test_names_tuple(self):
        names = LINUX_X86_64.names()
        assert names[0] == "read"
        assert len(names) == len(LINUX_X86_64)
