"""Tests for repro.common.stats."""

import math

import pytest

from repro.common.stats import geomean, histogram, mean, normalise, percentile, ratio


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_generator(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_bounds(self):
        data = [3, 1, 2]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 3

    def test_single_value(self):
        assert percentile([42], 99) == 42

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestHistogram:
    def test_counts(self):
        assert histogram("abca") == {"a": 2, "b": 1, "c": 1}

    def test_empty(self):
        assert histogram([]) == {}


class TestNormalise:
    def test_sums_to_one(self):
        probs = normalise({"a": 1, "b": 3})
        assert probs["a"] == pytest.approx(0.25)
        assert probs["b"] == pytest.approx(0.75)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalise({})


class TestRatio:
    def test_normal(self):
        assert ratio(3, 4) == 0.75

    def test_zero_over_zero(self):
        assert ratio(0, 0) == 0.0

    def test_nonzero_over_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)
