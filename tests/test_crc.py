"""Tests for the CRC-64 hash substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.crc import (
    CRC64_ECMA,
    CRC64_NOT_ECMA,
    ECMA_POLY,
    NOT_ECMA_POLY,
    Crc64,
    hash_pair,
)


class TestKnownValues:
    def test_ecma_check_value(self):
        """CRC-64/ECMA-182 (init=0, xorout=0, MSB-first): the standard
        check value over the ASCII digits.  An earlier revision used
        all-ones init/xorout, which is CRC-64/WE (check value
        0x62EC59E3F1A4F00A) — not the code the paper cites."""
        assert CRC64_ECMA(b"123456789") == 0x6C40DF5F0B497347

    def test_not_ecma_check_value(self):
        """H2 has no published name; its value is pinned so any framing
        regression (init/xorout drift) fails loudly."""
        assert CRC64_NOT_ECMA(b"123456789") == 0x90C9B50E1728F165

    def test_we_framing_rejected(self):
        """The WE-framed variant must disagree with the ECMA-182 one."""
        we = Crc64(ECMA_POLY, init=2**64 - 1, xorout=2**64 - 1)
        assert we(b"123456789") == 0x62EC59E3F1A4F00A
        assert we(b"123456789") != CRC64_ECMA(b"123456789")

    def test_empty_input(self):
        # init ^ xorout for empty data
        assert CRC64_ECMA(b"") == 0
        assert CRC64_NOT_ECMA(b"") == 0

    def test_polynomials(self):
        assert ECMA_POLY == 0x42F0E1EBA9EA3693
        assert NOT_ECMA_POLY == (~ECMA_POLY & 0xFFFFFFFFFFFFFFFF) | 1
        assert NOT_ECMA_POLY % 2 == 1  # valid generator


class TestCrc64:
    def test_invalid_poly(self):
        with pytest.raises(ValueError):
            Crc64(0)

    def test_single_byte_changes_hash(self):
        assert CRC64_ECMA(b"\x00") != CRC64_ECMA(b"\x01")

    def test_functions_differ(self):
        data = b"draco"
        assert CRC64_ECMA(data) != CRC64_NOT_ECMA(data)

    def test_hash_pair(self):
        h1, h2 = hash_pair(b"abc")
        assert h1 == CRC64_ECMA(b"abc")
        assert h2 == CRC64_NOT_ECMA(b"abc")


class TestProperties:
    @given(st.binary(max_size=48))
    def test_deterministic(self, data):
        assert CRC64_ECMA(data) == CRC64_ECMA(data)
        assert CRC64_NOT_ECMA(data) == CRC64_NOT_ECMA(data)

    @given(st.binary(max_size=48))
    def test_64_bit_range(self, data):
        for fn in (CRC64_ECMA, CRC64_NOT_ECMA):
            assert 0 <= fn(data) < 2**64

    @given(st.binary(min_size=1, max_size=48), st.integers(0, 47), st.integers(1, 255))
    def test_bit_sensitivity(self, data, index, flip):
        """Flipping any byte changes the CRC (error-detection property)."""
        index %= len(data)
        mutated = bytearray(data)
        mutated[index] ^= flip
        assert CRC64_ECMA(bytes(mutated)) != CRC64_ECMA(data)

    @given(st.binary(max_size=24))
    def test_pair_consistent(self, data):
        """hash_pair is exactly (H1, H2); occasional collisions between
        the two functions are legitimate (the cuckoo table handles a
        shared probe location), so no inequality is asserted."""
        h1, h2 = hash_pair(data)
        assert h1 == CRC64_ECMA(data)
        assert h2 == CRC64_NOT_ECMA(data)

    def test_pair_decorrelated_on_corpus(self):
        """Across a corpus of argument keys, the two hash functions
        disagree almost always — their probe locations are independent."""
        corpus = [bytes([i, j]) for i in range(16) for j in range(16)]
        disagreements = sum(1 for d in corpus if CRC64_ECMA(d) != CRC64_NOT_ECMA(d))
        assert disagreements >= 0.99 * len(corpus)
