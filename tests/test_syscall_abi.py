"""Tests for the x86-64 ABI model: registers, bitmasks, byte selection."""

import pytest

from repro.common.errors import ConfigError
from repro.syscalls.abi import (
    ArgumentRegisterMap,
    RegisterFile,
    SYSCALL_ID_REGISTER,
    X86_64_ARG_REGISTERS,
    argument_bitmask,
    bitmask_arg_count,
    select_bytes,
)


class TestArgumentRegisterMap:
    def test_default_x86_order(self):
        abi = ArgumentRegisterMap()
        assert abi.register_for(0) == "rdi"
        assert abi.register_for(3) == "r10"
        assert abi.registers == X86_64_ARG_REGISTERS

    def test_pack_unpack_roundtrip(self):
        abi = ArgumentRegisterMap()
        regs = abi.pack([10, 20, 30])
        assert regs == {"rdi": 10, "rsi": 20, "rdx": 30}
        assert abi.unpack(regs, 3) == (10, 20, 30)

    def test_unpack_missing_register_defaults_zero(self):
        abi = ArgumentRegisterMap()
        assert abi.unpack({"rdi": 5}, 2) == (5, 0)

    def test_custom_registers(self):
        """Section VIII: an OS-programmable register mapping."""
        abi = ArgumentRegisterMap(("r8", "r9", "rdi"))
        assert abi.register_for(2) == "rdi"

    def test_duplicate_registers_rejected(self):
        with pytest.raises(ConfigError):
            ArgumentRegisterMap(("rdi", "rdi"))

    def test_rax_reserved(self):
        with pytest.raises(ConfigError):
            ArgumentRegisterMap(("rax", "rdi"))

    def test_out_of_range_index(self):
        abi = ArgumentRegisterMap()
        with pytest.raises(ConfigError):
            abi.register_for(6)

    def test_too_many_args(self):
        abi = ArgumentRegisterMap()
        with pytest.raises(ConfigError):
            abi.pack(list(range(7)))


class TestRegisterFile:
    def test_as_dict(self):
        rf = RegisterFile(rax=135, args=(0xFFFFFFFF,))
        regs = rf.as_dict()
        assert regs[SYSCALL_ID_REGISTER] == 135
        assert regs["rdi"] == 0xFFFFFFFF


class TestArgumentBitmask:
    def test_full_width_default(self):
        mask = argument_bitmask(2)
        assert mask == 0xFFFF  # two args x 8 bytes

    def test_narrow_bytes(self):
        """The paper's example: two one-byte args set bits 0 and 8."""
        mask = argument_bitmask(2, [1, 1])
        assert mask == (1 << 0) | (1 << 8)

    def test_zero_args(self):
        assert argument_bitmask(0) == 0

    def test_six_args_fits_48_bits(self):
        mask = argument_bitmask(6)
        assert mask == (1 << 48) - 1

    def test_invalid_nargs(self):
        with pytest.raises(ConfigError):
            argument_bitmask(7)

    def test_width_mismatch(self):
        with pytest.raises(ConfigError):
            argument_bitmask(2, [8])

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            argument_bitmask(1, [0])


class TestBitmaskArgCount:
    def test_roundtrip(self):
        for nargs in range(7):
            assert bitmask_arg_count(argument_bitmask(nargs)) == nargs

    def test_sparse_mask_counts_highest(self):
        # Only argument 2 used -> count is 3 (Figure 7's semantics).
        mask = 0xFF << 16
        assert bitmask_arg_count(mask) == 3

    def test_too_wide(self):
        with pytest.raises(ConfigError):
            bitmask_arg_count(1 << 48)

    def test_negative(self):
        with pytest.raises(ConfigError):
            bitmask_arg_count(-1)


class TestSelectBytes:
    def test_selects_masked_bytes_only(self):
        mask = argument_bitmask(2, [1, 1])
        out = select_bytes((0xAB, 0xCD), mask)
        assert out == bytes([0xAB, 0xCD])

    def test_full_argument(self):
        mask = argument_bitmask(1)
        out = select_bytes((0x0102030405060708,), mask)
        assert out == bytes([8, 7, 6, 5, 4, 3, 2, 1])  # little-endian

    def test_zero_mask_empty(self):
        assert select_bytes((1, 2, 3), 0) == b""

    def test_short_args_padded(self):
        mask = argument_bitmask(3)
        out = select_bytes((1,), mask)
        assert len(out) == 24
        assert out[8:] == bytes(16)

    def test_distinct_args_distinct_bytes(self):
        mask = argument_bitmask(2)
        a = select_bytes((1, 2), mask)
        b = select_bytes((2, 1), mask)
        assert a != b

    def test_negative_wraps_to_u64(self):
        mask = argument_bitmask(1)
        out = select_bytes((-1,), mask)
        assert out == b"\xff" * 8

    def test_bad_mask(self):
        with pytest.raises(ConfigError):
            select_bytes((1,), 1 << 48)
