"""Tests for the multi-process round-robin scheduler."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.kernel.scheduler import (
    DracoCore,
    RoundRobinScheduler,
    ScheduledProcess,
)
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event


def _process(name, fds=(3, 4), events=400, work=500.0):
    trace = SyscallTrace(
        [make_event("read", (fds[i % len(fds)], 100), pc=0x100) for i in range(events)]
    )
    profile = generate_complete(trace, name)
    return ScheduledProcess(
        name=name, profile=profile, trace=trace, work_cycles_per_syscall=work
    )


class TestValidation:
    def test_needs_processes(self):
        with pytest.raises(ConfigError):
            RoundRobinScheduler([])

    def test_needs_positive_quantum(self):
        with pytest.raises(ConfigError):
            RoundRobinScheduler([_process("a")], quantum_syscalls=0)

    def test_unique_names(self):
        with pytest.raises(ConfigError):
            RoundRobinScheduler([_process("a"), _process("a")])


class TestScheduling:
    def test_all_processes_complete(self):
        scheduler = RoundRobinScheduler(
            [_process("a"), _process("b", fds=(7, 8))], quantum_syscalls=100
        )
        result = scheduler.run()
        assert result.total_syscalls == 800
        for process in scheduler.processes:
            assert process.done
            assert process.syscalls_run == 400

    def test_context_switch_count(self):
        scheduler = RoundRobinScheduler(
            [_process("a"), _process("b", fds=(7, 8))], quantum_syscalls=100
        )
        result = scheduler.run()
        # 400 events each at quantum 100 -> 4 slices each, alternating:
        # 7 switches between 8 slices.
        assert result.context_switches == 7

    def test_single_process_never_switches(self):
        scheduler = RoundRobinScheduler([_process("solo")], quantum_syscalls=50)
        result = scheduler.run()
        assert result.context_switches == 0

    def test_denial_raises_strict(self):
        victim = _process("victim")
        victim.trace.append(make_event("mount", pc=0x200))
        object.__setattr__  # noqa: B018 - documentation of mutability
        scheduler = RoundRobinScheduler([victim], quantum_syscalls=1000)
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_multitenancy_costs_more_than_solo(self):
        """Each resume finds cold SLB/STB state: multi-tenant mean check
        cost is at least the single-tenant cost."""
        solo = RoundRobinScheduler([_process("a")], quantum_syscalls=100).run()
        duo = RoundRobinScheduler(
            [_process("a"), _process("b", fds=(7, 8))], quantum_syscalls=100
        ).run()
        assert duo.per_process["a"] >= solo.per_process["a"] * 0.99

    def test_smaller_quanta_cost_more(self):
        coarse = RoundRobinScheduler(
            [_process("a"), _process("b", fds=(7, 8))], quantum_syscalls=200
        ).run()
        fine = RoundRobinScheduler(
            [_process("a"), _process("b", fds=(7, 8))], quantum_syscalls=25
        ).run()
        assert fine.context_switches > coarse.context_switches
        mean_fine = sum(fine.per_process.values()) / 2
        mean_coarse = sum(coarse.per_process.values()) / 2
        assert mean_fine >= mean_coarse

    def test_processes_isolated(self):
        """Process b's profile does not allow a's fds and vice versa —
        each pipeline checks its own policy."""
        a = _process("a", fds=(3,))
        b = _process("b", fds=(9,))
        scheduler = RoundRobinScheduler([a, b], quantum_syscalls=50)
        result = scheduler.run()
        assert result.total_syscalls == 800
