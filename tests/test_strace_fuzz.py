"""Fuzz tests for the strace parser: arbitrary text must never crash it."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing.strace import StraceParser, parse_value, split_arguments


class TestParserRobustness:
    @settings(max_examples=120, deadline=None)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_crashes(self, text):
        parser = StraceParser()
        trace = parser.parse(text)
        assert len(trace) >= 0  # no exception is the property

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet='abcdefgh(),"= 0123456789|_<>{}[]-.', max_size=120))
    def test_strace_like_noise_never_crashes(self, text):
        parser = StraceParser()
        parser.parse(text)

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=80))
    def test_split_arguments_total(self, text):
        parts = split_arguments(text)
        assert isinstance(parts, tuple)

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=40))
    def test_parse_value_total(self, token):
        result = parse_value(token, {"FLAG": 1})
        assert result is None or isinstance(result, int)

    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(["read", "close", "getpid", "openat"]),
        args=st.lists(st.integers(0, 2**32), max_size=4),
        ret=st.integers(-200, 2**31),
    )
    def test_wellformed_lines_always_parse(self, name, args, ret):
        line = f"{name}({', '.join(str(a) for a in args)}) = {ret}"
        parser = StraceParser()
        record = parser.parse_line(line)
        assert record is not None
        assert record.name == name
        assert record.return_value == ret

    @settings(max_examples=60, deadline=None)
    @given(payload=st.text(alphabet=st.characters(blacklist_characters='"\\', blacklist_categories=("Cs", "Cc")), max_size=30))
    def test_string_payloads_never_become_values(self, payload):
        parser = StraceParser()
        line = f'write(1, "{payload}", 5) = 5'
        record = parser.parse_line(line)
        assert record is not None
        event = parser.record_to_event(record)
        assert event is not None
        assert event.args[1] == 0  # the buffer pointer slot stays 0
        assert event.args == (1, 0, 5)
