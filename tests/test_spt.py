"""Tests for the System Call Permissions Table (software and hardware)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.spt import HardwareSPT, SoftwareSPT, SptEntry
from repro.cpu.params import DracoHwParams


class TestSptEntry:
    def test_arg_count_from_bitmask(self):
        entry = SptEntry(sid=0, arg_bitmask=0xFF | (0xFF << 16))
        assert entry.arg_count == 3  # highest used argument is #2

    def test_no_args(self):
        assert SptEntry(sid=0).arg_count == 0
        assert not SptEntry(sid=0).checks_arguments

    def test_checks_arguments(self):
        assert SptEntry(sid=0, arg_bitmask=0xFF).checks_arguments


class TestSoftwareSPT:
    def test_set_and_lookup(self):
        spt = SoftwareSPT()
        spt.set_entry(SptEntry(sid=5, base=0x1000))
        assert spt.lookup(5).base == 0x1000
        assert spt.lookup(6) is None

    def test_overwrite(self):
        spt = SoftwareSPT()
        spt.set_entry(SptEntry(sid=5, base=1))
        spt.set_entry(SptEntry(sid=5, base=2))
        assert spt.lookup(5).base == 2
        assert len(spt) == 1

    def test_entries_sorted(self):
        spt = SoftwareSPT()
        spt.set_entry(SptEntry(sid=9))
        spt.set_entry(SptEntry(sid=2))
        assert [e.sid for e in spt.entries()] == [2, 9]


class TestHardwareSPT:
    def test_direct_mapped_only(self):
        with pytest.raises(ConfigError):
            HardwareSPT(DracoHwParams(spt_ways=2))

    def test_install_lookup(self):
        spt = HardwareSPT()
        spt.install(SptEntry(sid=0, base=0xAA))
        assert spt.lookup(0).base == 0xAA

    def test_miss_on_absent(self):
        spt = HardwareSPT()
        assert spt.lookup(7) is None
        assert spt.misses == 1

    def test_alias_detected_by_tag(self):
        """SIDs 424+ alias low slots mod 384; the tag must catch it."""
        spt = HardwareSPT()
        spt.install(SptEntry(sid=424, base=1))
        aliased = 424 % spt.num_entries
        assert spt.lookup(aliased) is None  # not a false hit

    def test_alias_displacement_reported(self):
        spt = HardwareSPT()
        aliased = 424 % spt.num_entries
        spt.install(SptEntry(sid=aliased, base=1))
        displaced = spt.install(SptEntry(sid=424, base=2))
        assert displaced is not None and displaced.sid == aliased

    def test_reinstall_same_sid_not_displacement(self):
        spt = HardwareSPT()
        spt.install(SptEntry(sid=3, base=1))
        assert spt.install(SptEntry(sid=3, base=2)) is None

    def test_invalid_entry_misses(self):
        spt = HardwareSPT()
        spt.install(SptEntry(sid=3, valid=False))
        assert spt.lookup(3) is None

    def test_accessed_bit_lifecycle(self):
        """Section VII-B: Accessed bits drive the context-switch save."""
        spt = HardwareSPT()
        spt.install(SptEntry(sid=1))
        spt.install(SptEntry(sid=2))
        spt.lookup(1)
        saved = spt.save_accessed_entries()
        assert [e.sid for e in saved] == [1]
        spt.clear_accessed_bits()
        assert spt.save_accessed_entries() == ()

    def test_restore(self):
        spt = HardwareSPT()
        spt.install(SptEntry(sid=1, base=0x42))
        spt.lookup(1)
        saved = spt.save_accessed_entries()
        spt.invalidate_all()
        assert spt.lookup(1) is None
        spt.restore(saved)
        assert spt.lookup(1).base == 0x42

    def test_occupancy(self):
        spt = HardwareSPT()
        assert spt.occupancy == 0
        spt.install(SptEntry(sid=1))
        assert spt.occupancy == 1
        spt.invalidate_all()
        assert spt.occupancy == 0

    def test_hit_sets_accessed(self):
        spt = HardwareSPT()
        spt.install(SptEntry(sid=1))
        entry = spt.lookup(1)
        assert entry.accessed
