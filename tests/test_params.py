"""Tests for the architectural parameter dataclasses (Table II)."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    OLD_KERNEL_SW_COSTS,
    CacheParams,
    DracoHwParams,
    ProcessorParams,
)


class TestCacheParams:
    def test_num_sets(self):
        l1 = CacheParams("L1", 32 * 1024, 8, 2)
        assert l1.num_sets == 64
        assert l1.num_lines == 512

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            CacheParams("bad", 1000, 3, 1)
        with pytest.raises(ConfigError):
            CacheParams("bad", 0, 1, 1)


class TestProcessorDefaults:
    def test_table_ii_values(self):
        proc = DEFAULT_PROCESSOR
        assert proc.cores == 10
        assert proc.rob_entries == 128
        assert proc.frequency_ghz == 2.0
        assert proc.l1d.size_bytes == 32 * 1024
        assert proc.l2.size_bytes == 256 * 1024
        assert proc.l3.size_bytes == 8 * 1024 * 1024
        assert proc.l3.access_cycles == 32

    def test_dispatch_window_positive(self):
        assert 0 < DEFAULT_PROCESSOR.dispatch_to_head_cycles < DEFAULT_PROCESSOR.rob_entries


class TestDracoHwDefaults:
    def test_table_ii_structures(self):
        hw = DEFAULT_DRACO_HW
        assert hw.stb_entries == 256 and hw.stb_ways == 2
        assert hw.spt_entries == 384 and hw.spt_ways == 1
        assert hw.temp_buffer_entries == 8
        assert hw.crc_cycles == 3

    def test_slb_subtables_cover_1_to_6(self):
        counts = sorted(s.arg_count for s in DEFAULT_DRACO_HW.slb_subtables)
        assert counts == [1, 2, 3, 4, 5, 6]

    def test_unknown_subtable(self):
        with pytest.raises(ConfigError):
            DEFAULT_DRACO_HW.slb_subtable_for(0)


class TestSoftwareCosts:
    def test_hit_cost_composition(self):
        costs = DEFAULT_SW_COSTS
        assert costs.sw_draco_hit_cycles == (
            costs.sw_draco_fixed_cycles
            + costs.sw_draco_hash_cycles
            + 2 * costs.sw_draco_vat_probe_cycles
            + costs.sw_draco_compare_cycles
        )

    def test_old_kernel_slower(self):
        assert OLD_KERNEL_SW_COSTS.syscall_base_cycles > DEFAULT_SW_COSTS.syscall_base_cycles
        assert (
            OLD_KERNEL_SW_COSTS.cycles_per_bpf_insn_jit
            > DEFAULT_SW_COSTS.cycles_per_bpf_insn_jit
        )

    def test_jit_faster_than_interpreter(self):
        assert (
            DEFAULT_SW_COSTS.cycles_per_bpf_insn_jit
            < DEFAULT_SW_COSTS.cycles_per_bpf_insn_interpreted
        )


class TestResultsCsv:
    def test_csv_round_trip(self, tmp_path):
        from repro.experiments.results import ExperimentResult

        result = ExperimentResult(
            "figX", "demo", ("workload", "value"), (("a", 1.5), ("b", 2.0))
        )
        path = tmp_path / "fig.csv"
        result.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "workload,value"
        assert lines[1] == "a,1.5"

    def test_cli_csv_dir(self, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["table2", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table2.csv").exists()
