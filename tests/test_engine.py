"""Tests for the parallel experiment engine, result cache, and telemetry.

Uses the cheap registry entries (tables, small figure subsets via
run_overrides) so the suite stays fast; the CI smoke and benchmarks
exercise the full artifacts.
"""

import json

import pytest

from repro.common.telemetry import RunReport
from repro.experiments import cache as result_cache
from repro.experiments import engine
from repro.experiments.results import ExperimentResult

FAST_IDS = ("table1", "table2", "table3")


@pytest.fixture(autouse=True)
def _tmp_cache(monkeypatch, tmp_path):
    monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(result_cache.CACHE_DISABLE_ENV, raising=False)
    yield


def _suite_json(run):
    return [o.result.to_json() for o in run.outcomes]


class TestParallelSerialEquality:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = engine.run_suite(
            FAST_IDS, jobs=1, cache_mode=engine.CACHE_OFF, events=2000
        )
        parallel = engine.run_suite(
            FAST_IDS, jobs=3, cache_mode=engine.CACHE_OFF, events=2000
        )
        assert _suite_json(serial) == _suite_json(parallel)
        assert [o.experiment_id for o in parallel.outcomes] == list(FAST_IDS)

    def test_derived_seeds_are_stable_and_distinct(self):
        a = engine._task_kwargs("table1", None, 42, None)
        b = engine._task_kwargs("table2", None, 42, None)
        assert a["seed"] == engine._task_kwargs("table1", None, 42, None)["seed"]
        assert a["seed"] != b["seed"]

    def test_no_seed_means_module_defaults(self):
        assert engine._task_kwargs("table1", None, None, None) == {}


class TestResultCache:
    def test_second_run_hits(self):
        first = engine.run_suite(("table3",), jobs=1)
        second = engine.run_suite(("table3",), jobs=1)
        assert first.report.records[0].cache == "miss"
        assert second.report.records[0].cache == "hit"
        assert _suite_json(first) == _suite_json(second)

    def test_param_change_invalidates(self):
        engine.run_suite(("table3",), jobs=1)
        reseeded = engine.run_suite(("table3",), jobs=1, seed=7)
        assert reseeded.report.records[0].cache == "miss"

    def test_refresh_recomputes_and_repopulates(self):
        engine.run_suite(("table3",), jobs=1)
        refreshed = engine.run_suite(("table3",), jobs=1, cache_mode=engine.CACHE_REFRESH)
        assert refreshed.report.records[0].cache == "refresh"
        again = engine.run_suite(("table3",), jobs=1)
        assert again.report.records[0].cache == "hit"

    def test_no_cache_never_touches_disk(self):
        run = engine.run_suite(("table3",), jobs=1, cache_mode=engine.CACHE_OFF)
        assert run.report.records[0].cache == "off"
        assert not (result_cache.cache_root() / "results").exists()

    def test_torn_entry_is_a_miss(self):
        run = engine.run_suite(("table3",), jobs=1)
        digest = run.report.records[0].params_digest
        path = result_cache.ResultCache().result_path("table3", digest)
        path.write_text("{ not json")
        again = engine.run_suite(("table3",), jobs=1)
        assert again.report.records[0].cache == "miss"

    def test_round_trip_preserves_result(self):
        run = engine.run_suite(("table2",), jobs=1)
        loaded = engine.run_suite(("table2",), jobs=1)
        fresh = run.results["table2"]
        cached = loaded.results["table2"]
        assert isinstance(cached, ExperimentResult)
        assert cached == fresh
        assert cached.format_table() == fresh.format_table()


class TestCalibrationCache:
    def test_calibration_persisted_and_reused(self):
        from repro.experiments.runner import _cached_context, build_context
        from repro.workloads.catalog import CATALOG

        _cached_context.cache_clear()
        first = build_context(CATALOG["pipe-ipc"], events=2000)
        calibs = list((result_cache.cache_root() / "calibration").glob("*.json"))
        assert calibs, "calibration value should be written to disk"
        second = build_context(CATALOG["pipe-ipc"], events=2000)
        assert second.work_cycles == first.work_cycles
        # a different trace length must not be served the same value
        other = build_context(CATALOG["pipe-ipc"], events=2500)
        assert len(list((result_cache.cache_root() / "calibration").glob("*.json"))) > len(
            calibs
        ) or other.work_cycles != first.work_cycles

    def test_context_memo_keyed_on_costs(self):
        from repro.cpu.params import DEFAULT_SW_COSTS, OLD_KERNEL_SW_COSTS, SoftwareCostParams
        from repro.experiments.runner import get_context

        base = get_context("pipe-ipc", events=2000)
        assert get_context("pipe-ipc", events=2000, costs=DEFAULT_SW_COSTS) is base
        old = get_context("pipe-ipc", events=2000, old_kernel=True)
        assert old is not base
        assert old is get_context("pipe-ipc", events=2000, costs=OLD_KERNEL_SW_COSTS)
        tweaked = get_context(
            "pipe-ipc", events=2000, costs=SoftwareCostParams(syscall_base_cycles=151)
        )
        assert tweaked is not base


class TestFailureIsolation:
    def test_one_failure_does_not_abort_serial(self):
        run = engine.run_suite(
            ("table2", "fig13"),
            jobs=1,
            cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"events": 0}},  # empty trace: raises
        )
        by_exp = {o.experiment_id: o for o in run.outcomes}
        assert by_exp["table2"].ok and by_exp["table2"].result is not None
        assert not by_exp["fig13"].ok and by_exp["fig13"].result is None
        assert "Traceback" in by_exp["fig13"].record.error
        assert run.failures == [by_exp["fig13"]]

    def test_one_failure_does_not_abort_parallel(self):
        run = engine.run_suite(
            ("table2", "fig13", "table3"),
            jobs=3,
            cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"events": 0}},
        )
        statuses = {o.experiment_id: o.ok for o in run.outcomes}
        assert statuses == {"table2": True, "fig13": False, "table3": True}

    def test_failures_are_not_cached(self):
        engine.run_suite(
            ("fig13",), jobs=1, run_overrides={"fig13": {"events": 0}}
        )
        digest_paths = list((result_cache.cache_root() / "results").rglob("*.json"))
        assert digest_paths == []

    def test_unknown_id_raises_up_front(self):
        with pytest.raises(KeyError):
            engine.run_suite(("fig99",))


class TestTelemetryReport:
    def test_report_records_timing_and_simulation(self):
        run = engine.run_suite(
            ("fig13",),
            jobs=1,
            cache_mode=engine.CACHE_OFF,
            run_overrides={"fig13": {"events": 2000, "workloads": ("pipe-ipc",)}},
        )
        record = run.report.records[0]
        assert record.ok and record.cache == "off"
        assert record.wall_time_s > 0
        sim = record.simulation
        assert sim["traces_run"] >= 1
        # events_simulated covers the measured window only; warm-up
        # events are accounted separately so the two sum to the trace.
        assert sim["events_simulated"] >= 1200
        assert sim["warmup_events"] >= 800
        assert sim["events_simulated"] + sim["warmup_events"] >= 2000
        assert sim["total_cycles"] > 0
        assert any(v > 0 for v in sim["regime_cycles"].values())

    def test_report_round_trip_and_summary(self, tmp_path):
        run = engine.run_suite(("table2",), jobs=1)
        path = engine.write_report(run, str(tmp_path / "report.json"))
        loaded = RunReport.read(path)
        assert [r.experiment_id for r in loaded.records] == ["table2"]
        latest = RunReport.read(result_cache.cache_root() / "runs" / "latest.json")
        assert latest.to_json_dict() == loaded.to_json_dict()
        summary = loaded.format_summary()
        assert "table2" in summary and "hit" in summary or "miss" in summary

    def test_cli_summary(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "--quiet"]) == 0
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out and "table2" in out

    def test_cli_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig99"]) == 2


class TestCacheKeying:
    def test_params_digest_order_insensitive(self):
        a = result_cache.params_digest({"x": 1, "y": 2})
        b = result_cache.params_digest({"y": 2, "x": 1})
        assert a == b
        assert a != result_cache.params_digest({"x": 1, "y": 3})

    def test_code_fingerprint_stable(self):
        assert result_cache.code_fingerprint() == result_cache.code_fingerprint()
        assert len(result_cache.code_fingerprint()) == 20
