"""Tests for the strace-style profile-generation toolkit (Section X-B)."""

import pytest

from repro.seccomp.toolkit import (
    generate_bundle,
    generate_complete,
    generate_noargs,
    observed_argument_sets,
)
from repro.syscalls.events import SyscallTrace, make_event
from repro.syscalls.table import sid


@pytest.fixture
def trace():
    return SyscallTrace(
        [
            make_event("read", (3, 100)),
            make_event("read", (4, 100)),
            make_event("read", (3, 100)),
            make_event("write", (1, 64)),
            make_event("getppid"),
            make_event("stat"),
        ]
    )


class TestObservedArgumentSets:
    def test_distinct_sets_per_sid(self, trace):
        observed = observed_argument_sets(trace)
        assert observed[sid("read")] == {(3, 100), (4, 100)}
        assert observed[sid("write")] == {(1, 64)}

    def test_pointer_args_excluded(self, trace):
        observed = observed_argument_sets(trace)
        assert observed[sid("stat")] == {()}

    def test_zero_arg_syscalls(self, trace):
        assert observed_argument_sets(trace)[sid("getppid")] == {()}


class TestNoargsProfile:
    def test_whitelists_observed_ids_only(self, trace):
        profile = generate_noargs(trace, "app")
        assert profile.allows(make_event("read", (99, 99)))  # any args
        assert not profile.allows(make_event("close", (3,)))

    def test_no_argument_rules(self, trace):
        profile = generate_noargs(trace, "app")
        assert profile.num_arguments_checked == 0

    def test_name(self, trace):
        assert generate_noargs(trace, "app").name == "app:syscall-noargs"


class TestCompleteProfile:
    def test_exact_argument_sets(self, trace):
        profile = generate_complete(trace, "app")
        assert profile.allows(make_event("read", (3, 100)))
        assert profile.allows(make_event("read", (4, 100)))
        assert not profile.allows(make_event("read", (5, 100)))
        assert not profile.allows(make_event("read", (3, 200)))

    def test_unchecked_when_no_checkable_args(self, trace):
        profile = generate_complete(trace, "app")
        assert profile.allows(make_event("getppid"))
        assert profile.allows(make_event("stat"))

    def test_unobserved_syscall_denied(self, trace):
        profile = generate_complete(trace, "app")
        assert not profile.allows(make_event("mount"))

    def test_covers_whole_trace(self, trace):
        """Every event of the recorded trace must pass its own profile."""
        profile = generate_complete(trace, "app")
        for event in trace:
            assert profile.allows(event)

    def test_value_metric(self, trace):
        profile = generate_complete(trace, "app")
        # read: fd in {3,4}, count {100}; write: fd {1}, count {64}.
        assert profile.num_argument_values_allowed == 5


class TestBundle:
    def test_bundle_contents(self, trace):
        bundle = generate_bundle(trace, "app")
        assert bundle.noargs.num_syscalls == bundle.complete.num_syscalls
        assert bundle.complete_2x is bundle.complete

    def test_complete_stricter_than_noargs(self, trace):
        bundle = generate_bundle(trace, "app")
        probe = make_event("read", (77, 77))
        assert bundle.noargs.allows(probe)
        assert not bundle.complete.allows(probe)
