"""Benchmark: regenerate Figure 11 (software Draco vs Seccomp).

Paper shape: software Draco beats Seccomp for argument-checking
profiles, and its cost is flat as checks double (macro: 1.14->1.10 at
1x, 1.21->1.10 at 2x; micro: 1.25->1.18, 1.42->1.23).
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig11_draco_sw


def test_fig11_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig11_draco_sw.run, events=BENCH_EVENTS)

    for kind in ("macro", "micro"):
        row = result.row_dict(f"average-{kind}")
        # Draco-SW wins wherever arguments are checked.
        assert row["draco-sw-complete"] < row["syscall-complete"]
        assert row["draco-sw-complete-2x"] < row["syscall-complete-2x"]
        # The win grows with 2x checks (Draco's cost is hit-path-bound).
        gain_1x = row["syscall-complete"] - row["draco-sw-complete"]
        gain_2x = row["syscall-complete-2x"] - row["draco-sw-complete-2x"]
        assert gain_2x > gain_1x
        # Draco-SW is essentially flat from 1x to 2x (paper: 1.10 -> 1.10).
        assert row["draco-sw-complete-2x"] - row["draco-sw-complete"] < 0.02

    macro = result.row_dict("average-macro")
    micro = result.row_dict("average-micro")
    # Paper targets: macro 1.10, micro 1.18 for draco-sw-complete.
    assert abs(macro["draco-sw-complete"] - 1.10) < 0.05
    assert abs(micro["draco-sw-complete"] - 1.18) < 0.06
