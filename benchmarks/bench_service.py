"""Benchmark for the warm experiment service (``REPRO_WARM_POOL``).

Measures the serving headline behind ``repro.experiments.service``:

* ``process_floor`` — the cost of answering a warm ``--refresh``
  request the pre-service way: a fresh process per run, full registry,
  warm disk cache (the ~1.7 s floor in docs/PERFORMANCE.md);
* ``served`` — the same request served by a warm in-process service:
  first computed on the warm pool, then repeated — each repeat replays
  the request memo.  Reports per-request p50/p95/p99 and asserts the
  replayed markdown is byte-identical to a fresh ``--refresh``
  recompute (the content-addressed request digest is what makes the
  replay *refresh-equivalent*);
* ``dispatch`` — the first parallel suite of a process, cold
  (throwaway pool: workers fork, import and warm on the critical path)
  vs warm (pool prestarted before timing).

and writes ``BENCH_service.json``.  ``--check`` gates:

1. served p50 must beat the process floor by ``--floor-speedup``
   (default 10x, the ISSUE acceptance bar);
2. the served replay must be byte-identical to the recompute;
3. warm dispatch must beat cold dispatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_service.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_service.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Required served-vs-process-floor speedup (the acceptance bar).
DEFAULT_FLOOR_SPEEDUP = 10.0

#: Memo replays measured for the latency percentiles.
DEFAULT_REPEATS = 50

_CHILD_SUITE = """
import json, sys, time
from repro.experiments import engine

config = json.loads(sys.argv[1])
started = time.perf_counter()
run = engine.run_suite(
    config.get("ids"),
    events=config.get("events"),
    jobs=config.get("jobs", 1),
    cache_mode=config["cache_mode"],
    run_overrides=config.get("run_overrides"),
)
wall = time.perf_counter() - started
print(json.dumps({
    "wall_s": round(wall, 3),
    "failures": [o.experiment_id for o in run.failures],
}))
"""

_CHILD_SERVICE = """
import json, sys
from repro.common import stats
from repro.experiments.service import ExperimentService
from repro.experiments import pool as warm_pool

config = json.loads(sys.argv[1])
svc = ExperimentService(jobs=config["jobs"], cache_dir=config["cache_dir"])
warm_pool.get_pool(svc.jobs).prestart()

request = {"op": "run", "cache_mode": "refresh", "events": config.get("events")}
first = svc.handle(dict(request))
assert first["ok"], first.get("error")
assert first["served"] == "computed", first["served"]

latencies = []
for _ in range(config["repeats"]):
    reply = svc.handle(dict(request))
    assert reply["ok"] and reply["served"] == "memo", reply.get("served")
    latencies.append(reply["wall_ms"])

# Refresh-equivalence: the memo replay must be byte-identical to a
# fresh recompute of the same request on the warm pool.
fresh = svc.handle(dict(request, no_memo=True))
assert fresh["ok"] and fresh["served"] == "computed", fresh.get("served")

print(json.dumps({
    "computed_wall_ms": first["wall_ms"],
    "latencies_ms": latencies,
    "p50_ms": round(stats.percentile(latencies, 50), 3),
    "p95_ms": round(stats.percentile(latencies, 95), 3),
    "p99_ms": round(stats.percentile(latencies, 99), 3),
    "identical": fresh["markdown"] == first["markdown"],
}))
"""

_CHILD_DISPATCH = """
import json, sys, time
from repro.experiments import engine
from repro.experiments import pool as warm_pool

config = json.loads(sys.argv[1])
if config["mode"] == "warm":
    warm_pool.get_pool(config["jobs"]).prestart()
started = time.perf_counter()
run = engine.run_suite(
    config["ids"],
    jobs=config["jobs"],
    cache_mode="off",
    run_overrides=config.get("run_overrides"),
)
wall = time.perf_counter() - started
assert not run.failures, [o.experiment_id for o in run.failures]
print(json.dumps({"wall_s": round(wall, 3)}))
"""


def _run_child(script: str, cache_dir: str, config: dict, env_extra: dict = None) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src"))
    env.update(env_extra or {})
    out = subprocess.run(
        [sys.executable, "-c", script, json.dumps(config)],
        env=env, capture_output=True, text=True, check=True,
    )
    payload = json.loads(out.stdout.strip().splitlines()[-1])
    if payload.get("failures"):
        raise RuntimeError(f"suite failures: {payload['failures']}")
    return payload


#: Small suite for the dispatch comparison.  fig2 is the Seccomp
#: experiment: its evaluations consume exactly what the pool
#: initializer preloads (profiles, assembled programs, compiled
#: filters), so the cold pool pays that warmup inside the first tasks
#: while the warm pool paid it off the critical path at prestart.
_DISPATCH_IDS = ["fig2"]
_DISPATCH_OVERRIDES = {"fig2": {"workloads": ["nginx", "pipe-ipc"], "events": 1200}}

#: Dispatch runs per mode; the minimum is compared (each run is a
#: fresh process, so the min isolates dispatch cost from scheduler
#: noise).
_DISPATCH_RUNS = 3


def measure(args) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as cache_dir:
        base = {"events": args.events, "jobs": args.jobs}
        # Populate the disk cache; the floor and the service both start warm.
        cold = _run_child(_CHILD_SUITE, cache_dir, dict(base, cache_mode="on"))
        floor = _run_child(_CHILD_SUITE, cache_dir, dict(base, cache_mode="refresh"))
        service = _run_child(
            _CHILD_SERVICE,
            cache_dir,
            dict(base, cache_dir=cache_dir, repeats=args.repeats),
        )
        dispatch_cold = [
            _run_child(
                _CHILD_DISPATCH,
                cache_dir,
                {"mode": "cold", "jobs": args.jobs, "ids": _DISPATCH_IDS,
                 "run_overrides": _DISPATCH_OVERRIDES},
                env_extra={"REPRO_WARM_POOL": "0"},
            )["wall_s"]
            for _ in range(_DISPATCH_RUNS)
        ]
        dispatch_warm = [
            _run_child(
                _CHILD_DISPATCH,
                cache_dir,
                {"mode": "warm", "jobs": args.jobs, "ids": _DISPATCH_IDS,
                 "run_overrides": _DISPATCH_OVERRIDES},
                env_extra={"REPRO_WARM_POOL": "1"},
            )["wall_s"]
            for _ in range(_DISPATCH_RUNS)
        ]
    floor_ms = floor["wall_s"] * 1000.0
    return {
        "events": args.events,
        "jobs": args.jobs,
        "repeats": args.repeats,
        "cold_suite": {"wall_s": cold["wall_s"]},
        "process_floor": {"wall_s": floor["wall_s"]},
        "served": {
            "computed_wall_ms": service["computed_wall_ms"],
            "p50_ms": service["p50_ms"],
            "p95_ms": service["p95_ms"],
            "p99_ms": service["p99_ms"],
            "identical_to_recompute": service["identical"],
        },
        "dispatch": {
            "cold_wall_s": min(dispatch_cold),
            "warm_wall_s": min(dispatch_warm),
            "cold_runs_s": dispatch_cold,
            "warm_runs_s": dispatch_warm,
        },
        "speedup": {
            "served_vs_process_floor": round(floor_ms / service["p50_ms"], 2),
            "warm_vs_cold_dispatch": round(
                min(dispatch_cold) / min(dispatch_warm), 2
            ),
        },
    }


def check_gates(measured: dict, floor_speedup: float) -> int:
    failures = []
    served = measured["speedup"]["served_vs_process_floor"]
    status = "ok" if served >= floor_speedup else "REGRESSION"
    print(
        f"served p50 {measured['served']['p50_ms']:.1f} ms vs process floor "
        f"{measured['process_floor']['wall_s'] * 1000:.0f} ms: {served:.0f}x "
        f"(required {floor_speedup:.0f}x)  {status}"
    )
    if served < floor_speedup:
        failures.append(
            f"served_vs_process_floor: {served:.1f}x < {floor_speedup:.0f}x"
        )
    if not measured["served"]["identical_to_recompute"]:
        failures.append("served replay differs from a fresh --refresh recompute")
    dispatch = measured["speedup"]["warm_vs_cold_dispatch"]
    status = "ok" if dispatch > 1.0 else "REGRESSION"
    print(
        f"first-suite dispatch: cold {measured['dispatch']['cold_wall_s']:.2f}s "
        f"vs warm {measured['dispatch']['warm_wall_s']:.2f}s: {dispatch:.2f}x  "
        f"{status}"
    )
    if dispatch <= 1.0:
        failures.append(f"warm_vs_cold_dispatch: {dispatch:.2f}x <= 1x")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("service gates passed: served replay fast, identical, warm-start wins")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=None,
        help="trace length per workload (default: the registry default)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--floor-speedup", type=float, default=DEFAULT_FLOOR_SPEEDUP,
        help="required served-vs-process-floor speedup (default: 10x)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the serving gates; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")

    if args.check:
        return check_gates(measured, args.floor_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
