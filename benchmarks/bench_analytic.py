"""Benchmark for the analytic steady-state backend (the third kernel tier).

Measures —

* ``fleet_stream`` — effective events/sec of the analytic tier on a
  steady-state fleet stream: a :class:`repro.syscalls.events.RunTrace`
  of multi-million-event runs driven through a Seccomp regime, where
  exact histogram replay makes the cost independent of run length;
* ``tiers`` — wall time and effective events/sec of one catalog
  workload under hardware Draco per kernel tier (``analytic`` /
  ``bulk`` / ``event``);
* ``cold_suite`` — cold end-to-end wall time of the full experiment
  registry at default event counts with the analytic backend on,
  against the committed pre-analytic wall;

and writes ``BENCH_analytic.json``.  ``--check`` compares measured
rates against the committed baseline and fails on a >30% regression
(the CI gate); ``--update`` refreshes the baseline in place.

Usage::

    PYTHONPATH=src python benchmarks/bench_analytic.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_analytic.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_analytic.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_analytic.json"

#: Allowed fractional events/sec regression before --check fails.
DEFAULT_TOLERANCE = 0.30

#: Cold wall time of the full registry at default event counts (12000)
#: with ``REPRO_ANALYTIC=0`` on the tree this benchmark landed on (same
#: machine as the committed baseline); kept so the JSON shows the
#: end-to-end speedup attributable to the analytic tier alone.
PRE_ANALYTIC_SUITE_WALL_S = None  # measured at runtime unless --skip-baseline-suite


def _fleet_stream(distinct: int, run_length: int):
    """A steady-state fleet stream: *distinct* event values repeating in
    round-robin runs of *run_length* events each."""
    from repro.syscalls.events import RunTrace, make_event

    events = [make_event("read", (3 + i, 4096), pc=0x100 + i) for i in range(distinct)]
    # Two passes so every value's second run replays from steady state.
    runs = [(e, run_length) for e in events] * 2
    return RunTrace(runs)


def bench_fleet_stream(distinct: int, run_length: int, repeats: int) -> dict:
    """Effective events/sec of the analytic tier on the fleet stream."""
    from repro.kernel.regimes import SeccompRegime
    from repro.kernel.simulator import run_trace
    from repro.seccomp.toolkit import generate_bundle
    from repro.syscalls.events import SyscallTrace, make_event

    trace = _fleet_stream(distinct, run_length)
    profile_trace = SyscallTrace(
        [make_event("read", (3 + i, 4096)) for i in range(distinct)]
    )
    bundle = generate_bundle(profile_trace, "fleet")
    best = 0.0
    for _ in range(repeats):
        regime = SeccompRegime(bundle.complete, name="seccomp-fleet")
        start = time.perf_counter()
        result = run_trace(trace, regime, 100.0, 150.0, workload_name="fleet")
        elapsed = time.perf_counter() - start
        best = max(best, len(trace) / elapsed)
    assert result.analytic is not None and result.analytic.mode == "exact"
    return {
        "distinct_values": distinct,
        "run_length": run_length,
        "total_events": len(trace),
        "effective_events_per_sec": round(best, 1),
    }


def bench_tiers(workload: str, events: int, seed: int, repeats: int) -> dict:
    """Wall time of one hardware-Draco run per kernel tier."""
    from repro.experiments.runner import get_context
    from repro.kernel.simulator import run_trace

    ctx = get_context(workload, events=events, seed=seed)
    out = {}
    for tier, env in (
        ("analytic", {}),
        ("bulk", {"REPRO_ANALYTIC": "0"}),
        ("event", {"REPRO_ANALYTIC": "0", "REPRO_BULK": "0"}),
    ):
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            best = None
            for _ in range(repeats):
                regime = ctx.make_regime("draco-hw-complete")
                start = time.perf_counter()
                run_trace(
                    ctx.trace,
                    regime,
                    work_cycles_per_syscall=ctx.work_cycles,
                    syscall_base_cycles=ctx.syscall_base_cycles,
                    workload_name=workload,
                )
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        out[tier] = {
            "wall_ms": round(best * 1000, 1),
            "events_per_sec": round(events / best, 1),
        }
    return out


def bench_cold_suite(analytic: bool) -> dict:
    """Cold wall time of every registry experiment at default event
    counts.  Runs in a fresh subprocess so *nothing* is warm — no result
    cache, no compiled-program or outcome memos, no trace generators —
    which is the number a first ``repro.experiments`` invocation pays."""
    import subprocess

    env = dict(os.environ)
    env["REPRO_CACHE_DISABLE"] = "1"
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    if not analytic:
        env["REPRO_ANALYTIC"] = "0"
    else:
        env.pop("REPRO_ANALYTIC", None)
    script = (
        "import time\n"
        "from repro.experiments.registry import REGISTRY\n"
        "start = time.perf_counter()\n"
        "for entry in REGISTRY:\n"
        "    entry.run()\n"
        "print(time.perf_counter() - start)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True,
        check=True,
    )
    from repro.experiments.registry import REGISTRY

    return {
        "experiments": len(REGISTRY),
        "analytic": analytic,
        "wall_s": round(float(out.stdout.strip().splitlines()[-1]), 2),
    }


def measure(args) -> dict:
    payload = {
        "workload": args.workload,
        "events": args.events,
        "seed": args.seed,
        "fleet_stream": bench_fleet_stream(
            args.fleet_distinct, args.fleet_run_length, args.repeats
        ),
        "tiers": bench_tiers(args.workload, args.events, args.seed, args.repeats),
    }
    tiers = payload["tiers"]
    payload["speedup"] = {
        "analytic_vs_event": round(
            tiers["event"]["wall_ms"] / tiers["analytic"]["wall_ms"], 2
        ),
        "analytic_vs_bulk": round(
            tiers["bulk"]["wall_ms"] / tiers["analytic"]["wall_ms"], 2
        ),
    }
    if not args.skip_suite:
        # The exact-tier suite first, so the analytic run below is not
        # flattered by pre-warmed CPU caches relative to it.
        baseline_suite = bench_cold_suite(analytic=False)
        suite = bench_cold_suite(analytic=True)
        suite["pre_analytic_wall_s"] = baseline_suite["wall_s"]
        suite["speedup"] = round(baseline_suite["wall_s"] / suite["wall_s"], 2)
        payload["cold_suite"] = suite
    return payload


def check_regression(measured: dict, baseline: dict, tolerance: float) -> int:
    failures = []
    checks = [
        (
            "fleet_stream",
            measured["fleet_stream"]["effective_events_per_sec"],
            baseline.get("fleet_stream", {}).get("effective_events_per_sec"),
        )
    ]
    for tier in ("analytic", "bulk", "event"):
        checks.append(
            (
                f"tiers.{tier}",
                measured["tiers"][tier]["events_per_sec"],
                baseline.get("tiers", {}).get(tier, {}).get("events_per_sec"),
            )
        )
    for name, current, reference in checks:
        if reference is None:
            failures.append(f"{name}: missing from baseline")
            continue
        floor = reference * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"{name:16s} {current:15.1f} ev/s  (baseline {reference:.1f}, "
            f"floor {floor:.1f})  {status}"
        )
        if current < floor:
            failures.append(
                f"{name}: {current:.1f} ev/s < {floor:.1f} "
                f"(baseline {reference:.1f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("events/sec within tolerance of the committed baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="nginx")
    parser.add_argument("--events", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    # 256 distinct values amortize the per-run fixed costs (plan, result
    # build) enough that the rate is stable run-to-run; at 32 the whole
    # measurement is a fraction of a millisecond and too noisy to gate on.
    parser.add_argument("--fleet-distinct", type=int, default=256)
    parser.add_argument("--fleet-run-length", type=int, default=4_000_000)
    parser.add_argument(
        "--skip-suite", action="store_true",
        help="skip the two cold-suite timings (CI uses the rate checks only)",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline}; failing --check")
            return 1
        return check_regression(measured, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
