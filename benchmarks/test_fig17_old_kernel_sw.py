"""Benchmark: regenerate Figure 17 (appendix — software Draco, Linux 3.10).

Paper shape: software Draco still significantly reduces overhead on the
older kernel, especially for syscall-complete-2x.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig17_old_kernel_sw


def test_fig17_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig17_old_kernel_sw.run, events=BENCH_EVENTS)

    for kind in ("macro", "micro"):
        row = result.row_dict(f"average-{kind}")
        assert row["draco-sw-complete"] < row["syscall-complete"]
        assert row["draco-sw-complete-2x"] < row["syscall-complete-2x"]
        # The 2x gap is the dramatic one on the old kernel (interpreted
        # filters run twice; the Draco hit path is unchanged).
        gain_2x = row["syscall-complete-2x"] - row["draco-sw-complete-2x"]
        gain_1x = row["syscall-complete"] - row["draco-sw-complete"]
        assert gain_2x > gain_1x
