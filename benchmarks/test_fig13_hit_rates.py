"""Benchmark: regenerate Figure 13 (STB and SLB hit rates).

Paper shape: STB hit rate is >93% for every workload except
Elasticsearch and Redis; HTTPD/Elasticsearch/MySQL/Redis have the
lowest SLB rates (access hits 75-93%), the rest are near-perfect.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig13_hit_rates
from repro.experiments.fig13_hit_rates import PAPER_LOW_SLB, PAPER_LOW_STB


def test_fig13_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig13_hit_rates.run, events=BENCH_EVENTS)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    # STB: high everywhere except the paper's two exceptions.
    for name, row in rows.items():
        if name in PAPER_LOW_STB:
            assert row["stb_hit_rate"] < 0.93
        else:
            assert row["stb_hit_rate"] > 0.85, name

    # SLB access: the paper's four exceptions sit at the bottom.
    access = {name: row["slb_access_hit_rate"] for name, row in rows.items()}
    low_four = sorted(access, key=access.get)[:4]
    assert set(low_four) == set(PAPER_LOW_SLB)
    for name in PAPER_LOW_SLB:
        assert 0.6 <= access[name] <= 0.95

    # Everyone else's access hit rate is >= 90%.
    for name, rate in access.items():
        if name not in PAPER_LOW_SLB:
            assert rate >= 0.90, name
