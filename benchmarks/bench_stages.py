"""Benchmark for the stage-graph orchestrator (``REPRO_STAGE_GRAPH``).

Measures end-to-end suite wall times, each in a fresh subprocess (cold
in-process memos; only the shared on-disk cache carries over):

* ``cold_suite`` — cold run of the full registry on the stage graph;
* ``warm_hit`` — the same run again: every experiment a whole-result hit;
* ``warm_refresh`` — ``--refresh`` on the warm cache: analysis stages
  recompute while trace/calibration/eval stages are served from the
  ``stages/`` tier;
* ``flat_refresh`` — the same refresh on the flat engine
  (``REPRO_STAGE_GRAPH=0``), which recomputes every simulation — the
  baseline the stage-scoped refresh is measured against;
* ``incremental`` — one experiment's ``events`` perturbed: its stage
  subgraph recomputes while every other experiment's intermediates hit.

and writes ``BENCH_stages.json``.  ``--check`` gates on the
machine-robust *ratios* (refresh speedup, warm-hit speedup) against the
committed baseline with a 30% tolerance, and hard-fails if the
incremental run re-executed any stage outside the perturbed
experiment's subgraph; ``--update`` refreshes the baseline in place.

Usage::

    PYTHONPATH=src python benchmarks/bench_stages.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_stages.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_stages.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_stages.json"

#: Allowed fractional speedup regression before --check fails.
DEFAULT_TOLERANCE = 0.30

#: The experiment whose ``events`` the incremental phase perturbs, and
#: the experiments that must stay fully cached when it does.
PERTURBED = "fig12"
UNTOUCHED = ("fig13", "flowmix")

_CHILD = """
import json, sys, time
from repro.experiments import engine

config = json.loads(sys.argv[1])
started = time.perf_counter()
run = engine.run_suite(
    config.get("ids"),
    events=config.get("events"),
    jobs=config.get("jobs", 1),
    cache_mode=config["cache_mode"],
    run_overrides=config.get("run_overrides"),
)
wall = time.perf_counter() - started
counters = {}
for outcome in run.outcomes:
    stages = outcome.record.simulation.get("stages")
    if stages:
        counters[outcome.experiment_id] = stages["counters"]
print(json.dumps({
    "wall_s": round(wall, 3),
    "failures": [o.experiment_id for o in run.failures],
    "stage_counters": counters,
}))
"""


def _run_child(cache_dir: str, config: dict, stage_graph: bool = True) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_STAGE_GRAPH"] = "1" if stage_graph else "0"
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src"))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(config)],
        env=env, capture_output=True, text=True, check=True,
    )
    payload = json.loads(out.stdout.strip().splitlines()[-1])
    if payload["failures"]:
        raise RuntimeError(f"suite failures: {payload['failures']}")
    return payload


def measure(args) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-stages-") as cache_dir:
        base = {"events": args.events, "jobs": args.jobs}
        cold = _run_child(cache_dir, dict(base, cache_mode="on"))
        warm = _run_child(cache_dir, dict(base, cache_mode="on"))
        refresh = _run_child(cache_dir, dict(base, cache_mode="refresh"))
        flat_refresh = _run_child(
            cache_dir, dict(base, cache_mode="refresh"), stage_graph=False
        )
        # Incremental: perturb one experiment's events under --refresh —
        # its subgraph recomputes, everything else's intermediates hit.
        perturbed_events = (args.events or 12_000) + 37
        incremental = _run_child(
            cache_dir,
            dict(
                base,
                cache_mode="refresh",
                run_overrides={PERTURBED: {"events": perturbed_events}},
            ),
        )
    executed = sum(
        c["executed"] for c in cold["stage_counters"].values()
    )
    deduped = sum(c["dedup"] for c in cold["stage_counters"].values())
    payload = {
        "events": args.events,
        "jobs": args.jobs,
        "cold_suite": {
            "wall_s": cold["wall_s"],
            "stages_executed": executed,
            "stages_deduped": deduped,
        },
        "warm_hit": {"wall_s": warm["wall_s"]},
        "warm_refresh": {
            "wall_s": refresh["wall_s"],
            "stage_counters": refresh["stage_counters"],
        },
        "flat_refresh": {"wall_s": flat_refresh["wall_s"]},
        "incremental": {
            "wall_s": incremental["wall_s"],
            "perturbed": PERTURBED,
            "stage_counters": incremental["stage_counters"],
        },
        "speedup": {
            "warm_hit_vs_cold": round(cold["wall_s"] / warm["wall_s"], 2),
            "staged_vs_flat_refresh": round(
                flat_refresh["wall_s"] / refresh["wall_s"], 2
            ),
        },
    }
    return payload


def check_incremental(measured: dict) -> list:
    """The correctness half of the gate: the perturbed experiment must
    re-execute its whole subgraph; untouched ones must only re-run
    their (always-recomputed-under-refresh) analysis stage."""
    failures = []
    counters = measured["incremental"]["stage_counters"]
    perturbed = counters.get(PERTURBED)
    if perturbed is None:
        return [f"incremental: no stage counters for {PERTURBED}"]
    if perturbed["hit"] != 0 or perturbed["executed"] <= 1:
        failures.append(
            f"incremental: {PERTURBED} should recompute its whole subgraph, "
            f"got {perturbed}"
        )
    for eid in UNTOUCHED:
        c = counters.get(eid)
        if c is None:
            failures.append(f"incremental: no stage counters for {eid}")
        elif c["executed"] != 1 or c["hit"] == 0:
            failures.append(
                f"incremental: {eid} should serve intermediates from disk "
                f"and re-run only its analysis, got {c}"
            )
    return failures


#: Absolute floor for the warm-hit speedup.  The measured ratio is in
#: the hundreds but dominated by the ~10ms warm-run denominator, so a
#: baseline-relative tolerance would flake on scheduler noise; any
#: genuine regression (a warm run touching simulations) lands orders of
#: magnitude below this.
WARM_HIT_FLOOR = 50.0


def check_regression(measured: dict, baseline: dict, tolerance: float) -> int:
    failures = check_incremental(measured)
    for name in ("warm_hit_vs_cold", "staged_vs_flat_refresh"):
        current = measured["speedup"][name]
        reference = baseline.get("speedup", {}).get(name)
        if reference is None:
            failures.append(f"speedup.{name}: missing from baseline")
            continue
        if name == "warm_hit_vs_cold":
            floor = WARM_HIT_FLOOR
        else:
            floor = reference * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"speedup.{name:24s} {current:8.2f}x  (baseline {reference:.2f}x, "
            f"floor {floor:.2f}x)  {status}"
        )
        if current < floor:
            failures.append(
                f"speedup.{name}: {current:.2f}x < {floor:.2f}x "
                f"(baseline {reference:.2f}x, tolerance {tolerance:.0%})"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("stage-graph speedups within tolerance; incremental scoping exact")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=None,
        help="trace length per workload (default: the registry default)",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline}; failing --check")
            return 1
        return check_regression(measured, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
