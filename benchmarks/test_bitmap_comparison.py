"""Benchmark: Draco vs the Linux 5.11 action-cache bitmap (extension).

The paper's upstream legacy quantified: the bitmap recovers the ID-only
checking cost but cannot touch argument checking, which is exactly the
part Draco's VAT/SLB removes.
"""

from benchmarks.conftest import run_once
from repro.experiments import bitmap_comparison

BENCH_EVENTS = 6000


def test_bitmap_vs_draco_shape(benchmark):
    result = run_once(benchmark, bitmap_comparison.run, events=BENCH_EVENTS)
    rows = [dict(zip(result.columns, row)) for row in result.rows]

    for row in rows:
        if row["profile"] == "noargs":
            # Bitmap hits nearly everything on ID-only profiles...
            assert row["bitmap_hit_rate"] > 0.95, row["workload"]
            # ...and lands at (or below) plain Seccomp.
            assert row["seccomp+bitmap"] <= row["seccomp"] + 1e-6
        else:
            # Argument-checked syscalls dominate: bitmap coverage falls
            # and the bitmap regime reverts toward plain Seccomp.
            assert row["bitmap_hit_rate"] < 0.6, row["workload"]
            gap_to_seccomp = row["seccomp"] - row["seccomp+bitmap"]
            draco_gain = row["seccomp"] - row["draco-hw"]
            assert draco_gain > gap_to_seccomp, row["workload"]
            # Hardware Draco dominates everything on complete profiles.
            assert row["draco-hw"] <= min(
                row["seccomp"], row["seccomp+bitmap"], row["draco-sw"]
            ) + 1e-6
