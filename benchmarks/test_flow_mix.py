"""Benchmark: flow-occupancy extension analysis.

Validates the paper's working assumption that flow 1 (all hits) is the
dominant case, with fast flows covering the overwhelming majority of
syscalls in steady state.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import flow_mix


def test_flow_mix_fast_paths_dominate(benchmark):
    result = run_once(benchmark, flow_mix.run, events=BENCH_EVENTS)

    for row in result.rows:
        entry = dict(zip(result.columns, row))
        # Fast flows (1/3/5/SPT-only) cover the large majority everywhere
        # (lowest for the STB-pressured Elasticsearch/Redis, as Fig 13
        # predicts).
        assert entry["fast_fraction"] > 0.65, entry["workload"]
        # Flow 1 or SPT-only is the single most common flow.
        flows = {k: v for k, v in entry.items() if k.startswith(("FLOW", "SPT", "OS"))}
        top = max(flows, key=flows.get)
        assert top in ("FLOW_1", "SPT_ONLY"), (entry["workload"], top)

    # Across all workloads, flow 1 is the aggregate winner (the paper's
    # "most frequent" assumption).
    flow1_total = sum(row[1] for row in result.rows)
    assert flow1_total / len(result.rows) > 0.5
