"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures via the
experiment registry and asserts its *shape* properties (who wins, by
roughly what factor) against the paper's reported values.  Trace length
is reduced relative to the paper's 2-billion-instruction windows to keep
the harness fast; the shapes are stable at this scale.
"""

import os

import pytest

#: Events per workload for benchmark runs.
BENCH_EVENTS = 8000


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the experiment cache at a per-session scratch directory.

    Benchmarks measure regeneration cost, so they must not be served
    stale results from (or pollute) the user's real cache; within the
    session, calibration values are still shared across benchmarks.
    """
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture(scope="session")
def bench_events():
    return BENCH_EVENTS


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
