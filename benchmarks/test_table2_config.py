"""Benchmark: verify Table II (architectural configuration)."""

from benchmarks.conftest import run_once
from repro.experiments import table2_config


def test_table2_matches_paper(benchmark):
    result = run_once(benchmark, table2_config.run)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    assert rows["cores"]["configured"] == 10
    assert rows["rob_entries"]["configured"] == 128
    assert rows["frequency_ghz"]["configured"] == 2.0
    assert rows["l1d"]["configured"] == "32KB/8w/2cyc"
    assert rows["l2"]["configured"] == "256KB/8w/8cyc"
    assert rows["l3"]["configured"] == "8MB/16w/32cyc"
    assert rows["stb"]["configured"].startswith("256 entries/2w")
    assert rows["spt"]["configured"].startswith("384 entries/1w")
    assert rows["slb_3arg"]["configured"].startswith("64 entries/4w")
    assert rows["slb_6arg"]["configured"].startswith("16 entries/4w")
    assert rows["crc_cycles"]["configured"] == 3
