"""Ablation: SLB subtable sizing sweep (Section XI-C, Figure 14).

The paper sizes subtables from the Linux argument-count distribution.
This sweep quarters and quadruples the subtables and shows hit rates
respond monotonically, while the area model prices each point.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.analysis.hwcost import draco_hardware_costs
from repro.cpu.params import DracoHwParams, SlbSubtableParams
from repro.experiments.runner import get_context
from repro.kernel.simulator import run_trace


def _scaled_hw(scale: float) -> DracoHwParams:
    return DracoHwParams(
        slb_subtables=tuple(
            SlbSubtableParams(
                arg_count=sub.arg_count,
                entries=max(sub.ways, int(sub.entries * scale) // sub.ways * sub.ways),
                ways=sub.ways,
            )
            for sub in DracoHwParams().slb_subtables
        )
    )


def _sweep(workload: str):
    ctx = get_context(workload, events=BENCH_EVENTS)
    out = {}
    for scale in (0.25, 1.0, 4.0):
        hw = _scaled_hw(scale)
        regime = ctx.make_regime("draco-hw-complete", hw=hw)
        run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
            workload_name=workload,
        )
        out[scale] = {
            "access_hit_rate": regime.draco.slb.access_hit_rate,
            "slb_area_mm2": draco_hardware_costs(hw)["SLB"].area_mm2,
        }
    return out


def test_slb_sizing_sweep(benchmark):
    sweep = run_once(benchmark, _sweep, "redis")

    # Hit rate grows with capacity...
    assert sweep[0.25]["access_hit_rate"] <= sweep[1.0]["access_hit_rate"]
    assert sweep[1.0]["access_hit_rate"] <= sweep[4.0]["access_hit_rate"] + 0.01
    # ...and so does silicon area.
    assert sweep[0.25]["slb_area_mm2"] < sweep[1.0]["slb_area_mm2"] < sweep[4.0]["slb_area_mm2"]
    # The paper's design point already captures most of the benefit.
    assert sweep[1.0]["access_hit_rate"] > 0.6
