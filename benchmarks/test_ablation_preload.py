"""Ablation: SLB preloading on vs off (Section VI-B / XI-B).

The paper recommends preloading because it converts SLB misses into
fast flows ("SLB preloading is successful in bringing most of the
needed entries into the SLB on time ... we recommend the use of SLB
preloading").
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments.runner import get_context
from repro.kernel.simulator import run_trace


def _stall_cycles(workload: str):
    ctx = get_context(workload, events=BENCH_EVENTS)
    out = {}
    for preload in (True, False):
        regime = ctx.make_regime("draco-hw-complete", preload_enabled=preload)
        run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
            workload_name=workload,
        )
        out[preload] = regime.draco.stats.mean_stall_cycles
    return out


def test_preload_reduces_stall(benchmark):
    # HTTPD is one of the SLB-pressured workloads where preloading
    # matters most (Figure 13).
    stalls = run_once(benchmark, _stall_cycles, "httpd")
    assert stalls[True] < stalls[False]
