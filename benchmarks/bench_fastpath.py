"""Benchmark for the compile-once BPF fast path.

Measures three engine configurations over one workload trace —

* ``interpreter`` — per-event cBPF interpretation (memoization off);
* ``compiled``    — the compile-once closures (memoization off);
* ``memoized``    — the full fast path (compiled + decision memo);

plus the cold end-to-end wall time of the experiment suite, and writes
``BENCH_fastpath.json``.  ``--check`` compares the measured events/sec
against a committed baseline and fails on a >30% regression (the CI
smoke gate); ``--update`` refreshes the baseline in place.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_fastpath.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_fastpath.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_fastpath.json"

#: Allowed fractional events/sec regression before --check fails.
DEFAULT_TOLERANCE = 0.30

#: Cold wall time of the full registry at ``--suite-events 3000`` on the
#: tree immediately before the fast path landed (same machine as the
#: committed baseline); kept so the JSON shows the end-to-end speedup.
PRE_FASTPATH_SUITE_WALL_S = 38.5


def _build_modules(workload: str, events: int, seed: int):
    from repro.seccomp.engine import SeccompKernelModule
    from repro.seccomp.compiler import compile_profile_chunked
    from repro.seccomp.toolkit import generate_bundle
    from repro.workloads.catalog import CATALOG
    from repro.workloads.generator import generate_trace, profile_trace

    spec = CATALOG[workload]
    trace = list(generate_trace(spec, events, seed=seed))
    bundle = generate_bundle(profile_trace(spec, seed=seed), spec.name)
    programs = compile_profile_chunked(bundle.complete, strategy="binary_tree")

    modules = {}
    for mode, memoize, compile_filters in (
        ("interpreter", False, False),
        ("compiled", False, True),
        ("memoized", True, True),
    ):
        module = SeccompKernelModule(memoize=memoize, compile_filters=compile_filters)
        for chunk, program in enumerate(programs):
            module.attach(program, name=f"{bundle.complete.name}#{chunk}")
        modules[mode] = module
    return trace, modules


def bench_check_loop(workload: str, events: int, seed: int, repeats: int) -> dict:
    """Events/sec of ``module.check`` per engine configuration."""
    trace, modules = _build_modules(workload, events, seed)
    rates = {}
    for mode, module in modules.items():
        # Warm up (fills the decision memo for the memoized mode, which
        # is exactly the steady state the simulator runs in).
        for event in trace[: len(trace) // 4]:
            module.check(event)
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            for event in trace:
                module.check(event)
            elapsed = time.perf_counter() - start
            best = max(best, len(trace) / elapsed)
        rates[mode] = round(best, 1)
    return rates


def bench_cold_suite(events: int) -> dict:
    """Cold wall time of every registry experiment (result cache off)."""
    os.environ["REPRO_CACHE_DISABLE"] = "1"
    from repro.experiments.registry import REGISTRY

    start = time.perf_counter()
    for entry in REGISTRY:
        try:
            entry.run(events=events)
        except TypeError:
            entry.run()
    wall = time.perf_counter() - start
    return {
        "experiments": len(REGISTRY),
        "events": events,
        "wall_s": round(wall, 2),
    }


def measure(args) -> dict:
    payload = {
        "workload": args.workload,
        "events": args.events,
        "seed": args.seed,
        "events_per_sec": bench_check_loop(
            args.workload, args.events, args.seed, args.repeats
        ),
    }
    rates = payload["events_per_sec"]
    payload["speedup"] = {
        "compiled_vs_interpreter": round(rates["compiled"] / rates["interpreter"], 2),
        "memoized_vs_interpreter": round(rates["memoized"] / rates["interpreter"], 2),
    }
    if not args.skip_suite:
        suite = bench_cold_suite(args.suite_events)
        if args.suite_events == 3000:
            suite["pre_fastpath_wall_s"] = PRE_FASTPATH_SUITE_WALL_S
            suite["speedup"] = round(PRE_FASTPATH_SUITE_WALL_S / suite["wall_s"], 2)
        payload["cold_suite"] = suite
    return payload


def check_regression(measured: dict, baseline: dict, tolerance: float) -> int:
    failures = []
    for mode, reference in baseline.get("events_per_sec", {}).items():
        current = measured["events_per_sec"].get(mode)
        if current is None:
            failures.append(f"{mode}: missing from measurement")
            continue
        floor = reference * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"{mode:12s} {current:12.1f} ev/s  (baseline {reference:.1f}, "
            f"floor {floor:.1f})  {status}"
        )
        if current < floor:
            failures.append(
                f"{mode}: {current:.1f} ev/s < {floor:.1f} "
                f"(baseline {reference:.1f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("events/sec within tolerance of the committed baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="pipe-ipc")
    parser.add_argument("--events", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--suite-events", type=int, default=3000)
    parser.add_argument(
        "--skip-suite", action="store_true",
        help="skip the cold-suite timing (CI uses the check loop only)",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline}; failing --check")
            return 1
        return check_regression(measured, baseline, args.tolerance)

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
