"""Benchmark for the fleet-scale FaaS serving model (``repro.kernel.fleet``).

Measures, in a fresh subprocess (cold in-process memos):

* ``default_run`` — the experiment's default scenario (both dispatch
  policies over the shared calibration + load): wall time and serving
  throughput in invocations/s, with the ISSUE's scale floor asserted
  (>= 1000 tenants, >= 1e5 invocations);
* ``scaling`` — a mostly-idle 5000-tenant fleet, whose throughput
  collapses if any serving loop rescans the tenant population per
  event (the O(N) guard as a perf number rather than a timeout).

``--check`` gates throughput against the committed ``BENCH_fleet.json``
with a 30% tolerance; ``--update`` refreshes the baseline in place.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_fleet.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_fleet.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

#: Allowed fractional throughput regression before --check fails.
DEFAULT_TOLERANCE = 0.30

#: Scale floor of the default scenario (the acceptance criteria).
MIN_TENANTS = 1000
MIN_INVOCATIONS = 100_000

_CHILD = """
import json, sys, time
from repro.kernel.fleet import (
    POLICIES, FleetParams, calibrate_classes, generate_load, simulate_fleet,
)

config = json.loads(sys.argv[1])
params = FleetParams(**config["params"])
classes = calibrate_classes(params)
load = generate_load(params)
started = time.perf_counter()
results = {
    policy: simulate_fleet(
        params, policy, classes=classes, load=load, record_telemetry=False
    )
    for policy in POLICIES
}
wall = time.perf_counter() - started
served = sum(r.invocations for r in results.values())
sample = results[POLICIES[0]]
print(json.dumps({
    "wall_s": round(wall, 3),
    "invocations_per_s": round(served / wall, 1),
    "tenants": params.tenants,
    "invocations": params.invocations,
    "syscalls": sample.syscalls,
    "cold_starts": sample.counters["cold_starts"],
    "cold_resume_storms": sample.counters["cold_resume_storms"],
    "extrapolated_gb": round(sample.footprint["extrapolated_gb"], 3),
}))
"""


def _run_child(params: dict) -> dict:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src"))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps({"params": params})],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def measure(args) -> dict:
    default = _run_child({})  # FleetParams defaults: the experiment scenario
    if default["tenants"] < MIN_TENANTS or default["invocations"] < MIN_INVOCATIONS:
        raise RuntimeError(
            f"default fleet scenario below scale floor: "
            f"{default['tenants']} tenants / {default['invocations']} invocations "
            f"(need >= {MIN_TENANTS} / >= {MIN_INVOCATIONS})"
        )
    scaling = _run_child(
        {
            "tenants": 5000,
            "invocations": 50_000,
            "function_classes": 2,
            "workers": 32,
            "max_containers": 64,
            "keep_alive_ms": 50.0,
        }
    )
    return {
        "default_run": default,
        "scaling": scaling,
        "throughput": {
            "default_invocations_per_s": default["invocations_per_s"],
            "scaling_invocations_per_s": scaling["invocations_per_s"],
        },
    }


def check_regression(measured: dict, baseline: dict, tolerance: float) -> int:
    failures = []
    for name in ("default_invocations_per_s", "scaling_invocations_per_s"):
        current = measured["throughput"][name]
        reference = baseline.get("throughput", {}).get(name)
        if reference is None:
            failures.append(f"throughput.{name}: missing from baseline")
            continue
        floor = reference * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"throughput.{name:28s} {current:10.1f}/s  "
            f"(baseline {reference:.1f}/s, floor {floor:.1f}/s)  {status}"
        )
        if current < floor:
            failures.append(
                f"throughput.{name}: {current:.1f}/s < {floor:.1f}/s "
                f"(baseline {reference:.1f}/s, tolerance {tolerance:.0%})"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("fleet throughput within tolerance; scale floor met")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline}; failing --check")
            return 1
        return check_regression(measured, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
