"""Ablation: multi-tenant scheduling cost on one Draco core.

Quantifies Section VII-B under load: several sandboxed tenants
round-robin on a core, each switch invalidating SLB/STB/SPT.  Because
each process's VAT survives in memory, recovery is VAT walks — not
Seccomp filter runs — so multi-tenancy degrades Draco gracefully.
"""

from benchmarks.conftest import run_once
from repro.experiments.runner import get_context
from repro.kernel.scheduler import RoundRobinScheduler, ScheduledProcess


def _tenants(events: int):
    tenants = []
    for name in ("nginx", "redis", "mysql"):
        ctx = get_context(name, events=events)
        tenants.append(
            ScheduledProcess(
                name=name,
                profile=ctx.bundle.complete,
                trace=ctx.trace[:events],
                work_cycles_per_syscall=ctx.work_cycles,
            )
        )
    return tenants


def _run(events: int = 4000):
    solo = {}
    for tenant in _tenants(events):
        result = RoundRobinScheduler([tenant], quantum_syscalls=400).run()
        solo.update(result.per_process)
    shared = RoundRobinScheduler(_tenants(events), quantum_syscalls=400).run()
    return solo, shared


def test_multitenancy_degrades_gracefully(benchmark):
    solo, shared = run_once(benchmark, _run)

    assert shared.context_switches > 0
    for name, shared_cost in shared.per_process.items():
        # Multi-tenancy stays in the same ballpark as solo occupancy.
        # (It can even be slightly cheaper: the switch-induced VAT walks
        # keep those lines cache-resident, while a solo tenant's rare
        # walks fall to DRAM.)
        assert 0.5 * solo[name] <= shared_cost <= 3.0 * solo[name], (name, shared_cost)
        # Bounded: cold structures refill from the VAT, so mean checking
        # cost remains tens of cycles, far below a filter execution.
        assert shared_cost < 120, (name, shared_cost)
