"""Benchmark: regenerate Figure 16 (appendix — Seccomp on Linux 3.10).

Paper shape: the older kernel (KPTI/Spectre on, Seccomp not using the
BPF JIT) makes everything slower; several workloads show pathological
overheads well above the new-kernel numbers.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig2_seccomp_overhead, fig16_old_kernel


def test_fig16_regenerates_with_paper_shape(benchmark):
    old = run_once(benchmark, fig16_old_kernel.run, events=BENCH_EVENTS)
    new = fig2_seccomp_overhead.run(events=BENCH_EVENTS)

    old_macro = old.row_dict("average-macro")
    new_macro = new.row_dict("average-macro")
    old_micro = old.row_dict("average-micro")

    # Interpreted filters cost ~2-3x more instructions-per-cycle-wise,
    # but the slower syscall entry path dilutes relative overheads; the
    # paper's qualitative point is that complete checking remains
    # significant on the old kernel.
    assert old_macro["syscall-complete"] > 1.05
    assert old_micro["syscall-complete"] > 1.10
    # Ordering is preserved on the old kernel too.
    assert old_macro["syscall-noargs"] < old_macro["syscall-complete"]
    assert old_macro["syscall-complete"] < old_macro["syscall-complete-2x"]
