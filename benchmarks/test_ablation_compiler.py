"""Ablation: linear vs binary-tree filter compilation (Section XII).

Quantifies Hromatka's libseccomp optimisation within our substrate: the
tree layout shrinks the docker-default dispatch from O(n) to O(log n)
executed instructions, but does not touch argument-checking cost — the
gap Draco exists to close.
"""

import pytest

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments.runner import get_context
from repro.kernel.regimes import SeccompRegime
from repro.kernel.simulator import run_trace
from repro.seccomp.profiles import build_docker_default


def _overheads(workload: str):
    ctx = get_context(workload, events=BENCH_EVENTS)
    docker = build_docker_default()
    out = {}
    for strategy in ("linear", "binary_tree"):
        regime = SeccompRegime(docker, compiler=strategy)
        result = run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
            workload_name=workload,
        )
        out[strategy] = result.mean_check_cycles
    # And the app-specific complete profile under both layouts.
    for strategy in ("linear", "binary_tree"):
        regime = SeccompRegime(ctx.bundle.complete, compiler=strategy)
        result = run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
            workload_name=workload,
        )
        out[f"complete-{strategy}"] = result.mean_check_cycles
    return out


def test_tree_dispatch_ablation(benchmark):
    costs = run_once(benchmark, _overheads, "nginx")

    # Tree dispatch is far cheaper over the 290-rule docker whitelist.
    assert costs["binary_tree"] < 0.8 * costs["linear"]
    # But argument checking dominates app-specific complete profiles, so
    # the layout matters much less there (Hromatka's fix "does not
    # fundamentally address the overhead" — Section XII).
    complete_gap = abs(costs["complete-linear"] - costs["complete-binary_tree"])
    docker_gap = costs["linear"] - costs["binary_tree"]
    assert complete_gap < docker_gap
