"""Benchmark: regenerate Figure 3 (syscall frequency and reuse distance).

Paper shape: the top-20 syscalls cover ~86% of all calls; the popular
syscalls concentrate on a few argument sets; reuse distances are tens of
syscalls.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig3_locality


def test_fig3_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig3_locality.run, events=BENCH_EVENTS)

    fractions = result.column("fraction_of_calls")
    top20 = sum(fractions)
    assert 0.75 <= top20 <= 1.0  # paper: 86%

    # The most frequent syscall is one of the paper's heavy hitters.
    assert result.rows[0][0] in ("read", "futex", "recvfrom", "write")

    # Argument-set concentration: popular syscalls mostly use few sets.
    top3_shares = result.column("top3_arg_set_share")
    concentrated = sum(1 for share in top3_shares if share >= 0.3)
    assert concentrated >= len(top3_shares) // 2

    # Reuse distances: mean is tens of syscalls, not thousands.
    distances = [d for d in result.column("mean_reuse_distance") if d == d]
    assert distances
    assert min(distances) < 100
    assert sum(distances) / len(distances) < 2000
