"""Ablation: peephole-optimised filters vs raw compiler output.

Jump threading and dead-code elimination shrink the generated filters
and reduce executed instructions without changing any decision —
another software-only mitigation that, like the binary tree, helps but
does not remove the argument-checking cost Draco targets.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.bpf.interpreter import run
from repro.bpf.optimizer import optimize
from repro.bpf.seccomp_data import SeccompData
from repro.experiments.runner import get_context
from repro.seccomp.compiler import compile_binary_tree
from repro.seccomp.profiles import build_docker_default


def _costs(workload: str):
    ctx = get_context(workload, events=BENCH_EVENTS)
    docker = build_docker_default()
    raw = compile_binary_tree(docker)
    optimized = optimize(raw)

    raw_insns = 0
    optimized_insns = 0
    sample = list(ctx.trace[:2000])
    for event in sample:
        data = SeccompData.from_event(event)
        raw_insns += run(raw, data).instructions_executed
        optimized_insns += run(optimized, data).instructions_executed
    return {
        "static_raw": len(raw),
        "static_optimized": len(optimized),
        "dyn_raw": raw_insns / len(sample),
        "dyn_optimized": optimized_insns / len(sample),
    }


def test_optimizer_ablation(benchmark):
    costs = run_once(benchmark, _costs, "nginx")

    # Static shrink and dynamic improvement (or at worst parity).
    assert costs["static_optimized"] <= costs["static_raw"]
    assert costs["dyn_optimized"] <= costs["dyn_raw"]
    # But the executed path stays well above zero — checking still
    # costs; caching (Draco), not compilation, removes it.
    assert costs["dyn_optimized"] > 5
