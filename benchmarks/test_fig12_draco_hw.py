"""Benchmark: regenerate Figure 12 (hardware Draco).

Paper shape: hardware Draco is within ~1% of insecure for every profile,
including the double-size checks.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig12_draco_hw


def test_fig12_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig12_draco_hw.run, events=BENCH_EVENTS)

    macro = result.row_dict("average-macro")
    micro = result.row_dict("average-micro")
    for row in (macro, micro):
        for regime in ("draco-hw-noargs", "draco-hw-complete", "draco-hw-complete-2x"):
            assert row[regime] < 1.02, (regime, row[regime])
        # ID-only checking is cheapest of all.
        assert row["draco-hw-noargs"] <= row["draco-hw-complete"]

    # No single workload blows up (worst case stays within a few %).
    for row in result.rows:
        entry = dict(zip(result.columns, row))
        if str(entry["workload"]).startswith("average"):
            continue
        assert entry["draco-hw-complete"] < 1.04, entry
