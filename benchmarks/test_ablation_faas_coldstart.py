"""Ablation: FaaS cold-start vs warm-pool deployment under Draco.

Per-process caching means fresh processes revalidate everything; warm
pools recover the paper's steady-state numbers.  The sweep over
invocation lengths locates where amortisation makes cold acceptable.
"""

from benchmarks.conftest import run_once
from repro.experiments.runner import get_context
from repro.kernel.faas import FaaSRunner
from repro.syscalls.events import SyscallTrace


def _measure():
    ctx = get_context("pwgen", events=6000)
    runner = FaaSRunner(ctx.bundle.complete)
    out = {}
    for length in (100, 1000):
        trace = SyscallTrace(list(ctx.trace[:length]))
        for mode in ("cold", "warm"):
            stats = runner.run(trace, invocations=4, mode=mode)
            out[(length, mode)] = stats.mean_check_cycles
    return out


def test_faas_coldstart_ablation(benchmark):
    costs = run_once(benchmark, _measure)

    # Warm pools always beat per-invocation processes.
    for length in (100, 1000):
        assert costs[(length, "warm")] < costs[(length, "cold")]
    # Amortisation: the cold/warm ratio shrinks as invocations lengthen.
    short_ratio = costs[(100, "cold")] / costs[(100, "warm")]
    long_ratio = costs[(1000, "cold")] / costs[(1000, "warm")]
    assert long_ratio < short_ratio
