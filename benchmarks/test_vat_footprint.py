"""Benchmark: regenerate the Section XI-C VAT memory measurement.

Paper shape: per-process VATs are small — kilobytes, not megabytes —
with a geometric mean of ~7 KB.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import vat_footprint


def test_vat_footprint_matches_paper_scale(benchmark):
    result = run_once(benchmark, vat_footprint.run, events=BENCH_EVENTS)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    geomean = rows.pop("geomean")["kilobytes"]
    # Same order of magnitude as the paper's 6.98 KB.
    assert 2.0 <= geomean <= 30.0

    for name, row in rows.items():
        assert row["kilobytes"] < 128, name  # always trivially small
        assert row["tables"] >= 1
