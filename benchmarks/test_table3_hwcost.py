"""Benchmark: regenerate Table III (hardware area/time/energy/leakage).

Paper shape: every SRAM structure is accessed in under 150 ps (hence
2-cycle accesses); the CRC generator needs 964 ps (3 cycles); total
Draco area is a few hundredths of a mm^2 at 22 nm.
"""

from benchmarks.conftest import run_once
from repro.experiments import table3_hwcost


def test_table3_matches_paper(benchmark):
    result = run_once(benchmark, table3_hwcost.run)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    for name in ("SPT", "STB", "SLB", "CRC Hash"):
        row = rows[name]
        assert abs(row["area_mm2"] - row["paper_area"]) <= 0.05 * max(row["paper_area"], 1e-4)
        assert abs(row["access_ps"] - row["paper_ps"]) <= 0.05 * row["paper_ps"]

    for name in ("SPT", "STB", "SLB"):
        assert rows[name]["access_ps"] < 150

    assert rows["CRC Hash"]["access_ps"] > 900  # 3-cycle budget
    total_area = sum(rows[n]["area_mm2"] for n in rows)
    assert total_area < 0.05  # negligible silicon
