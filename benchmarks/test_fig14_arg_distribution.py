"""Benchmark: regenerate Figure 14 (argument-count distribution).

Paper shape: the Linux interface is dominated by low argument counts;
per-application distributions are narrow (most checked syscalls take
three or fewer checkable arguments), which is what justifies the SLB
subtable sizing (big 2/3-arg tables, small 6-arg table).
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig14_arg_distribution


def test_fig14_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig14_arg_distribution.run, events=BENCH_EVENTS)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    linux = rows["linux"]
    counts = [linux[f"args={n}"] for n in range(7)]
    # Most of the interface takes <= 3 checkable arguments.
    assert sum(counts[:4]) > 0.75 * sum(counts)
    # 6-checkable-arg syscalls are rare -> the smallest subtable.
    assert counts[6] < counts[2]
    assert counts[6] < counts[3]

    # Every workload's dynamic median is within [0, 3].
    for name, row in rows.items():
        assert 0 <= row["median"] <= 3, name
