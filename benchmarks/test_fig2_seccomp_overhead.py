"""Benchmark: regenerate Figure 2 (Seccomp overhead, all 15 workloads).

Paper shape: insecure < noargs <= docker-default < complete < complete-2x;
macro averages ~1.05/1.04/1.14/1.21x, micro ~1.12/1.09/1.25/1.42x.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig2_seccomp_overhead


def test_fig2_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig2_seccomp_overhead.run, events=BENCH_EVENTS)

    macro = result.row_dict("average-macro")
    micro = result.row_dict("average-micro")

    for row in (macro, micro):
        assert row["insecure"] == 1.0
        # Ordering: noargs cheapest check, 2x most expensive.
        assert row["syscall-noargs"] <= row["docker-default"]
        assert row["docker-default"] < row["syscall-complete"]
        assert row["syscall-complete"] < row["syscall-complete-2x"]

    # Calibration anchor: complete averages match the paper closely.
    assert abs(macro["syscall-complete"] - 1.14) < 0.03
    assert abs(micro["syscall-complete"] - 1.25) < 0.04
    # Emergent values: right ballpark (paper 1.21 / 1.42).
    assert 1.15 < macro["syscall-complete-2x"] < 1.30
    assert 1.30 < micro["syscall-complete-2x"] < 1.50
    # Micro benchmarks suffer more than macro, as in the paper.
    assert micro["syscall-complete"] > macro["syscall-complete"]
