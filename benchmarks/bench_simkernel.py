"""Benchmark for the batched (run-length-encoded) simulation kernel.

Measures ``run_trace`` throughput per regime in two kernel modes over
the same trace —

* ``per_event`` — ``REPRO_BULK=0``: the literal ``[check; advance]``
  loop for every event;
* ``bulk``      — ``REPRO_BULK=1``: runs of identical events charged
  arithmetically through each regime's steady-state ``check_run``;

asserting byte-identical :class:`RunResult`\\ s between the two (the
differential gate), plus the cold end-to-end wall time of the
experiment suite and the serial-vs-sharded wall of ``fig12``, and
writes ``BENCH_simkernel.json``.  The kernel loop runs on a
run-length-amplified trace (each event repeated ``--run-length``
times), which is the locality regime the fast path exploits — Figure 3
of the paper is the argument that real syscall streams look like this.

``--check`` compares the measured bulk events/sec against a committed
baseline and fails on a >30% regression or on any differential
mismatch (the CI gate); ``--update`` refreshes the baseline in place.

Usage::

    PYTHONPATH=src python benchmarks/bench_simkernel.py              # measure + write
    PYTHONPATH=src python benchmarks/bench_simkernel.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_simkernel.py --update     # refresh baseline
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_simkernel.json"

#: Allowed fractional events/sec regression before --check fails.
DEFAULT_TOLERANCE = 0.30

#: Regimes the kernel loop measures (one per checking family).
REGIMES = (
    "insecure",
    "syscall-complete",
    "draco-sw-complete",
    "draco-hw-complete",
)

#: Cold wall time of the full registry at ``--suite-events 3000`` on the
#: tree immediately before the batched kernel landed, re-measured on the
#: machine that produced the committed baseline.
PRE_BULK_SUITE_WALL_S = 10.98

#: Same measurement at the registry's default trace length (12 000
#: events), where simulation rather than setup dominates.
PRE_BULK_SUITE_DEFAULT_EVENTS_WALL_S = 30.84

#: The suite wall recorded in ``BENCH_fastpath.json`` when the PR-2
#: compile-once fast path landed (a different, faster machine; kept for
#: cross-reference, not as this baseline's denominator).
PR2_RECORDED_SUITE_WALL_S = 9.24


def _amplified_trace(ctx, events: int, run_length: int):
    """The context trace's distinct prefix, each event repeated
    *run_length* consecutive times (a locality-heavy but fully valid
    syscall stream — profile coverage is unchanged)."""
    from repro.syscalls.events import SyscallTrace

    base = list(ctx.trace)[: max(1, events // run_length)]
    return SyscallTrace([event for event in base for _ in range(run_length)])


def _result_fingerprint(result) -> str:
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


def bench_kernel(
    workload: str, events: int, seed: int, run_length: int, repeats: int
) -> dict:
    """Events/sec of ``run_trace`` per regime, per kernel mode, with a
    built-in differential check between the two modes."""
    from repro.experiments.runner import get_context
    from repro.kernel.simulator import run_trace

    ctx = get_context(workload, events=2_000, seed=seed)
    trace = _amplified_trace(ctx, events, run_length)
    n = len(trace)

    rates: dict = {}
    differential_ok = True
    saved = os.environ.get("REPRO_BULK")
    try:
        for regime_name in REGIMES:
            entry = {}
            fingerprints = {}
            for mode, env in (("per_event", "0"), ("bulk", "1")):
                os.environ["REPRO_BULK"] = env
                best = 0.0
                fingerprint = None
                for _ in range(repeats):
                    # Regimes latch REPRO_BULK at construction; a fresh
                    # instance per repeat also makes every measured run
                    # cold-start identical.
                    regime = ctx.make_regime(regime_name)
                    start = time.perf_counter()
                    result = run_trace(
                        trace,
                        regime,
                        work_cycles_per_syscall=ctx.work_cycles,
                        syscall_base_cycles=ctx.syscall_base_cycles,
                        workload_name="bench",
                    )
                    elapsed = time.perf_counter() - start
                    best = max(best, n / elapsed)
                    fingerprint = _result_fingerprint(result)
                entry[mode] = round(best, 1)
                fingerprints[mode] = fingerprint
            identical = fingerprints["per_event"] == fingerprints["bulk"]
            differential_ok = differential_ok and identical
            entry["speedup"] = round(entry["bulk"] / entry["per_event"], 2)
            entry["identical"] = identical
            rates[regime_name] = entry
    finally:
        if saved is None:
            os.environ.pop("REPRO_BULK", None)
        else:
            os.environ["REPRO_BULK"] = saved
    return {"events": n, "run_length": run_length, "regimes": rates,
            "differential_ok": differential_ok}


def bench_cold_suite(events: int) -> dict:
    """Cold wall time of every registry experiment (result cache off)."""
    os.environ["REPRO_CACHE_DISABLE"] = "1"
    from repro.experiments.registry import REGISTRY

    start = time.perf_counter()
    for entry in REGISTRY:
        try:
            entry.run(events=events)
        except TypeError:
            entry.run()
    wall = time.perf_counter() - start
    suite = {
        "experiments": len(REGISTRY),
        "events": events,
        "wall_s": round(wall, 2),
    }
    if events == 3000:
        suite["pre_bulk_wall_s"] = PRE_BULK_SUITE_WALL_S
        suite["speedup"] = round(PRE_BULK_SUITE_WALL_S / wall, 2)
        suite["pr2_recorded_wall_s"] = PR2_RECORDED_SUITE_WALL_S
        suite["speedup_vs_pr2_recorded"] = round(PR2_RECORDED_SUITE_WALL_S / wall, 2)
    return suite


def bench_fig12_sharding(jobs: int) -> dict:
    """fig12 wall time serial vs sharded, each in a fresh interpreter
    (cold cache and cold in-process memos both times).

    On a single-core host the sharded run pays process spawn for no
    parallel win — the recorded numbers say so honestly; on multi-core
    CI runners sharding is where the ``--jobs`` speedup comes from.
    """
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    walls = {}
    for label, extra in (
        ("serial", ["--serial", "--no-shard"]),
        (f"jobs{jobs}", ["--jobs", str(jobs)]),
    ):
        cmd = [
            sys.executable, "-m", "repro.experiments", "fig12",
            "--quiet", "--no-cache", *extra,
        ]
        start = time.perf_counter()
        subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
        walls[label] = round(time.perf_counter() - start, 2)
    walls["sharding_speedup"] = round(walls["serial"] / walls[f"jobs{jobs}"], 2)
    walls["cpu_count"] = os.cpu_count()
    return walls


def measure(args) -> dict:
    payload = {
        "workload": args.workload,
        "seed": args.seed,
        "kernel": bench_kernel(
            args.workload, args.events, args.seed, args.run_length, args.repeats
        ),
    }
    if not args.skip_suite:
        payload["cold_suite"] = bench_cold_suite(args.suite_events)
        payload["cold_suite_default_events"] = {
            "pre_bulk_wall_s": PRE_BULK_SUITE_DEFAULT_EVENTS_WALL_S,
        }
        payload["fig12"] = bench_fig12_sharding(args.jobs)
    return payload


def check_regression(measured: dict, baseline: dict, tolerance: float) -> int:
    failures = []
    if not measured["kernel"]["differential_ok"]:
        failures.append("bulk/per-event RunResults differ (differential gate)")
    for regime, reference in baseline.get("kernel", {}).get("regimes", {}).items():
        current = measured["kernel"]["regimes"].get(regime)
        if current is None:
            failures.append(f"{regime}: missing from measurement")
            continue
        floor = reference["bulk"] * (1.0 - tolerance)
        status = "ok" if current["bulk"] >= floor else "REGRESSION"
        print(
            f"{regime:22s} bulk {current['bulk']:12.1f} ev/s  "
            f"(baseline {reference['bulk']:.1f}, floor {floor:.1f})  {status}"
        )
        if current["bulk"] < floor:
            failures.append(
                f"{regime}: {current['bulk']:.1f} ev/s < {floor:.1f} "
                f"(baseline {reference['bulk']:.1f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("bulk kernel within tolerance of the committed baseline; "
          "differential gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="pipe-ipc")
    parser.add_argument("--events", type=int, default=16_000)
    parser.add_argument("--run-length", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--suite-events", type=int, default=3000)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--skip-suite", action="store_true",
        help="skip the cold-suite and fig12 timings (CI uses the kernel loop only)",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression "
             "or differential mismatch",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement to the baseline file",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    measured = measure(args)
    print(json.dumps(measured, indent=2))

    target = args.output or (args.baseline if args.update else None)
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {target}")

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline}; failing --check")
            return 1
        return check_regression(measured, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
