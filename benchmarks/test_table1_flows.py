"""Benchmark: regenerate Table I (the six Draco execution flows).

Paper shape: the hit/miss lattice produces exactly six flows; 1/3/5 are
fast (stall = table access only), 2/4/6 are slow (VAT walk, possibly OS).
"""

from benchmarks.conftest import run_once
from repro.experiments import table1_flows


def test_table1_regenerates_all_flows(benchmark):
    result = run_once(benchmark, table1_flows.run)
    rows = [dict(zip(result.columns, row)) for row in result.rows]

    observed_flows = {row["flow"] for row in rows}
    assert {"FLOW_1", "FLOW_2", "FLOW_3", "FLOW_4", "FLOW_5", "FLOW_6"} <= observed_flows

    fast = [row for row in rows if row["paper_speed"] == "fast"]
    slow = [row for row in rows if row["paper_speed"] == "slow"]
    assert fast and slow
    # Every fast flow is cheaper than every slow flow.
    assert max(row["stall_cycles"] for row in fast) < min(
        row["stall_cycles"] for row in slow
    )
    # The first-touch flows invoke the OS; warmed flows never do.
    assert any(row["os_invoked"] for row in rows)
    assert all(not row["os_invoked"] for row in fast)
