"""Ablation: context-switch frequency vs hardware Draco overhead
(Section VII-B).

Each switch invalidates the SLB/STB/SPT; more frequent switches mean
more cold misses after resume.  The paper's Accessed-bit SPT
save/restore keeps the SPT warm, so recovery goes through the VAT
rather than the OS.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments.runner import get_context
from repro.kernel.simulator import run_trace


def _stalls_by_interval(workload: str):
    ctx = get_context(workload, events=BENCH_EVENTS)
    out = {}
    for label, interval in (("none", None), ("rare", 8_000_000.0), ("frequent", 400_000.0)):
        regime = ctx.make_regime(
            "draco-hw-complete", context_switch_interval_cycles=interval
        )
        run_trace(
            ctx.trace, regime, ctx.work_cycles, ctx.syscall_base_cycles,
            workload_name=workload,
        )
        out[label] = {
            "stall": regime.draco.stats.mean_stall_cycles,
            "os": regime.draco.stats.os_invocations,
        }
    return out


def test_context_switch_cost(benchmark):
    stalls = run_once(benchmark, _stalls_by_interval, "mysql")

    assert stalls["none"]["stall"] <= stalls["frequent"]["stall"]
    # Even under frequent switching, recovery goes through the VAT, not
    # the Seccomp filter: OS invocations stay in the same ballpark.
    assert stalls["frequent"]["os"] < 3 * max(stalls["none"]["os"], 1) + 50
