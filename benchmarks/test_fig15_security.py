"""Benchmark: regenerate Figure 15 (profile security metrics).

Paper shape: app-specific profiles allow far fewer syscalls than
docker-default (50-100 vs 358), a sizeable minority of them runtime-
required; they check tens of argument slots and whitelist 10^2-10^3
argument values, versus docker's 3 slots / 7 values.
"""

from benchmarks.conftest import BENCH_EVENTS, run_once
from repro.experiments import fig15_security


def test_fig15_regenerates_with_paper_shape(benchmark):
    result = run_once(benchmark, fig15_security.run, events=BENCH_EVENTS)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}

    linux = rows.pop("linux")
    docker = rows.pop("docker-default")
    assert docker["syscalls_allowed"] > 0.8 * linux["syscalls_allowed"]
    assert docker["argument_values_allowed"] <= 10

    for name, row in rows.items():
        # App-specific profiles are dramatically smaller.
        assert row["syscalls_allowed"] <= 45
        assert row["syscalls_allowed"] < docker["syscalls_allowed"] / 6
        # Some of the profile is runtime-required (paper: ~20%).
        assert row["runtime_required"] >= 1
        # Argument checking is comprehensive.
        assert row["argument_slots_checked"] >= 2
        assert row["argument_values_allowed"] >= 10

    # The biggest applications whitelist hundreds of values (paper: up
    # to 2458).
    assert max(row["argument_values_allowed"] for row in rows.values()) > 200
