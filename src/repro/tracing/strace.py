"""Parse real ``strace`` output into syscall traces.

The paper's toolkit "attach[es] strace onto a running application to
collect the system call traces" (Section X-B).  This module is the
equivalent front-end for *real* logs: it parses the common strace text
formats into :class:`SyscallEvent` streams that feed directly into
:mod:`repro.seccomp.toolkit`.

Supported line shapes::

    openat(AT_FDCWD, "/etc/passwd", O_RDONLY|O_CLOEXEC) = 3
    read(3, "root:x:0:0..."..., 4096)     = 512
    [pid  1234] close(3)                  = 0
    12:34:56.789 futex(0x7f..., FUTEX_WAIT_PRIVATE, 2, NULL) = 0
    1677000000.123456 getpid()            = 77
    mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3, 0) = 0x7f...
    exit_group(0)                         = ?
    --- SIGCHLD {si_signo=SIGCHLD, ...} ---          (ignored)
    read(3, ...) = -1 EAGAIN (Resource temporarily unavailable)

Arguments are mapped onto the syscall's *checkable* slots: numeric
literals (decimal, hex, octal) are taken as values; symbolic constants
are resolved through a table of common flag names (extensible by the
caller); quoted strings and struct/array literals are pointer payloads
and recorded as 0, exactly as Seccomp would never inspect them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.syscalls.events import SyscallEvent, SyscallTrace, iter_runs
from repro.syscalls.table import LINUX_X86_64, SyscallTable


class StraceParseError(ReproError):
    """A line looked like a syscall record but could not be parsed."""


#: Common symbolic constants seen in strace output.  Callers can pass
#: extra mappings for application-specific constants.
DEFAULT_CONSTANTS: Dict[str, int] = {
    # open flags
    "O_RDONLY": 0o0, "O_WRONLY": 0o1, "O_RDWR": 0o2, "O_CREAT": 0o100,
    "O_EXCL": 0o200, "O_TRUNC": 0o1000, "O_APPEND": 0o2000,
    "O_NONBLOCK": 0o4000, "O_DIRECTORY": 0o200000, "O_CLOEXEC": 0o2000000,
    "AT_FDCWD": 0xFFFFFF9C,  # -100 as unsigned 32-bit
    # protections / mmap
    "PROT_NONE": 0, "PROT_READ": 1, "PROT_WRITE": 2, "PROT_EXEC": 4,
    "MAP_SHARED": 0x1, "MAP_PRIVATE": 0x2, "MAP_FIXED": 0x10,
    "MAP_ANONYMOUS": 0x20, "MAP_STACK": 0x20000, "MAP_NORESERVE": 0x4000,
    "MAP_DENYWRITE": 0x800,
    # futex ops
    "FUTEX_WAIT": 0, "FUTEX_WAKE": 1, "FUTEX_REQUEUE": 3,
    "FUTEX_WAIT_PRIVATE": 128, "FUTEX_WAKE_PRIVATE": 129,
    "FUTEX_WAIT_BITSET_PRIVATE": 137,
    # seek
    "SEEK_SET": 0, "SEEK_CUR": 1, "SEEK_END": 2,
    # socket
    "AF_UNIX": 1, "AF_INET": 2, "AF_INET6": 10, "AF_NETLINK": 16,
    "SOCK_STREAM": 1, "SOCK_DGRAM": 2, "SOCK_RAW": 3, "SOCK_SEQPACKET": 5,
    "SOCK_CLOEXEC": 0x80000, "SOCK_NONBLOCK": 0x800,
    "SOL_SOCKET": 1, "IPPROTO_TCP": 6, "MSG_NOSIGNAL": 0x4000,
    "MSG_DONTWAIT": 0x40, "SHUT_RD": 0, "SHUT_WR": 1, "SHUT_RDWR": 2,
    # epoll
    "EPOLL_CTL_ADD": 1, "EPOLL_CTL_DEL": 2, "EPOLL_CTL_MOD": 3,
    "EPOLL_CLOEXEC": 0x80000,
    # fcntl
    "F_DUPFD": 0, "F_GETFD": 1, "F_SETFD": 2, "F_GETFL": 3, "F_SETFL": 4,
    "F_DUPFD_CLOEXEC": 1030, "FD_CLOEXEC": 1,
    # misc
    "NULL": 0, "CLOCK_REALTIME": 0, "CLOCK_MONOTONIC": 1,
    "SIGCHLD": 17, "GRND_NONBLOCK": 1, "GRND_RANDOM": 2,
    "MADV_DONTNEED": 4, "MADV_FREE": 8, "MADV_WILLNEED": 3,
    "EPOLLIN": 1, "EPOLLOUT": 4,
}

# A syscall record: optional pid / timestamp prefix, name, "(args) = ret".
_LINE_RE = re.compile(
    r"""^
    (?:\[pid\s+(?P<pid>\d+)\]\s*)?            # [pid 1234]
    (?:\d{2}:\d{2}:\d{2}(?:\.\d+)?\s+)?        # 12:34:56.789
    (?:\d{9,10}\.\d+\s+)?                      # epoch timestamp
    (?P<name>[a-z_][a-z0-9_]*)
    \((?P<args>.*)\)
    \s*=\s*
    (?P<ret>\?|-?\d+|0x[0-9a-fA-F]+)
    (?P<errno>\s+E[A-Z]+\s+\(.*\))?
    \s*$""",
    re.VERBOSE,
)

_NUMBER_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|0[0-7]+|\d+)$")
_IDENT_RE = re.compile(r"^[A-Z_][A-Z0-9_]*$")

_U64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class StraceRecord:
    """One parsed strace line."""

    name: str
    raw_args: Tuple[str, ...]
    return_value: Optional[int]
    pid: Optional[int] = None


def split_arguments(text: str) -> Tuple[str, ...]:
    """Split an strace argument list at top-level commas.

    Handles nested braces/brackets/parens and quoted strings (with
    escapes), e.g. ``{st_mode=S_IFREG|0644, st_size=3}``.
    """
    args: List[str] = []
    depth = 0
    current: List[str] = []
    in_string = False
    escaped = False
    for char in text:
        if in_string:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char in "([{":
            depth += 1
            current.append(char)
        elif char in ")]}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return tuple(args)


def parse_value(token: str, constants: Dict[str, int]) -> Optional[int]:
    """Resolve one argument token to a numeric value, or None if it is a
    pointer-like payload (string, struct, address, unknown symbol)."""
    token = token.strip()
    if not token or token.startswith(('"', "{", "[")):
        return None
    if token == "...":
        return None
    # OR-ed flag expressions: O_RDONLY|O_CLOEXEC, S_IFREG|0644
    if "|" in token:
        total = 0
        for part in token.split("|"):
            value = parse_value(part, constants)
            if value is None:
                return None
            total |= value
        return total
    if _NUMBER_RE.match(token):
        negative = token.startswith("-")
        body = token[1:] if negative else token
        if body.lower().startswith("0x"):
            value = int(body, 16)
        elif body.startswith("0") and len(body) > 1:
            value = int(body, 8)
        else:
            value = int(body, 10)
        return (-value if negative else value) & _U64
    if _IDENT_RE.match(token):
        return constants.get(token)
    # fd annotations like 3</etc/passwd>
    fd_match = re.match(r"^(\d+)<", token)
    if fd_match:
        return int(fd_match.group(1))
    return None


class StraceParser:
    """Streaming strace-log parser producing syscall events."""

    def __init__(
        self,
        table: SyscallTable = LINUX_X86_64,
        constants: Optional[Dict[str, int]] = None,
        synthesize_pcs: bool = True,
    ) -> None:
        self.table = table
        self.constants = dict(DEFAULT_CONSTANTS)
        if constants:
            self.constants.update(constants)
        self.synthesize_pcs = synthesize_pcs
        self.skipped_lines = 0
        self.unknown_syscalls: Dict[str, int] = {}

    # -- record level ----------------------------------------------------

    def parse_line(self, line: str) -> Optional[StraceRecord]:
        """Parse one line; returns None for non-syscall lines (signals,
        exits, resumed markers, blank lines)."""
        line = line.strip()
        if not line or line.startswith(("---", "+++", "<...")):
            return None
        if "<unfinished" in line:
            return None  # completed later by a "resumed" line we skip
        match = _LINE_RE.match(line)
        if match is None:
            self.skipped_lines += 1
            return None
        ret_text = match.group("ret")
        if ret_text == "?":
            ret: Optional[int] = None
        elif ret_text.lower().startswith("0x"):
            ret = int(ret_text, 16)
        else:
            ret = int(ret_text)
        return StraceRecord(
            name=match.group("name"),
            raw_args=split_arguments(match.group("args")),
            return_value=ret,
            pid=int(match.group("pid")) if match.group("pid") else None,
        )

    def record_to_event(self, record: StraceRecord) -> Optional[SyscallEvent]:
        """Convert a record into an event over the checkable slots."""
        if record.name not in self.table:
            self.unknown_syscalls[record.name] = (
                self.unknown_syscalls.get(record.name, 0) + 1
            )
            return None
        sdef = self.table.by_name(record.name)
        args = [0] * sdef.nargs
        for index in range(min(len(record.raw_args), sdef.nargs)):
            if sdef.pointer_mask >> index & 1:
                continue  # pointer slot: never checked, keep 0
            value = parse_value(record.raw_args[index], self.constants)
            if value is not None:
                args[index] = value
        pc = self._pc_for(record) if self.synthesize_pcs else 0
        return SyscallEvent(sid=sdef.sid, args=tuple(args), pc=pc)

    def _pc_for(self, record: StraceRecord) -> int:
        """strace does not log PCs; synthesize one call site per
        syscall name so STB behaviour remains meaningful."""
        import hashlib

        digest = hashlib.sha256(record.name.encode()).digest()
        return 0x7000_0000 + (int.from_bytes(digest[:3], "little") & 0xFFFFFC)

    # -- stream level ------------------------------------------------------

    def iter_events(self, lines: Iterable[str]) -> Iterator[SyscallEvent]:
        for line in lines:
            record = self.parse_line(line)
            if record is None:
                continue
            event = self.record_to_event(record)
            if event is not None:
                yield event

    def iter_runs(self, lines: Iterable[str]) -> Iterator[Tuple[SyscallEvent, int]]:
        """Run-length-encoded view of :meth:`iter_events` — identical
        event sequence, coalesced into ``(event, count)`` pairs (real
        logs repeat lines byte-for-byte in tight loops, so value
        equality coalesces them even though instances differ)."""
        return iter_runs(self.iter_events(lines))

    def parse(self, text: str) -> SyscallTrace:
        """Parse a whole log into a trace."""
        return SyscallTrace(self.iter_events(text.splitlines()))


def parse_strace(text: str, **kwargs) -> SyscallTrace:
    """One-shot convenience wrapper around :class:`StraceParser`."""
    return StraceParser(**kwargs).parse(text)
