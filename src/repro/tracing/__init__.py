"""Tracing front-ends: parse real strace logs into syscall traces."""

from repro.tracing.strace import (
    DEFAULT_CONSTANTS,
    StraceParseError,
    StraceParser,
    StraceRecord,
    parse_strace,
    parse_value,
    split_arguments,
)

__all__ = [
    "DEFAULT_CONSTANTS",
    "StraceParseError",
    "StraceParser",
    "StraceRecord",
    "parse_strace",
    "parse_value",
    "split_arguments",
]
