"""CPU substrate: architectural parameters, caches, memory hierarchy."""

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.hierarchy import AccessResult, MemoryHierarchy
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    OLD_KERNEL_SW_COSTS,
    CacheParams,
    DracoHwParams,
    OldKernelCostParams,
    ProcessorParams,
    SlbSubtableParams,
    SoftwareCostParams,
)

__all__ = [
    "SetAssociativeCache",
    "AccessResult",
    "MemoryHierarchy",
    "DEFAULT_DRACO_HW",
    "DEFAULT_PROCESSOR",
    "DEFAULT_SW_COSTS",
    "OLD_KERNEL_SW_COSTS",
    "CacheParams",
    "DracoHwParams",
    "OldKernelCostParams",
    "ProcessorParams",
    "SlbSubtableParams",
    "SoftwareCostParams",
]
