"""Architectural configuration — Table II of the paper.

Processor, Draco-structure, and main-memory parameters used by the
hardware simulation, plus the calibrated software cost constants used by
the real-system cost models (Section IV / XI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheParams:
    """Geometry and access time of one cache level."""

    name: str
    size_bytes: int
    ways: int
    access_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(f"{self.name}: size not divisible into sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class SlbSubtableParams:
    """One SLB set-associative subtable (per argument count, Figure 6)."""

    arg_count: int
    entries: int
    ways: int
    access_cycles: int = 2


@dataclass(frozen=True)
class DracoHwParams:
    """Per-core Draco hardware structures (Table II)."""

    stb_entries: int = 256
    stb_ways: int = 2
    stb_access_cycles: int = 2
    spt_entries: int = 384
    spt_ways: int = 1
    spt_access_cycles: int = 2
    temp_buffer_entries: int = 8
    temp_buffer_ways: int = 4
    temp_buffer_access_cycles: int = 2
    crc_cycles: int = 3  # 964 ps at 2 GHz, conservatively 3 cycles (§XI-C)
    # Table II: one set-associative subtable per argument count, 1-6.
    # Syscalls with zero checkable arguments need no SLB entry — the SPT
    # Valid bit alone validates them (Section V-A).
    slb_subtables: Tuple[SlbSubtableParams, ...] = (
        SlbSubtableParams(arg_count=1, entries=32, ways=4),
        SlbSubtableParams(arg_count=2, entries=64, ways=4),
        SlbSubtableParams(arg_count=3, entries=64, ways=4),
        SlbSubtableParams(arg_count=4, entries=32, ways=4),
        SlbSubtableParams(arg_count=5, entries=32, ways=4),
        SlbSubtableParams(arg_count=6, entries=16, ways=4),
    )

    def slb_subtable_for(self, arg_count: int) -> SlbSubtableParams:
        for subtable in self.slb_subtables:
            if subtable.arg_count == arg_count:
                return subtable
        raise ConfigError(f"no SLB subtable for argument count {arg_count}")


@dataclass(frozen=True)
class ProcessorParams:
    """Multicore chip parameters (Table II)."""

    cores: int = 10
    rob_entries: int = 128
    frequency_ghz: float = 2.0
    dispatch_width: int = 4
    average_ipc: float = 1.8  # used to convert ROB occupancy into cycles
    l1d: CacheParams = CacheParams("L1D", 32 * 1024, 8, 2)
    l2: CacheParams = CacheParams("L2", 256 * 1024, 8, 8)
    l3: CacheParams = CacheParams("L3", 8 * 1024 * 1024, 16, 32)
    dram_cycles: int = 120  # ~60 ns at 2 GHz over DDR, 2 channels

    @property
    def dispatch_to_head_cycles(self) -> int:
        """Average cycles from ROB insertion to reaching the ROB head.

        With a 128-entry ROB at the observed average IPC, a newly
        dispatched instruction waits roughly ``occupancy / IPC`` cycles
        before reaching the head — the window Draco's SLB preloading
        (Section VI-B) has to hide VAT latency in.
        """
        return int(self.rob_entries / 2 / self.average_ipc)


@dataclass(frozen=True)
class SoftwareCostParams:
    """Calibrated cycle costs for the software paths (real-system model).

    These model the Xeon E5-2660 v3 measurements of Sections IV and
    XI-A.  ``syscall_base_cycles`` is the cost of a trivial syscall with
    Seccomp disabled; the remaining constants are the *additional*
    checking costs per syscall.
    """

    syscall_base_cycles: int = 150
    # Conventional Seccomp: fixed trampoline + per-BPF-instruction cost.
    seccomp_fixed_cycles: int = 20
    # Extra cost of the forced *slow* syscall entry path some kernels
    # take whenever TIF_SECCOMP is set (the CentOS 7 / Linux 3.10
    # pathology behind the appendix's 2-4x outliers).  Zero on modern
    # kernels.  Charged per conventional filter invocation; the paper's
    # software-Draco kernel component hooks the entry path directly and
    # only pays it when it actually falls back to the filter.
    seccomp_slow_path_cycles: int = 0
    cycles_per_bpf_insn_jit: float = 1.15
    cycles_per_bpf_insn_interpreted: float = 3.0  # JIT gives 2-3x (§IV-A)
    # Software Draco (Section V-C): SPT load + selector + software CRC
    # hashing + two VAT probes + argument comparison.  Substantial, per
    # the paper: "the software implementation of argument checking
    # requires expensive operations".
    sw_draco_fixed_cycles: int = 20
    sw_draco_hash_cycles: int = 10
    sw_draco_vat_probe_cycles: int = 12  # per probe, two probes per lookup
    sw_draco_compare_cycles: int = 8
    sw_draco_insert_cycles: int = 150
    # ID-only software Draco path (SPT bit check, Section V-A).
    sw_draco_spt_only_cycles: int = 22

    @property
    def sw_draco_hit_cycles(self) -> int:
        """Software Draco cost of a VAT hit with argument checking."""
        return (
            self.sw_draco_fixed_cycles
            + self.sw_draco_hash_cycles
            + 2 * self.sw_draco_vat_probe_cycles
            + self.sw_draco_compare_cycles
        )


@dataclass(frozen=True)
class OldKernelCostParams(SoftwareCostParams):
    """Appendix A cost constants: CentOS 7.6 / Linux 3.10, KPTI+Spectre on.

    The older kernel has a much slower syscall entry path (KPTI flushes,
    retpolines) and Seccomp "does not make use of" the BPF JIT, so
    filters run interpreted.  Several pathological cases in Figure 16
    come from this combination.
    """

    syscall_base_cycles: int = 400
    seccomp_fixed_cycles: int = 40
    seccomp_slow_path_cycles: int = 550  # forced slow entry (TIF_SECCOMP)
    cycles_per_bpf_insn_jit: float = 3.0  # JIT attached but unused by Seccomp
    sw_draco_fixed_cycles: int = 45


DEFAULT_PROCESSOR = ProcessorParams()
DEFAULT_DRACO_HW = DracoHwParams()
DEFAULT_SW_COSTS = SoftwareCostParams()
OLD_KERNEL_SW_COSTS = OldKernelCostParams()
