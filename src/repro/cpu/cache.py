"""Set-associative cache with true-LRU replacement.

Used to model the L1/L2/L3 data hierarchy the VAT lives in, and reused
(with small entry counts) for the Draco hardware tables, which are also
set-associative LRU structures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.cpu.params import CacheParams


class SetAssociativeCache:
    """Tag-only set-associative cache: tracks presence, not data."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self._sets: List[Dict[int, int]] = [dict() for _ in range(params.num_sets)]
        # Indices of non-empty sets.  The simulated working set touches
        # a tiny fraction of the sets of a realistically-sized cache, so
        # pollution sweeps walk this instead of every set.
        self._occupied: set = set()
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # -- address mapping ----------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.params.line_bytes
        set_index = line % self.params.num_sets
        tag = line // self.params.num_sets
        return set_index, tag

    # -- operations -----------------------------------------------------------

    def access(self, address: int) -> bool:
        """Access *address*: returns hit/miss and allocates on miss (LRU)."""
        self._clock += 1
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            lines[tag] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(lines) >= self.params.ways:
            victim = min(lines, key=lines.get)  # true LRU
            del lines[victim]
        lines[tag] = self._clock
        self._occupied.add(set_index)
        return False

    def probe(self, address: int) -> bool:
        """Check presence without updating LRU or allocating."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def touch(self, address: int) -> None:
        """Refresh LRU state of a resident line (no allocation)."""
        self._clock += 1
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            lines[tag] = self._clock

    def touch_repeat(self, address: int, count: int) -> None:
        """Exactly *count* back-to-back :meth:`touch` calls: the clock
        advances one tick per touch (so interleaved accesses elsewhere
        keep their relative LRU order) and the line — if resident —
        lands on the final tick."""
        if count <= 0:
            return
        self._clock += count
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            lines[tag] = self._clock

    def invalidate(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        removed = lines.pop(tag, None) is not None
        if removed and not lines:
            self._occupied.discard(set_index)
        return removed

    def invalidate_all(self) -> None:
        for set_index in self._occupied:
            self._sets[set_index].clear()
        self._occupied.clear()

    def evict_lru_fraction(self, fraction: float) -> int:
        """Evict the LRU *fraction* of each set — models pollution by
        unrelated application traffic between syscalls."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError("fraction must be within [0, 1]")
        # A set holds at most ``ways`` lines and evicts int(len * fraction)
        # of them; if even a full set rounds to zero, no set can evict.
        if int(self.params.ways * fraction) == 0:
            return 0
        evicted = 0
        emptied = []
        for set_index in self._occupied:
            lines = self._sets[set_index]
            count = int(len(lines) * fraction)
            for _ in range(count):
                victim = min(lines, key=lines.get)
                del lines[victim]
                evicted += 1
            if not lines:
                emptied.append(set_index)
        for set_index in emptied:
            self._occupied.discard(set_index)
        return evicted

    # -- statistics -------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(len(lines) for lines in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
