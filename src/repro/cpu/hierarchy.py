"""L1/L2/L3/DRAM memory hierarchy timing model.

VAT accesses (software probes, hardware preloads, and ROB-head walks)
go through this hierarchy; Table I's "Slow cases can have different
latency, depending on whether the VAT accesses hit or miss in the
caches" is exactly what this module computes.

Application code running between system calls evicts VAT lines; the
regimes model that with :meth:`MemoryHierarchy.pollute`, which ages the
LRU stacks in proportion to the cycles of unrelated work executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.params import ProcessorParams


@dataclass(frozen=True)
class AccessResult:
    """Latency and servicing level of one memory access."""

    cycles: int
    level: str  # "L1" | "L2" | "L3" | "DRAM"


class MemoryHierarchy:
    """Three-level inclusive cache hierarchy backed by DRAM."""

    #: Fraction of each cache's LRU stack evicted per 100k cycles of
    #: application work (calibrated pollution pressure).
    POLLUTION_PER_100K_CYCLES = {"L1": 0.45, "L2": 0.15, "L3": 0.03}

    def __init__(
        self,
        params: ProcessorParams = ProcessorParams(),
        shared_l3: "SetAssociativeCache" = None,
    ) -> None:
        self.params = params
        self.l1 = SetAssociativeCache(params.l1d)
        self.l2 = SetAssociativeCache(params.l2)
        # The L3 is shared between the chip's cores (Table II); pass the
        # same instance to every core's hierarchy to model that.
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(params.l3)
        self._pollution_credit = {"L1": 0.0, "L2": 0.0, "L3": 0.0}

    def access(self, address: int) -> AccessResult:
        """Load *address*, filling all levels on the way in."""
        if self.l1.access(address):
            return AccessResult(cycles=self.params.l1d.access_cycles, level="L1")
        if self.l2.access(address):
            self._fill_l1(address)
            return AccessResult(
                cycles=self.params.l1d.access_cycles + self.params.l2.access_cycles,
                level="L2",
            )
        if self.l3.access(address):
            self._fill_l1(address)
            return AccessResult(
                cycles=self.params.l1d.access_cycles
                + self.params.l2.access_cycles
                + self.params.l3.access_cycles,
                level="L3",
            )
        self._fill_l1(address)
        return AccessResult(
            cycles=self.params.l1d.access_cycles
            + self.params.l2.access_cycles
            + self.params.l3.access_cycles
            + self.params.dram_cycles,
            level="DRAM",
        )

    def access_parallel(self, addresses: Tuple[int, ...]) -> int:
        """Latency of issuing several accesses in parallel (the VAT's two
        cuckoo ways are fetched concurrently — Section V-B)."""
        if not addresses:
            return 0
        return max(self.access(addr).cycles for addr in addresses)

    def _fill_l1(self, address: int) -> None:
        # access() on L1 already allocated the line on its miss path; this
        # exists to keep the fill explicit if the L1 policy ever changes.
        self.l1.touch(address)

    def pollute(self, work_cycles: int) -> None:
        """Model eviction pressure from *work_cycles* of application code.

        Pollution credit accrues across calls and is spent in *whole*
        LRU sweeps only, with the fractional residue banked for the next
        call.  That makes pollution k-linear: ``pollute(k*w)`` evicts
        exactly as much as k calls of ``pollute(w)`` (the old code
        clamped the credit at 1.0 and then zeroed it, silently dropping
        pressure whenever more than one sweep's worth accumulated — and
        dropping *all* pressure from small work quanta, whose fractional
        evictions rounded down to zero lines before the credit reset).
        """
        if work_cycles <= 0:
            return
        for level_name, cache in (("L1", self.l1), ("L2", self.l2), ("L3", self.l3)):
            rate = self.POLLUTION_PER_100K_CYCLES[level_name]
            credit = self._pollution_credit[level_name] + work_cycles * rate / 100_000
            while credit >= 1.0:
                cache.evict_lru_fraction(1.0)
                credit -= 1.0
            self._pollution_credit[level_name] = credit

    def pollute_repeat(self, work_cycles: int, count: int) -> None:
        """Exactly ``count`` back-to-back calls of ``pollute(work_cycles)``.

        The per-call credit additions are replayed one by one — repeated
        ``credit += c`` is not ``credit + k*c`` in IEEE-754 — so the
        banked residue is bit-identical to the per-event path.  The LRU
        sweeps themselves are deferred to the end of each level's replay:
        no access intervenes between them, so ordering is immaterial.
        """
        if work_cycles <= 0 or count <= 0:
            return
        for level_name, cache in (("L1", self.l1), ("L2", self.l2), ("L3", self.l3)):
            rate = self.POLLUTION_PER_100K_CYCLES[level_name]
            increment = work_cycles * rate / 100_000
            credit = self._pollution_credit[level_name]
            sweeps = 0
            for _ in range(count):
                credit += increment
                while credit >= 1.0:
                    sweeps += 1
                    credit -= 1.0
            for _ in range(sweeps):
                cache.evict_lru_fraction(1.0)
            self._pollution_credit[level_name] = credit

    def invalidate_all(self) -> None:
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        self.l3.invalidate_all()

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.reset_stats()
