"""System-call checking regimes — the OS entry-point variants.

A regime is what sits at the kernel's syscall entry point and decides,
per syscall, whether it may proceed and how many cycles the decision
cost.  The paper evaluates four families:

* **insecure** — Seccomp disabled, no checking;
* **seccomp** — conventional filter execution (linear or binary-tree
  compiled, JIT'd or interpreted, attached 1x or 2x);
* **draco-sw** — the Section V-C kernel component (SPT + VAT cache in
  front of the filter);
* **draco-hw** — the Section VI microarchitecture (SPT + SLB + STB +
  Temporary Buffer), where the only visible cost is ROB-head stall.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Tuple

from repro.common import analytic as analytic_backend
from repro.common import ledger as common_ledger
from repro.common.bulk import bulk_enabled
from repro.common.errors import SimulationError
from repro.common.memo import memo_insert
from repro.core.hardware import HardwareDraco
from repro.core.software import (
    CheckOutcome,
    SoftwareDraco,
    _merge_segment,
    build_process_tables,
)
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallEvent


class CheckingRegime(abc.ABC):
    """One syscall-checking configuration under test."""

    name: str

    @abc.abstractmethod
    def check(self, event: SyscallEvent) -> CheckOutcome:
        """Check one syscall; returns permission and cycle cost."""

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        """Check a run of *count* identical events, interleaving
        ``advance(work_cycles)`` after each check — semantically the
        per-event sequence ``[check; advance] × count`` — and return its
        outcomes as chronological ``(outcome, n)`` segments.

        This default performs the sequence literally; regimes override
        it with provably-equivalent steady-state shortcuts (the bulk
        fast path).  Callers that consume runs must *not* also call
        :meth:`advance` for the covered events.
        """
        segments: List[Tuple[CheckOutcome, int]] = []
        for _ in range(count):
            _merge_segment(segments, self.check(event), 1)
            self.advance(work_cycles)
        return segments

    def advance(self, work_cycles: float) -> None:
        """Account for *work_cycles* of application execution between
        syscalls (cache pollution, context-switch clocks)."""

    def on_context_switch(self) -> None:
        """The scheduler preempted this process and later resumed it."""

    def ledger_snapshot(self) -> Optional[common_ledger.FlowLedger]:
        """A copy of this regime's own per-flow accounting, or ``None``
        when the regime keeps none.  The simulator snapshots it around
        the measured window and cross-checks the delta against its own
        ledger (conservation audit)."""
        return None

    def structure_stats(self) -> Optional[Dict[str, Any]]:
        """Per-structure hit/miss/evict counters, or ``None``."""
        return None

    def analytic_plan(
        self, windows: "analytic_backend.TraceWindows", work_cycles: float = 0.0
    ) -> Optional["analytic_backend.AnalyticPlan"]:
        """How the analytic backend may drive this regime, or ``None``
        to decline (the simulator then falls back to the exact RLE bulk
        or per-event kernels).

        Order-independent regimes with a no-op :meth:`advance` return
        :data:`repro.common.analytic.EXACT_PLAN` — histogram replay is
        value-identical for them.  History-dependent regimes may return
        a sampled plan for long traces, or ``None``.  The base regime
        declines: analytic execution is strictly opt-in per regime.
        """
        return None

    def analytic_verify(self) -> None:
        """Post-run hook for exact analytic replays: raise
        :class:`~repro.common.errors.SimulationError` if a precondition
        the plan relied on turned out not to hold."""

    def analytic_context_switch(self) -> None:
        """Fire one context switch by hand (the sampled plan's transient
        segment).  Only regimes that return plans with
        ``transient_repeats > 0`` need a real implementation; the base
        regime has no quantum timer, so this is a no-op."""


class InsecureRegime(CheckingRegime):
    """Seccomp disabled — the paper's normalisation baseline."""

    def __init__(self) -> None:
        self.name = "insecure"
        self._ledger = common_ledger.FlowLedger()
        self._outcome = CheckOutcome(
            allowed=True, cycles=0.0, path="none", flow=common_ledger.FLOW_NONE
        )

    def check(self, event: SyscallEvent) -> CheckOutcome:
        self._ledger.record(common_ledger.FLOW_NONE, 0.0)
        return self._outcome

    def _pristine(self) -> bool:
        # The bulk shortcut and the exact plan both bake in what
        # check() returns; a subclass that overrides check() must get
        # the literal per-event semantics instead.
        return type(self).check is InsecureRegime.check

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        # No checking and no advance() side effects: a run collapses to
        # one ledger bump (count is an int and cycles are 0.0, so the
        # bulk update is exact).
        if not self._pristine():
            return super().check_run(event, count, work_cycles)
        self._ledger.record_bulk(common_ledger.FLOW_NONE, 0.0, count)
        return [(self._outcome, count)]

    def analytic_plan(self, windows, work_cycles: float = 0.0):
        # No state at all: trivially order-independent.
        if not self._pristine():
            return None
        return analytic_backend.EXACT_PLAN

    def ledger_snapshot(self) -> common_ledger.FlowLedger:
        return self._ledger.snapshot()


#: Assembled-program memo: profiles are immutable and regimes are built
#: fresh per evaluation, so the same (profile, strategy) pair is lowered
#: to cBPF hundreds of times per suite.  Keyed by profile identity with
#: a strong reference to the profile so the id cannot be recycled.
_PROGRAM_MEMO: Dict[tuple, tuple] = {}
_PROGRAM_MEMO_LIMIT = 256


def _programs_for(profile: SeccompProfile, compiler: str):
    key = (id(profile), compiler)
    hit = _PROGRAM_MEMO.get(key)
    if hit is not None and hit[0] is profile:
        return hit[1]
    programs = compile_profile_chunked(profile, strategy=compiler)
    memo_insert(_PROGRAM_MEMO, key, (profile, programs), _PROGRAM_MEMO_LIMIT)
    return programs


#: Shared outcome memos: a filter decision — and therefore the whole
#: CheckOutcome — is a pure function of (profile, times, compiler,
#: use_jit, costs) and the masked argument bytes, while regimes are
#: rebuilt fresh for every evaluation.  Sharing the memo across regime
#: instances means each distinct event value runs the filter once per
#: process rather than once per evaluation.  Keyed like _PROGRAM_MEMO,
#: with strong references so ids cannot be recycled.
_OUTCOME_MEMO: Dict[tuple, tuple] = {}
_OUTCOME_MEMO_LIMIT = 256


def _shared_outcome_memo(
    profile: SeccompProfile,
    times: int,
    compiler: str,
    use_jit: bool,
    costs: SoftwareCostParams,
    kind: str,
    fastpath: Optional[bool] = None,
) -> Dict[object, CheckOutcome]:
    key = (kind, id(profile), times, compiler, use_jit, id(costs), fastpath)
    hit = _OUTCOME_MEMO.get(key)
    if hit is not None and hit[0] is profile and hit[1] is costs:
        return hit[2]
    memo: Dict[object, CheckOutcome] = {}
    memo_insert(_OUTCOME_MEMO, key, (profile, costs, memo), _OUTCOME_MEMO_LIMIT)
    return memo


def _attach(
    profile: SeccompProfile,
    times: int,
    compiler: str,
    fastpath: Optional[bool] = None,
) -> SeccompKernelModule:
    module = SeccompKernelModule(compile_filters=fastpath)
    programs = _programs_for(profile, compiler)
    for index in range(times):
        for chunk, program in enumerate(programs):
            module.attach(program, name=f"{profile.name}#{index}.{chunk}")
    return module


class SeccompRegime(CheckingRegime):
    """Conventional Seccomp checking (Figure 1)."""

    def __init__(
        self,
        profile: SeccompProfile,
        times: int = 1,
        compiler: str = "linear",
        use_jit: bool = True,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        name: Optional[str] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.name = name or f"seccomp:{profile.name}" + ("" if times == 1 else f"x{times}")
        self.profile = profile
        self.costs = costs
        self.use_jit = use_jit
        self.module = _attach(profile, times, compiler, fastpath=fastpath)
        # Outcomes are pure functions of the module's decision, which is
        # itself keyed on the masked argument bytes — memoize the whole
        # CheckOutcome so repeat syscalls are a single dict probe.  The
        # memo stays per-instance (unlike the bitmap regime's) because
        # this regime exposes the module's raw execution counters via
        # structure_stats(): sharing would make those depend on what ran
        # earlier in the process and break RunResult byte-identity.
        self._outcome_memo: Dict[object, CheckOutcome] = {}
        self._ledger = common_ledger.FlowLedger()
        self._bulk = bulk_enabled()

    def check(self, event: SyscallEvent) -> CheckOutcome:
        key = self.module.memo_key(event)
        if key is not None:
            cached = self._outcome_memo.get(key)
            if cached is not None:
                self._ledger.record(cached.flow, cached.cycles)
                return cached
        decision = self.module.check(event)
        per_insn = (
            self.costs.cycles_per_bpf_insn_jit
            if self.use_jit
            else self.costs.cycles_per_bpf_insn_interpreted
        )
        cycles = (
            self.costs.seccomp_slow_path_cycles
            + self.costs.seccomp_fixed_cycles
            + decision.instructions_executed * per_insn
        )
        outcome = CheckOutcome(
            allowed=decision.allowed,
            cycles=cycles,
            path="filter_run" if decision.allowed else "denied",
            action=decision.return_value,
            flow=(
                common_ledger.FLOW_SECCOMP_FILTER
                if decision.allowed
                else common_ledger.FLOW_SECCOMP_DENIED
            ),
        )
        if key is not None:
            self._outcome_memo[key] = outcome
        self._ledger.record(outcome.flow, outcome.cycles)
        return outcome

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        """A filter decision is a pure function of the masked argument
        bytes, so once the outcome memo holds the decision the rest of
        the run is a single ledger bump — the memo-hit path in
        :meth:`check` touches nothing else."""
        if not self._bulk or count <= 1:
            return super().check_run(event, count, work_cycles)
        key = self.module.memo_key(event)
        if key is None:
            return super().check_run(event, count, work_cycles)
        segments: List[Tuple[CheckOutcome, int]] = []
        remaining = count
        if key not in self._outcome_memo:
            # Cold first check runs the filter and installs the memo.
            _merge_segment(segments, self.check(event), 1)
            remaining -= 1
        cached = self._outcome_memo[key]
        self._ledger.record_bulk(cached.flow, cached.cycles, remaining)
        _merge_segment(segments, cached, remaining)
        return segments

    def analytic_plan(self, windows, work_cycles: float = 0.0):
        # A filter decision is a pure function of the event value and
        # advance() is a no-op, so outcomes are order-independent.
        return analytic_backend.EXACT_PLAN

    def ledger_snapshot(self) -> common_ledger.FlowLedger:
        return self._ledger.snapshot()

    def structure_stats(self) -> Dict[str, Dict[str, int]]:
        return {"seccomp": self.module.execution_stats()}


class DracoSwRegime(CheckingRegime):
    """Software Draco (Section V-C) in front of the Seccomp filter."""

    def __init__(
        self,
        profile: SeccompProfile,
        times: int = 1,
        compiler: str = "linear",
        use_jit: bool = True,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        name: Optional[str] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.name = name or f"draco-sw:{profile.name}" + ("" if times == 1 else f"x{times}")
        self.profile = profile
        tables = build_process_tables(profile, table=profile.table)
        self.draco = SoftwareDraco(
            tables,
            _attach(profile, times, compiler, fastpath=fastpath),
            costs=costs,
            use_jit=use_jit,
        )

    def check(self, event: SyscallEvent) -> CheckOutcome:
        return self.draco.check(event)

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        # advance() is a no-op for the software regime, so the run
        # delegates wholly to the checker's steady-state bulk path.
        return self.draco.check_bulk(event, count)

    def analytic_plan(self, windows, work_cycles: float = 0.0):
        """Exact, under one precondition: the VAT suffers no cuckoo
        evictions, making it an insert-only value-keyed map whose
        outcomes do not depend on event interleaving.  That holds by
        construction — the OS sizes each per-syscall table at twice the
        profile's argument-set count (load factor <= 0.5) — and
        :meth:`analytic_verify` fails the run loudly if it ever breaks.
        """
        self._analytic_evictions_before = self.draco.tables.vat.structure_stats()[
            "evictions"
        ]
        return analytic_backend.EXACT_PLAN

    def analytic_verify(self) -> None:
        evictions = self.draco.tables.vat.structure_stats()["evictions"]
        before = getattr(self, "_analytic_evictions_before", 0)
        if evictions != before:
            raise SimulationError(
                f"{self.name}: VAT evicted {evictions - before} entries during "
                "an analytic exact replay — the no-eviction precondition is "
                "violated; rerun with REPRO_ANALYTIC=0"
            )

    def ledger_snapshot(self) -> common_ledger.FlowLedger:
        return self.draco.stats.ledger()

    def structure_stats(self) -> Dict[str, Any]:
        return {
            "vat": self.draco.tables.vat.structure_stats(),
            "seccomp": self.draco.seccomp.execution_stats(),
        }

    @property
    def stats(self):
        return self.draco.stats


class DracoHwRegime(CheckingRegime):
    """Hardware Draco (Section VI); checking cost is ROB-head stall."""

    def __init__(
        self,
        profile: SeccompProfile,
        times: int = 1,
        compiler: str = "linear",
        use_jit: bool = True,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        processor: ProcessorParams = DEFAULT_PROCESSOR,
        hw: DracoHwParams = DEFAULT_DRACO_HW,
        preload_enabled: bool = True,
        context_switch_interval_cycles: Optional[float] = 4_000_000.0,
        name: Optional[str] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.name = name or f"draco-hw:{profile.name}" + ("" if times == 1 else f"x{times}")
        self.profile = profile
        tables = build_process_tables(profile, table=profile.table)
        self.hierarchy = MemoryHierarchy(processor)
        self.draco = HardwareDraco(
            tables,
            _attach(profile, times, compiler, fastpath=fastpath),
            processor=processor,
            hw=hw,
            costs=costs,
            hierarchy=self.hierarchy,
            preload_enabled=preload_enabled,
            use_jit=use_jit,
        )
        self._cs_interval = context_switch_interval_cycles
        self._cycles_since_switch = 0.0
        self._bulk = bulk_enabled()
        #: Dedup cache for the CheckOutcome wrappers around hardware
        #: results; outcomes are frozen, so reuse is observationally
        #: identical to building a fresh instance per event.
        self._outcome_cache: Dict[tuple, CheckOutcome] = {}

    _OUTCOME_CACHE_LIMIT = 4096

    def _outcome_for(self, result) -> CheckOutcome:
        key = (result.flow, result.stall_cycles, result.allowed)
        outcome = self._outcome_cache.get(key)
        if outcome is None:
            if len(self._outcome_cache) >= self._OUTCOME_CACHE_LIMIT:
                self._outcome_cache.clear()
            outcome = CheckOutcome(
                allowed=result.allowed,
                cycles=result.stall_cycles,
                path="hw:" + result.flow.value,
                flow=result.flow.ledger_key,
            )
            self._outcome_cache[key] = outcome
        return outcome

    def check(self, event: SyscallEvent) -> CheckOutcome:
        return self._outcome_for(self.draco.on_syscall(event))

    def _advance_span(self, work_cycles: float, limit: int):
        """How many ``[check; advance]`` iterations fit before the
        context-switch timer fires, replaying the per-event float
        accumulation exactly (repeated ``+=`` is not ``n * w`` in
        IEEE-754).  Returns ``(span, residual_accumulator, fired)``.
        """
        if self._cs_interval is None or work_cycles == 0.0:
            # advance() never accumulates (or adds zero): the whole run
            # fits and the accumulator is untouched.
            return limit, self._cycles_since_switch, False
        acc = self._cycles_since_switch
        interval = self._cs_interval
        span = 0
        while span < limit:
            acc += work_cycles
            span += 1
            if acc >= interval:
                return span, acc, True
        return span, acc, False

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        """Steady-state bulk path: while the hardware walk for *event*
        is memoized (pure hit flow, no structure mutation since it was
        installed), a span of the run is replayed arithmetically.  The
        span is cut where the context-switch timer fires, because the
        switch invalidates Draco state and ends the steady regime.

        Reordering within a span — ``span`` replayed checks, then
        ``span`` pollution advances — is sound because steady replays
        never touch the memory hierarchy and pollution never touches
        the Draco structures.
        """
        if not self._bulk:
            return super().check_run(event, count, work_cycles)
        segments: List[Tuple[CheckOutcome, int]] = []
        remaining = count
        while remaining:
            memo = self.draco.steady_probe(event)
            if memo is None:
                _merge_segment(segments, self.check(event), 1)
                remaining -= 1
                self.advance(work_cycles)
                continue
            span, residual, fired = self._advance_span(work_cycles, remaining)
            self.draco.steady_replay(memo, span)
            _merge_segment(segments, self._outcome_for(memo[0]), span)
            remaining -= span
            self.hierarchy.pollute_repeat(int(work_cycles), span)
            if fired:
                self._cycles_since_switch = 0.0
                self.on_context_switch()
            else:
                self._cycles_since_switch = residual
        return segments

    def analytic_plan(self, windows, work_cycles: float = 0.0):
        """Hardware Draco is history-dependent (STB retraining, SLB
        conflicts, hierarchy pollution), so there is no exact closed
        form; long steady-state traces use the sampled-extrapolation
        plan instead.  The quantum timer accumulates exactly
        ``work_cycles`` per event, so the context-switch period (in
        events) is handed to the planner, which carves each expiry's
        re-warm transient into its own scaled segment — or declines when
        the simulated prefix cannot fit inside one quantum.  Declined
        outright mid-quantum (a fresh regime instance starts at zero)."""
        if self._cycles_since_switch:
            return None
        period = None
        if self._cs_interval is not None and work_cycles > 0.0:
            period = self._cs_interval / work_cycles
        return analytic_backend.plan_sampled_window(
            windows, switch_period_events=period
        )

    def analytic_context_switch(self) -> None:
        self._cycles_since_switch = 0.0
        self.on_context_switch()

    def ledger_snapshot(self) -> common_ledger.FlowLedger:
        return self.draco.stats.ledger()

    def structure_stats(self) -> Dict[str, Any]:
        stats = self.draco.structure_stats()
        stats["seccomp"] = self.draco.seccomp.execution_stats()
        stats["counters"] = {
            "syscalls": self.draco.stats.syscalls,
            "os_invocations": self.draco.stats.os_invocations,
        }
        return stats

    def advance(self, work_cycles: float) -> None:
        self.hierarchy.pollute(int(work_cycles))
        if self._cs_interval is None:
            return
        self._cycles_since_switch += work_cycles
        if self._cycles_since_switch >= self._cs_interval:
            self._cycles_since_switch = 0.0
            self.on_context_switch()

    def on_context_switch(self) -> None:
        """Quantum expired: another process runs, then we resume."""
        self.draco.context_switch(same_process=False)
        # The other process evicts a sizeable chunk of our cache state.
        self.hierarchy.pollute(500_000)
        self.draco.resume_process()

    @property
    def stats(self):
        return self.draco.stats
