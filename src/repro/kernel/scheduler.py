"""Multi-process scheduling over Draco-equipped cores.

Exercises the context-switch machinery of Section VII-B under realistic
conditions: several sandboxed processes time-share a core, each switch
invalidating the per-core Draco structures (and saving/restoring the
Accessed-bit SPT entries), while each process keeps its own VAT.

The scheduler interleaves the processes' syscall streams round-robin in
quantum-sized slices and reports per-process checking cost, so the
cost of multi-tenancy (cold SLB/STB after each resume) is measurable
against the single-tenant numbers of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import analytic as analytic_backend
from repro.common import ledger
from repro.common.errors import ConfigError, SimulationError
from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallTrace


@dataclass(frozen=True)
class QuantumRecord:
    """One scheduling quantum of a process (ledger observability layer)."""

    syscalls: int
    check_cycles: float
    #: True when the quantum started on freshly invalidated per-core
    #: structures (another process — or nothing — ran here before us).
    cold: bool


@dataclass
class ScheduledProcess:
    """One tenant: its profile, trace, and per-syscall application work."""

    name: str
    profile: SeccompProfile
    trace: SyscallTrace
    work_cycles_per_syscall: float
    # Filled by the scheduler:
    cursor: int = 0
    check_cycles: float = 0.0
    syscalls_run: int = 0
    #: Per-flow attribution of ``check_cycles`` (Table I flow keys).
    flow_counts: Dict[str, int] = field(default_factory=dict)
    flow_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per-quantum timeline; only populated while the ledger is enabled.
    quanta: List[QuantumRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.trace)

    @property
    def mean_check_cycles(self) -> float:
        return self.check_cycles / self.syscalls_run if self.syscalls_run else 0.0

    def account(self, flow: str, cycles: float) -> None:
        """Attribute one checked syscall to *flow*."""
        self.check_cycles += cycles
        self.syscalls_run += 1
        self.flow_counts[flow] = self.flow_counts.get(flow, 0) + 1
        self.flow_cycles[flow] = self.flow_cycles.get(flow, 0.0) + cycles

    def account_bulk(self, flow: str, cycles: float, count: int) -> None:
        """Attribute *count* checked syscalls of identical cost to
        *flow* in one update.  ``check_cycles`` and the per-flow bucket
        receive the same ``cycles * count`` term, so the conservation
        audit stays exact."""
        self.check_cycles += cycles * count
        self.syscalls_run += count
        self.flow_counts[flow] = self.flow_counts.get(flow, 0) + count
        self.flow_cycles[flow] = self.flow_cycles.get(flow, 0.0) + cycles * count

    def flow_ledger(self) -> ledger.FlowLedger:
        return ledger.FlowLedger(self.flow_counts, self.flow_cycles)


def audit_process_flows(process: ScheduledProcess, scope: str) -> None:
    """Conservation audit for one scheduled process: flow counts must
    equal syscalls run, and the per-flow cycle buckets must sum to the
    running ``check_cycles`` total (within FP reassociation noise)."""
    led = process.flow_ledger()
    led.audit_totals(process.syscalls_run, led.total_cycles(), scope=scope)
    want = led.total_cycles()
    got = process.check_cycles
    if abs(want - got) > ledger.CYCLE_RTOL * max(abs(want), abs(got), 1.0):
        raise ledger.ConservationError(
            f"[{scope}] per-flow cycles sum to {want!r} but the process "
            f"accumulated check_cycles={got!r}"
        )


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one multi-tenant run on one core."""

    per_process: Dict[str, float]          # mean check cycles
    context_switches: int
    total_syscalls: int
    #: Per-process per-flow event counts and cycle totals.
    per_process_flows: Dict[str, Dict[str, int]] = field(default_factory=dict)
    per_process_flow_cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _drive_quantum(
    pipeline: HardwareDraco,
    hierarchy: MemoryHierarchy,
    process: ScheduledProcess,
    end: int,
    strict: bool,
    bulk: bool,
) -> int:
    """Run *process* from its cursor up to trace index *end*.

    Consecutive equal-valued results are accumulated and flushed to the
    process ledger as one :meth:`ScheduledProcess.account_bulk` update.
    The flush sequence is a pure function of the per-event result
    *values*, so the bulk fast path (steady-state replays over runs of
    identical events) and the literal per-event path produce
    bit-identical accounting.  Deferring a span's cache pollution until
    after its replayed checks is sound because steady replays never
    touch the memory hierarchy and pollution never touches the Draco
    structures.
    """
    trace = process.trace
    work = int(process.work_cycles_per_syscall)
    executed = 0
    pending_flow = ""
    pending_cycles = 0.0
    pending_count = 0
    while process.cursor < end:
        event = trace[process.cursor]
        if bulk:
            memo = pipeline.steady_probe(event)
            if memo is not None:
                base = process.cursor
                span = 1
                while base + span < end:
                    candidate = trace[base + span]
                    if candidate is event or candidate == event:
                        span += 1
                    else:
                        break
                result = memo[0]
                pipeline.steady_replay(memo, span)
                hierarchy.pollute_repeat(work, span)
                flow = result.flow.ledger_key
                cycles = result.stall_cycles
                if pending_count and pending_flow == flow and pending_cycles == cycles:
                    pending_count += span
                else:
                    if pending_count:
                        process.account_bulk(pending_flow, pending_cycles, pending_count)
                    pending_flow, pending_cycles, pending_count = flow, cycles, span
                process.cursor = base + span
                executed += span
                continue
        result = pipeline.on_syscall(event)
        if strict and not result.allowed:
            raise SimulationError(
                f"{process.name}: denied syscall {event.sid} {event.args}"
            )
        hierarchy.pollute(work)
        flow = result.flow.ledger_key
        cycles = result.stall_cycles
        if pending_count and pending_flow == flow and pending_cycles == cycles:
            pending_count += 1
        else:
            if pending_count:
                process.account_bulk(pending_flow, pending_cycles, pending_count)
            pending_flow, pending_cycles, pending_count = flow, cycles, 1
        process.cursor += 1
        executed += 1
    if pending_count:
        process.account_bulk(pending_flow, pending_cycles, pending_count)
    return executed


class DracoCore:
    """One core: a single set of Draco hardware structures, re-bound to
    whichever process is currently scheduled."""

    def __init__(
        self,
        processor: ProcessorParams = DEFAULT_PROCESSOR,
        hw: DracoHwParams = DEFAULT_DRACO_HW,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
    ) -> None:
        self.processor = processor
        self.hw = hw
        self.costs = costs
        self.hierarchy = MemoryHierarchy(processor)
        self._pipelines: Dict[str, HardwareDraco] = {}
        self._current: Optional[str] = None
        self.context_switches = 0
        #: Whether the most recent :meth:`schedule` call handed the
        #: process freshly invalidated per-core structures.
        self.last_schedule_cold = True

    def _pipeline_for(self, process: ScheduledProcess) -> HardwareDraco:
        pipeline = self._pipelines.get(process.name)
        if pipeline is None:
            module = SeccompKernelModule()
            for program in compile_profile_chunked(process.profile):
                module.attach(program)
            pipeline = HardwareDraco(
                build_process_tables(process.profile, table=process.profile.table),
                module,
                processor=self.processor,
                hw=self.hw,
                costs=self.costs,
                hierarchy=self.hierarchy,  # the cache hierarchy is shared
            )
            self._pipelines[process.name] = pipeline
        return pipeline

    def schedule(self, process: ScheduledProcess) -> HardwareDraco:
        """Make *process* current; models the Section VII-B switch."""
        self.last_schedule_cold = self._current != process.name
        if self._current == process.name:
            return self._pipelines[process.name]
        if self._current is not None:
            # The outgoing process's per-core state is invalidated (its
            # Accessed-bit SPT entries saved), and it will be restored
            # when it runs again.
            outgoing = self._pipelines[self._current]
            outgoing.context_switch(same_process=False)
            self.context_switches += 1
        pipeline = self._pipeline_for(process)
        pipeline.resume_process()
        self._current = process.name
        return pipeline


class RoundRobinScheduler:
    """Round-robin multi-tenancy on one Draco core."""

    def __init__(
        self,
        processes: Sequence[ScheduledProcess],
        quantum_syscalls: int = 200,
        core: Optional[DracoCore] = None,
    ) -> None:
        if not processes:
            raise ConfigError("need at least one process")
        if quantum_syscalls < 1:
            raise ConfigError("quantum must be at least one syscall")
        names = [p.name for p in processes]
        if len(names) != len(set(names)):
            raise ConfigError("process names must be unique")
        self.processes = list(processes)
        self.quantum = quantum_syscalls
        self.core = core if core is not None else DracoCore()

    def run(
        self, strict: bool = True, backend: Optional[str] = None
    ) -> ScheduleResult:
        """Interleave every process's trace to completion.

        *backend* is the kernel-tier override (``"analytic"``,
        ``"bulk"`` or ``"event"``); ``None`` follows the environment
        (see :func:`repro.common.analytic.resolve_backend`).  Quantum
        boundaries are exactly the transients the analytic tier
        excludes, so ``"analytic"`` degrades to the exact RLE bulk
        kernel here.
        """
        total = 0
        timelines = ledger.enabled()
        bulk = analytic_backend.resolve_backend(backend) != "event"
        # Fleet-capable bookkeeping: keep only unfinished processes on
        # the active list (order preserved) instead of rescanning the
        # whole population each round — O(total quanta), not O(N²).
        # The visit sequence is identical to the historical
        # ``while any(not done): for p in processes`` loop, which a
        # differential test gates byte-for-byte.
        active = [p for p in self.processes if not p.done]
        while active:
            still_running = []
            for process in active:
                pipeline = self.core.schedule(process)
                cold = self.core.last_schedule_cold
                quantum_start = process.syscalls_run
                cycles_start = process.check_cycles
                end = min(process.cursor + self.quantum, len(process.trace))
                total += _drive_quantum(
                    pipeline, self.core.hierarchy, process, end, strict, bulk
                )
                if timelines:
                    process.quanta.append(
                        QuantumRecord(
                            syscalls=process.syscalls_run - quantum_start,
                            check_cycles=process.check_cycles - cycles_start,
                            cold=cold,
                        )
                    )
                if not process.done:
                    still_running.append(process)
            active = still_running
        if ledger.audits_enabled():
            for process in self.processes:
                audit_process_flows(process, scope=f"scheduler/{process.name}")
        return ScheduleResult(
            per_process={p.name: p.mean_check_cycles for p in self.processes},
            context_switches=self.core.context_switches,
            total_syscalls=total,
            per_process_flows={p.name: dict(p.flow_counts) for p in self.processes},
            per_process_flow_cycles={
                p.name: dict(p.flow_cycles) for p in self.processes
            },
        )
