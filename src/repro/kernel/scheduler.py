"""Multi-process scheduling over Draco-equipped cores.

Exercises the context-switch machinery of Section VII-B under realistic
conditions: several sandboxed processes time-share a core, each switch
invalidating the per-core Draco structures (and saving/restoring the
Accessed-bit SPT entries), while each process keeps its own VAT.

The scheduler interleaves the processes' syscall streams round-robin in
quantum-sized slices and reports per-process checking cost, so the
cost of multi-tenancy (cold SLB/STB after each resume) is measurable
against the single-tenant numbers of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallTrace


@dataclass
class ScheduledProcess:
    """One tenant: its profile, trace, and per-syscall application work."""

    name: str
    profile: SeccompProfile
    trace: SyscallTrace
    work_cycles_per_syscall: float
    # Filled by the scheduler:
    cursor: int = 0
    check_cycles: float = 0.0
    syscalls_run: int = 0

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.trace)

    @property
    def mean_check_cycles(self) -> float:
        return self.check_cycles / self.syscalls_run if self.syscalls_run else 0.0


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one multi-tenant run on one core."""

    per_process: Dict[str, float]          # mean check cycles
    context_switches: int
    total_syscalls: int


class DracoCore:
    """One core: a single set of Draco hardware structures, re-bound to
    whichever process is currently scheduled."""

    def __init__(
        self,
        processor: ProcessorParams = DEFAULT_PROCESSOR,
        hw: DracoHwParams = DEFAULT_DRACO_HW,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
    ) -> None:
        self.processor = processor
        self.hw = hw
        self.costs = costs
        self.hierarchy = MemoryHierarchy(processor)
        self._pipelines: Dict[str, HardwareDraco] = {}
        self._current: Optional[str] = None
        self.context_switches = 0

    def _pipeline_for(self, process: ScheduledProcess) -> HardwareDraco:
        pipeline = self._pipelines.get(process.name)
        if pipeline is None:
            module = SeccompKernelModule()
            for program in compile_profile_chunked(process.profile):
                module.attach(program)
            pipeline = HardwareDraco(
                build_process_tables(process.profile, table=process.profile.table),
                module,
                processor=self.processor,
                hw=self.hw,
                costs=self.costs,
                hierarchy=self.hierarchy,  # the cache hierarchy is shared
            )
            self._pipelines[process.name] = pipeline
        return pipeline

    def schedule(self, process: ScheduledProcess) -> HardwareDraco:
        """Make *process* current; models the Section VII-B switch."""
        if self._current == process.name:
            return self._pipelines[process.name]
        if self._current is not None:
            # The outgoing process's per-core state is invalidated (its
            # Accessed-bit SPT entries saved), and it will be restored
            # when it runs again.
            outgoing = self._pipelines[self._current]
            outgoing.context_switch(same_process=False)
            self.context_switches += 1
        pipeline = self._pipeline_for(process)
        pipeline.resume_process()
        self._current = process.name
        return pipeline


class RoundRobinScheduler:
    """Round-robin multi-tenancy on one Draco core."""

    def __init__(
        self,
        processes: Sequence[ScheduledProcess],
        quantum_syscalls: int = 200,
        core: Optional[DracoCore] = None,
    ) -> None:
        if not processes:
            raise ConfigError("need at least one process")
        if quantum_syscalls < 1:
            raise ConfigError("quantum must be at least one syscall")
        names = [p.name for p in processes]
        if len(names) != len(set(names)):
            raise ConfigError("process names must be unique")
        self.processes = list(processes)
        self.quantum = quantum_syscalls
        self.core = core if core is not None else DracoCore()

    def run(self, strict: bool = True) -> ScheduleResult:
        """Interleave every process's trace to completion."""
        total = 0
        while any(not p.done for p in self.processes):
            for process in self.processes:
                if process.done:
                    continue
                pipeline = self.core.schedule(process)
                end = min(process.cursor + self.quantum, len(process.trace))
                while process.cursor < end:
                    event = process.trace[process.cursor]
                    result = pipeline.on_syscall(event)
                    if strict and not result.allowed:
                        raise SimulationError(
                            f"{process.name}: denied syscall {event.sid} {event.args}"
                        )
                    process.check_cycles += result.stall_cycles
                    process.syscalls_run += 1
                    process.cursor += 1
                    total += 1
                    self.core.hierarchy.pollute(
                        int(process.work_cycles_per_syscall)
                    )
        return ScheduleResult(
            per_process={p.name: p.mean_check_cycles for p in self.processes},
            context_switches=self.core.context_switches,
            total_syscalls=total,
        )
