"""Function-as-a-Service invocation lifecycle under Draco.

The paper evaluates FaaS-style functions (grep, pwgen) and motivates
Draco with serverless runtimes (Firecracker, gVisor).  FaaS stresses
the one weakness of per-process caching: the VAT is born empty with the
process, so a **cold** invocation pays filter executions for every
distinct (syscall, argument set) before the cache warms — and then the
process exits and the warmth is lost.

This module models both deployment styles:

* ``cold`` — every invocation is a fresh process (fresh VAT, fresh
  per-core structures): Draco's worst case;
* ``warm`` — a reused worker process serves all invocations (the warm
  pools every FaaS platform keeps): Draco's steady state.

The gap between them, as a function of invocation length, shows where
warm pools stop mattering — short functions are dominated by cold VAT
misses, long ones amortise them away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallTrace
from repro.workloads.startup import startup_events


@dataclass(frozen=True)
class InvocationStats:
    """Checking cost of one function invocation."""

    index: int
    syscalls: int
    check_cycles: float
    os_validations: int

    @property
    def mean_check_cycles(self) -> float:
        return self.check_cycles / self.syscalls if self.syscalls else 0.0


@dataclass(frozen=True)
class FaaSRunStats:
    mode: str
    invocations: Tuple[InvocationStats, ...]

    @property
    def total_check_cycles(self) -> float:
        return sum(inv.check_cycles for inv in self.invocations)

    @property
    def mean_check_cycles(self) -> float:
        syscalls = sum(inv.syscalls for inv in self.invocations)
        return self.total_check_cycles / syscalls if syscalls else 0.0

    @property
    def first_vs_steady_ratio(self) -> float:
        """Cold-start penalty: first invocation vs the rest."""
        if len(self.invocations) < 2:
            return 1.0
        first = self.invocations[0].mean_check_cycles
        rest = [inv.mean_check_cycles for inv in self.invocations[1:]]
        steady = sum(rest) / len(rest)
        return first / steady if steady else 1.0


class FaaSRunner:
    """Run a function's syscall trace repeatedly, cold or warm."""

    def __init__(
        self,
        profile: SeccompProfile,
        processor: ProcessorParams = DEFAULT_PROCESSOR,
        hw: DracoHwParams = DEFAULT_DRACO_HW,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        include_startup: bool = True,
    ) -> None:
        self.profile = profile
        self.processor = processor
        self.hw = hw
        self.costs = costs
        self.include_startup = include_startup
        # Startup syscalls are charged once per worker lifetime (the
        # first invocation a fresh process serves).  The recorded
        # sequence ends with the exit_group strace captured when the
        # traced process exited; a worker that lives on to serve more
        # invocations never executes it, so it is dropped here.
        self._startup: Tuple = (
            tuple(startup_events()[:-1]) if include_startup else ()
        )
        # Compiled once; the BPF programs are immutable, so every cold
        # start attaches the same objects to its fresh kernel module.
        self._programs = tuple(compile_profile_chunked(self.profile))

    def _fresh_pipeline(self) -> HardwareDraco:
        module = SeccompKernelModule()
        for program in self._programs:
            module.attach(program)
        return HardwareDraco(
            build_process_tables(self.profile, table=self.profile.table),
            module,
            processor=self.processor,
            hw=self.hw,
            costs=self.costs,
        )

    def _run_invocation(
        self, pipeline: HardwareDraco, trace: Sequence, index: int, fresh: bool
    ) -> InvocationStats:
        os_before = pipeline.stats.os_invocations
        cycles = 0.0
        count = 0
        # Process startup runs exactly once per worker process: a warm
        # invocation enters an already-started worker, so replaying
        # glibc/ld.so startup there would double-charge it.
        events = list(self._startup) if fresh else []
        events.extend(trace)
        for event in events:
            result = pipeline.on_syscall(event)
            cycles += result.stall_cycles
            count += 1
        return InvocationStats(
            index=index,
            syscalls=count,
            check_cycles=cycles,
            os_validations=pipeline.stats.os_invocations - os_before,
        )

    def run(
        self, trace: SyscallTrace, invocations: int, mode: str = "warm"
    ) -> FaaSRunStats:
        """Execute *invocations* runs of the function trace."""
        if invocations < 1:
            raise ConfigError("need at least one invocation")
        if mode not in ("warm", "cold"):
            raise ConfigError("mode must be 'warm' or 'cold'")
        stats = []
        pipeline: Optional[HardwareDraco] = None
        for index in range(invocations):
            fresh = mode == "cold" or pipeline is None
            if fresh:
                pipeline = self._fresh_pipeline()
            stats.append(self._run_invocation(pipeline, trace, index, fresh))
        return FaaSRunStats(mode=mode, invocations=tuple(stats))


def compare_deployments(
    profile: SeccompProfile,
    trace: SyscallTrace,
    invocations: int = 8,
    **runner_kwargs,
) -> Dict[str, FaaSRunStats]:
    """Run the same function cold and warm; returns both stat sets."""
    runner = FaaSRunner(profile, **runner_kwargs)
    return {
        "cold": runner.run(trace, invocations, mode="cold"),
        "warm": runner.run(trace, invocations, mode="warm"),
    }
