"""Multicore system model: Table II's 10-core chip running many tenants.

Each core owns private L1/L2 caches and its own Draco structures
(Figure 10); all cores share the L3.  Processes are assigned to cores
and time-share them under round-robin quanta; the system interleaves
quanta across cores so shared-L3 interference between tenants on
different cores is modelled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import analytic as analytic_backend
from repro.common import ledger
from repro.common.errors import ConfigError
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.kernel.scheduler import (
    DracoCore,
    QuantumRecord,
    ScheduledProcess,
    _drive_quantum,
    audit_process_flows,
)


@dataclass(frozen=True)
class MultiCoreResult:
    """System-wide outcome of a multicore run."""

    per_process: Dict[str, float]       # mean check (stall) cycles
    per_core_switches: Tuple[int, ...]
    total_syscalls: int
    l3_hit_rate: float
    #: Per-process per-flow event counts and cycle totals.
    per_process_flows: Dict[str, Dict[str, int]] = field(default_factory=dict)
    per_process_flow_cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)


class MultiCoreSystem:
    """N Draco cores with private L1/L2 and a shared L3."""

    def __init__(
        self,
        cores: Optional[int] = None,
        processor: ProcessorParams = DEFAULT_PROCESSOR,
        hw: DracoHwParams = DEFAULT_DRACO_HW,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        quantum_syscalls: int = 200,
    ) -> None:
        num_cores = cores if cores is not None else processor.cores
        if num_cores < 1:
            raise ConfigError("need at least one core")
        if quantum_syscalls < 1:
            raise ConfigError("quantum must be at least one syscall")
        self.processor = processor
        self.quantum = quantum_syscalls
        self.shared_l3 = SetAssociativeCache(processor.l3)
        self.cores: List[DracoCore] = []
        for _ in range(num_cores):
            core = DracoCore(processor=processor, hw=hw, costs=costs)
            core.hierarchy = MemoryHierarchy(processor, shared_l3=self.shared_l3)
            self.cores.append(core)
        self._run_queues: List[List[ScheduledProcess]] = [[] for _ in range(num_cores)]
        self._names: set = set()  # O(1) duplicate detection across queues

    # -- placement -------------------------------------------------------

    def assign(self, process: ScheduledProcess, core: Optional[int] = None) -> int:
        """Place a process on a core (least-loaded when unspecified)."""
        if process.name in self._names:
            raise ConfigError(f"duplicate process name {process.name!r}")
        if core is None:
            core = min(range(len(self.cores)), key=lambda i: len(self._run_queues[i]))
        if not 0 <= core < len(self.cores):
            raise ConfigError(f"no core {core}")
        self._run_queues[core].append(process)
        self._names.add(process.name)
        return core

    @property
    def processes(self) -> Tuple[ScheduledProcess, ...]:
        return tuple(p for queue in self._run_queues for p in queue)

    # -- execution ---------------------------------------------------------

    def _run_quantum(
        self, core: DracoCore, process: ScheduledProcess, strict: bool, bulk: bool
    ) -> int:
        pipeline = core.schedule(process)
        cold = core.last_schedule_cold
        cycles_start = process.check_cycles
        end = min(process.cursor + self.quantum, len(process.trace))
        executed = _drive_quantum(pipeline, core.hierarchy, process, end, strict, bulk)
        if ledger.enabled():
            process.quanta.append(
                QuantumRecord(
                    syscalls=executed,
                    check_cycles=process.check_cycles - cycles_start,
                    cold=cold,
                )
            )
        return executed

    def run(
        self, strict: bool = True, backend: Optional[str] = None
    ) -> MultiCoreResult:
        """Interleave quanta round-robin across cores until all traces
        complete.

        *backend* overrides the kernel tier (``"analytic"``, ``"bulk"``
        or ``"event"``); ``None`` follows the environment.  As in the
        single-core scheduler, ``"analytic"`` degrades to the exact RLE
        bulk kernel — every quantum ends in exactly the transient the
        analytic tier excludes.
        """
        if not any(self._run_queues):
            raise ConfigError("no processes assigned")
        total = 0
        bulk = analytic_backend.resolve_backend(backend) != "event"
        # Fleet-capable bookkeeping: each core rotates a deque holding
        # only its unfinished processes (popleft, run one quantum,
        # append while unfinished), and a running count of unfinished
        # processes replaces the old ``while any(not p.done for p in
        # self.processes)`` condition — which rebuilt the full process
        # tuple and scanned it on every round, and then rescanned each
        # queue from a cursor to skip finished entries.  A process
        # becomes done only by running, so the rotation selects exactly
        # the candidate the cursor scan did; a differential test gates
        # MultiCoreResult byte-for-byte.
        rotations: List[deque] = [
            deque(p for p in queue if not p.done) for queue in self._run_queues
        ]
        remaining = sum(len(rotation) for rotation in rotations)
        while remaining:
            for core_index, core in enumerate(self.cores):
                rotation = rotations[core_index]
                if not rotation:
                    continue
                candidate = rotation.popleft()
                total += self._run_quantum(core, candidate, strict, bulk)
                if candidate.done:
                    remaining -= 1
                else:
                    rotation.append(candidate)
        processes = self.processes  # bind the tuple once for the result
        if ledger.audits_enabled():
            for process in processes:
                audit_process_flows(process, scope=f"multicore/{process.name}")
        l3_total = self.shared_l3.hits + self.shared_l3.misses
        return MultiCoreResult(
            per_process={p.name: p.mean_check_cycles for p in processes},
            per_core_switches=tuple(core.context_switches for core in self.cores),
            total_syscalls=total,
            l3_hit_rate=self.shared_l3.hits / l3_total if l3_total else 0.0,
            per_process_flows={p.name: dict(p.flow_counts) for p in processes},
            per_process_flow_cycles={
                p.name: dict(p.flow_cycles) for p in processes
            },
        )
