"""Syscall-level execution simulator.

Drives a workload trace through a checking regime and produces the
paper's headline metric: execution time normalised to the insecure
baseline.  The model is::

    time_insecure  = N * (W + S)
    time_regime    = N * (W + S) + sum(check_cycles)
    normalised     = time_regime / time_insecure

where ``W`` is the workload's application work per syscall (calibrated
once against the paper's Figure 2 Seccomp bars — see
``repro.experiments.runner``) and ``S`` the base syscall cost.

A warm-up fraction is excluded from the measured statistics, mirroring
the paper's methodology of warming architectural state before measuring
(Section X-C).

Three execution tiers drive the trace (see ``docs/PERFORMANCE.md``):

* **per-event** (``REPRO_BULK=0``) — the literal ``[check; advance]``
  loop;
* **RLE bulk** (``REPRO_BULK=1``, default) — run-length-encoded
  consumption with regime steady-state shortcuts, byte-identical to
  per-event;
* **analytic** (``REPRO_ANALYTIC=1``, default) — whole-window replay
  over the trace's distinct-event histogram (``repro.common.analytic``).
  For order-independent regimes the replay is value-identical to the
  other tiers; for hardware Draco on long traces a shortened warm-up
  plus a measured sample is extrapolated, flagged ``derived`` and
  carrying an explicit error estimate.

Regimes opt into the analytic tier via
:meth:`repro.kernel.regimes.CheckingRegime.analytic_plan`; anything
without a plan falls back to the exact kernels, so transients, warm-up
windows and scheduler quantum boundaries are always simulated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.common import analytic as analytic_backend
from repro.common import ledger, telemetry
from repro.common.analytic import AnalyticInfo, AnalyticPlan, TraceWindows
from repro.common.errors import SimulationError
from repro.core.software import CheckOutcome
from repro.kernel.regimes import CheckingRegime
from repro.syscalls.events import SyscallEvent, SyscallTrace, iter_runs

#: Version of the simulation kernel's numerical contract.  Bumped when
#: the arithmetic that produces :class:`RunResult` changes (event-order
#: summation vs. outcome-grouped summation, etc.), so on-disk result
#: caches keyed on it are invalidated rather than silently mixing
#: incompatible floats.  Version 2: run-length-encoded consumption with
#: outcome-value grouping (identical under ``REPRO_BULK=0`` and ``=1``).
SIM_KERNEL_VERSION = 2

#: Fraction of a trace excluded as warm-up by default.  Exposed so
#: out-of-band replayers (the persistent filter-sweep cache) can window
#: a trace exactly as :func:`run_trace` would.
DEFAULT_WARMUP_FRACTION = 0.4


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of one (workload, regime) simulation."""

    workload: str
    regime: str
    events_measured: int
    work_cycles_per_syscall: float
    syscall_base_cycles: float
    mean_check_cycles: float
    normalized_time: float
    path_counts: Dict[str, int]
    #: Per-flow ledger over the measured window.  ``total_check_cycles``
    #: is *derived* from ``flow_cycles`` (summed in sorted-key order),
    #: so ``sum(flow_cycles.values()) == total_check_cycles`` holds
    #: exactly — the conservation invariant the ledger audits.
    flow_counts: Dict[str, int] = field(default_factory=dict)
    flow_cycles: Dict[str, float] = field(default_factory=dict)
    total_check_cycles: float = 0.0
    warmup_events: int = 0
    #: Per-structure counters (numeric scalars only; timelines and other
    #: observability payloads are stripped) captured by the analytic
    #: backend when the ledger is enabled.  Extrapolated — and flagged
    #: via :attr:`analytic` — on sampled runs; ``None`` for per-event
    #: and bulk runs, whose consumers read the regime directly.
    structures: Optional[Dict[str, Dict[str, float]]] = None
    #: Provenance of the analytic backend, or ``None`` when the exact
    #: kernels ran.
    analytic: Optional[AnalyticInfo] = None

    @property
    def overhead_percent(self) -> float:
        return (self.normalized_time - 1.0) * 100.0

    @property
    def derived(self) -> bool:
        """True when the result was extrapolated from a sample rather
        than measured exactly (see :class:`AnalyticInfo`)."""
        return self.analytic is not None and self.analytic.derived

    def flow_ledger(self) -> ledger.FlowLedger:
        return ledger.FlowLedger(self.flow_counts, self.flow_cycles)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-ready payload that round-trips **exactly**.

        Every field is an int, str, float, or a flat dict of them, and
        JSON encodes Python floats with shortest-round-trip repr, so
        ``from_json_dict(json.loads(json.dumps(to_json_dict())))``
        reconstructs an equal :class:`RunResult` bit for bit — the
        property the per-stage result cache
        (:mod:`repro.experiments.stages`) relies on.
        """
        payload: Dict[str, Any] = {
            "workload": self.workload,
            "regime": self.regime,
            "events_measured": self.events_measured,
            "work_cycles_per_syscall": self.work_cycles_per_syscall,
            "syscall_base_cycles": self.syscall_base_cycles,
            "mean_check_cycles": self.mean_check_cycles,
            "normalized_time": self.normalized_time,
            "path_counts": dict(self.path_counts),
            "flow_counts": dict(self.flow_counts),
            "flow_cycles": dict(self.flow_cycles),
            "total_check_cycles": self.total_check_cycles,
            "warmup_events": self.warmup_events,
            "structures": self.structures,
            "analytic": (
                None
                if self.analytic is None
                else {
                    "mode": self.analytic.mode,
                    "events_simulated": self.analytic.events_simulated,
                    "events_accounted": self.analytic.events_accounted,
                    "scale": self.analytic.scale,
                    "error_estimate": self.analytic.error_estimate,
                }
            ),
        }
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        analytic = payload.get("analytic")
        structures = payload.get("structures")
        return cls(
            workload=payload["workload"],
            regime=payload["regime"],
            events_measured=payload["events_measured"],
            work_cycles_per_syscall=payload["work_cycles_per_syscall"],
            syscall_base_cycles=payload["syscall_base_cycles"],
            mean_check_cycles=payload["mean_check_cycles"],
            normalized_time=payload["normalized_time"],
            path_counts=dict(payload["path_counts"]),
            flow_counts=dict(payload.get("flow_counts", {})),
            flow_cycles=dict(payload.get("flow_cycles", {})),
            total_check_cycles=payload.get("total_check_cycles", 0.0),
            warmup_events=payload.get("warmup_events", 0),
            structures=(
                {name: dict(counters) for name, counters in structures.items()}
                if structures is not None
                else None
            ),
            analytic=(
                None
                if analytic is None
                else AnalyticInfo(
                    mode=analytic["mode"],
                    events_simulated=analytic["events_simulated"],
                    events_accounted=analytic["events_accounted"],
                    scale=analytic["scale"],
                    error_estimate=analytic.get("error_estimate"),
                )
            ),
        )


def _deny(regime: CheckingRegime, event: SyscallEvent) -> None:
    raise SimulationError(
        f"{regime.name} denied {event.sid} {event.args} — the profile "
        "does not cover the workload (coverage bug)"
    )


def _expand_groups(
    groups: Dict[CheckOutcome, int],
) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, float]]:
    """Expand outcome-value groups into path and flow tallies.

    Within each flow bucket the accumulation order is the groups'
    insertion (first-seen) order, which every tier produces identically
    per flow — that is what keeps the per-flow float sums byte-identical
    across backends (dict *key* order may differ; comparisons must be
    order-insensitive, as dict equality and sorted-key JSON both are).
    """
    paths: Dict[str, int] = {}
    flow_counts: Dict[str, int] = {}
    flow_cycles: Dict[str, float] = {}
    for outcome, grouped in groups.items():
        path = outcome.path
        paths[path] = paths.get(path, 0) + grouped
        flow = outcome.flow or path
        flow_counts[flow] = flow_counts.get(flow, 0) + grouped
        flow_cycles[flow] = flow_cycles.get(flow, 0.0) + outcome.cycles * grouped
    return paths, flow_counts, flow_cycles


def _build_result(
    *,
    regime: CheckingRegime,
    workload_name: str,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    groups: Dict[CheckOutcome, int],
    measured: int,
    warmed: int,
    runs_coalesced: int,
    audits: bool,
    regime_before,
    cross_audit: bool,
    structures: Optional[Dict[str, Dict[str, float]]],
    structures_telemetry: Optional[Dict[str, Any]],
    analytic_info: Optional[AnalyticInfo],
) -> RunResult:
    """Common tail of every tier: expand groups, derive the totals,
    audit conservation, record telemetry, freeze the result."""
    paths, flow_counts, flow_cycles = _expand_groups(groups)
    run_ledger = ledger.FlowLedger(flow_counts, flow_cycles)
    # The total is *derived* from the per-flow buckets (sorted-key sum),
    # so conservation holds exactly by construction; the audits below
    # then cross-check the counts against the events measured and the
    # whole ledger against the regime's own independent accounting.
    total_check = run_ledger.total_cycles()
    mean_check = total_check / measured
    baseline = work_cycles_per_syscall + syscall_base_cycles
    normalized = (baseline + mean_check) / baseline

    if audits:
        scope = f"{workload_name or '?'}/{regime.name}"
        run_ledger.audit_totals(measured, total_check, scope=scope)
        # Sampled runs scale their buckets to the full window, so the
        # regime's own ledger (which only saw the sample) is no longer
        # the conservation reference — the cross-audit is skipped, and
        # the result is flagged ``derived`` instead.
        if cross_audit and regime_before is not None:
            regime_after = regime.ledger_snapshot()
            if regime_after is not None:
                run_ledger.audit_against(regime_before, regime_after, scope=scope)

    derived = analytic_info is not None and analytic_info.derived
    telemetry.record_simulation(
        regime=regime.name,
        events=measured,
        check_cycles=total_check,
        total_cycles=measured * baseline + total_check,
        warmup_events=warmed,
        flow_counts=flow_counts,
        flow_cycles=flow_cycles,
        structures=structures_telemetry,
        runs_coalesced=runs_coalesced,
        derived=derived,
        events_extrapolated=(
            measured - analytic_info.events_simulated if derived else 0
        ),
        error_estimate=(
            analytic_info.error_estimate or 0.0 if derived else 0.0
        ),
    )
    return RunResult(
        workload=workload_name,
        regime=regime.name,
        events_measured=measured,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        mean_check_cycles=mean_check,
        normalized_time=normalized,
        path_counts=paths,
        flow_counts=flow_counts,
        flow_cycles=flow_cycles,
        total_check_cycles=total_check,
        warmup_events=warmed,
        structures=structures,
        analytic=analytic_info,
    )


def _run_exact_window(
    windows: TraceWindows,
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str,
    strict: bool,
) -> RunResult:
    """Analytic exact tier: replay the distinct-event histograms.

    Sound only for regimes whose plan is :data:`~repro.common.analytic.
    EXACT_PLAN` — order-independent checks and a no-op ``advance()`` —
    where per-value first-occurrence order (which the histograms
    preserve) fully determines every outcome.  The produced result is
    value-identical to the per-event and bulk tiers.
    """
    check_run = regime.check_run
    for event, count in windows.warm:
        for outcome, _ in check_run(event, count, work_cycles_per_syscall):
            if strict and not outcome.allowed:
                _deny(regime, event)

    audits = ledger.audits_enabled()
    regime_before = regime.ledger_snapshot() if audits else None

    groups: Dict[CheckOutcome, int] = {}
    groups_get = groups.get
    measured = 0
    for event, count in windows.measured:
        for outcome, seg in check_run(event, count, work_cycles_per_syscall):
            grouped = groups_get(outcome)
            if grouped is None:
                if strict and not outcome.allowed:
                    _deny(regime, event)
                groups[outcome] = seg
            else:
                groups[outcome] = grouped + seg
        measured += count

    regime.analytic_verify()
    raw_stats = regime.structure_stats() if ledger.enabled() else None
    return _build_result(
        regime=regime,
        workload_name=workload_name,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        groups=groups,
        measured=measured,
        warmed=windows.warmup,
        runs_coalesced=len(windows.measured),
        audits=audits,
        regime_before=regime_before,
        cross_audit=True,
        structures=(
            analytic_backend.sanitize_structures(raw_stats)
            if raw_stats is not None
            else None
        ),
        structures_telemetry=raw_stats,
        analytic_info=AnalyticInfo(
            mode="exact",
            events_simulated=measured,
            events_accounted=measured,
            scale=1.0,
        ),
    )


class _ReplayRegime:
    """Stand-in regime for out-of-band exact replays: carries only the
    name (for telemetry and result labelling) and keeps no ledger."""

    def __init__(self, name: str) -> None:
        self.name = name

    def ledger_snapshot(self):
        return None


def build_exact_replay_result(
    *,
    regime_name: str,
    workload_name: str,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    groups: Dict[CheckOutcome, int],
    measured: int,
    warmup_events: int,
    runs_coalesced: int,
    structures_raw: Optional[Dict[str, Any]] = None,
) -> RunResult:
    """Freeze an exact-replay :class:`RunResult` from outcome groups.

    The seam the persistent filter-sweep cache uses
    (:mod:`repro.experiments.seccomp_replay`): the caller reproduces the
    outcome-value groups an exact analytic window would have produced —
    byte-identity is the caller's contract, proven by differential
    tests — and this function runs the common result tail
    (:func:`_build_result`): flow expansion, conservation audit,
    telemetry, result freezing.  The cross-audit against a live regime
    ledger is skipped (there is no live regime), matching what
    ``audits`` covers for sampled windows.
    """
    return _build_result(
        regime=_ReplayRegime(regime_name),
        workload_name=workload_name,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        groups=groups,
        measured=measured,
        warmed=warmup_events,
        runs_coalesced=runs_coalesced,
        audits=ledger.audits_enabled(),
        regime_before=None,
        cross_audit=False,
        structures=(
            analytic_backend.sanitize_structures(structures_raw)
            if structures_raw is not None
            else None
        ),
        structures_telemetry=structures_raw,
        analytic_info=AnalyticInfo(
            mode="exact",
            events_simulated=measured,
            events_accounted=measured,
            scale=1.0,
        ),
    )


def _run_sampled_window(
    trace,
    windows: TraceWindows,
    plan: AnalyticPlan,
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str,
    strict: bool,
) -> RunResult:
    """Analytic sampled tier for history-dependent regimes.

    Simulates the trace prefix exactly — ``plan.warm_events`` of warm-up
    plus ``plan.sample_events`` of measurement — then models the full
    measured window as ``C`` cold first-occurrence checks (``C`` is
    known exactly from the histogram) plus ``T - C`` steady-mix checks
    scaled from the sample by largest-remainder rounding, so the flow
    counts sum to the window exactly and ``audit_totals`` still holds.

    When the plan carries a transient segment (``transient_repeats > 0``)
    the quantum timer expires inside the measured window: the simulator
    fires one context switch by hand, simulates ``transient_events`` of
    re-warm, and scales that segment by the (exactly-known) expiry
    count, carving it out of the steady-mix target.

    Structure counters are projected onto the full window; the result is
    flagged ``derived`` with a split-half error estimate.
    """
    check_run = regime.check_run
    work = work_cycles_per_syscall
    seen = set()
    warmed = 0
    pending: Optional[Tuple[SyscallEvent, int]] = None
    runs = trace.iter_runs()
    for event, count in runs:
        seen.add(event)
        remaining = plan.warm_events - warmed
        take = count if count <= remaining else remaining
        for outcome, _ in check_run(event, take, work):
            if strict and not outcome.allowed:
                _deny(regime, event)
        warmed += take
        if take < count:
            pending = (event, count - take)
        if warmed >= plan.warm_events:
            break
    if warmed < plan.warm_events:
        raise SimulationError(
            f"trace ended after {warmed} events, inside the sampled "
            f"warm-up window of {plan.warm_events}"
        )
    warm_stats = regime.structure_stats() or {}

    audits = ledger.audits_enabled()
    #: Cold (first-occurrence) outcomes vs. steady-mix outcomes are
    #: scaled to different targets, so they accumulate separately.
    cold_groups: Dict[CheckOutcome, int] = {}
    steady_groups: Dict[CheckOutcome, int] = {}
    cycles_half = [0.0, 0.0]
    events_half = [0, 0]
    half = plan.sample_events // 2
    sampled = 0
    cold_sampled = 0
    runs_coalesced = 0
    stream = chain((pending,), runs) if pending is not None else runs
    for event, count in stream:
        take = count if count <= plan.sample_events - sampled else (
            plan.sample_events - sampled
        )
        if event not in seen:
            # The first-ever check of this value is a cold transient;
            # keep it out of the steady mix so scaling cannot multiply
            # one-off costs.
            seen.add(event)
            runs_coalesced += 1
            for outcome, seg in check_run(event, 1, work):
                if strict and not outcome.allowed:
                    _deny(regime, event)
                cold_groups[outcome] = cold_groups.get(outcome, 0) + seg
            sampled += 1
            cold_sampled += 1
            take -= 1
        while take > 0:
            # Split steady runs at the half-sample boundary so a single
            # long run cannot leave one half empty and zero the
            # split-half drift estimate.
            bucket = 0 if sampled < half else 1
            boundary = half - sampled if bucket == 0 else take
            part = take if take <= boundary else boundary
            runs_coalesced += 1
            for outcome, seg in check_run(event, part, work):
                if strict and not outcome.allowed:
                    _deny(regime, event)
                steady_groups[outcome] = steady_groups.get(outcome, 0) + seg
                cycles_half[bucket] += outcome.cycles * seg
            events_half[bucket] += part
            sampled += part
            take -= part
        if sampled >= plan.sample_events:
            break
    if sampled < plan.sample_events:
        raise SimulationError(
            f"trace ended after {sampled} sampled events of "
            f"{plan.sample_events} planned"
        )
    end_stats = regime.structure_stats() or {}

    # Transient segment: the quantum timer expires plan.transient_repeats
    # times inside the measured window (deterministic — the timer adds
    # exactly work_cycles per event).  Fire one switch by hand and
    # simulate a single re-warm; it is scaled by the expiry count below.
    transient_groups: Dict[CheckOutcome, int] = {}
    transient_sim = 0
    if plan.transient_repeats and plan.transient_events:
        regime.analytic_context_switch()
        for event, count in stream:
            remaining = plan.transient_events - transient_sim
            take = count if count <= remaining else remaining
            seen.add(event)
            runs_coalesced += 1
            for outcome, seg in check_run(event, take, work):
                if strict and not outcome.allowed:
                    _deny(regime, event)
                transient_groups[outcome] = transient_groups.get(outcome, 0) + seg
            transient_sim += take
            if transient_sim >= plan.transient_events:
                break

    total_measured = windows.total - windows.warmup
    cold_full = windows.distinct_new_measured
    accounted_cold = cold_full if (cold_groups and cold_full > 0) else 0
    transient_target = (
        plan.transient_repeats * transient_sim if transient_groups else 0
    )
    steady_target = total_measured - accounted_cold - transient_target
    cold_scaled = (
        analytic_backend.scale_counts(list(cold_groups.values()), accounted_cold)
        if cold_groups
        else []
    )
    steady_scaled = analytic_backend.scale_counts(
        list(steady_groups.values()), steady_target
    )
    transient_scaled = (
        analytic_backend.scale_counts(
            list(transient_groups.values()), transient_target
        )
        if transient_groups
        else []
    )
    groups: Dict[CheckOutcome, int] = {}
    for bucket, scaled_counts in (
        (steady_groups, steady_scaled),
        (cold_groups, cold_scaled),
        (transient_groups, transient_scaled),
    ):
        for outcome, scaled in zip(bucket, scaled_counts):
            if scaled:
                groups[outcome] = groups.get(outcome, 0) + scaled

    # Split-half drift, expressed on the *run-time* scale: the absolute
    # per-event check-cost difference between the two sample halves,
    # multiplied by the events it is extrapolated over, relative to the
    # run's total cycle cost.  This is directly comparable to an error
    # on normalised execution time, which is what the figures report.
    total_cost = sum(o.cycles * c for o, c in groups.items()) + (
        syscall_base_cycles + work
    ) * total_measured
    steady_events = events_half[0] + events_half[1]
    if events_half[0] and events_half[1] and total_cost > 0:
        drift = abs(
            cycles_half[0] / events_half[0] - cycles_half[1] / events_half[1]
        )
        # Assume the per-half drift continues linearly across the
        # extrapolated span (steady_target / steady_events half-sample
        # lengths), then floor at the catalog-validated bound — the
        # sample cannot observe transients slower than itself.
        error = (
            drift * steady_target * steady_target
            / (steady_events * total_cost)
        )
    else:
        error = 0.0
    error = max(error, analytic_backend.HW_ERROR_FLOOR)

    structures = analytic_backend.extrapolate_structures(
        warm_stats, end_stats, sampled, total_measured - sampled
    )
    simulated = sampled + transient_sim
    info = AnalyticInfo(
        mode="sampled",
        events_simulated=simulated,
        events_accounted=total_measured,
        scale=total_measured / simulated,
        error_estimate=error,
    )
    return _build_result(
        regime=regime,
        workload_name=workload_name,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        groups=groups,
        measured=total_measured,
        warmed=windows.warmup,
        runs_coalesced=runs_coalesced,
        audits=audits,
        regime_before=None,
        cross_audit=False,
        structures=structures if ledger.enabled() else None,
        structures_telemetry=structures if ledger.enabled() else None,
        analytic_info=info,
    )


def run_trace(
    trace: Union[SyscallTrace, Iterable[SyscallEvent]],
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str = "",
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    strict: bool = True,
    events_total: Optional[int] = None,
    analytic: Optional[bool] = None,
) -> RunResult:
    """Execute *trace* under *regime* and compute normalised time.

    *trace* may be any iterable of events — a materialized
    :class:`SyscallTrace`, a pre-coalesced
    :class:`repro.syscalls.events.RunTrace`, or a streaming generator
    such as :meth:`repro.workloads.generator.TraceGenerator.iter_events`.
    For iterables without a length, pass ``events_total`` so the warm-up
    window can be sized up front.

    The trace is consumed as run-length-encoded ``(event, count)``
    pairs and outcomes are accumulated *grouped by value* — one integer
    per distinct :class:`CheckOutcome` — then expanded into the path
    and flow tallies once at the end.  Grouping makes the result
    independent of how regimes segment a run, so the bulk fast path
    (``REPRO_BULK=1``, the default) and the literal per-event path
    (``REPRO_BULK=0``) produce byte-identical :class:`RunResult`\\ s.

    ``analytic`` is the per-run opt-in/out seam for the analytic tier:
    ``None`` follows ``REPRO_ANALYTIC`` (default on), ``False`` forces
    the exact kernels, ``True`` requests the analytic tier (which still
    falls back to the exact kernels when the regime declines a plan).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be within [0, 1)")
    n = events_total if events_total is not None else len(trace)
    if n <= 0:
        raise SimulationError("empty trace")
    warmup = int(n * warmup_fraction)

    use_analytic = (
        analytic_backend.analytic_enabled() if analytic is None else bool(analytic)
    )
    if use_analytic and events_total is None:
        windows = analytic_backend.trace_windows(trace, warmup)
        if windows is not None:
            plan = regime.analytic_plan(windows, work_cycles_per_syscall)
            if plan is not None:
                if plan.mode == "exact":
                    return _run_exact_window(
                        windows,
                        regime,
                        work_cycles_per_syscall,
                        syscall_base_cycles,
                        workload_name,
                        strict,
                    )
                return _run_sampled_window(
                    trace,
                    windows,
                    plan,
                    regime,
                    work_cycles_per_syscall,
                    syscall_base_cycles,
                    workload_name,
                    strict,
                )

    # The run loop is the simulator's hottest code: bound methods are
    # hoisted and the warm-up window is split out so the measured loop
    # carries no per-run index comparison.
    check = regime.check
    check_run = regime.check_run
    advance = regime.advance

    def _consume(event: SyscallEvent, count: int):
        """``[check; advance] × count`` via the regime, returning
        chronological (outcome, n) segments.  Runs of one — the common
        case — skip the segment machinery."""
        if count == 1:
            outcome = check(event)
            advance(work_cycles_per_syscall)
            return ((outcome, 1),)
        return check_run(event, count, work_cycles_per_syscall)

    runs_method = getattr(trace, "iter_runs", None)
    runs = runs_method() if runs_method is not None else iter_runs(trace)
    warmed = 0
    measured = 0
    runs_coalesced = 0
    #: Distinct outcome value -> events, in first-seen (chronological)
    #: order.  CheckOutcome is frozen, hence hashable.
    groups: Dict[CheckOutcome, int] = {}
    pending: Optional[Tuple[SyscallEvent, int]] = None
    if warmup:
        for event, count in runs:
            remaining = warmup - warmed
            take = count if count <= remaining else remaining
            for outcome, _ in _consume(event, take):
                if strict and not outcome.allowed:
                    _deny(regime, event)
            warmed += take
            if take < count:
                pending = (event, count - take)
            if warmed >= warmup:
                break
        if warmed < warmup:
            raise SimulationError(
                f"events_total={n} but the stream ended after {warmed} events, "
                "inside the warm-up window"
            )

    audits = ledger.audits_enabled()
    regime_before = regime.ledger_snapshot() if audits else None

    measured_runs = chain((pending,), runs) if pending is not None else runs
    groups_get = groups.get
    for event, count in measured_runs:
        runs_coalesced += 1
        # Runs of one — the common case — are inlined past the segment
        # machinery; outcome grouping makes both arms arithmetically
        # identical (one integer bump per distinct outcome value).
        if count == 1:
            outcome = check(event)
            advance(work_cycles_per_syscall)
            grouped = groups_get(outcome)
            if grouped is None:
                # Group creation is the outcome's first occurrence, so
                # a strict denial raises at the same event the
                # per-event loop would have raised at.
                if strict and not outcome.allowed:
                    _deny(regime, event)
                groups[outcome] = 1
            else:
                groups[outcome] = grouped + 1
            measured += 1
            continue
        for outcome, seg in check_run(event, count, work_cycles_per_syscall):
            grouped = groups_get(outcome)
            if grouped is None:
                if strict and not outcome.allowed:
                    _deny(regime, event)
                groups[outcome] = seg
            else:
                groups[outcome] = grouped + seg
        measured += count

    if measured == 0:
        short = (
            f"; the stream ended after {warmed} of events_total={n} events"
            if events_total is not None and warmed < n
            else ""
        )
        raise SimulationError(
            f"warm-up consumed all {warmed} events"
            f" (warmup_fraction={warmup_fraction}){short} — nothing left to "
            "measure; lower warmup_fraction or lengthen the trace"
        )
    if events_total is not None and warmed + measured < n:
        raise SimulationError(
            f"events_total={n} but the stream ended after "
            f"{warmed + measured} events"
        )

    raw_stats = regime.structure_stats() if ledger.enabled() else None
    return _build_result(
        regime=regime,
        workload_name=workload_name,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        groups=groups,
        measured=measured,
        warmed=warmed,
        runs_coalesced=runs_coalesced,
        audits=audits,
        regime_before=regime_before,
        cross_audit=True,
        structures=(
            analytic_backend.sanitize_structures(raw_stats)
            if raw_stats is not None
            else None
        ),
        structures_telemetry=raw_stats,
        analytic_info=None,
    )


def mean_check_cycles(
    trace: SyscallTrace,
    regime: CheckingRegime,
    warmup_fraction: float = 0.2,
    work_cycles_per_syscall: float = 0.0,
) -> float:
    """Steady-state mean checking cost of *regime* over *trace*."""
    result = run_trace(
        trace,
        regime,
        work_cycles_per_syscall=max(work_cycles_per_syscall, 1.0),
        syscall_base_cycles=1.0,
        warmup_fraction=warmup_fraction,
    )
    return result.mean_check_cycles
