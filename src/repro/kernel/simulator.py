"""Syscall-level execution simulator.

Drives a workload trace through a checking regime and produces the
paper's headline metric: execution time normalised to the insecure
baseline.  The model is::

    time_insecure  = N * (W + S)
    time_regime    = N * (W + S) + sum(check_cycles)
    normalised     = time_regime / time_insecure

where ``W`` is the workload's application work per syscall (calibrated
once against the paper's Figure 2 Seccomp bars — see
``repro.experiments.runner``) and ``S`` the base syscall cost.

A warm-up fraction is excluded from the measured statistics, mirroring
the paper's methodology of warming architectural state before measuring
(Section X-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.common import telemetry
from repro.common.errors import SimulationError
from repro.kernel.regimes import CheckingRegime
from repro.syscalls.events import SyscallEvent, SyscallTrace


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of one (workload, regime) simulation."""

    workload: str
    regime: str
    events_measured: int
    work_cycles_per_syscall: float
    syscall_base_cycles: float
    mean_check_cycles: float
    normalized_time: float
    path_counts: Dict[str, int]

    @property
    def overhead_percent(self) -> float:
        return (self.normalized_time - 1.0) * 100.0


def run_trace(
    trace: Union[SyscallTrace, Iterable[SyscallEvent]],
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str = "",
    warmup_fraction: float = 0.4,
    strict: bool = True,
    events_total: Optional[int] = None,
) -> RunResult:
    """Execute *trace* under *regime* and compute normalised time.

    *trace* may be any iterable of events — a materialized
    :class:`SyscallTrace` or a streaming generator such as
    :meth:`repro.workloads.generator.TraceGenerator.iter_events`.  For
    iterables without a length, pass ``events_total`` so the warm-up
    window can be sized up front.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be within [0, 1)")
    n = events_total if events_total is not None else len(trace)
    if n <= 0:
        raise SimulationError("empty trace")
    warmup = int(n * warmup_fraction)

    # The per-event loop is the simulator's hottest code: bound methods
    # are hoisted and the warm-up window is split into its own loop so
    # the measured loop carries no per-event index comparison.
    check = regime.check
    advance = regime.advance
    events = iter(trace)
    total_check = 0.0
    warmed = 0
    measured = 0
    paths: Dict[str, int] = {}
    if warmup:
        for event in events:
            outcome = check(event)
            if strict and not outcome.allowed:
                raise SimulationError(
                    f"{regime.name} denied {event.sid} {event.args} — the profile "
                    "does not cover the workload (coverage bug)"
                )
            advance(work_cycles_per_syscall)
            warmed += 1
            if warmed >= warmup:
                break
    for event in events:
        outcome = check(event)
        if strict and not outcome.allowed:
            raise SimulationError(
                f"{regime.name} denied {event.sid} {event.args} — the profile "
                "does not cover the workload (coverage bug)"
            )
        advance(work_cycles_per_syscall)
        total_check += outcome.cycles
        measured += 1
        path = outcome.path
        paths[path] = paths.get(path, 0) + 1

    mean_check = total_check / measured if measured else 0.0
    baseline = work_cycles_per_syscall + syscall_base_cycles
    normalized = (baseline + mean_check) / baseline
    # Both counters cover the measured window (warm-up events previously
    # inflated `events` while being excluded from `total_cycles`).
    telemetry.record_simulation(
        regime=regime.name,
        events=measured,
        check_cycles=total_check,
        total_cycles=measured * baseline + total_check,
        warmup_events=warmed,
    )
    return RunResult(
        workload=workload_name,
        regime=regime.name,
        events_measured=measured,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        mean_check_cycles=mean_check,
        normalized_time=normalized,
        path_counts=paths,
    )


def mean_check_cycles(
    trace: SyscallTrace,
    regime: CheckingRegime,
    warmup_fraction: float = 0.2,
    work_cycles_per_syscall: float = 0.0,
) -> float:
    """Steady-state mean checking cost of *regime* over *trace*."""
    result = run_trace(
        trace,
        regime,
        work_cycles_per_syscall=max(work_cycles_per_syscall, 1.0),
        syscall_base_cycles=1.0,
        warmup_fraction=warmup_fraction,
    )
    return result.mean_check_cycles
