"""Syscall-level execution simulator.

Drives a workload trace through a checking regime and produces the
paper's headline metric: execution time normalised to the insecure
baseline.  The model is::

    time_insecure  = N * (W + S)
    time_regime    = N * (W + S) + sum(check_cycles)
    normalised     = time_regime / time_insecure

where ``W`` is the workload's application work per syscall (calibrated
once against the paper's Figure 2 Seccomp bars — see
``repro.experiments.runner``) and ``S`` the base syscall cost.

A warm-up fraction is excluded from the measured statistics, mirroring
the paper's methodology of warming architectural state before measuring
(Section X-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.common import ledger, telemetry
from repro.common.errors import SimulationError
from repro.core.software import CheckOutcome
from repro.kernel.regimes import CheckingRegime
from repro.syscalls.events import SyscallEvent, SyscallTrace, iter_runs

#: Version of the simulation kernel's numerical contract.  Bumped when
#: the arithmetic that produces :class:`RunResult` changes (event-order
#: summation vs. outcome-grouped summation, etc.), so on-disk result
#: caches keyed on it are invalidated rather than silently mixing
#: incompatible floats.  Version 2: run-length-encoded consumption with
#: outcome-value grouping (identical under ``REPRO_BULK=0`` and ``=1``).
SIM_KERNEL_VERSION = 2


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of one (workload, regime) simulation."""

    workload: str
    regime: str
    events_measured: int
    work_cycles_per_syscall: float
    syscall_base_cycles: float
    mean_check_cycles: float
    normalized_time: float
    path_counts: Dict[str, int]
    #: Per-flow ledger over the measured window.  ``total_check_cycles``
    #: is *derived* from ``flow_cycles`` (summed in sorted-key order),
    #: so ``sum(flow_cycles.values()) == total_check_cycles`` holds
    #: exactly — the conservation invariant the ledger audits.
    flow_counts: Dict[str, int] = field(default_factory=dict)
    flow_cycles: Dict[str, float] = field(default_factory=dict)
    total_check_cycles: float = 0.0
    warmup_events: int = 0

    @property
    def overhead_percent(self) -> float:
        return (self.normalized_time - 1.0) * 100.0

    def flow_ledger(self) -> ledger.FlowLedger:
        return ledger.FlowLedger(self.flow_counts, self.flow_cycles)


def run_trace(
    trace: Union[SyscallTrace, Iterable[SyscallEvent]],
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str = "",
    warmup_fraction: float = 0.4,
    strict: bool = True,
    events_total: Optional[int] = None,
) -> RunResult:
    """Execute *trace* under *regime* and compute normalised time.

    *trace* may be any iterable of events — a materialized
    :class:`SyscallTrace` or a streaming generator such as
    :meth:`repro.workloads.generator.TraceGenerator.iter_events`.  For
    iterables without a length, pass ``events_total`` so the warm-up
    window can be sized up front.

    The trace is consumed as run-length-encoded ``(event, count)``
    pairs and outcomes are accumulated *grouped by value* — one integer
    per distinct :class:`CheckOutcome` — then expanded into the path
    and flow tallies once at the end.  Grouping makes the result
    independent of how regimes segment a run, so the bulk fast path
    (``REPRO_BULK=1``, the default) and the literal per-event path
    (``REPRO_BULK=0``) produce byte-identical :class:`RunResult`\\ s.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be within [0, 1)")
    n = events_total if events_total is not None else len(trace)
    if n <= 0:
        raise SimulationError("empty trace")
    warmup = int(n * warmup_fraction)

    # The run loop is the simulator's hottest code: bound methods are
    # hoisted and the warm-up window is split out so the measured loop
    # carries no per-run index comparison.
    check = regime.check
    check_run = regime.check_run
    advance = regime.advance

    def _deny(event: SyscallEvent) -> None:
        raise SimulationError(
            f"{regime.name} denied {event.sid} {event.args} — the profile "
            "does not cover the workload (coverage bug)"
        )

    def _consume(event: SyscallEvent, count: int):
        """``[check; advance] × count`` via the regime, returning
        chronological (outcome, n) segments.  Runs of one — the common
        case — skip the segment machinery."""
        if count == 1:
            outcome = check(event)
            advance(work_cycles_per_syscall)
            return ((outcome, 1),)
        return check_run(event, count, work_cycles_per_syscall)

    runs = iter_runs(trace)
    warmed = 0
    measured = 0
    runs_coalesced = 0
    #: Distinct outcome value -> events, in first-seen (chronological)
    #: order.  CheckOutcome is frozen, hence hashable.
    groups: Dict[CheckOutcome, int] = {}
    pending: Optional[Tuple[SyscallEvent, int]] = None
    if warmup:
        for event, count in runs:
            remaining = warmup - warmed
            take = count if count <= remaining else remaining
            for outcome, _ in _consume(event, take):
                if strict and not outcome.allowed:
                    _deny(event)
            warmed += take
            if take < count:
                pending = (event, count - take)
            if warmed >= warmup:
                break
        if warmed < warmup:
            raise SimulationError(
                f"events_total={n} but the stream ended after {warmed} events, "
                "inside the warm-up window"
            )

    audits = ledger.audits_enabled()
    regime_before = regime.ledger_snapshot() if audits else None

    measured_runs = chain((pending,), runs) if pending is not None else runs
    groups_get = groups.get
    for event, count in measured_runs:
        runs_coalesced += 1
        # Runs of one — the common case — are inlined past the segment
        # machinery; outcome grouping makes both arms arithmetically
        # identical (one integer bump per distinct outcome value).
        if count == 1:
            outcome = check(event)
            advance(work_cycles_per_syscall)
            grouped = groups_get(outcome)
            if grouped is None:
                # Group creation is the outcome's first occurrence, so
                # a strict denial raises at the same event the
                # per-event loop would have raised at.
                if strict and not outcome.allowed:
                    _deny(event)
                groups[outcome] = 1
            else:
                groups[outcome] = grouped + 1
            measured += 1
            continue
        for outcome, seg in check_run(event, count, work_cycles_per_syscall):
            grouped = groups_get(outcome)
            if grouped is None:
                if strict and not outcome.allowed:
                    _deny(event)
                groups[outcome] = seg
            else:
                groups[outcome] = grouped + seg
        measured += count

    paths: Dict[str, int] = {}
    flow_counts: Dict[str, int] = {}
    flow_cycles: Dict[str, float] = {}
    for outcome, grouped in groups.items():
        path = outcome.path
        paths[path] = paths.get(path, 0) + grouped
        flow = outcome.flow or path
        flow_counts[flow] = flow_counts.get(flow, 0) + grouped
        flow_cycles[flow] = flow_cycles.get(flow, 0.0) + outcome.cycles * grouped

    if measured == 0:
        short = (
            f"; the stream ended after {warmed} of events_total={n} events"
            if events_total is not None and warmed < n
            else ""
        )
        raise SimulationError(
            f"warm-up consumed all {warmed} events"
            f" (warmup_fraction={warmup_fraction}){short} — nothing left to "
            "measure; lower warmup_fraction or lengthen the trace"
        )
    if events_total is not None and warmed + measured < n:
        raise SimulationError(
            f"events_total={n} but the stream ended after "
            f"{warmed + measured} events"
        )

    run_ledger = ledger.FlowLedger(flow_counts, flow_cycles)
    # The total is *derived* from the per-flow buckets (sorted-key sum),
    # so conservation holds exactly by construction; the audits below
    # then cross-check the counts against the events measured and the
    # whole ledger against the regime's own independent accounting.
    total_check = run_ledger.total_cycles()
    mean_check = total_check / measured
    baseline = work_cycles_per_syscall + syscall_base_cycles
    normalized = (baseline + mean_check) / baseline

    if audits:
        scope = f"{workload_name or '?'}/{regime.name}"
        run_ledger.audit_totals(measured, total_check, scope=scope)
        if regime_before is not None:
            regime_after = regime.ledger_snapshot()
            if regime_after is not None:
                run_ledger.audit_against(regime_before, regime_after, scope=scope)

    # Both counters cover the measured window (warm-up events previously
    # inflated `events` while being excluded from `total_cycles`).
    telemetry.record_simulation(
        regime=regime.name,
        events=measured,
        check_cycles=total_check,
        total_cycles=measured * baseline + total_check,
        warmup_events=warmed,
        flow_counts=flow_counts,
        flow_cycles=flow_cycles,
        structures=regime.structure_stats() if ledger.enabled() else None,
        runs_coalesced=runs_coalesced,
    )
    return RunResult(
        workload=workload_name,
        regime=regime.name,
        events_measured=measured,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        mean_check_cycles=mean_check,
        normalized_time=normalized,
        path_counts=paths,
        flow_counts=flow_counts,
        flow_cycles=flow_cycles,
        total_check_cycles=total_check,
        warmup_events=warmed,
    )


def mean_check_cycles(
    trace: SyscallTrace,
    regime: CheckingRegime,
    warmup_fraction: float = 0.2,
    work_cycles_per_syscall: float = 0.0,
) -> float:
    """Steady-state mean checking cost of *regime* over *trace*."""
    result = run_trace(
        trace,
        regime,
        work_cycles_per_syscall=max(work_cycles_per_syscall, 1.0),
        syscall_base_cycles=1.0,
        warmup_fraction=warmup_fraction,
    )
    return result.mean_check_cycles
