"""Syscall-level execution simulator.

Drives a workload trace through a checking regime and produces the
paper's headline metric: execution time normalised to the insecure
baseline.  The model is::

    time_insecure  = N * (W + S)
    time_regime    = N * (W + S) + sum(check_cycles)
    normalised     = time_regime / time_insecure

where ``W`` is the workload's application work per syscall (calibrated
once against the paper's Figure 2 Seccomp bars — see
``repro.experiments.runner``) and ``S`` the base syscall cost.

A warm-up fraction is excluded from the measured statistics, mirroring
the paper's methodology of warming architectural state before measuring
(Section X-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common import telemetry
from repro.common.errors import SimulationError
from repro.kernel.regimes import CheckingRegime
from repro.syscalls.events import SyscallTrace


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of one (workload, regime) simulation."""

    workload: str
    regime: str
    events_measured: int
    work_cycles_per_syscall: float
    syscall_base_cycles: float
    mean_check_cycles: float
    normalized_time: float
    path_counts: Dict[str, int]

    @property
    def overhead_percent(self) -> float:
        return (self.normalized_time - 1.0) * 100.0


def run_trace(
    trace: SyscallTrace,
    regime: CheckingRegime,
    work_cycles_per_syscall: float,
    syscall_base_cycles: float,
    workload_name: str = "",
    warmup_fraction: float = 0.4,
    strict: bool = True,
) -> RunResult:
    """Execute *trace* under *regime* and compute normalised time."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be within [0, 1)")
    n = len(trace)
    if n == 0:
        raise SimulationError("empty trace")
    warmup = int(n * warmup_fraction)

    total_check = 0.0
    measured = 0
    paths: Dict[str, int] = {}
    for index, event in enumerate(trace):
        outcome = regime.check(event)
        if strict and not outcome.allowed:
            raise SimulationError(
                f"{regime.name} denied {event.sid} {event.args} — the profile "
                "does not cover the workload (coverage bug)"
            )
        regime.advance(work_cycles_per_syscall)
        if index >= warmup:
            total_check += outcome.cycles
            measured += 1
            paths[outcome.path] = paths.get(outcome.path, 0) + 1

    mean_check = total_check / measured if measured else 0.0
    baseline = work_cycles_per_syscall + syscall_base_cycles
    normalized = (baseline + mean_check) / baseline
    telemetry.record_simulation(
        regime=regime.name,
        events=n,
        check_cycles=total_check,
        total_cycles=measured * baseline + total_check,
    )
    return RunResult(
        workload=workload_name,
        regime=regime.name,
        events_measured=measured,
        work_cycles_per_syscall=work_cycles_per_syscall,
        syscall_base_cycles=syscall_base_cycles,
        mean_check_cycles=mean_check,
        normalized_time=normalized,
        path_counts=paths,
    )


def mean_check_cycles(
    trace: SyscallTrace,
    regime: CheckingRegime,
    warmup_fraction: float = 0.2,
    work_cycles_per_syscall: float = 0.0,
) -> float:
    """Steady-state mean checking cost of *regime* over *trace*."""
    result = run_trace(
        trace,
        regime,
        work_cycles_per_syscall=max(work_cycles_per_syscall, 1.0),
        syscall_base_cycles=1.0,
        warmup_fraction=warmup_fraction,
    )
    return result.mean_check_cycles
