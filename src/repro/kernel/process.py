"""Process abstraction: a sandboxed application under one regime.

Bundles what the kernel tracks per process — the Seccomp profile, the
attached filters, and (under Draco) the SPT/VAT state — and exposes the
container-runtime workflow: create a process from a profile, deliver
syscalls, observe kills.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.software import CheckOutcome
from repro.kernel.regimes import CheckingRegime, InsecureRegime
from repro.seccomp.actions import (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    action_of,
)
from repro.syscalls.events import SyscallEvent

_pids = itertools.count(1000)


class ProcessKilled(Exception):
    """Raised when a denied syscall terminates the process
    (SECCOMP_RET_KILL_PROCESS semantics)."""

    def __init__(self, pid: int, event: SyscallEvent) -> None:
        super().__init__(f"pid {pid} killed on syscall {event.sid} args {event.args}")
        self.pid = pid
        self.event = event


@dataclass
class Process:
    """A user process checked by a :class:`CheckingRegime`."""

    name: str
    regime: CheckingRegime = field(default_factory=InsecureRegime)
    pid: int = field(default_factory=lambda: next(_pids))
    alive: bool = True
    syscalls_issued: int = 0
    syscalls_denied: int = 0
    check_cycles: float = 0.0
    kill_on_deny: bool = True

    def syscall(self, event: SyscallEvent) -> CheckOutcome:
        """Issue one syscall through the checking regime."""
        if not self.alive:
            raise ProcessKilled(self.pid, event)
        outcome = self.regime.check(event)
        self.syscalls_issued += 1
        self.check_cycles += outcome.cycles
        if not outcome.allowed:
            self.syscalls_denied += 1
            if self.kill_on_deny and self._is_fatal(outcome):
                self.alive = False
                raise ProcessKilled(self.pid, event)
        return outcome

    @staticmethod
    def _is_fatal(outcome: CheckOutcome) -> bool:
        """seccomp semantics: only the KILL actions terminate; an ERRNO
        denial returns -errno to the caller and the process lives."""
        if outcome.action is None:
            return True  # regime gave no disposition: conservative kill
        action = action_of(outcome.action)
        return action in (SECCOMP_RET_KILL_PROCESS, SECCOMP_RET_KILL_THREAD)

    def run(self, events, work_cycles_per_syscall: float = 0.0) -> Tuple[int, float]:
        """Issue a stream of syscalls; returns (#issued, check cycles)."""
        issued_before = self.syscalls_issued
        cycles_before = self.check_cycles
        for event in events:
            self.syscall(event)
            if work_cycles_per_syscall:
                self.regime.advance(work_cycles_per_syscall)
        return self.syscalls_issued - issued_before, self.check_cycles - cycles_before
