"""Fleet-scale multi-tenant FaaS serving under Draco.

The paper motivates Draco with serverless runtimes (Firecracker,
gVisor) where per-process VATs are born empty and warmth dies with the
container.  :mod:`repro.kernel.faas` models one worker; this module
models the *fleet*: thousands of tenants, ~10⁵ invocations, warm pools
with keep-alive windows, capacity eviction, and the SLB/STB cold-resume
storms the churn produces.

The model has three layers:

* **Calibration** — each function class drives a real
  :class:`~repro.core.hardware.HardwareDraco` pipeline once and
  snapshots three per-flow ledgers: ``cold_first`` (process startup +
  first body on a fresh VAT), ``resume`` (the body after a context
  switch invalidated the per-core SLB/STB — the price every warm start
  on a resumed container pays), and ``steady`` (the body on fully warm
  structures).  Like :class:`~repro.kernel.faas.FaaSRunner`, the
  recorded startup sequence's trailing ``exit_group`` is dropped — a
  serving worker never exits.
* **Load generation** — a deterministic Azure-Functions-style stream:
  Zipf tenant popularity, exponential interarrivals with occasional
  same-tenant bursts (scale-out surges) and fleet-wide lulls (long
  enough for keep-alive windows to lapse), and heavy-tailed (Pareto)
  invocation durations expressed as body-repetition multipliers.
* **Serving simulation** — a discrete-event loop over container pools:
  warm starts pop the tenant's most-recently-idled container, cold
  starts spawn (evicting the globally least-recently-idled container
  at capacity), keep-alive expiry retires idle containers.  Every
  invocation's checking cost is charged to its tenant's flow ledger as
  an integer combination of the calibrated ledgers — cold is
  ``cold_first + (reps-1)·steady``, warm is ``resume +
  (reps-1)·steady`` — so fleet totals equal the sum of per-tenant
  buckets *exactly* (integer counts) and conservation is auditable.

Two dispatch policies make the serverless scheduler ablation:
``round-robin`` (FIFO arrival order) and ``shortest-task``
(shortest-expected-duration first), both over the same worker pool.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import ledger, telemetry
from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, make_rng, zipf_weights
from repro.core.hardware import HardwareDraco
from repro.core.software import build_process_tables
from repro.cpu.params import (
    DEFAULT_DRACO_HW,
    DEFAULT_PROCESSOR,
    DEFAULT_SW_COSTS,
    DracoHwParams,
    ProcessorParams,
    SoftwareCostParams,
)
from repro.seccomp.compiler import compile_profile_chunked
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.toolkit import generate_complete
from repro.syscalls.events import SyscallTrace, make_event
from repro.workloads.startup import startup_events

#: Dispatch policies (the serverless scheduler ablation).
POLICY_ROUND_ROBIN = "round-robin"
POLICY_SHORTEST = "shortest-task"
POLICIES: Tuple[str, ...] = (POLICY_ROUND_ROBIN, POLICY_SHORTEST)

#: Modelled bytes per SPT entry: syscall id + Valid/Accessed bits plus
#: the VAT base pointer and argument-count metadata of Section VIII's
#: per-process SPT (the software side has no packed representation to
#: measure, so the footprint model fixes one).
SPT_ENTRY_BYTES = 24


@dataclass(frozen=True)
class FleetParams:
    """Knobs of one fleet scenario (all deterministic given ``seed``)."""

    tenants: int = 1000
    invocations: int = 120_000
    seed: int = DEFAULT_SEED
    #: Distinct function classes; tenant ``t`` runs class ``t % classes``.
    function_classes: int = 6
    #: Zipf skew of tenant popularity (heavier -> hotter head).
    popularity_skew: float = 1.2
    #: Mean gap between consecutive fleet-wide arrivals.
    mean_interarrival_ms: float = 0.25
    #: Warm containers are retired this long after going idle.
    keep_alive_ms: float = 10_000.0
    #: Concurrent executor slots (busy containers).
    workers: int = 128
    #: Total container budget, busy + idle; at the cap a cold start
    #: evicts the globally least-recently-idled container.
    max_containers: int = 320
    #: Extra latency a cold start pays before the function body runs.
    cold_spawn_ms: float = 50.0
    #: Pareto shape of the duration (body repetition) distribution.
    duration_alpha: float = 1.6
    max_reps: int = 50
    #: Modelled wall time per body syscall per repetition.
    ms_per_syscall: float = 0.05
    #: Mean arrivals between same-tenant burst surges / fleet lulls.
    burst_every: int = 2_000
    burst_size: int = 40
    lull_every: int = 30_000
    #: Cold-resume storm detector: a window of this width with at least
    #: ``storm_threshold`` cold starts counts as one storm.
    storm_window_ms: float = 1_000.0
    storm_threshold: int = 20
    #: Extrapolation target for the memory-footprint aggregate.
    target_containers: int = 1_000_000

    def validate(self) -> None:
        if self.tenants < 1:
            raise ConfigError("need at least one tenant")
        if self.invocations < 1:
            raise ConfigError("need at least one invocation")
        if self.function_classes < 1:
            raise ConfigError("need at least one function class")
        if self.workers < 1:
            raise ConfigError("need at least one worker")
        if self.max_containers < self.workers:
            raise ConfigError("max_containers must cover the worker pool")
        if self.keep_alive_ms <= 0 or self.mean_interarrival_ms <= 0:
            raise ConfigError("keep-alive and interarrival must be positive")
        if self.max_reps < 1 or self.duration_alpha <= 0:
            raise ConfigError("duration distribution is degenerate")
        if self.storm_threshold < 1 or self.storm_window_ms <= 0:
            raise ConfigError("storm detector needs a positive window/threshold")


# -- calibration ---------------------------------------------------------

#: ``(flow, count, cycles)`` triples — a frozen FlowLedger.
LedgerItems = Tuple[Tuple[str, int, float], ...]


def _freeze(led: ledger.FlowLedger) -> LedgerItems:
    return tuple(
        (flow, led.counts[flow], led.cycles.get(flow, 0.0))
        for flow in sorted(led.counts)
    )


@dataclass(frozen=True)
class ClassCost:
    """Calibrated per-flow cost model of one function class."""

    index: int
    body_syscalls: int
    #: Startup + first body on a fresh process (a cold start).
    cold_first: LedgerItems
    #: Body after a context switch + resume (a warm start's transient).
    resume: LedgerItems
    #: Body on fully warm structures (every further repetition).
    steady: LedgerItems
    #: Per-container VAT bytes + modelled SPT entry bytes.
    footprint_bytes: int
    #: Modelled service time of one body repetition.
    service_ms: float

    @staticmethod
    def events(items: LedgerItems) -> int:
        return sum(count for _, count, _ in items)


def _class_body(index: int, params: FleetParams) -> List:
    """Deterministic function body for class *index*: a per-class mix
    of distinct (syscall, argument-set) pairs, sized so classes differ
    in both length and table footprint."""
    combos = 3 + index % 4
    length = 32 + 8 * index
    pc_base = 0x4000_0000 + 0x1000 * index
    events = []
    for i in range(length):
        combo = i % combos
        kind = combo % 3
        if kind == 0:
            events.append(
                make_event("read", (3 + index + combo, 4096), pc=pc_base)
            )
        elif kind == 1:
            events.append(
                make_event("write", (1, 64 + index + combo), pc=pc_base + 4)
            )
        else:
            events.append(
                make_event("getrandom", (16 + combo, 0), pc=pc_base + 8)
            )
    return events


def calibrate_classes(
    params: FleetParams,
    processor: ProcessorParams = DEFAULT_PROCESSOR,
    hw: DracoHwParams = DEFAULT_DRACO_HW,
    costs: SoftwareCostParams = DEFAULT_SW_COSTS,
) -> Tuple[ClassCost, ...]:
    """Drive each function class through a real Draco pipeline once and
    snapshot the three ledgers the fleet replays analytically."""
    # The recorded startup sequence ends with the traced exit_group; a
    # serving worker never executes it (same rule as FaaSRunner).
    startup = startup_events()[:-1]
    out = []
    for index in range(params.function_classes):
        body = _class_body(index, params)
        recording = SyscallTrace(list(startup_events()) + body)
        profile = generate_complete(recording, f"fleet-class-{index}")
        module = SeccompKernelModule()
        for program in compile_profile_chunked(profile):
            module.attach(program)
        tables = build_process_tables(profile, table=profile.table)
        pipeline = HardwareDraco(
            tables, module, processor=processor, hw=hw, costs=costs
        )

        def measure(events: Sequence) -> ledger.FlowLedger:
            before = pipeline.stats.ledger()
            for event in events:
                pipeline.on_syscall(event)
            after = pipeline.stats.ledger()
            delta = ledger.FlowLedger()
            for flow, count in after.counts.items():
                diff = count - before.counts.get(flow, 0)
                if diff:
                    delta.counts[flow] = diff
                    delta.cycles[flow] = after.cycles.get(
                        flow, 0.0
                    ) - before.cycles.get(flow, 0.0)
            return delta

        cold_first = measure(list(startup) + body)
        measure(body)  # settle: second pass fills the remaining warmth
        steady = measure(body)
        pipeline.context_switch(same_process=False)
        pipeline.resume_process()
        resume = measure(body)
        footprint = tables.vat.size_bytes + len(tables.spt) * SPT_ENTRY_BYTES
        out.append(
            ClassCost(
                index=index,
                body_syscalls=len(body),
                cold_first=_freeze(cold_first),
                resume=_freeze(resume),
                steady=_freeze(steady),
                footprint_bytes=footprint,
                service_ms=len(body) * params.ms_per_syscall,
            )
        )
    return tuple(out)


# -- load generation -----------------------------------------------------


@dataclass(frozen=True)
class Invocation:
    """One arrival in the fleet stream."""

    seq: int
    tenant: int
    arrival_ms: float
    #: Duration multiplier: the function body repeats this many times.
    reps: int


def generate_load(params: FleetParams) -> Tuple[Invocation, ...]:
    """Deterministic per-tenant invocation streams, merged by arrival.

    Tenants are picked per arrival from a Zipf popularity distribution
    (cumulative-weight bisection, O(log N) per draw); durations are
    capped Pareto.  Burst surges hit one tenant with near-simultaneous
    arrivals; lulls insert a gap longer than the keep-alive window.
    """
    params.validate()
    rng = make_rng(params.seed, "fleet/load")
    weights = zipf_weights(params.tenants, params.popularity_skew)
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def pick_tenant() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    def pick_reps() -> int:
        return min(params.max_reps, int(rng.paretovariate(params.duration_alpha)))

    out: List[Invocation] = []
    t = 0.0
    while len(out) < params.invocations:
        if params.lull_every and rng.random() < 1.0 / params.lull_every:
            # A fleet-wide lull: long enough that keep-alive windows
            # lapse, so the traffic after it restarts cold (a storm).
            t += params.keep_alive_ms * (1.0 + 2.0 * rng.random())
        if params.burst_every and rng.random() < 1.0 / params.burst_every:
            tenant = pick_tenant()
            size = min(
                1 + int(rng.expovariate(1.0 / params.burst_size)),
                params.invocations - len(out),
            )
            for _ in range(size):
                t += 0.01
                out.append(Invocation(len(out), tenant, t, pick_reps()))
            continue
        t += rng.expovariate(1.0 / params.mean_interarrival_ms)
        out.append(Invocation(len(out), pick_tenant(), t, pick_reps()))
    return tuple(out)


# -- serving simulation --------------------------------------------------


class _TenantState:
    """Mutable per-tenant accounting (slots keep 5k tenants cheap)."""

    __slots__ = (
        "klass", "invocations", "cold_starts", "warm_starts",
        "syscalls", "flow_counts", "flow_cycles", "live", "peak_live",
        "idle",
    )

    def __init__(self, klass: int) -> None:
        self.klass = klass
        self.invocations = 0
        self.cold_starts = 0
        self.warm_starts = 0
        self.syscalls = 0
        self.flow_counts: Dict[str, int] = {}
        self.flow_cycles: Dict[str, float] = {}
        self.live = 0
        self.peak_live = 0
        self.idle: List[int] = []  # LIFO stack of container ids

    def charge(self, items: LedgerItems, times: int) -> None:
        if times <= 0:
            return
        counts, cycles = self.flow_counts, self.flow_cycles
        for flow, count, cyc in items:
            counts[flow] = counts.get(flow, 0) + count * times
            cycles[flow] = cycles.get(flow, 0.0) + cyc * times
            self.syscalls += count * times

    def flow_ledger(self) -> ledger.FlowLedger:
        return ledger.FlowLedger(self.flow_counts, self.flow_cycles)


@dataclass(frozen=True)
class TenantAggregate:
    """Immutable per-tenant summary carried by :class:`FleetResult`."""

    tenant: int
    klass: int
    invocations: int
    cold_starts: int
    warm_starts: int
    syscalls: int
    check_cycles: float
    flow_counts: Dict[str, int]
    flow_cycles: Dict[str, float]
    peak_containers: int
    footprint_peak_bytes: int


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet serving run under one dispatch policy."""

    policy: str
    tenants: int
    invocations: int
    #: Checked syscalls charged across the fleet (== ledger count sum).
    syscalls: int
    #: Fleet checking cycles, derived from the merged flow ledger.
    check_cycles: float
    horizon_ms: float
    wait_ms: Dict[str, float]
    counters: Dict[str, float]
    footprint: Dict[str, float]
    flow_counts: Dict[str, int]
    flow_cycles: Dict[str, float]
    per_tenant: Tuple[TenantAggregate, ...] = field(repr=False)

    def fleet_ledger(self) -> ledger.FlowLedger:
        return ledger.FlowLedger(self.flow_counts, self.flow_cycles)

    @property
    def mean_check_cycles(self) -> float:
        return self.check_cycles / self.syscalls if self.syscalls else 0.0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "tenants": self.tenants,
            "invocations": self.invocations,
            "syscalls": self.syscalls,
            "check_cycles": self.check_cycles,
            "mean_check_cycles": self.mean_check_cycles,
            "horizon_ms": round(self.horizon_ms, 3),
            "wait_ms": {k: round(v, 4) for k, v in sorted(self.wait_ms.items())},
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "footprint": {k: self.footprint[k] for k in sorted(self.footprint)},
            "flows": {
                "counts": dict(sorted(self.flow_counts.items())),
                "cycles": {k: v for k, v in sorted(self.flow_cycles.items())},
            },
            # Compact per-tenant aggregate rows (active tenants only):
            # [tenant, class, invocations, cold, warm, syscalls,
            #  check_cycles, peak_containers, footprint_peak_bytes]
            "per_tenant": [
                [
                    t.tenant, t.klass, t.invocations, t.cold_starts,
                    t.warm_starts, t.syscalls, t.check_cycles,
                    t.peak_containers, t.footprint_peak_bytes,
                ]
                for t in self.per_tenant
            ],
        }


def simulate_fleet(
    params: FleetParams,
    policy: str = POLICY_ROUND_ROBIN,
    classes: Optional[Tuple[ClassCost, ...]] = None,
    load: Optional[Tuple[Invocation, ...]] = None,
    record_telemetry: bool = True,
) -> FleetResult:
    """Serve the generated load through the container-pool model.

    ``classes``/``load`` accept precomputed calibration and load so
    several policies (or stage-graph stages) can share them; both are
    pure functions of ``params``, so passing them changes nothing but
    wall time.
    """
    params.validate()
    if policy not in POLICIES:
        raise ConfigError(f"unknown dispatch policy {policy!r}")
    if classes is None:
        classes = calibrate_classes(params)
    if load is None:
        load = generate_load(params)

    tenants: Dict[int, _TenantState] = {}

    def tenant_state(tenant: int) -> _TenantState:
        state = tenants.get(tenant)
        if state is None:
            state = tenants[tenant] = _TenantState(tenant % len(classes))
        return state

    # Container bookkeeping.  state: 1 busy, 2 idle, 0 dead.
    container_state: List[int] = []
    container_tenant: List[int] = []
    container_expire: List[float] = []
    container_idle_since: List[float] = []
    container_count = 0  # live (busy + idle)
    idle_order: List[Tuple[float, int]] = []  # eviction heap (lazy)
    expiry_heap: List[Tuple[float, int]] = []

    counters: Dict[str, float] = {
        "cold_starts": 0, "warm_starts": 0, "spawns": 0,
        "evictions": 0, "keepalive_expiries": 0,
        "cold_resume_storms": 0, "max_cold_in_window": 0,
        "peak_containers": 0, "peak_busy": 0, "queue_peak": 0,
    }
    storm_windows: Dict[int, int] = {}
    busy = 0
    waits: List[float] = []
    queue_fifo: deque = deque()
    queue_sjf: List[Tuple[float, int, Invocation]] = []
    finish_heap: List[Tuple[float, int, int, int]] = []  # (t, seq, cid, tenant)
    last_finish_ms = 0.0

    def expire_idle(now: float) -> None:
        nonlocal container_count
        while expiry_heap and expiry_heap[0][0] <= now:
            expire_ms, cid = heapq.heappop(expiry_heap)
            if container_state[cid] != 2 or container_expire[cid] != expire_ms:
                continue  # re-idled or already gone; stale heap entry
            container_state[cid] = 0
            container_count -= 1
            tenants[container_tenant[cid]].live -= 1
            counters["keepalive_expiries"] += 1

    def evict_lru_idle(now: float) -> None:
        """Free one container slot by retiring the least-recently-idled
        container anywhere in the fleet (capacity pressure)."""
        nonlocal container_count
        while idle_order:
            idle_since, cid = heapq.heappop(idle_order)
            if container_state[cid] != 2 or container_idle_since[cid] != idle_since:
                continue
            container_state[cid] = 0
            container_count -= 1
            tenants[container_tenant[cid]].live -= 1
            counters["evictions"] += 1
            return
        raise ConfigError(
            "container cap reached with no idle container to evict"
        )  # pragma: no cover - workers <= max_containers forbids this

    def start(invocation: Invocation, now: float) -> None:
        nonlocal busy, container_count, last_finish_ms
        state = tenant_state(invocation.tenant)
        klass = classes[state.klass]
        state.invocations += 1
        # Warm start: most recently idled container of this tenant.
        cid = None
        while state.idle:
            candidate = state.idle.pop()
            if container_state[candidate] == 2:
                cid = candidate
                break
        begin = now
        if cid is not None:
            container_state[cid] = 1
            state.warm_starts += 1
            counters["warm_starts"] += 1
            # A resumed container's per-core SLB/STB are cold: the
            # first body pays the resume transient, the rest replay
            # steady.
            state.charge(klass.resume, 1)
            state.charge(klass.steady, invocation.reps - 1)
        else:
            if container_count >= params.max_containers:
                evict_lru_idle(now)
            cid = len(container_state)
            container_state.append(1)
            container_tenant.append(invocation.tenant)
            container_expire.append(0.0)
            container_idle_since.append(0.0)
            container_count += 1
            state.live += 1
            if state.live > state.peak_live:
                state.peak_live = state.live
            state.cold_starts += 1
            counters["cold_starts"] += 1
            counters["spawns"] += 1
            window = int(now // params.storm_window_ms)
            storm_windows[window] = storm_windows.get(window, 0) + 1
            state.charge(klass.cold_first, 1)
            state.charge(klass.steady, invocation.reps - 1)
            begin = now + params.cold_spawn_ms
        busy += 1
        if busy > counters["peak_busy"]:
            counters["peak_busy"] = busy
        if container_count > counters["peak_containers"]:
            counters["peak_containers"] = container_count
        waits.append(now - invocation.arrival_ms)
        finish = begin + klass.service_ms * invocation.reps
        if finish > last_finish_ms:
            last_finish_ms = finish
        heapq.heappush(
            finish_heap, (finish, invocation.seq, cid, invocation.tenant)
        )

    def enqueue(invocation: Invocation) -> None:
        if policy == POLICY_ROUND_ROBIN:
            queue_fifo.append(invocation)
        else:
            klass = classes[invocation.tenant % len(classes)]
            expected = klass.service_ms * invocation.reps
            heapq.heappush(queue_sjf, (expected, invocation.seq, invocation))
        depth = len(queue_fifo) + len(queue_sjf)
        if depth > counters["queue_peak"]:
            counters["queue_peak"] = depth

    def dequeue() -> Optional[Invocation]:
        if queue_fifo:
            return queue_fifo.popleft()
        if queue_sjf:
            return heapq.heappop(queue_sjf)[2]
        return None

    arrival_index = 0
    while arrival_index < len(load) or finish_heap:
        run_finish = bool(finish_heap) and (
            arrival_index >= len(load)
            or finish_heap[0][0] <= load[arrival_index].arrival_ms
        )
        if run_finish:
            now, _seq, cid, tenant = heapq.heappop(finish_heap)
            expire_idle(now)
            busy -= 1
            container_state[cid] = 2
            container_expire[cid] = now + params.keep_alive_ms
            container_idle_since[cid] = now
            tenants[tenant].idle.append(cid)
            heapq.heappush(idle_order, (now, cid))
            heapq.heappush(expiry_heap, (container_expire[cid], cid))
            if busy < params.workers:
                queued = dequeue()
                if queued is not None:
                    start(queued, now)
        else:
            invocation = load[arrival_index]
            arrival_index += 1
            now = invocation.arrival_ms
            expire_idle(now)
            if busy < params.workers:
                start(invocation, now)
            else:
                enqueue(invocation)

    # Storm windows: any window with >= threshold cold starts.
    if storm_windows:
        counters["max_cold_in_window"] = max(storm_windows.values())
        counters["cold_resume_storms"] = sum(
            1 for count in storm_windows.values()
            if count >= params.storm_threshold
        )
    counters["active_tenants"] = len(tenants)
    counters["idle_remaining"] = (
        counters["spawns"] - counters["evictions"] - counters["keepalive_expiries"]
    )

    # Fleet ledger: the exact merge of the per-tenant buckets.
    fleet = ledger.FlowLedger()
    aggregates: List[TenantAggregate] = []
    for tenant in sorted(tenants):
        state = tenants[tenant]
        tenant_ledger = state.flow_ledger()
        fleet.merge(tenant_ledger)
        klass = classes[state.klass]
        aggregates.append(
            TenantAggregate(
                tenant=tenant,
                klass=state.klass,
                invocations=state.invocations,
                cold_starts=state.cold_starts,
                warm_starts=state.warm_starts,
                syscalls=state.syscalls,
                check_cycles=tenant_ledger.total_cycles(),
                flow_counts=dict(state.flow_counts),
                flow_cycles=dict(state.flow_cycles),
                peak_containers=state.peak_live,
                footprint_peak_bytes=state.peak_live * klass.footprint_bytes,
            )
        )
    syscalls = fleet.total_events()
    check_cycles = fleet.total_cycles()
    if ledger.audits_enabled():
        fleet.audit_totals(syscalls, check_cycles, scope=f"fleet/{policy}")

    waits.sort()

    def percentile(fraction: float) -> float:
        if not waits:
            return 0.0
        return waits[min(len(waits) - 1, int(fraction * len(waits)))]

    wait_ms = {
        "mean": sum(waits) / len(waits) if waits else 0.0,
        "p50": percentile(0.50),
        "p95": percentile(0.95),
        "p99": percentile(0.99),
        "max": waits[-1] if waits else 0.0,
    }

    # Footprint: per-tenant peaks (concurrent containers x per-container
    # VAT+SPT bytes) and the mean-per-container extrapolation.
    fleet_peak_bytes = sum(t.footprint_peak_bytes for t in aggregates)
    spawns = max(int(counters["spawns"]), 1)
    spawn_bytes = sum(
        t.cold_starts * classes[t.klass].footprint_bytes for t in aggregates
    )
    bytes_per_container = spawn_bytes / spawns
    tenant_peaks_kb = [t.footprint_peak_bytes / 1024.0 for t in aggregates]
    footprint = {
        "fleet_peak_bytes": float(fleet_peak_bytes),
        "bytes_per_container": bytes_per_container,
        "mean_tenant_peak_kb": (
            sum(tenant_peaks_kb) / len(tenant_peaks_kb) if tenant_peaks_kb else 0.0
        ),
        "max_tenant_peak_kb": max(tenant_peaks_kb, default=0.0),
        "target_containers": float(params.target_containers),
        "extrapolated_gb": (
            bytes_per_container * params.target_containers / (1024.0**3)
        ),
    }

    result = FleetResult(
        policy=policy,
        tenants=params.tenants,
        invocations=len(load),
        syscalls=syscalls,
        check_cycles=check_cycles,
        horizon_ms=last_finish_ms,
        wait_ms=wait_ms,
        counters=counters,
        footprint=footprint,
        flow_counts=dict(fleet.counts),
        flow_cycles=dict(fleet.cycles),
        per_tenant=tuple(aggregates),
    )
    if record_telemetry:
        telemetry.record_simulation(
            regime=f"fleet-{policy}",
            events=syscalls,
            check_cycles=check_cycles,
            total_cycles=check_cycles,
            flow_counts=result.flow_counts,
            flow_cycles=result.flow_cycles,
        )
        telemetry.record_fleet(
            policy,
            {
                "tenants": params.tenants,
                "invocations": len(load),
                **{k: float(v) for k, v in counters.items()},
            },
        )
    return result
