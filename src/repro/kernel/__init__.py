"""OS substrate: checking regimes, processes, syscall-level simulator."""

from repro.kernel.faas import FaaSRunner, FaaSRunStats, compare_deployments
from repro.kernel.multicore import MultiCoreResult, MultiCoreSystem
from repro.kernel.process import Process, ProcessKilled
from repro.kernel.regimes import (
    CheckingRegime,
    DracoHwRegime,
    DracoSwRegime,
    InsecureRegime,
    SeccompRegime,
)
from repro.kernel.scheduler import (
    DracoCore,
    RoundRobinScheduler,
    ScheduledProcess,
    ScheduleResult,
)
from repro.kernel.simulator import RunResult, mean_check_cycles, run_trace

__all__ = [
    "FaaSRunner",
    "FaaSRunStats",
    "compare_deployments",
    "MultiCoreResult",
    "MultiCoreSystem",
    "Process",
    "ProcessKilled",
    "CheckingRegime",
    "DracoHwRegime",
    "DracoSwRegime",
    "InsecureRegime",
    "SeccompRegime",
    "DracoCore",
    "RoundRobinScheduler",
    "ScheduledProcess",
    "ScheduleResult",
    "RunResult",
    "mean_check_cycles",
    "run_trace",
]
