"""repro — a faithful reproduction of *Draco: Architectural and Operating
System Support for System Call Security* (MICRO 2020).

The library builds every system the paper depends on:

* :mod:`repro.syscalls` — the x86-64 syscall ABI;
* :mod:`repro.bpf` — a classic-BPF assembler/verifier/interpreter;
* :mod:`repro.seccomp` — profiles, filter compilers, the kernel engine,
  canned real-world profiles, and the strace-style profile toolkit;
* :mod:`repro.hashing` — CRC-64 (ECMA / not-ECMA) and 2-ary cuckoo tables;
* :mod:`repro.cpu` — caches, memory hierarchy, Table II parameters;
* :mod:`repro.core` — Draco itself: SPT, VAT, SLB, STB, Temporary
  Buffer, the software checker and the hardware pipeline;
* :mod:`repro.kernel` — checking regimes, processes, the simulator;
* :mod:`repro.workloads` — the fifteen paper workloads as locality-
  calibrated models;
* :mod:`repro.analysis` — locality, security, and hardware-cost analyses;
* :mod:`repro.experiments` — a regenerator for every table and figure.

Quick start::

    from repro.experiments import get_context
    ctx = get_context("nginx")
    print(ctx.evaluate("syscall-complete").normalized_time)   # Seccomp
    print(ctx.evaluate("draco-hw-complete").normalized_time)  # hardware Draco
"""

__version__ = "1.0.0"

from repro.core import HardwareDraco, SoftwareDraco, build_process_tables
from repro.kernel import (
    DracoHwRegime,
    DracoSwRegime,
    InsecureRegime,
    Process,
    SeccompRegime,
    run_trace,
)
from repro.seccomp import (
    SeccompProfile,
    build_docker_default,
    generate_bundle,
)
from repro.syscalls import LINUX_X86_64, SyscallEvent, SyscallTrace, make_event
from repro.workloads import CATALOG, generate_trace

__all__ = [
    "__version__",
    "HardwareDraco",
    "SoftwareDraco",
    "build_process_tables",
    "DracoHwRegime",
    "DracoSwRegime",
    "InsecureRegime",
    "Process",
    "SeccompRegime",
    "run_trace",
    "SeccompProfile",
    "build_docker_default",
    "generate_bundle",
    "LINUX_X86_64",
    "SyscallEvent",
    "SyscallTrace",
    "make_event",
    "CATALOG",
    "generate_trace",
]
