"""Bounded in-process memo dictionaries with oldest-first eviction.

Several hot-path memos (assembled BPF programs, traces, profile
bundles, calibrations, filter sweeps) key on object identity with a
strong reference pinning the id.  They must stay bounded, but the old
``.clear()``-at-limit policy had a thrash mode: a catalog sweep sitting
exactly at the limit wiped the entry it had just inserted, turning
every subsequent lookup into a rebuild.  Evicting only the *oldest*
entry keeps the working set warm — plain dicts iterate in insertion
order, so the oldest key is ``next(iter(memo))``.

>>> memo = {}
>>> for key in range(5):
...     memo_insert(memo, key, key * 10, limit=3)
>>> list(memo)
[2, 3, 4]
>>> memo_insert(memo, 3, "refreshed", limit=3)  # existing key: no eviction
>>> sorted(memo) == [2, 3, 4] and memo[3] == "refreshed"
True
"""

from __future__ import annotations

from typing import Any, Dict


def memo_insert(memo: Dict[Any, Any], key: Any, value: Any, limit: int) -> None:
    """Insert ``key -> value`` into *memo*, evicting oldest-first so the
    memo never exceeds *limit* entries.  Overwriting an existing key
    never evicts (and keeps the key's insertion position)."""
    if key not in memo:
        while len(memo) >= limit:
            del memo[next(iter(memo))]
    memo[key] = value
