"""Kill switch for the batched (bulk-check) simulation kernel.

The bulk fast path — run-length-encoded trace consumption plus
steady-state bulk checking in the regimes (see
``docs/ARCHITECTURE.md``, "Batched simulation kernel") — is designed to
be bit-identical to the per-event path and is on by default.  Setting
``REPRO_BULK=0`` forces every layer back to per-event execution; the
differential tests and the benchmark harness flip this switch to prove
equivalence and measure the speedup.

This lives in ``repro.common`` so the core structures, the regimes and
the simulator can all consult it without import cycles (the same
pattern as ``repro.bpf.compile.fastpath_enabled``).
"""

from __future__ import annotations

import os

#: Environment variable: set to ``0``/``off`` to disable the bulk
#: fast path (run coalescing still happens; every run is re-expanded
#: into per-event checks).
BULK_ENV = "REPRO_BULK"


def bulk_enabled() -> bool:
    """True unless ``REPRO_BULK`` disables the bulk fast path.

    Unset, or any value other than ``0``/``off``/``false``/``no``
    (case-insensitive), leaves the fast path on:

    >>> os.environ.pop("REPRO_BULK", None) and None
    >>> bulk_enabled()
    True
    >>> os.environ["REPRO_BULK"] = "0"
    >>> bulk_enabled()
    False
    >>> os.environ["REPRO_BULK"] = "off"
    >>> bulk_enabled()
    False
    >>> os.environ["REPRO_BULK"] = "1"
    >>> bulk_enabled()
    True
    >>> os.environ.pop("REPRO_BULK")
    '1'
    """
    return os.environ.get(BULK_ENV, "1").lower() not in ("0", "off", "false", "no")
