"""Shared utilities: errors, deterministic RNG, statistics, telemetry."""

from repro.common import telemetry
from repro.common.errors import (
    BpfError,
    BpfRuntimeError,
    BpfVerifyError,
    ConfigError,
    CuckooInsertError,
    ProfileError,
    ReproError,
    SimulationError,
    UnknownSyscallError,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng, weighted_choice, zipf_weights
from repro.common.stats import geomean, histogram, mean, normalise, percentile, ratio

__all__ = [
    "telemetry",
    "BpfError",
    "BpfRuntimeError",
    "BpfVerifyError",
    "ConfigError",
    "CuckooInsertError",
    "ProfileError",
    "ReproError",
    "SimulationError",
    "UnknownSyscallError",
    "DEFAULT_SEED",
    "derive_seed",
    "make_rng",
    "weighted_choice",
    "zipf_weights",
    "geomean",
    "histogram",
    "mean",
    "normalise",
    "percentile",
    "ratio",
]
