"""Run telemetry: per-experiment timing, cache status, simulation totals.

The experiment engine wraps every registry entry in an
:class:`ExperimentRecord` (wall time, cache hit/miss, failure capture)
and aggregates them into a :class:`RunReport` — a structured JSON
document written next to the result cache and rendered by
``python -m repro.experiments summary``.

Simulation counters are collected process-locally: the syscall-level
simulator calls :func:`record_simulation` on every trace it drives, and
the engine snapshots/resets the counters around each experiment.  Each
engine worker is a separate process, so counters never race and are
attributed to exactly one experiment even when workers are reused.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Cache-status values an ExperimentRecord may carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_REFRESH = "refresh"
CACHE_OFF = "off"


@dataclass
class SimulationCounters:
    """Process-local totals across every simulated trace."""

    traces_run: int = 0
    #: Events in the measured (post-warm-up) window, matching the
    #: cycle totals below; warm-up events are counted separately.
    events_simulated: int = 0
    warmup_events: int = 0
    check_cycles: float = 0.0
    total_cycles: float = 0.0
    #: Per-regime totals over the measured (post-warm-up) window.
    regime_cycles: Dict[str, float] = field(default_factory=dict)
    regime_events: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "traces_run": self.traces_run,
            "events_simulated": self.events_simulated,
            "warmup_events": self.warmup_events,
            "check_cycles": round(self.check_cycles, 3),
            "total_cycles": round(self.total_cycles, 3),
            "regime_cycles": {k: round(v, 3) for k, v in sorted(self.regime_cycles.items())},
            "regime_events": dict(sorted(self.regime_events.items())),
        }


_COUNTERS = SimulationCounters()


def record_simulation(
    regime: str,
    events: int,
    check_cycles: float,
    total_cycles: float,
    warmup_events: int = 0,
) -> None:
    """Account one simulated trace (called by the kernel simulator).

    ``events`` and the cycle totals all cover the measured window;
    warm-up events are reported separately via ``warmup_events``.
    """
    _COUNTERS.traces_run += 1
    _COUNTERS.events_simulated += events
    _COUNTERS.warmup_events += warmup_events
    _COUNTERS.check_cycles += check_cycles
    _COUNTERS.total_cycles += total_cycles
    _COUNTERS.regime_cycles[regime] = _COUNTERS.regime_cycles.get(regime, 0.0) + total_cycles
    _COUNTERS.regime_events[regime] = _COUNTERS.regime_events.get(regime, 0) + events


def reset_counters() -> None:
    """Zero the process-local simulation counters."""
    global _COUNTERS
    _COUNTERS = SimulationCounters()


def counters_snapshot() -> Dict[str, Any]:
    """JSON-ready snapshot of the current counters."""
    return _COUNTERS.as_dict()


@dataclass
class ExperimentRecord:
    """Telemetry for one engine-executed experiment."""

    experiment_id: str
    title: str = ""
    status: str = "ok"  # "ok" | "failed"
    cache: str = CACHE_OFF
    wall_time_s: float = 0.0
    params_digest: str = ""
    error: str = ""
    simulation: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "status": self.status,
            "cache": self.cache,
            "wall_time_s": round(self.wall_time_s, 4),
            "params_digest": self.params_digest,
            "error": self.error,
            "simulation": self.simulation,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRecord":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload.get("title", ""),
            status=payload.get("status", "ok"),
            cache=payload.get("cache", CACHE_OFF),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            params_digest=payload.get("params_digest", ""),
            error=payload.get("error", ""),
            simulation=dict(payload.get("simulation", {})),
        )


@dataclass
class RunReport:
    """One engine invocation: run-level metadata plus per-experiment records."""

    records: List[ExperimentRecord] = field(default_factory=list)
    jobs: int = 1
    events: Optional[int] = None
    seed: Optional[int] = None
    code_fingerprint: str = ""
    cache_dir: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0

    # -- aggregates ----------------------------------------------------

    @property
    def wall_time_s(self) -> float:
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def failures(self) -> List[ExperimentRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache == CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if r.cache in (CACHE_MISS, CACHE_REFRESH))

    def events_simulated(self) -> int:
        return sum(r.simulation.get("events_simulated", 0) for r in self.records)

    def regime_cycles(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for record in self.records:
            for regime, cycles in record.simulation.get("regime_cycles", {}).items():
                totals[regime] = totals.get(regime, 0.0) + cycles
        return totals

    # -- serialisation -------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.run-report/1",
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_s": round(self.wall_time_s, 4),
            "jobs": self.jobs,
            "events": self.events,
            "seed": self.seed,
            "code_fingerprint": self.code_fingerprint,
            "cache_dir": self.cache_dir,
            "totals": {
                "experiments": len(self.records),
                "failed": len(self.failures),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "events_simulated": self.events_simulated(),
            },
            "records": [r.to_json_dict() for r in self.records],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "RunReport":
        return cls(
            records=[ExperimentRecord.from_json_dict(r) for r in payload.get("records", [])],
            jobs=int(payload.get("jobs", 1)),
            events=payload.get("events"),
            seed=payload.get("seed"),
            code_fingerprint=payload.get("code_fingerprint", ""),
            cache_dir=payload.get("cache_dir", ""),
            started_at=float(payload.get("started_at", 0.0)),
            finished_at=float(payload.get("finished_at", 0.0)),
        )

    def write(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True))

    @classmethod
    def read(cls, path: Path) -> "RunReport":
        return cls.from_json_dict(json.loads(Path(path).read_text()))

    # -- rendering -----------------------------------------------------

    def format_summary(self) -> str:
        """Fixed-width per-experiment summary (the ``summary`` subcommand)."""
        header = ("experiment", "status", "cache", "wall_s", "events", "traces", "Mcycles")
        rows = [header]
        for r in self.records:
            sim = r.simulation
            rows.append(
                (
                    r.experiment_id,
                    r.status,
                    r.cache,
                    f"{r.wall_time_s:.2f}",
                    str(sim.get("events_simulated", 0)),
                    str(sim.get("traces_run", 0)),
                    f"{sim.get('total_cycles', 0.0) / 1e6:.1f}",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["== run summary"]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("-" * len(lines[-1]))
        lines.append(
            f"total: {len(self.records)} experiments in {self.wall_time_s:.2f}s "
            f"(jobs={self.jobs}, cache: {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {len(self.failures)} failed)"
        )
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.started_at))
        lines.append(f"started: {when}  code: {self.code_fingerprint or '?'}")
        for record in self.failures:
            first_line = record.error.strip().splitlines()[-1] if record.error else "?"
            lines.append(f"FAILED {record.experiment_id}: {first_line}")
        return "\n".join(lines)
