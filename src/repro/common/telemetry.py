"""Run telemetry: per-experiment timing, cache status, simulation totals.

The experiment engine wraps every registry entry in an
:class:`ExperimentRecord` (wall time, cache hit/miss, failure capture)
and aggregates them into a :class:`RunReport` — a structured JSON
document written next to the result cache and rendered by
``python -m repro.experiments summary``.

Simulation counters are collected process-locally: the syscall-level
simulator calls :func:`record_simulation` on every trace it drives, and
the engine snapshots/resets the counters around each experiment.  Each
engine worker is a separate process, so counters never race and are
attributed to exactly one experiment even when workers are reused.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Cache-status values an ExperimentRecord may carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_REFRESH = "refresh"
CACHE_OFF = "off"


@dataclass
class SimulationCounters:
    """Process-local totals across every simulated trace."""

    traces_run: int = 0
    #: Events in the measured (post-warm-up) window, matching the
    #: cycle totals below; warm-up events are counted separately.
    events_simulated: int = 0
    warmup_events: int = 0
    #: Run-length-encoded (event, count) pairs consumed over the
    #: measured windows; ``events_simulated / runs_coalesced`` is the
    #: mean consecutive-identical run length the bulk kernel exploited.
    runs_coalesced: int = 0
    check_cycles: float = 0.0
    total_cycles: float = 0.0
    #: Per-regime totals over the measured (post-warm-up) window.
    regime_cycles: Dict[str, float] = field(default_factory=dict)
    regime_events: Dict[str, int] = field(default_factory=dict)
    #: Per-regime checking cycles (the per-flow ledger's conservation
    #: reference) and per-(regime, flow) event/cycle buckets.
    regime_check_cycles: Dict[str, float] = field(default_factory=dict)
    regime_flow_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    regime_flow_cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-regime structure counters (SLB/STB/VAT/SPT hit/miss/evict,
    #: seccomp execution totals), numeric scalars only.
    regime_structures: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )
    #: Analytic-backend provenance: traces whose results were
    #: *extrapolated* from a sample rather than simulated exactly, the
    #: events those results account for beyond what was simulated, and
    #: the worst split-half error estimate among them.
    derived_traces: int = 0
    events_extrapolated: int = 0
    max_error_estimate: float = 0.0
    #: Persistent context-cache activity, per artifact kind ("trace",
    #: "bundle", "sweep", "calibration"): how many disk probes hit,
    #: missed, and how many rebuilt artifacts were stored back.
    context_cache: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Fleet-serving counters, per dispatch policy: cold/warm starts,
    #: evictions, keep-alive expiries, cold-resume storms, pool peaks.
    fleet: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        flows: Dict[str, Any] = {}
        for regime in sorted(self.regime_flow_counts):
            counts = self.regime_flow_counts[regime]
            cycles = self.regime_flow_cycles.get(regime, {})
            flows[regime] = {
                "events": sum(counts.values()),
                "check_cycles": round(self.regime_check_cycles.get(regime, 0.0), 3),
                "counts": dict(sorted(counts.items())),
                "cycles": {k: round(v, 3) for k, v in sorted(cycles.items())},
            }
        structures = {
            regime: {
                name: {k: round(v, 3) for k, v in sorted(counters.items())}
                for name, counters in sorted(per_structure.items())
            }
            for regime, per_structure in sorted(self.regime_structures.items())
        }
        payload = {
            "traces_run": self.traces_run,
            "events_simulated": self.events_simulated,
            "warmup_events": self.warmup_events,
            "runs_coalesced": self.runs_coalesced,
            "mean_run_length": (
                round(self.events_simulated / self.runs_coalesced, 3)
                if self.runs_coalesced
                else 0.0
            ),
            "check_cycles": round(self.check_cycles, 3),
            "total_cycles": round(self.total_cycles, 3),
            "regime_cycles": {k: round(v, 3) for k, v in sorted(self.regime_cycles.items())},
            "regime_events": dict(sorted(self.regime_events.items())),
        }
        if flows:
            payload["flows"] = flows
        if structures:
            payload["structures"] = structures
        if self.derived_traces:
            payload["derived_traces"] = self.derived_traces
            payload["events_extrapolated"] = self.events_extrapolated
            payload["max_error_estimate"] = round(self.max_error_estimate, 6)
        if self.context_cache:
            payload["context_cache"] = {
                kind: dict(sorted(counters.items()))
                for kind, counters in sorted(self.context_cache.items())
            }
        if self.fleet:
            payload["fleet"] = {
                policy: {k: counters[k] for k in sorted(counters)}
                for policy, counters in sorted(self.fleet.items())
            }
        return payload


_COUNTERS = SimulationCounters()


def _merge_structures(
    target: Dict[str, Dict[str, float]], source: Mapping[str, Any]
) -> None:
    """Accumulate numeric structure counters; rates and timelines are
    derived quantities and are dropped (recompute them from the sums)."""
    for name, counters in source.items():
        if not isinstance(counters, Mapping):
            continue
        bucket = target.setdefault(name, {})
        for key, value in counters.items():
            if key.endswith("_rate") or key == "hit_rate":
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            bucket[key] = bucket.get(key, 0) + value


def record_simulation(
    regime: str,
    events: int,
    check_cycles: float,
    total_cycles: float,
    warmup_events: int = 0,
    flow_counts: Optional[Mapping[str, int]] = None,
    flow_cycles: Optional[Mapping[str, float]] = None,
    structures: Optional[Mapping[str, Any]] = None,
    runs_coalesced: int = 0,
    derived: bool = False,
    events_extrapolated: int = 0,
    error_estimate: float = 0.0,
) -> None:
    """Account one simulated trace (called by the kernel simulator).

    ``events`` and the cycle totals all cover the measured window;
    warm-up events are reported separately via ``warmup_events``.
    ``flow_counts``/``flow_cycles`` are the trace's per-flow ledger and
    ``structures`` its per-structure counters; all three are optional so
    external callers of the simulator stay source-compatible.
    ``derived`` marks an analytic sampled run: ``events_extrapolated``
    of its events were accounted without being simulated, with
    ``error_estimate`` as its split-half error bound.
    """
    _COUNTERS.traces_run += 1
    if derived:
        _COUNTERS.derived_traces += 1
        _COUNTERS.events_extrapolated += events_extrapolated
        if error_estimate > _COUNTERS.max_error_estimate:
            _COUNTERS.max_error_estimate = error_estimate
    _COUNTERS.events_simulated += events
    _COUNTERS.warmup_events += warmup_events
    _COUNTERS.runs_coalesced += runs_coalesced
    _COUNTERS.check_cycles += check_cycles
    _COUNTERS.total_cycles += total_cycles
    _COUNTERS.regime_cycles[regime] = _COUNTERS.regime_cycles.get(regime, 0.0) + total_cycles
    _COUNTERS.regime_events[regime] = _COUNTERS.regime_events.get(regime, 0) + events
    _COUNTERS.regime_check_cycles[regime] = (
        _COUNTERS.regime_check_cycles.get(regime, 0.0) + check_cycles
    )
    if flow_counts:
        bucket = _COUNTERS.regime_flow_counts.setdefault(regime, {})
        for flow, count in flow_counts.items():
            bucket[flow] = bucket.get(flow, 0) + count
    if flow_cycles:
        bucket_cycles = _COUNTERS.regime_flow_cycles.setdefault(regime, {})
        for flow, cycles in flow_cycles.items():
            bucket_cycles[flow] = bucket_cycles.get(flow, 0.0) + cycles
    if structures:
        _merge_structures(
            _COUNTERS.regime_structures.setdefault(regime, {}), structures
        )


def record_context_cache(kind: str, outcome: str) -> None:
    """Account one persistent-context-cache event.

    ``kind`` names the artifact family (``trace`` / ``bundle`` /
    ``sweep`` / ``calibration``); ``outcome`` is ``hit`` (served from
    disk), ``miss`` (probed, absent or invalid), or ``store`` (rebuilt
    artifact written back).  Only *disk* activity is recorded —
    in-process memo hits never reach this function.
    """
    bucket = _COUNTERS.context_cache.setdefault(kind, {})
    bucket[outcome] = bucket.get(outcome, 0) + 1


def record_fleet(policy: str, counters: Mapping[str, float]) -> None:
    """Account one fleet serving run under *policy*.

    ``counters`` are the numeric pool/churn totals of
    :func:`repro.kernel.fleet.simulate_fleet` (cold/warm starts,
    evictions, keep-alive expiries, cold-resume storms, peaks); they
    accumulate per policy so repeated runs in one process sum, matching
    :func:`merge_simulations` across processes."""
    bucket = _COUNTERS.fleet.setdefault(policy, {})
    for key, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        bucket[key] = bucket.get(key, 0) + value


def merge_simulations(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard simulation snapshots into one experiment-level
    snapshot: numeric leaves are summed recursively (matching how the
    counters would have accumulated in a single process) and the
    derived ``mean_run_length`` is recomputed from the merged totals."""

    def _merge_into(target: Dict[str, Any], source: Mapping[str, Any]) -> None:
        for key, value in source.items():
            if isinstance(value, Mapping):
                _merge_into(target.setdefault(key, {}), value)
            elif isinstance(value, bool):
                target.setdefault(key, value)
            elif isinstance(value, (int, float)):
                target[key] = target.get(key, 0) + value
            else:
                target.setdefault(key, value)

    merged: Dict[str, Any] = {}
    for part in parts:
        _merge_into(merged, part)
    runs = merged.get("runs_coalesced", 0)
    if "mean_run_length" in merged:
        merged["mean_run_length"] = (
            round(merged.get("events_simulated", 0) / runs, 3) if runs else 0.0
        )
    # A worst-case bound merges by max, not by sum.
    if "max_error_estimate" in merged:
        merged["max_error_estimate"] = max(
            (part.get("max_error_estimate", 0.0) for part in parts), default=0.0
        )
    return merged


def reset_counters() -> None:
    """Zero the process-local simulation counters."""
    global _COUNTERS
    _COUNTERS = SimulationCounters()


def counters_snapshot() -> Dict[str, Any]:
    """JSON-ready snapshot of the current counters."""
    return _COUNTERS.as_dict()


@dataclass
class ExperimentRecord:
    """Telemetry for one engine-executed experiment."""

    experiment_id: str
    title: str = ""
    status: str = "ok"  # "ok" | "failed"
    cache: str = CACHE_OFF
    wall_time_s: float = 0.0
    #: Total compute time attributed to the experiment.  Differs from
    #: ``wall_time_s`` when work ran concurrently: a shard merge
    #: reports the *max* shard time as wall time and the sum here.
    cpu_time_s: float = 0.0
    params_digest: str = ""
    error: str = ""
    simulation: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "status": self.status,
            "cache": self.cache,
            "wall_time_s": round(self.wall_time_s, 4),
            "cpu_time_s": round(self.cpu_time_s, 4),
            "params_digest": self.params_digest,
            "error": self.error,
            "simulation": self.simulation,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRecord":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload.get("title", ""),
            status=payload.get("status", "ok"),
            cache=payload.get("cache", CACHE_OFF),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            cpu_time_s=float(payload.get("cpu_time_s", 0.0)),
            params_digest=payload.get("params_digest", ""),
            error=payload.get("error", ""),
            simulation=dict(payload.get("simulation", {})),
        )


@dataclass
class RunReport:
    """One engine invocation: run-level metadata plus per-experiment records."""

    records: List[ExperimentRecord] = field(default_factory=list)
    jobs: int = 1
    events: Optional[int] = None
    seed: Optional[int] = None
    code_fingerprint: str = ""
    cache_dir: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Experiment-service block (empty for plain CLI runs): request
    #: totals, per-request latency percentiles, warm-pool and in-memory
    #: stage-tier counters.  Written by
    #: :mod:`repro.experiments.service`, rendered by
    #: ``summary --service``.
    service: Dict[str, Any] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------

    @property
    def wall_time_s(self) -> float:
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def failures(self) -> List[ExperimentRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache == CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if r.cache in (CACHE_MISS, CACHE_REFRESH))

    def events_simulated(self) -> int:
        return sum(r.simulation.get("events_simulated", 0) for r in self.records)

    def derived_traces(self) -> int:
        return sum(r.simulation.get("derived_traces", 0) for r in self.records)

    def events_extrapolated(self) -> int:
        return sum(r.simulation.get("events_extrapolated", 0) for r in self.records)

    def max_error_estimate(self) -> float:
        return max(
            (r.simulation.get("max_error_estimate", 0.0) for r in self.records),
            default=0.0,
        )

    def runs_coalesced(self) -> int:
        return sum(r.simulation.get("runs_coalesced", 0) for r in self.records)

    def context_cache(self) -> Dict[str, Dict[str, int]]:
        """Per-kind context-cache counters summed across every record."""
        merged: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            for kind, counters in record.simulation.get("context_cache", {}).items():
                bucket = merged.setdefault(kind, {})
                for outcome, count in counters.items():
                    bucket[outcome] = bucket.get(outcome, 0) + count
        return {kind: merged[kind] for kind in sorted(merged)}

    def mean_run_length(self) -> float:
        runs = self.runs_coalesced()
        return self.events_simulated() / runs if runs else 0.0

    def stage_counters(self) -> Dict[str, int]:
        """Stage-graph hit/exec/dedup/store totals summed across records
        (empty when the run used the flat engine)."""
        merged: Dict[str, int] = {}
        for record in self.records:
            block = record.simulation.get("stages", {})
            for outcome, count in block.get("counters", {}).items():
                merged[outcome] = merged.get(outcome, 0) + count
        return merged

    def stage_detail(self) -> List[Dict[str, Any]]:
        """Per-stage rows (experiment, kind, label, status, elapsed)
        flattened across records, in record order."""
        rows: List[Dict[str, Any]] = []
        for record in self.records:
            block = record.simulation.get("stages", {})
            for entry in block.get("detail", []):
                row = dict(entry)
                row["experiment_id"] = record.experiment_id
                rows.append(row)
        return rows

    def regime_cycles(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for record in self.records:
            for regime, cycles in record.simulation.get("regime_cycles", {}).items():
                totals[regime] = totals.get(regime, 0.0) + cycles
        return totals

    def flows(self) -> Dict[str, Dict[str, Any]]:
        """Per-regime flow ledger aggregated across every record.

        Returns ``{regime: {"events", "check_cycles", "counts", "cycles"}}``
        with counts summed exactly and cycles summed from the per-record
        JSON (which rounds to 3 decimals — see
        :meth:`audit_flow_conservation` for the matching tolerance).
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for record in self.records:
            for regime, block in record.simulation.get("flows", {}).items():
                into = merged.setdefault(
                    regime,
                    {"events": 0, "check_cycles": 0.0, "counts": {}, "cycles": {}},
                )
                into["events"] += block.get("events", 0)
                into["check_cycles"] += block.get("check_cycles", 0.0)
                for flow, count in block.get("counts", {}).items():
                    into["counts"][flow] = into["counts"].get(flow, 0) + count
                for flow, cycles in block.get("cycles", {}).items():
                    into["cycles"][flow] = into["cycles"].get(flow, 0.0) + cycles
        return {regime: merged[regime] for regime in sorted(merged)}

    def structures(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-regime structure counters aggregated across every record."""
        merged: Dict[str, Dict[str, Dict[str, float]]] = {}
        for record in self.records:
            for regime, per_structure in record.simulation.get("structures", {}).items():
                _merge_structures(merged.setdefault(regime, {}), per_structure)
        return {regime: merged[regime] for regime in sorted(merged)}

    def fleet(self) -> Dict[str, Dict[str, float]]:
        """Per-policy fleet serving counters aggregated across records."""
        merged: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            for policy, counters in record.simulation.get("fleet", {}).items():
                bucket = merged.setdefault(policy, {})
                for key, value in counters.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        bucket[key] = bucket.get(key, 0) + value
        return {policy: merged[policy] for policy in sorted(merged)}

    def audit_flow_conservation(self) -> List[str]:
        """Cross-check every regime's aggregated flow ledger.

        Flow counts must sum exactly to the regime's event total; flow
        cycles must sum to its checking-cycle total within the rounding
        noise the JSON encoding introduces (3 decimals per bucket per
        record).  Returns a list of human-readable drift descriptions —
        empty means the ledger conserves.
        """
        problems: List[str] = []
        traces = max(sum(r.simulation.get("traces_run", 0) for r in self.records), 1)
        # Each (record, flow) bucket contributes up to 5e-4 of rounding
        # error on each side of the comparison.
        tolerance = 1e-3 * traces * 16 + 1e-6
        for regime, block in self.flows().items():
            events = block["events"]
            counted = sum(block["counts"].values())
            if counted != events:
                problems.append(
                    f"{regime}: flow counts sum to {counted} but "
                    f"{events} events were measured"
                )
            want = block["check_cycles"]
            got = sum(block["cycles"][flow] for flow in sorted(block["cycles"]))
            if abs(want - got) > tolerance:
                problems.append(
                    f"{regime}: flow cycles sum to {got:.3f} but "
                    f"check_cycles={want:.3f} (tolerance {tolerance:.3f})"
                )
        return problems

    # -- serialisation -------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        payload = {
            "schema": "repro.run-report/1",
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_s": round(self.wall_time_s, 4),
            "jobs": self.jobs,
            "events": self.events,
            "seed": self.seed,
            "code_fingerprint": self.code_fingerprint,
            "cache_dir": self.cache_dir,
            "totals": {
                "experiments": len(self.records),
                "failed": len(self.failures),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "events_simulated": self.events_simulated(),
            },
            "records": [r.to_json_dict() for r in self.records],
        }
        if self.service:
            payload["service"] = self.service
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "RunReport":
        return cls(
            records=[ExperimentRecord.from_json_dict(r) for r in payload.get("records", [])],
            jobs=int(payload.get("jobs", 1)),
            events=payload.get("events"),
            seed=payload.get("seed"),
            code_fingerprint=payload.get("code_fingerprint", ""),
            cache_dir=payload.get("cache_dir", ""),
            started_at=float(payload.get("started_at", 0.0)),
            finished_at=float(payload.get("finished_at", 0.0)),
            service=dict(payload.get("service", {})),
        )

    def write(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True))

    @classmethod
    def read(cls, path: Path) -> "RunReport":
        return cls.from_json_dict(json.loads(Path(path).read_text()))

    # -- rendering -----------------------------------------------------

    def format_summary(self) -> str:
        """Fixed-width per-experiment summary (the ``summary`` subcommand)."""
        header = (
            "experiment", "status", "cache", "wall_s", "events", "traces",
            "runs", "run_len", "Mcycles",
        )
        rows = [header]
        for r in self.records:
            sim = r.simulation
            runs = sim.get("runs_coalesced", 0)
            events = sim.get("events_simulated", 0)
            rows.append(
                (
                    r.experiment_id,
                    r.status,
                    r.cache,
                    f"{r.wall_time_s:.2f}",
                    str(events),
                    str(sim.get("traces_run", 0)),
                    str(runs),
                    f"{events / runs:.2f}" if runs else "-",
                    f"{sim.get('total_cycles', 0.0) / 1e6:.1f}",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["== run summary"]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("-" * len(lines[-1]))
        lines.append(
            f"total: {len(self.records)} experiments in {self.wall_time_s:.2f}s "
            f"(jobs={self.jobs}, cache: {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {len(self.failures)} failed)"
        )
        context = self.context_cache()
        if context:
            hits = sum(c.get("hit", 0) for c in context.values())
            misses = sum(c.get("miss", 0) for c in context.values())
            stores = sum(c.get("store", 0) for c in context.values())
            detail = ", ".join(
                f"{kind} {c.get('hit', 0)}/{c.get('hit', 0) + c.get('miss', 0)}"
                for kind, c in context.items()
            )
            lines.append(
                f"context cache: {hits} hit / {misses} miss / {stores} "
                f"store ({detail}) — REPRO_CONTEXT_CACHE"
            )
        for policy, counters in self.fleet().items():
            lines.append(
                f"fleet[{policy}]: {counters.get('invocations', 0):.0f} "
                f"invocations over {counters.get('tenants', 0):.0f} tenants — "
                f"{counters.get('cold_starts', 0):.0f} cold / "
                f"{counters.get('warm_starts', 0):.0f} warm starts, "
                f"{counters.get('evictions', 0):.0f} evicted / "
                f"{counters.get('keepalive_expiries', 0):.0f} expired, "
                f"{counters.get('cold_resume_storms', 0):.0f} cold-resume "
                f"storm(s), peak {counters.get('peak_containers', 0):.0f} "
                f"containers"
            )
        derived = self.derived_traces()
        if derived:
            lines.append(
                f"analytic: {derived} derived trace(s) — "
                f"{self.events_extrapolated()} events accounted by sampled "
                f"extrapolation (REPRO_ANALYTIC=1), max split-half error "
                f"{self.max_error_estimate():.2%}"
            )
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.started_at))
        lines.append(f"started: {when}  code: {self.code_fingerprint or '?'}")
        for record in self.failures:
            # The last line of a captured traceback is the exception
            # itself — the one-line cause — so surface that, truncated.
            last_line = record.error.strip().splitlines()[-1] if record.error else "?"
            if len(last_line) > 160:
                last_line = last_line[:157] + "..."
            lines.append(f"FAILED {record.experiment_id}: {last_line}")
        return "\n".join(lines)

    def format_stages(self, top: int = 15) -> str:
        """Stage-graph telemetry (the ``summary --stages`` rendering).

        Shows the per-kind status counters and the ``top`` slowest
        executed stages — the floor the next perf pass should look at.
        """
        detail = self.stage_detail()
        if not detail:
            return (
                "== stages\n(no stage telemetry recorded — run with "
                "REPRO_STAGE_GRAPH=1, the default)"
            )
        by_kind: Dict[str, Dict[str, int]] = {}
        for row in detail:
            bucket = by_kind.setdefault(row["kind"], {})
            bucket[row["status"]] = bucket.get(row["status"], 0) + 1
        header = ("kind", "exec", "hit", "dedup", "failed", "total")
        rows = [header]
        for kind in sorted(by_kind):
            bucket = by_kind[kind]
            rows.append(
                (
                    kind,
                    str(bucket.get("exec", 0)),
                    str(bucket.get("hit", 0)),
                    str(bucket.get("dedup", 0)),
                    str(bucket.get("failed", 0)),
                    str(sum(bucket.values())),
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["== stages (REPRO_STAGE_GRAPH)"]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("-" * len(lines[-1]))
        counters = self.stage_counters()
        lines.append(
            f"totals: {counters.get('executed', 0)} executed / "
            f"{counters.get('hit', 0)} hit / {counters.get('dedup', 0)} dedup / "
            f"{counters.get('stored', 0)} stored / {counters.get('failed', 0)} failed"
        )
        executed = sorted(
            (row for row in detail if row["status"] == "exec"),
            key=lambda row: row.get("elapsed_s", 0.0),
            reverse=True,
        )[:top]
        if executed:
            lines.append(f"slowest executed stages (top {len(executed)}):")
            for row in executed:
                lines.append(
                    f"  {row.get('elapsed_s', 0.0):7.3f}s  "
                    f"{row['experiment_id']:<8}  {row['label']}"
                )
        return "\n".join(lines)

    def format_flows(self) -> str:
        """Per-regime flow table (the ``summary --flows`` rendering)."""
        flows = self.flows()
        if not flows:
            return "== flows\n(no flow telemetry recorded — run with REPRO_LEDGER=1)"
        header = ("regime", "flow", "events", "share", "cycles", "cyc/event")
        rows = [header]
        for regime, block in flows.items():
            events = block["events"] or 1
            for flow in sorted(block["counts"]):
                count = block["counts"][flow]
                cycles = block["cycles"].get(flow, 0.0)
                rows.append(
                    (
                        regime,
                        flow,
                        str(count),
                        f"{count / events:.1%}",
                        f"{cycles:.0f}",
                        f"{cycles / count:.2f}" if count else "-",
                    )
                )
            rows.append(
                (
                    regime,
                    "total",
                    str(block["events"]),
                    "100.0%",
                    f"{block['check_cycles']:.0f}",
                    (
                        f"{block['check_cycles'] / block['events']:.2f}"
                        if block["events"]
                        else "-"
                    ),
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["== flows (measured window, per regime)"]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("-" * len(lines[-1]))
        problems = self.audit_flow_conservation()
        if problems:
            lines.append("CONSERVATION DRIFT:")
            lines.extend(f"  {p}" for p in problems)
        else:
            lines.append("conservation: ok (counts == events; cycles sum to totals)")
        return "\n".join(lines)

    def format_service(self) -> str:
        """Experiment-service telemetry (the ``summary --service`` rendering).

        Request totals, how each request was served (computed on the
        warm pool, replayed from the request memo, or coalesced onto an
        identical in-flight request), per-request latency percentiles,
        and the warm-pool / in-memory stage-tier counters behind them.
        """
        block = self.service
        if not block:
            return (
                "== service\n(no service telemetry recorded — reports "
                "written by python -m repro.experiments.service carry it)"
            )
        lines = ["== service (warm pool + request memo)"]
        served = block.get("served", {})
        lines.append(
            f"requests: {block.get('requests', 0)} "
            f"({served.get('computed', 0)} computed / "
            f"{served.get('memo', 0)} memo / "
            f"{served.get('coalesced', 0)} coalesced, "
            f"{block.get('errors', 0)} errors)"
        )
        latency = block.get("latency_ms", {})
        if latency:
            lines.append(
                "latency: "
                f"p50 {latency.get('p50', 0.0):.1f} ms / "
                f"p95 {latency.get('p95', 0.0):.1f} ms / "
                f"p99 {latency.get('p99', 0.0):.1f} ms "
                f"(mean {latency.get('mean', 0.0):.1f}, "
                f"max {latency.get('max', 0.0):.1f}, "
                f"n={latency.get('count', 0)})"
            )
        pool = block.get("pool", {})
        if pool:
            lines.append(
                f"warm pool: {pool.get('created', 0)} created / "
                f"{pool.get('recycled', 0)} recycled / "
                f"{pool.get('broken', 0)} broken, "
                f"{pool.get('suites_served', 0)} suites on current pool "
                f"(workers={pool.get('max_workers', '?')})"
            )
        memory = block.get("stage_memory", {})
        if memory:
            lines.append(
                f"stage memory: {memory.get('hits', 0)} hit / "
                f"{memory.get('misses', 0)} miss / "
                f"{memory.get('stored', 0)} stored / "
                f"{memory.get('evicted', 0)} evicted "
                f"({memory.get('entries', 0)}/{memory.get('limit', 0)} entries)"
            )
        watch = block.get("watch", {})
        if watch:
            lines.append(
                f"watch: {watch.get('checks', 0)} checks / "
                f"{watch.get('runs', 0)} recomputes / "
                f"{watch.get('code_drift', 0)} code-drift invalidations"
            )
        return "\n".join(lines)
