"""Per-flow cycle-accounting ledger with conservation audits.

The paper's headline evidence is *where each system call's cycles go* —
the six Table I execution flows plus the SPT-only and OS-check paths —
but a simulator that only reports lump-sum check cycles can hide
accounting bugs indefinitely.  This module makes the cost model
self-checking:

* every :class:`~repro.core.software.CheckOutcome` carries a canonical
  **flow tag** (see :data:`FLOW_KEYS`);
* the simulator accumulates a :class:`FlowLedger` — per-flow event
  counts and cycle totals — over the measured window, and *derives* the
  total check cycles from it, so ``sum(per-flow cycles) == total check
  cycles`` holds exactly by construction;
* an audit cross-checks the simulator-side ledger against the regime's
  own internal statistics (two independent accounting routes): flow
  **counts must match exactly**, cycles to within floating-point
  reassociation noise.  Any path that records cycles without tagging a
  flow — or vice versa — fails loudly.

Environment switches:

``REPRO_LEDGER=0``
    disables per-structure windowed timelines and the regime
    cross-check snapshotting (the zero-overhead escape hatch; the
    per-flow buckets themselves cost one dict update per event and are
    always maintained, since the total is derived from them).
``REPRO_LEDGER_AUDIT=0``
    disables the conservation audits only.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ReproError

LEDGER_ENV = "REPRO_LEDGER"
AUDIT_ENV = "REPRO_LEDGER_AUDIT"

#: Canonical flow-tag taxonomy (the ledger keys).  Hardware Draco's
#: six Table I flows plus its two off-lattice paths, software Draco's
#: four paths, plain Seccomp's two, and the insecure baseline.
FLOW_HW_1 = "hw.flow1"            # stb hit / preload hit / access hit
FLOW_HW_2 = "hw.flow2"            # stb hit / preload hit / access miss
FLOW_HW_3 = "hw.flow3"            # stb hit / preload miss / access hit
FLOW_HW_4 = "hw.flow4"            # stb hit / preload miss / access miss
FLOW_HW_5 = "hw.flow5"            # stb miss / access hit
FLOW_HW_6 = "hw.flow6"            # stb miss / access miss
FLOW_HW_SPT_ONLY = "hw.spt_only"  # Valid bit alone decides
FLOW_HW_OS_CHECK = "hw.os_check"  # SPT had no entry: filter executed
FLOW_SW_SPT_ONLY = "sw.spt_only"
FLOW_SW_VAT_HIT = "sw.vat_hit"
FLOW_SW_FILTER = "sw.filter_run"
FLOW_SW_DENIED = "sw.denied"
FLOW_SECCOMP_FILTER = "seccomp.filter_run"
FLOW_SECCOMP_DENIED = "seccomp.denied"
FLOW_NONE = "none"                # insecure baseline: no checking

FLOW_KEYS: Tuple[str, ...] = (
    FLOW_HW_1,
    FLOW_HW_2,
    FLOW_HW_3,
    FLOW_HW_4,
    FLOW_HW_5,
    FLOW_HW_6,
    FLOW_HW_SPT_ONLY,
    FLOW_HW_OS_CHECK,
    FLOW_SW_SPT_ONLY,
    FLOW_SW_VAT_HIT,
    FLOW_SW_FILTER,
    FLOW_SW_DENIED,
    FLOW_SECCOMP_FILTER,
    FLOW_SECCOMP_DENIED,
    FLOW_NONE,
)

#: Relative tolerance for cycle cross-checks between the simulator-side
#: ledger and a regime's internal statistics.  Both sides add the same
#: IEEE-754 values, but the regime's buckets also contain the warm-up
#: window, so the measured-window delta is computed by subtraction and
#: may differ by reassociation noise — never by a whole event.
CYCLE_RTOL = 1e-9


class ConservationError(ReproError):
    """The per-flow ledger disagrees with an independent cycle total."""


def enabled() -> bool:
    """True unless ``REPRO_LEDGER`` disables the observability extras."""
    return os.environ.get(LEDGER_ENV, "1").lower() not in ("0", "off", "false", "no")


def audits_enabled() -> bool:
    """True unless ``REPRO_LEDGER_AUDIT`` disables conservation audits."""
    if not enabled():
        return False
    return os.environ.get(AUDIT_ENV, "1").lower() not in ("0", "off", "false", "no")


class FlowLedger:
    """Per-flow event counts and cycle totals for one accounting scope.

    The scope may be one simulated trace's measured window, one regime's
    lifetime, or one scheduled process — anything that checks syscalls.
    """

    __slots__ = ("counts", "cycles")

    def __init__(
        self,
        counts: Optional[Mapping[str, int]] = None,
        cycles: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.counts: Dict[str, int] = dict(counts) if counts else {}
        self.cycles: Dict[str, float] = dict(cycles) if cycles else {}

    # -- recording -----------------------------------------------------

    def record(self, flow: str, cycles: float) -> None:
        """Account one checked syscall (the hot path)."""
        self.counts[flow] = self.counts.get(flow, 0) + 1
        self.cycles[flow] = self.cycles.get(flow, 0.0) + cycles

    def record_bulk(self, flow: str, cycles: float, count: int) -> None:
        """Account *count* syscalls that each cost *cycles* (bulk path).

        Charges ``cycles * count`` in one addition; callers comparing
        against a per-event ledger should use :meth:`audit_against`'s
        :data:`CYCLE_RTOL` tolerance, not bit equality.
        """
        self.counts[flow] = self.counts.get(flow, 0) + count
        self.cycles[flow] = self.cycles.get(flow, 0.0) + cycles * count

    def merge(self, other: "FlowLedger") -> None:
        for flow, count in other.counts.items():
            self.counts[flow] = self.counts.get(flow, 0) + count
        for flow, cycles in other.cycles.items():
            self.cycles[flow] = self.cycles.get(flow, 0.0) + cycles

    def snapshot(self) -> "FlowLedger":
        return FlowLedger(self.counts, self.cycles)

    # -- totals --------------------------------------------------------

    def total_events(self) -> int:
        return sum(self.counts.values())

    def total_cycles(self) -> float:
        """Cycle total, summed in sorted-key order so every consumer
        that re-derives it gets the bit-identical float."""
        return sum(self.cycles[key] for key in sorted(self.cycles))

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowLedger(counts={self.counts!r}, cycles={self.cycles!r})"

    # -- serialisation -------------------------------------------------

    def as_dict(self, round_cycles: Optional[int] = None) -> Dict[str, Dict]:
        cycles = (
            {k: round(v, round_cycles) for k, v in sorted(self.cycles.items())}
            if round_cycles is not None
            else dict(sorted(self.cycles.items()))
        )
        return {"counts": dict(sorted(self.counts.items())), "cycles": cycles}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping]) -> "FlowLedger":
        return cls(payload.get("counts", {}), payload.get("cycles", {}))

    # -- audits --------------------------------------------------------

    def audit_totals(
        self, events: int, check_cycles: float, scope: str = "?"
    ) -> None:
        """Assert conservation against independently-kept totals.

        ``sum(flow counts) == events`` must hold exactly; the cycle sum
        is re-derived in the same sorted-key order as
        :meth:`total_cycles`, so it must equal *check_cycles* exactly
        when the total was derived from this ledger.
        """
        counted = self.total_events()
        if counted != events:
            raise ConservationError(
                f"{scope}: flow counts sum to {counted} but {events} events "
                f"were measured (ledger: {dict(sorted(self.counts.items()))})"
            )
        summed = self.total_cycles()
        if summed != check_cycles:
            raise ConservationError(
                f"{scope}: per-flow cycles sum to {summed!r} but total check "
                f"cycles are {check_cycles!r} (drift {summed - check_cycles!r})"
            )

    def audit_against(
        self, before: "FlowLedger", after: "FlowLedger", scope: str = "?"
    ) -> None:
        """Cross-check this ledger against a regime's own statistics.

        *before*/*after* are snapshots of the regime-side ledger taken
        around the measured window; the delta must agree with this
        (simulator-side) ledger — counts exactly, cycles to within
        :data:`CYCLE_RTOL` (the regime's running buckets include the
        warm-up prefix, so the delta is a floating-point subtraction).
        """
        flows = set(self.counts) | set(after.counts)
        for flow in sorted(flows):
            want = self.counts.get(flow, 0)
            got = after.counts.get(flow, 0) - before.counts.get(flow, 0)
            if got != want:
                raise ConservationError(
                    f"{scope}: flow {flow!r} counted {want} times by the "
                    f"simulator but {got} times by the regime"
                )
            want_cycles = self.cycles.get(flow, 0.0)
            got_cycles = after.cycles.get(flow, 0.0) - before.cycles.get(flow, 0.0)
            tolerance = CYCLE_RTOL * max(abs(want_cycles), abs(got_cycles), 1.0)
            if abs(got_cycles - want_cycles) > tolerance:
                raise ConservationError(
                    f"{scope}: flow {flow!r} cycles disagree — simulator "
                    f"{want_cycles!r} vs regime {got_cycles!r}"
                )


class WindowedCounter:
    """Hit/miss counter with a windowed hit-rate timeline.

    Closes a window every *window* events and appends its hit rate to
    ``timeline``, giving Figure-13-style rates a time axis (warm-up
    transients, post-context-switch cold windows) at the cost of two
    integer updates per event.
    """

    __slots__ = ("window", "hits", "misses", "timeline", "_win_hits", "_win_total")

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("window must be at least 1 event")
        self.window = window
        self.hits = 0
        self.misses = 0
        self.timeline: List[float] = []
        self._win_hits = 0
        self._win_total = 0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            self._win_hits += 1
        else:
            self.misses += 1
        self._win_total += 1
        if self._win_total >= self.window:
            self.timeline.append(self._win_hits / self._win_total)
            self._win_hits = 0
            self._win_total = 0

    def record_bulk(self, hit: bool, count: int) -> None:
        """Exactly ``count`` consecutive :meth:`record` calls with the
        same *hit* value, replaying window closings precisely (each
        closed window's rate is an integer ratio, so the timeline is
        bit-identical to the per-event path)."""
        if count <= 0:
            return
        if hit:
            self.hits += count
        else:
            self.misses += count
        remaining = count
        while remaining:
            take = min(remaining, self.window - self._win_total)
            if hit:
                self._win_hits += take
            self._win_total += take
            remaining -= take
            if self._win_total >= self.window:
                self.timeline.append(self._win_hits / self._win_total)
                self._win_hits = 0
                self._win_total = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.total
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "window": self.window,
            "timeline": [round(rate, 4) for rate in self.timeline],
        }

    def reset(self) -> None:
        self.hits = self.misses = 0
        self._win_hits = self._win_total = 0
        self.timeline.clear()
