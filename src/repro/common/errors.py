"""Exception hierarchy for the Draco reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BpfError(ReproError):
    """Base class for BPF assembly/verification/execution errors."""


class BpfVerifyError(BpfError):
    """A BPF program failed static verification (bad jump, no return, ...)."""


class BpfRuntimeError(BpfError):
    """A BPF program faulted at runtime (e.g. out-of-range load offset)."""


class ProfileError(ReproError):
    """A Seccomp profile is malformed or references unknown syscalls."""


class UnknownSyscallError(ProfileError):
    """A syscall name or ID is not present in the syscall table."""

    def __init__(self, ident: object) -> None:
        super().__init__(f"unknown syscall: {ident!r}")
        self.ident = ident


class CuckooInsertError(ReproError):
    """A cuckoo-hash insertion exceeded the relocation threshold.

    The new key *is* resident when this is raised — relocation placed it
    on its first kick — but one previously-resident entry was dropped to
    make that possible (``dropped_key``).  This mirrors Section VII-A:
    "if the cuckoo hashing fails after a threshold number of attempts,
    the OS makes room by evicting one entry."
    """

    def __init__(self, message: str, dropped_key: bytes = b"") -> None:
        super().__init__(message)
        self.dropped_key = dropped_key


class ConfigError(ReproError):
    """An architectural or workload configuration value is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (internal invariant)."""
