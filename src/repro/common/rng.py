"""Deterministic random-number helpers.

All stochastic components of the simulator (trace generation, workload
sampling) draw from RNGs created here so experiments are reproducible
run-to-run and component-to-component: each consumer derives a child RNG
from a root seed plus a stable string label.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

DEFAULT_SEED = 0xD12AC0  # "DRACO"


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(root_seed: int = DEFAULT_SEED, label: str = "") -> random.Random:
    """Create a deterministic RNG namespaced by *label*."""
    return random.Random(derive_seed(root_seed, label))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to *weights* (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Zipfian weights for ranks 1..n — models syscall popularity skew."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def round_robin_interleave(streams: Sequence[Sequence[T]]) -> Iterator[T]:
    """Interleave several event streams deterministically (round-robin)."""
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining:
        for i, stream in enumerate(streams):
            if cursors[i] < len(stream):
                yield stream[cursors[i]]
                cursors[i] += 1
                remaining -= 1
