"""Low-level persistent-cache plumbing shared across layers.

The experiment-level cache (:mod:`repro.experiments.cache`) and the BPF
compiler's code-object cache (:mod:`repro.bpf.compile`) sit at opposite
ends of the import graph, but they must agree on where the cache lives
and when it is enabled — one ``REPRO_CACHE_DIR``, one
``REPRO_CACHE_DISABLE``, one ``REPRO_CONTEXT_CACHE`` kill switch.  This
module owns those decisions plus the atomic write discipline, and
depends on nothing above ``repro.common``.

All writes are temp-file-then-``os.replace`` so concurrent workers
never observe a torn entry; all reads treat a missing, truncated, or
unparseable file as a cache miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache entirely (any non-empty value).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"

#: Kill switch for the persistent context cache (traces, bundles,
#: filter sweeps, compiled-filter code objects).  ``0``/``off``/
#: ``false``/``no`` disables it; the result and calibration tiers are
#: unaffected.
CONTEXT_CACHE_ENV = "REPRO_CONTEXT_CACHE"

#: Kill switch for the stage-graph orchestrator
#: (:mod:`repro.experiments.stages`).  ``0``/``off``/``false``/``no``
#: falls back to the flat per-experiment engine, whose output is
#: byte-identical by differential test.
STAGE_GRAPH_ENV = "REPRO_STAGE_GRAPH"

def _truthy(name: str) -> bool:
    return os.environ.get(name, "1").lower() not in ("0", "off", "false", "no")


def cache_enabled() -> bool:
    """True unless ``REPRO_CACHE_DISABLE`` is set to a non-empty value."""
    return not os.environ.get(CACHE_DISABLE_ENV)


def context_cache_enabled() -> bool:
    """True when the persistent context cache is active.

    Requires the cache itself (``REPRO_CACHE_DISABLE`` unset) *and*
    ``REPRO_CONTEXT_CACHE`` not set to ``0``/``off``/``false``/``no``
    (case-insensitive); defaults to on.
    """
    if not cache_enabled():
        return False
    return _truthy(CONTEXT_CACHE_ENV)


def stage_graph_enabled() -> bool:
    """True when the stage-graph orchestrator is active (the default).

    Unlike the context cache this does not require the disk cache: the
    scheduler passes stage payloads through the parent process, so the
    graph (and its cross-experiment dedup) still works under
    ``--no-cache`` — only the persistent ``stages/`` tier is skipped.
    """
    return _truthy(STAGE_GRAPH_ENV)


def cache_root() -> Path:
    """The cache directory (not created until first write)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-draco"


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def read_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None  # missing or torn entry: treat as a miss
