"""Low-level persistent-cache plumbing shared across layers.

The experiment-level cache (:mod:`repro.experiments.cache`) and the BPF
compiler's code-object cache (:mod:`repro.bpf.compile`) sit at opposite
ends of the import graph, but they must agree on where the cache lives
and when it is enabled — one ``REPRO_CACHE_DIR``, one
``REPRO_CACHE_DISABLE``, one ``REPRO_CONTEXT_CACHE`` kill switch.  This
module owns those decisions plus the atomic write discipline, and
depends on nothing above ``repro.common``.

All writes are temp-file-then-``os.replace`` so concurrent workers
never observe a torn entry; all reads treat a missing, truncated, or
unparseable file as a cache miss.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache entirely (any non-empty value).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"

#: Kill switch for the persistent context cache (traces, bundles,
#: filter sweeps, compiled-filter code objects).  ``0``/``off``/
#: ``false``/``no`` disables it; the result and calibration tiers are
#: unaffected.
CONTEXT_CACHE_ENV = "REPRO_CONTEXT_CACHE"

#: Kill switch for the stage-graph orchestrator
#: (:mod:`repro.experiments.stages`).  ``0``/``off``/``false``/``no``
#: falls back to the flat per-experiment engine, whose output is
#: byte-identical by differential test.
STAGE_GRAPH_ENV = "REPRO_STAGE_GRAPH"

def _truthy(name: str) -> bool:
    return os.environ.get(name, "1").lower() not in ("0", "off", "false", "no")


#: Context-local overrides for the cache directory and disable flag.
#: The environment variables stay the *outer defaults*; the engine and
#: the long-running experiment service apply per-run settings through
#: :func:`cache_overrides` instead of mutating ``os.environ``, which is
#: process-global and therefore unsafe once concurrent requests share a
#: process.  ContextVars are per-thread (and per-task), so two service
#: threads can run with different cache modes without racing.  Worker
#: processes do NOT inherit these reliably across ``fork`` — engine
#: worker entry points receive the settings as explicit task arguments
#: and re-apply them.
_CACHE_DIR_OVERRIDE: ContextVar[Optional[str]] = ContextVar(
    "repro_cache_dir_override", default=None
)
_CACHE_DISABLE_OVERRIDE: ContextVar[Optional[bool]] = ContextVar(
    "repro_cache_disable_override", default=None
)


@contextmanager
def cache_overrides(
    cache_dir: Optional[str] = None, disable: Optional[bool] = None
) -> Iterator[None]:
    """Apply context-local cache settings for the duration of a block.

    ``cache_dir=None`` / ``disable=None`` leave the corresponding
    setting untouched (falling through to the environment); any other
    value overrides the environment until the block exits.  Nested
    blocks restore the previous override on exit.
    """
    tokens = []
    if cache_dir is not None:
        tokens.append((_CACHE_DIR_OVERRIDE, _CACHE_DIR_OVERRIDE.set(str(cache_dir))))
    if disable is not None:
        tokens.append((_CACHE_DISABLE_OVERRIDE, _CACHE_DISABLE_OVERRIDE.set(bool(disable))))
    try:
        yield
    finally:
        for var, token in reversed(tokens):
            var.reset(token)


def cache_override_key() -> Tuple[Optional[str], Optional[bool]]:
    """The active overrides, for memo keys that must distinguish runs
    executed under different context-local cache settings."""
    return (_CACHE_DIR_OVERRIDE.get(), _CACHE_DISABLE_OVERRIDE.get())


def cache_enabled() -> bool:
    """True unless disabled by an active override or, absent one,
    ``REPRO_CACHE_DISABLE`` set to a non-empty value."""
    override = _CACHE_DISABLE_OVERRIDE.get()
    if override is not None:
        return not override
    return not os.environ.get(CACHE_DISABLE_ENV)


def context_cache_enabled() -> bool:
    """True when the persistent context cache is active.

    Requires the cache itself (``REPRO_CACHE_DISABLE`` unset) *and*
    ``REPRO_CONTEXT_CACHE`` not set to ``0``/``off``/``false``/``no``
    (case-insensitive); defaults to on.
    """
    if not cache_enabled():
        return False
    return _truthy(CONTEXT_CACHE_ENV)


def stage_graph_enabled() -> bool:
    """True when the stage-graph orchestrator is active (the default).

    Unlike the context cache this does not require the disk cache: the
    scheduler passes stage payloads through the parent process, so the
    graph (and its cross-experiment dedup) still works under
    ``--no-cache`` — only the persistent ``stages/`` tier is skipped.
    """
    return _truthy(STAGE_GRAPH_ENV)


def cache_root() -> Path:
    """The cache directory (not created until first write).

    Resolution order: active :func:`cache_overrides` block, then
    ``REPRO_CACHE_DIR``, then the ``~/.cache/repro-draco`` default.
    """
    local = _CACHE_DIR_OVERRIDE.get()
    if local:
        return Path(local)
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-draco"


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def read_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None  # missing or torn entry: treat as a miss
