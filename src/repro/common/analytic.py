"""Analytic steady-state simulation backend (the third kernel tier).

The simulator has three ways to drive a trace through a checking regime
(see ``docs/PERFORMANCE.md``):

1. **per-event** — the literal ``[check; advance]`` loop;
2. **RLE bulk** — run-length-encoded consumption with steady-state
   bulk checks (``repro.common.bulk``), bit-identical to per-event;
3. **analytic** — this module: whole-window costs computed in closed
   form from the trace's *distinct-event histogram* wherever the
   regime's structure state reaches a steady fixed point.

For the history-free regimes (insecure, seccomp, software Draco) the
outcome of every check is a pure function of the event value and the
set of previously seen events — not of their interleaving — so the
whole measured window collapses to one ``check_run(event, count)`` per
distinct event, in first-seen order.  That reordering is *exact*: the
produced :class:`repro.kernel.simulator.RunResult` is value-identical
to the per-event and bulk kernels (see the differential suite in
``tests/test_analytic.py``).

Preconditions for exactness (stated here, verified by the regimes):

* the regime's ``advance()`` is a no-op (no clocks, no cache pollution
  coupled to event order);
* any caching structure the regime consults is insert-only over the
  run and keyed by event value — for software Draco this means the VAT
  suffers **zero cuckoo evictions**, which holds by construction
  because the OS sizes each table at twice the profile's argument-set
  count (load factor <= 0.5); the simulator still verifies the eviction
  counter after every exact run and fails loudly if it moved.

Hardware Draco is history-*dependent* (STB retraining, SLB conflicts,
hierarchy pollution), so no exact closed form exists.  Above
:data:`HW_MIN_EVENTS` the backend instead simulates a shortened warm-up
plus a measured sample and extrapolates: the full window is modelled as
``C`` cold first-occurrence checks (known exactly from the histogram)
plus ``T - C`` steady-mix checks scaled from the sample by
largest-remainder rounding, so flow-count conservation stays exact.
Such results are flagged ``derived`` and carry a split-half error
estimate; the differential tests assert its bound.

The warm-up sample is sized by the trace's *characteristic time* — the
Che approximation applied to the empirical event probabilities — which
is also the model-level machinery exported here:

The hit-rate fixed point.  For an LRU-like structure of capacity ``C``
serving independent references with probabilities ``p_i``, the Che
characteristic time ``T`` solves::

    sum_i (1 - exp(-p_i * T)) = C

and the steady-state hit rate is ``H = sum_i p_i * (1 - exp(-p_i T))``.

>>> probs = [0.4, 0.3, 0.2, 0.1]
>>> t = che_characteristic_time(probs, capacity=2)
>>> round(sum(1 - math.exp(-p * t) for p in probs), 6)  # occupancy == C
2.0
>>> 0.5 < steady_hit_rate(probs, capacity=2) < 0.7   # skew helps: H > C/N
True
>>> steady_hit_rate(probs, capacity=4)               # fits entirely
1.0

A uniform population gets no skew benefit — the hit rate collapses to
the capacity ratio as the population grows:

>>> h = steady_hit_rate([1 / 64] * 64, capacity=16)
>>> 0.24 < h < 0.33
True

The events-per-quantum fixed point.  A scheduler quantum of ``Q``
cycles fits ``q`` syscalls where ``q = Q / (W + S + check(q))`` and the
mean check cost itself depends on how warm ``q`` events leave the
structures — a contraction solved by :func:`fixed_point`:

>>> q, iters = fixed_point(lambda q: 1000.0 / (4.0 + 1000.0 / (1.0 + q)), 1.0)
>>> round(q * (4.0 + 1000.0 / (1.0 + q)), 3)         # q really is a fixed point
1000.0

Everything here lives in ``repro.common`` so the kernel layer, the
experiment runner and the benchmarks can consult it without import
cycles (the same pattern as ``repro.common.bulk``).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.memo import memo_insert

#: Environment variable: set to ``0``/``off`` to disable the analytic
#: backend (every run falls back to the RLE bulk kernel, or per-event
#: under ``REPRO_BULK=0``).
ANALYTIC_ENV = "REPRO_ANALYTIC"

#: Version of the analytic backend's numerical contract.  Bumped when
#: the closed forms, the sampling plan, or the scaling arithmetic
#: change, so on-disk result caches keyed on it are invalidated rather
#: than silently mixing incompatible numbers.
ANALYTIC_VERSION = 1

#: Below this trace length the sampled hardware path never engages:
#: short traces are transient-dominated and the exact kernels are
#: already fast.  (Unit tests at 3000 events and the benchmark suite at
#: 8000 events therefore always see exact hardware results.)
HW_MIN_EVENTS = 10_000

#: Bounds on the sampled hardware plan (events).
HW_WARM_MIN = 768
HW_WARM_CAP = 2048
HW_SAMPLE_MIN = 768
HW_SAMPLE_CAP = 1024

#: Longest simulated post-context-switch re-warm segment (events).
HW_TRANSIENT_CAP = 768

#: The simulated prefix must fit inside one context-switch period with
#: this much headroom, so the quantum timer cannot fire mid-sample (the
#: plan fires switches itself, at segment boundaries).
HW_PERIOD_HEADROOM = 0.95

#: At least this fraction of the measured window must remain for the
#: steady mix after the cold and transient segments are carved out —
#: below it the trace is transient-dominated and extrapolation is
#: declined in favour of the exact kernels.
HW_MIN_STEADY_FRACTION = 0.3

#: The sampled plan is declined when the exactly-known cold events
#: exceed this fraction of the measured window (transient-dominated
#: traces extrapolate poorly) or when the plan would simulate most of
#: the trace anyway.
HW_MAX_COLD_FRACTION = 0.25
HW_MAX_SIM_FRACTION = 0.75

#: Floor on the reported error estimate of sampled hardware results, on
#: the normalised-execution-time scale.  The split-half drift inside the
#: sample cannot see slow transients (the cache hierarchy keeps warming
#: over the whole trace on some workloads), so the reported estimate is
#: never allowed below the bound the differential suite validates
#: catalog-wide (max observed |Δnt| ≈ 0.011 at 12k events; see
#: ``tests/test_analytic.py`` and ``docs/PERFORMANCE.md``).
HW_ERROR_FLOOR = 0.02


def analytic_enabled() -> bool:
    """True unless ``REPRO_ANALYTIC`` disables the analytic backend.

    >>> os.environ.pop("REPRO_ANALYTIC", None) and None
    >>> analytic_enabled()
    True
    >>> os.environ["REPRO_ANALYTIC"] = "0"
    >>> analytic_enabled()
    False
    >>> os.environ.pop("REPRO_ANALYTIC")
    '0'
    """
    return os.environ.get(ANALYTIC_ENV, "1").lower() not in ("0", "off", "false", "no")


def resolve_backend(override: Optional[str] = None) -> str:
    """The backend-selection seam for the kernel layer.

    Returns ``"analytic"``, ``"bulk"`` or ``"event"``: the explicit
    *override* when given, otherwise the environment's tier order
    (``REPRO_ANALYTIC`` > ``REPRO_BULK`` > per-event).  Callers that
    cannot honour a tier degrade one step: the scheduler and multicore
    system treat ``"analytic"`` as ``"bulk"``, because quantum
    boundaries are exactly the transients the analytic backend excludes.
    """
    if override is not None:
        if override not in ("analytic", "bulk", "event"):
            raise ValueError(f"unknown simulation backend {override!r}")
        return override
    if analytic_enabled():
        return "analytic"
    from repro.common.bulk import bulk_enabled

    return "bulk" if bulk_enabled() else "event"


# ---------------------------------------------------------------------------
# Trace windows: per-(trace, warm-up split) distinct-event histograms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceWindows:
    """First-seen-ordered distinct-event histograms of one trace split.

    ``warm`` and ``measured`` list ``(event, count)`` pairs grouped by
    event *value* in order of first occurrence within each window;
    concatenating ``count`` copies of each event is a permutation of the
    window that preserves per-value first-occurrence order.
    """

    total: int
    warmup: int
    warm: Tuple[Tuple[Any, int], ...]
    measured: Tuple[Tuple[Any, int], ...]
    #: Distinct event values over the whole trace.
    distinct: int
    #: Distinct values whose first occurrence falls in the measured
    #: window — the exactly-known cold-event count ``C``.
    distinct_new_measured: int

    def event_probabilities(self) -> List[float]:
        """Empirical stationary probabilities over the whole trace."""
        totals: Dict[Any, int] = {}
        for event, count in self.warm:
            totals[event] = totals.get(event, 0) + count
        for event, count in self.measured:
            totals[event] = totals.get(event, 0) + count
        n = float(self.total)
        return [count / n for count in totals.values()]


#: Identity-keyed memo (strong refs so ids cannot be recycled): the
#: suite evaluates each trace ~20 times under the same warm-up split.
_WINDOW_MEMO: Dict[Tuple[int, int], Tuple[Any, TraceWindows]] = {}
_WINDOW_MEMO_LIMIT = 32


def trace_windows(trace: Any, warmup: int) -> Optional[TraceWindows]:
    """Histogram *trace* around the *warmup* boundary, or ``None`` for
    streaming iterables (no length, not replayable)."""
    try:
        total = len(trace)
    except TypeError:
        return None
    runs = getattr(trace, "iter_runs", None)
    if runs is None:
        return None
    key = (id(trace), warmup)
    hit = _WINDOW_MEMO.get(key)
    if hit is not None and hit[0] is trace:
        return hit[1]
    warm: Dict[Any, int] = {}
    measured: Dict[Any, int] = {}
    position = 0
    for event, count in runs():
        if position < warmup:
            take = min(count, warmup - position)
            warm[event] = warm.get(event, 0) + take
            count -= take
            position += take
        if count:
            measured[event] = measured.get(event, 0) + count
            position += count
    new = sum(1 for event in measured if event not in warm)
    windows = TraceWindows(
        total=total,
        warmup=warmup,
        warm=tuple(warm.items()),
        measured=tuple(measured.items()),
        distinct=len(warm) + new,
        distinct_new_measured=new,
    )
    memo_insert(_WINDOW_MEMO, key, (trace, windows), _WINDOW_MEMO_LIMIT)
    return windows


# ---------------------------------------------------------------------------
# Plans and provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyticPlan:
    """How the analytic backend will drive one run."""

    mode: str  # "exact" | "sampled"
    warm_events: int = 0
    sample_events: int = 0
    #: Post-context-switch re-warm segment: the simulator fires one
    #: switch by hand, simulates ``transient_events`` of re-warm, and
    #: scales that segment by ``transient_repeats`` — the exactly-known
    #: number of quantum expiries inside the measured window.
    transient_events: int = 0
    transient_repeats: int = 0


#: Shared instance for the history-free regimes.
EXACT_PLAN = AnalyticPlan(mode="exact")


@dataclass(frozen=True)
class AnalyticInfo:
    """Provenance of an analytic run, attached to its RunResult."""

    mode: str  # "exact" | "sampled"
    #: Events actually driven through the regime.
    events_simulated: int
    #: Events the result accounts for (the full measured window).
    events_accounted: int
    #: ``events_accounted / events_simulated`` (1.0 when exact).
    scale: float
    #: Split-half relative deviation of the sampled mean check cost;
    #: ``None`` for exact runs (there is nothing to estimate).
    error_estimate: Optional[float] = None

    @property
    def derived(self) -> bool:
        """True when the result is extrapolated rather than exact."""
        return self.mode == "sampled"


def plan_sampled_window(
    windows: TraceWindows,
    min_events: int = HW_MIN_EVENTS,
    switch_period_events: Optional[float] = None,
) -> Optional[AnalyticPlan]:
    """Size a sampled-extrapolation plan for a history-dependent regime.

    The warm window is the trace's characteristic time for 90% working-
    set coverage (:func:`che_characteristic_time` over the empirical
    event probabilities), clamped to ``[HW_WARM_MIN, HW_WARM_CAP]`` and
    never longer than the real warm-up; the measured sample covers at
    least the distinct-event population within its own bounds.

    *switch_period_events* is the regime's context-switch period (quantum
    cycles over per-event work) when it has one.  Quantum expiries are
    deterministic in this model — the timer accumulates exactly
    ``work_cycles`` per event — so the number of expiries inside the
    measured window is known up front, and each one is modelled by a
    single simulated re-warm segment scaled by that count:

    >>> w = TraceWindows(total=12000, warmup=4800, warm=(("a", 4800),),
    ...                  measured=(("a", 7200),), distinct=1,
    ...                  distinct_new_measured=0)
    >>> plan = plan_sampled_window(w, switch_period_events=3800.0)
    >>> plan.transient_repeats      # floor(12000/3800) - floor(4800/3800)
    2
    >>> plan_sampled_window(w, switch_period_events=1500.0) is None
    True

    Returns ``None`` when sampling cannot pay for itself, the cold
    fraction makes extrapolation unreliable, or the simulated prefix
    cannot fit inside one quantum.
    """
    total, warmup = windows.total, windows.warmup
    if total < min_events or warmup <= 0:
        return None
    measured_total = total - warmup
    if measured_total <= 0:
        return None
    if windows.distinct_new_measured > HW_MAX_COLD_FRACTION * measured_total:
        return None
    target = max(1, math.ceil(0.9 * windows.distinct))
    if target < windows.distinct:
        coverage_time = che_characteristic_time(
            windows.event_probabilities(), target
        )
    else:
        coverage_time = float(windows.distinct)
    warm = int(min(warmup, HW_WARM_CAP, max(HW_WARM_MIN, math.ceil(coverage_time))))
    sample = int(
        min(measured_total, HW_SAMPLE_CAP, max(HW_SAMPLE_MIN, windows.distinct))
    )
    repeats = 0
    transient = 0
    if switch_period_events is not None and switch_period_events > 0:
        if warm + sample >= HW_PERIOD_HEADROOM * switch_period_events:
            # The quantum timer would fire mid-sample.  Shrink the warm
            # prefix to fit inside one quantum before giving up — a
            # shorter warm-up trades some steady-state fidelity for
            # keeping the workload on the sampled path at all.
            fitted = int(HW_PERIOD_HEADROOM * switch_period_events) - sample - 1
            if fitted < HW_WARM_MIN:
                return None
            warm = min(warm, fitted)
        repeats = int(total // switch_period_events) - int(
            warmup // switch_period_events
        )
        if repeats > 0:
            transient = int(min(warm, HW_TRANSIENT_CAP))
    steady_floor = (
        windows.distinct_new_measured + repeats * transient
        + HW_MIN_STEADY_FRACTION * measured_total
    )
    if steady_floor > measured_total:
        return None
    if warm + sample + transient >= HW_MAX_SIM_FRACTION * total:
        return None
    return AnalyticPlan(
        mode="sampled",
        warm_events=warm,
        sample_events=sample,
        transient_events=transient,
        transient_repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Exact integer scaling
# ---------------------------------------------------------------------------


def scale_counts(counts: Sequence[int], target: int) -> List[int]:
    """Scale non-negative *counts* so they sum exactly to *target*.

    Largest-remainder (Hamilton) rounding: each count gets the floor of
    its proportional share, and the leftover units go to the largest
    fractional remainders in order — deterministic, and the output sums
    to *target* exactly, which is what keeps the flow-count conservation
    audit intact on extrapolated runs.

    >>> scale_counts([2, 1, 1], 8)
    [4, 2, 2]
    >>> scale_counts([1, 1, 1], 10)
    [4, 3, 3]
    >>> sum(scale_counts([7, 3, 2, 1], 1000))
    1000
    >>> scale_counts([], 0)
    []
    """
    if target < 0:
        raise ValueError("target must be non-negative")
    source = sum(counts)
    if not counts or source == 0:
        if target:
            raise ValueError("cannot scale empty counts to a non-zero target")
        return [0 for _ in counts]
    floors: List[int] = []
    remainders: List[Tuple[float, int]] = []
    for index, count in enumerate(counts):
        if count < 0:
            raise ValueError("counts must be non-negative")
        share = count * target / source
        floor = int(share)
        floors.append(floor)
        remainders.append((share - floor, index))
    leftover = target - sum(floors)
    # Largest remainder first; ties broken by first-seen position.
    remainders.sort(key=lambda pair: (-pair[0], pair[1]))
    for _, index in remainders[:leftover]:
        floors[index] += 1
    return floors


def sanitize_structures(
    stats: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Numeric-scalar view of a regime's structure stats.

    Hit/miss/evict counters and the (deterministically rounded) derived
    rates are kept; timelines and any other non-scalar observability
    payloads are dropped so results stay cheap to compare and serialize.
    """
    sanitized: Dict[str, Dict[str, float]] = {}
    for name, counters in stats.items():
        if not isinstance(counters, Mapping):
            continue
        block: Dict[str, float] = {}
        for key, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            block[key] = value
        sanitized[name] = block
    return sanitized


# ---------------------------------------------------------------------------
# Structure-counter extrapolation (sampled runs)
# ---------------------------------------------------------------------------

#: Derived hit-rate keys recomputed from their extrapolated counters.
_RATE_RULES = {
    "hit_rate": ("hits", "misses"),
    "access_hit_rate": ("access_hits", "access_misses"),
    "preload_hit_rate": ("preload_hits", "preload_misses"),
}


def extrapolate_structures(
    warm: Mapping[str, Mapping[str, Any]],
    end: Mapping[str, Mapping[str, Any]],
    sample_events: int,
    extra_events: int,
) -> Dict[str, Dict[str, Any]]:
    """Project sampled structure counters onto the full trace.

    Each numeric counter is modelled as a cold transient (its value at
    the warm boundary) plus a steady per-event rate measured over the
    sample: ``full = warm + (end - warm) / sample * (sample + extra)``.
    Derived ``*hit_rate`` keys are recomputed from the projected
    counters; non-numeric payloads (timelines) are dropped — they are
    observability data that cannot be extrapolated honestly.
    """
    projected: Dict[str, Dict[str, Any]] = {}
    for name, counters in end.items():
        if not isinstance(counters, Mapping):
            continue
        base = warm.get(name, {})
        block: Dict[str, Any] = {}
        for key, value in counters.items():
            if key in _RATE_RULES:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            start = base.get(key, 0)
            if not isinstance(start, (int, float)) or isinstance(start, bool):
                start = 0
            steady = value - start
            full = start + steady + (
                steady * extra_events / sample_events if sample_events else 0
            )
            block[key] = int(round(full)) if isinstance(value, int) else full
        for rate, (hit_key, miss_key) in _RATE_RULES.items():
            if rate in counters and hit_key in block and miss_key in block:
                denom = block[hit_key] + block[miss_key]
                block[rate] = round(block[hit_key] / denom, 6) if denom else 0.0
        projected[name] = block
    return projected


# ---------------------------------------------------------------------------
# Hit-rate fixed points (the module doctstring states the formulas)
# ---------------------------------------------------------------------------


def che_characteristic_time(probs: Sequence[float], capacity: float) -> float:
    """Solve ``sum_i (1 - exp(-p_i * T)) = capacity`` for ``T``.

    Preconditions: every ``p_i > 0`` and ``0 < capacity < len(probs)``
    (a structure that fits the whole population has no finite
    characteristic time — callers handle that case as hit rate 1).

    >>> round(che_characteristic_time([0.5, 0.5], 1.0), 3)
    1.386
    >>> che_characteristic_time([0.25] * 4, 5)
    Traceback (most recent call last):
        ...
    ValueError: capacity must be within (0, len(probs))
    """
    if not probs or any(p <= 0 for p in probs):
        raise ValueError("probabilities must be positive")
    if not 0 < capacity < len(probs):
        raise ValueError("capacity must be within (0, len(probs))")

    def occupancy(t: float) -> float:
        return sum(1.0 - math.exp(-p * t) for p in probs)

    lo, hi = 0.0, 1.0
    while occupancy(hi) < capacity:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - numerically unreachable
            return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if occupancy(mid) < capacity:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def steady_hit_rate(probs: Sequence[float], capacity: float) -> float:
    """Steady-state hit rate of a capacity-*capacity* structure under
    the Che approximation: ``H = sum_i p_i * (1 - exp(-p_i * T))``.

    >>> steady_hit_rate([0.5, 0.5], 2)       # everything resident
    1.0
    >>> 0.49 < steady_hit_rate([0.5, 0.5], 1.0) < 0.51
    True
    """
    if not probs or any(p <= 0 for p in probs):
        raise ValueError("probabilities must be positive")
    if capacity >= len(probs):
        return 1.0
    if capacity <= 0:
        return 0.0
    t = che_characteristic_time(probs, capacity)
    return sum(p * (1.0 - math.exp(-p * t)) for p in probs)


def fixed_point(
    f: Callable[[float], float],
    x0: float,
    tol: float = 1e-9,
    max_iter: int = 256,
) -> Tuple[float, int]:
    """Iterate ``x = f(x)`` to convergence; returns ``(x, iterations)``.

    Precondition: ``f`` is a contraction near the fixed point (all the
    hit-rate and events-per-quantum maps used here are — their slopes
    are damped by the exponential forms above).  Raises ``ValueError``
    when *max_iter* iterations do not converge.

    >>> x, n = fixed_point(lambda x: 0.5 * x + 1.0, 0.0)
    >>> round(x, 6), n < 64
    (2.0, True)
    """
    x = float(x0)
    for iteration in range(1, max_iter + 1):
        x1 = f(x)
        if not math.isfinite(x1):
            raise ValueError("fixed-point iteration diverged")
        if abs(x1 - x) <= tol * max(1.0, abs(x1)):
            return x1, iteration
        x2 = f(x1)
        if not math.isfinite(x2):
            raise ValueError("fixed-point iteration diverged")
        if abs(x2 - x1) <= tol * max(1.0, abs(x2)):
            return x2, iteration
        # Aitken Δ² (Steffensen) acceleration: plain iteration needs
        # hundreds of steps when the slope nears 1 (tight quanta make
        # the events-per-quantum map almost affine); the accelerated
        # update is quadratic wherever the slope is below 1.  Fall back
        # to the plain step when the acceleration is degenerate or
        # leaves f's domain.
        nxt = x2
        denom = x2 - 2.0 * x1 + x
        if denom != 0.0:
            accel = x - (x1 - x) ** 2 / denom
            if math.isfinite(accel):
                fa = f(accel)
                if math.isfinite(fa):
                    if abs(fa - accel) <= tol * max(1.0, abs(fa)):
                        return fa, iteration
                    nxt = accel
        x = nxt
    raise ValueError(f"no fixed point within {max_iter} iterations")


def quantum_events_fixed_point(
    quantum_cycles: float,
    work_cycles: float,
    base_cycles: float,
    mean_check: Callable[[float], float],
) -> float:
    """Events per scheduler quantum: ``q = Q / (W + S + check(q))``.

    ``mean_check(q)`` models how warm ``q`` events leave the structures
    (e.g. via :func:`steady_hit_rate`); the composite map is a
    contraction because the check cost is bounded and monotone.

    >>> q = quantum_events_fixed_point(4e6, 250.0, 150.0, lambda q: 20.0)
    >>> round(q, 1)
    9523.8
    """
    if quantum_cycles <= 0:
        raise ValueError("quantum must be positive")
    q, _ = fixed_point(
        lambda q: quantum_cycles
        / max(work_cycles + base_cycles + mean_check(max(q, 0.0)), 1e-9),
        quantum_cycles / max(work_cycles + base_cycles, 1e-9),
    )
    return q
