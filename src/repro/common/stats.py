"""Small statistics helpers used by the analysis and experiment layers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; all values must be positive."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100])."""
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def histogram(values: Iterable[object]) -> Dict[object, int]:
    """Count occurrences of each distinct value."""
    counts: Dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return counts


def normalise(counts: Dict[object, int]) -> Dict[object, float]:
    """Convert a histogram into a probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("cannot normalise an empty histogram")
    return {key: count / total for key, count in counts.items()}


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio that treats 0/0 as 0.0 and raises on x/0 for x != 0."""
    if denominator == 0:
        if numerator == 0:
            return 0.0
        raise ZeroDivisionError("non-zero numerator over zero denominator")
    return numerator / denominator
