"""Hash substrate: CRC-64 generators and the 2-ary cuckoo table."""

from repro.hashing.crc import (
    CRC64_ECMA,
    CRC64_NOT_ECMA,
    ECMA_POLY,
    NOT_ECMA_POLY,
    Crc64,
    hash_pair,
)
from repro.hashing.cuckoo import (
    DEFAULT_MAX_KICKS,
    CuckooTable,
    LookupResult,
    Slot,
)

__all__ = [
    "CRC64_ECMA",
    "CRC64_NOT_ECMA",
    "ECMA_POLY",
    "NOT_ECMA_POLY",
    "Crc64",
    "hash_pair",
    "DEFAULT_MAX_KICKS",
    "CuckooTable",
    "LookupResult",
    "Slot",
]
