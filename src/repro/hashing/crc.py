"""CRC-64 hash generators.

Section VII-A of the paper: "For the hash functions, we use the ECMA
[63] and the ¬ECMA polynomials to compute the Cyclic Redundancy Check
(CRC) code of the system call argument set."  The hardware implements
these as LFSRs (Table III evaluates the RTL); here they are table-driven
and bit-exact, so the software VAT, the hardware SLB/STB, and the tests
all agree on hash values.
"""

from __future__ import annotations

from typing import List, Tuple

#: ECMA-182 CRC-64 polynomial (normal representation).
ECMA_POLY = 0x42F0E1EBA9EA3693

#: The bitwise complement of the ECMA polynomial, forced odd so it
#: remains a valid CRC generator (the paper's "¬ ECMA" polynomial).
NOT_ECMA_POLY = ~ECMA_POLY & 0xFFFFFFFFFFFFFFFF | 1

_U64 = 0xFFFFFFFFFFFFFFFF


def _build_table(poly: int) -> Tuple[int, ...]:
    table: List[int] = []
    for byte in range(256):
        crc = byte << 56
        for _ in range(8):
            if crc & (1 << 63):
                crc = ((crc << 1) ^ poly) & _U64
            else:
                crc = (crc << 1) & _U64
        table.append(crc)
    return tuple(table)


class Crc64:
    """A table-driven, MSB-first CRC-64 with a configurable polynomial."""

    def __init__(self, poly: int, init: int = _U64, xorout: int = _U64) -> None:
        if not 0 < poly <= _U64:
            raise ValueError("polynomial must be a non-zero 64-bit value")
        self.poly = poly
        self.init = init & _U64
        self.xorout = xorout & _U64
        self._table = _build_table(poly)

    def compute(self, data: bytes) -> int:
        crc = self.init
        for byte in data:
            crc = ((crc << 8) & _U64) ^ self._table[(crc >> 56) ^ byte]
        return crc ^ self.xorout

    def __call__(self, data: bytes) -> int:
        return self.compute(data)


#: H1 of Figure 5 — ECMA polynomial.
CRC64_ECMA = Crc64(ECMA_POLY)

#: H2 of Figure 5 — complemented-ECMA polynomial.
CRC64_NOT_ECMA = Crc64(NOT_ECMA_POLY)


def hash_pair(data: bytes) -> Tuple[int, int]:
    """The (H1, H2) hash values Draco derives from an argument-byte string."""
    return CRC64_ECMA(data), CRC64_NOT_ECMA(data)
