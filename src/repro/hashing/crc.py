"""CRC-64 hash generators.

Section VII-A of the paper: "For the hash functions, we use the ECMA
[63] and the ¬ECMA polynomials to compute the Cyclic Redundancy Check
(CRC) code of the system call argument set."  The hardware implements
these as LFSRs (Table III evaluates the RTL); here they are table-driven
and bit-exact, so the software VAT, the hardware SLB/STB, and the tests
all agree on hash values.
"""

from __future__ import annotations

from typing import List, Tuple

#: ECMA-182 CRC-64 polynomial (normal representation).
ECMA_POLY = 0x42F0E1EBA9EA3693

#: The bitwise complement of the ECMA polynomial, forced odd so it
#: remains a valid CRC generator (the paper's "¬ ECMA" polynomial).
NOT_ECMA_POLY = ~ECMA_POLY & 0xFFFFFFFFFFFFFFFF | 1

_U64 = 0xFFFFFFFFFFFFFFFF


def _build_table(poly: int) -> Tuple[int, ...]:
    table: List[int] = []
    for byte in range(256):
        crc = byte << 56
        for _ in range(8):
            if crc & (1 << 63):
                crc = ((crc << 1) ^ poly) & _U64
            else:
                crc = (crc << 1) & _U64
        table.append(crc)
    return tuple(table)


#: Entries kept per hash instance before the memo is dropped; the
#: simulator's key population is tiny, the cap only guards fuzz tests.
_MEMO_LIMIT = 1 << 16


class Crc64:
    """A table-driven, MSB-first CRC-64 with a configurable polynomial.

    Values are memoized per instance: the simulator hashes the same
    Selector-masked argument keys millions of times (every VAT probe
    hashes its key twice), and a CRC is a pure function of its input.
    """

    def __init__(self, poly: int, init: int = 0, xorout: int = 0) -> None:
        if not 0 < poly <= _U64:
            raise ValueError("polynomial must be a non-zero 64-bit value")
        self.poly = poly
        self.init = init & _U64
        self.xorout = xorout & _U64
        self._table = _build_table(poly)
        self._memo: dict = {}

    def compute(self, data: bytes) -> int:
        memo = self._memo
        cached = memo.get(data)
        if cached is not None:
            return cached
        crc = self.init
        table = self._table
        for byte in data:
            crc = ((crc << 8) & _U64) ^ table[(crc >> 56) ^ byte]
        crc ^= self.xorout
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        memo[data] = crc
        return crc

    def __call__(self, data: bytes) -> int:
        return self.compute(data)


#: H1 of Figure 5 — CRC-64/ECMA-182: init=0, xorout=0, so
#: ``CRC64_ECMA(b"123456789") == 0x6C40DF5F0B497347``.  (An earlier
#: revision used init/xorout of all-ones, which is CRC-64/WE, not the
#: ECMA-182 code the paper cites.)
CRC64_ECMA = Crc64(ECMA_POLY, init=0, xorout=0)

#: H2 of Figure 5 — complemented-ECMA polynomial, same ECMA-182 framing.
CRC64_NOT_ECMA = Crc64(NOT_ECMA_POLY, init=0, xorout=0)


def hash_pair(data: bytes) -> Tuple[int, int]:
    """The (H1, H2) hash values Draco derives from an argument-byte string."""
    return CRC64_ECMA(data), CRC64_NOT_ECMA(data)
