"""2-ary cuckoo hash table, the VAT's per-syscall structure.

Section V-B: "each VAT structure uses 2-ary cuckoo hashing ... it needs
to use two hash functions to perform two accesses to the target VAT
structure in parallel.  On a read, the resulting two entries are checked
for a match.  On an insertion, the cuckoo hashing algorithm is used to
find a spot."

Keys are byte strings (the Selector-masked argument bytes of Figure 5);
each occupied slot remembers which hash function placed it — the "Hash"
the SLB and STB cache (Sections VI-A/VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from repro.common.errors import ConfigError, CuckooInsertError
from repro.hashing.crc import CRC64_ECMA, CRC64_NOT_ECMA

V = TypeVar("V")

#: Relocation attempts before insertion is declared failed (Section VII-A
#: responds to failure by evicting an entry).
DEFAULT_MAX_KICKS = 32

HashFn = Callable[[bytes], int]


@dataclass
class Slot(Generic[V]):
    """One occupied table slot."""

    key: bytes
    value: V
    which_hash: int  # 0 -> H1 placed it, 1 -> H2 placed it

    @property
    def hash_id(self) -> int:
        return self.which_hash


@dataclass(frozen=True)
class LookupResult(Generic[V]):
    """Outcome of a read: the value plus which hash function matched."""

    value: V
    which_hash: int
    slot_index: int


class CuckooTable(Generic[V]):
    """A fixed-capacity 2-ary cuckoo hash table with one slot per bucket."""

    def __init__(
        self,
        num_slots: int,
        h1: HashFn = CRC64_ECMA,
        h2: HashFn = CRC64_NOT_ECMA,
        max_kicks: int = DEFAULT_MAX_KICKS,
    ) -> None:
        if num_slots < 2:
            raise ConfigError("a cuckoo table needs at least 2 slots")
        self._slots: List[Optional[Slot[V]]] = [None] * num_slots
        self._hashes: Tuple[HashFn, HashFn] = (h1, h2)
        self._max_kicks = max_kicks
        self._size = 0

    # -- geometry ----------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / len(self._slots)

    def index_for(self, key: bytes, which_hash: int) -> int:
        """Slot index the given hash function maps *key* to."""
        return self._hashes[which_hash](key) % len(self._slots)

    def candidate_indices(self, key: bytes) -> Tuple[int, int]:
        """The two probe locations for *key* (fetched in parallel in HW)."""
        return self.index_for(key, 0), self.index_for(key, 1)

    def slot_at(self, index: int) -> Optional[Slot[V]]:
        """Direct slot read — hardware preloads address a slot by hash
        value without knowing the key (Figure 9, step 4)."""
        if not 0 <= index < len(self._slots):
            raise ConfigError(f"slot index out of range: {index}")
        return self._slots[index]

    # -- operations ---------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[LookupResult[V]]:
        """Probe both candidate slots; return the match, if any."""
        for which in (0, 1):
            index = self.index_for(key, which)
            slot = self._slots[index]
            if slot is not None and slot.key == key:
                return LookupResult(value=slot.value, which_hash=which, slot_index=index)
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    def insert(self, key: bytes, value: V) -> int:
        """Insert (or update) *key*; returns the hash id that placed it.

        Raises :class:`CuckooInsertError` after ``max_kicks`` failed
        relocations; the caller (the OS VAT layer) then evicts a victim.
        """
        existing = self.lookup(key)
        if existing is not None:
            slot = self._slots[existing.slot_index]
            assert slot is not None
            slot.value = value
            return existing.which_hash

        carried = Slot(key=key, value=value, which_hash=0)
        for _ in range(self._max_kicks + 1):
            index = self.index_for(carried.key, carried.which_hash)
            resident = self._slots[index]
            if resident is None:
                self._slots[index] = carried
                self._size += 1
                final = self.lookup(key)
                assert final is not None
                return final.which_hash
            # Kick the resident to its alternate location.
            self._slots[index] = carried
            resident.which_hash ^= 1
            carried = resident
        # Relocation budget exhausted: the new key was placed on the
        # first kick, and the entry still being carried is dropped.
        # Occupancy is unchanged (one in, one out), so _size stands.
        raise CuckooInsertError(
            f"insertion of {key!r} dropped resident {carried.key!r} after "
            f"{self._max_kicks} kicks",
            dropped_key=carried.key,
        )

    def force_place(self, key: bytes, value: V) -> int:
        """Deterministically place *key* at its H1 slot, evicting any
        resident — the guaranteed-progress fallback for cuckoo cycles."""
        existing = self.lookup(key)
        if existing is not None:
            slot = self._slots[existing.slot_index]
            assert slot is not None
            slot.value = value
            return existing.which_hash
        index = self.index_for(key, 0)
        if self._slots[index] is None:
            self._size += 1
        self._slots[index] = Slot(key=key, value=value, which_hash=0)
        return 0

    def evict_any(self) -> Optional[bytes]:
        """Drop one occupied slot (lowest index); returns the evicted key."""
        for index, slot in enumerate(self._slots):
            if slot is not None:
                self._slots[index] = None
                self._size -= 1
                return slot.key
        return None

    def remove(self, key: bytes) -> bool:
        found = self.lookup(key)
        if found is None:
            return False
        self._slots[found.slot_index] = None
        self._size -= 1
        return True

    def items(self) -> List[Tuple[bytes, V]]:
        return [(slot.key, slot.value) for slot in self._slots if slot is not None]

    def clear(self) -> None:
        self._slots = [None] * len(self._slots)
        self._size = 0
