"""Documentation checker: dead links and kill-switch coverage.

Two classes of doc rot have bitten this repository before: relative
markdown links that outlive the file they point to, and ``REPRO_*``
environment switches documented in one table but not the canonical
matrix.  This tool scans the markdown set (``README.md``,
``EXPERIMENTS.md``, ``DESIGN.md``, ``docs/*.md``) and fails on either.

Checks:

1. **Dead links** — every relative ``[text](target)`` must resolve to
   an existing file (anchors are stripped; ``http(s):``/``mailto:``
   links and pure in-page anchors are skipped).
2. **Kill-switch coverage** — every ``REPRO_[A-Z_]+`` environment
   variable referenced under ``src/repro`` must appear in the
   ``docs/PERFORMANCE.md`` kill-switch matrix, and every switch the
   matrix documents must still exist in the source tree (no stale
   rows).

Usage::

    python -m repro.tools.docscheck            # check, non-zero exit on rot
    python -m repro.tools.docscheck --root DIR # check another checkout
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

#: Markdown files checked for dead links, relative to the repo root.
DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "DESIGN.md", "docs/*.md")

#: The canonical kill-switch matrix every REPRO_* variable must be in.
MATRIX_DOC = "docs/PERFORMANCE.md"

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_SWITCH = re.compile(r"\bREPRO_[A-Z][A-Z_]*\b")
_SKIP_SCHEMES = ("http://", "https://", "mailto:")


def _doc_files(root: Path) -> List[Path]:
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def check_links(root: Path) -> List[str]:
    """Broken relative links, as ``file: target`` strings."""
    problems: List[str] = []
    for doc in _doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(f"{doc.relative_to(root)}: dead link -> {target}")
    return problems


def _switches_in(paths: Iterable[Path]) -> Set[str]:
    found: Set[str] = set()
    for path in paths:
        try:
            found.update(_SWITCH.findall(path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue
    return found


def check_switches(root: Path) -> Tuple[List[str], Set[str], Set[str]]:
    """(problems, switches in source, switches in the matrix doc)."""
    source_switches = _switches_in((root / "src" / "repro").rglob("*.py"))
    matrix_path = root / MATRIX_DOC
    if not matrix_path.exists():
        return ([f"{MATRIX_DOC} is missing"], source_switches, set())
    matrix_switches = _switches_in([matrix_path])
    problems = [
        f"{MATRIX_DOC}: missing switch {name}"
        for name in sorted(source_switches - matrix_switches)
    ]
    problems += [
        f"{MATRIX_DOC}: stale switch {name} (not in src/repro)"
        for name in sorted(matrix_switches - source_switches)
    ]
    return (problems, source_switches, matrix_switches)


def run_checks(root: Path) -> List[str]:
    problems = check_links(root)
    switch_problems, _, _ = check_switches(root)
    return problems + switch_problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[3],
        help="repository root (default: this checkout)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    docs = _doc_files(root)
    problems = run_checks(root)
    _, source_switches, matrix_switches = check_switches(root)
    print(
        f"docscheck: {len(docs)} docs, "
        f"{len(source_switches)} REPRO_* switches in source, "
        f"{len(matrix_switches & source_switches)} documented in {MATRIX_DOC}"
    )
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print("ok: no dead links, kill-switch matrix complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
