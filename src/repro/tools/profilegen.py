"""``profilegen`` — strace logs in, deployable Seccomp profiles out.

The end-to-end version of the paper's Section X-B toolkit::

    strace -f -o app.strace ./my-app ...
    python -m repro.tools.profilegen app.strace -o profile.json
    docker run --security-opt seccomp=profile.json my-app

Modes:

* ``--mode complete`` (default) — whitelist the exact (syscall,
  argument set) combinations observed: the paper's most secure
  ``syscall-complete`` profile;
* ``--mode noargs`` — whitelist syscall IDs only (``syscall-noargs``);
* ``--stats`` — additionally print the Figure 15-style attack-surface
  metrics of the generated profile.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.security import analyze_profile
from repro.seccomp.json_io import profile_to_json
from repro.seccomp.toolkit import generate_complete, generate_noargs
from repro.tracing.strace import StraceParser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="profilegen",
        description="Generate a Seccomp profile from an strace log "
        "(Moby/Docker JSON format).",
    )
    parser.add_argument("log", type=Path, help="strace output file ('-' for stdin)")
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="profile JSON destination (default: stdout)",
    )
    parser.add_argument(
        "--mode", choices=("complete", "noargs"), default="complete",
        help="argument-aware (complete) or ID-only (noargs) whitelist",
    )
    parser.add_argument(
        "--name", default=None, help="profile name (default: log file stem)"
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print attack-surface metrics to stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if str(args.log) == "-":
        text = sys.stdin.read()
        name = args.name or "stdin"
    else:
        if not args.log.exists():
            print(f"profilegen: no such file: {args.log}", file=sys.stderr)
            return 2
        text = args.log.read_text()
        name = args.name or args.log.stem

    parser = StraceParser()
    trace = parser.parse(text)
    if len(trace) == 0:
        print("profilegen: no syscalls found in the log", file=sys.stderr)
        return 1

    if args.mode == "complete":
        profile = generate_complete(trace, name)
    else:
        profile = generate_noargs(trace, name)

    payload = profile_to_json(profile)
    if args.output is None:
        print(payload)
    else:
        args.output.write_text(payload + "\n")

    if args.stats:
        metrics = analyze_profile(profile)
        print(
            f"profilegen: {len(trace)} syscalls parsed, "
            f"{parser.skipped_lines} lines skipped, "
            f"{sum(parser.unknown_syscalls.values())} unknown-syscall records",
            file=sys.stderr,
        )
        print(
            f"profilegen: profile allows {metrics.num_syscalls} syscalls "
            f"({metrics.num_runtime_syscalls} runtime-required), checks "
            f"{metrics.num_argument_slots_checked} argument slots, whitelists "
            f"{metrics.num_argument_values_allowed} values",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
