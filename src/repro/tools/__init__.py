"""Command-line tools built on the library."""
