"""``profilediff`` — semantic diff between two Seccomp profile JSONs.

Application updates change syscall footprints; operators need to review
what a regenerated profile adds or removes before deploying it.  This
tool compares two Moby-format profiles at the level the sandbox
enforces: allowed syscalls, and whitelisted argument values per
(syscall, argument slot).

Usage::

    python -m repro.tools.profilediff old.json new.json
    # exit code 0: identical surface, 1: differences found, 2: usage error
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.seccomp.json_io import profile_from_json
from repro.seccomp.profile import SeccompProfile

ValueKey = Tuple[str, int, int, int]  # (syscall, arg index, value, mask)


def surface(profile: SeccompProfile) -> Tuple[FrozenSet[str], FrozenSet[ValueKey]]:
    """A profile's enforced surface: names, and (name, slot, value, mask)."""
    names = frozenset(profile.table.by_sid(sid).name for sid in profile.allowed_sids)
    values: Set[ValueKey] = set()
    for rule in profile.rules:
        name = profile.table.by_sid(rule.sid).name
        for arg_rule in rule.arg_rules:
            for cmp_ in arg_rule.comparisons:
                values.add((name, cmp_.arg_index, cmp_.value, cmp_.mask))
    return names, frozenset(values)


def diff_profiles(
    old: SeccompProfile, new: SeccompProfile
) -> Dict[str, Tuple]:
    """Structured diff: added/removed syscalls and argument values."""
    old_names, old_values = surface(old)
    new_names, new_values = surface(new)
    return {
        "added_syscalls": tuple(sorted(new_names - old_names)),
        "removed_syscalls": tuple(sorted(old_names - new_names)),
        "added_values": tuple(sorted(new_values - old_values)),
        "removed_values": tuple(sorted(old_values - new_values)),
    }


def _format_value(entry: ValueKey) -> str:
    name, index, value, mask = entry
    if mask != 0xFFFFFFFFFFFFFFFF:
        return f"{name}.arg{index} & {mask:#x} == {value:#x}"
    return f"{name}.arg{index} == {value:#x}"


def render(diff: Dict[str, Tuple]) -> str:
    lines = []
    for key, symbol in (
        ("added_syscalls", "+"),
        ("removed_syscalls", "-"),
    ):
        for name in diff[key]:
            lines.append(f"{symbol} syscall {name}")
    for key, symbol in (
        ("added_values", "+"),
        ("removed_values", "-"),
    ):
        for entry in diff[key]:
            lines.append(f"{symbol} value   {_format_value(entry)}")
    if not lines:
        lines.append("profiles enforce an identical surface")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="profilediff",
        description="Semantic diff between two Moby-format Seccomp profiles.",
    )
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    args = parser.parse_args(argv)

    for path in (args.old, args.new):
        if not path.exists():
            print(f"profilediff: no such file: {path}", file=sys.stderr)
            return 2

    old = profile_from_json(args.old.read_text(), name="old")
    new = profile_from_json(args.new.read_text(), name="new")
    diff = diff_profiles(old, new)
    print(render(diff))
    changed = any(diff[key] for key in diff)
    return 1 if changed else 0


if __name__ == "__main__":
    sys.exit(main())
