"""Figure-13-style flow breakdown of a run report, as JSON.

Reads a ``repro.run-report/1`` document (written by the experiment
engine next to its result cache), aggregates the per-regime flow ledger
across every experiment, derives the paper's Figure 13 hit-rate
decomposition from the hardware flow counts, and emits a single
machine-readable JSON document — the bench gate parses it to assert
that cycle accounting conserves.

Usage::

    python -m repro.tools.flowreport                 # <cache>/runs/latest.json
    python -m repro.tools.flowreport --report r.json --check
    python -m repro.tools.flowreport --output flows.json

Hit rates are exact functions of the Table I flow counts:

* ``stb_hit_rate``          = (f1+f2+f3+f4) / (f1+..+f6)
* ``slb_preload_hit_rate``  = (f1+f2) / (f1+f2+f3+f4)
* ``slb_access_hit_rate``   = (f1+f3+f5) / (f1+..+f6)

and the VAT/SPT/seccomp rates come from the aggregated structure
counters the simulator records alongside the flows.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.common import ledger
from repro.common.telemetry import RunReport
from repro.experiments import cache as result_cache

SCHEMA = "repro.flow-report/1"


def _rate(hits: float, total: float) -> Optional[float]:
    return round(hits / total, 6) if total else None


def hw_hit_rates(counts: Mapping[str, int]) -> Dict[str, Any]:
    """Figure 13 decomposition from the six Table I flow counts."""
    f = {key: counts.get(key, 0) for key in ledger.FLOW_KEYS}
    flows16 = sum(
        f[key]
        for key in (
            ledger.FLOW_HW_1,
            ledger.FLOW_HW_2,
            ledger.FLOW_HW_3,
            ledger.FLOW_HW_4,
            ledger.FLOW_HW_5,
            ledger.FLOW_HW_6,
        )
    )
    stb_hits = (
        f[ledger.FLOW_HW_1]
        + f[ledger.FLOW_HW_2]
        + f[ledger.FLOW_HW_3]
        + f[ledger.FLOW_HW_4]
    )
    preload_hits = f[ledger.FLOW_HW_1] + f[ledger.FLOW_HW_2]
    access_hits = f[ledger.FLOW_HW_1] + f[ledger.FLOW_HW_3] + f[ledger.FLOW_HW_5]
    return {
        "argument_flows": flows16,
        "stb_hit_rate": _rate(stb_hits, flows16),
        "slb_preload_hit_rate": _rate(preload_hits, stb_hits),
        "slb_access_hit_rate": _rate(access_hits, flows16),
    }


def structure_hit_rates(per_structure: Mapping[str, Mapping[str, float]]) -> Dict[str, Any]:
    """Hit rates recomputed from the aggregated raw counters."""
    rates: Dict[str, Any] = {}
    for name in ("vat", "stb", "spt"):
        counters = per_structure.get(name)
        if counters:
            rates[f"{name}_hit_rate"] = _rate(
                counters.get("hits", 0),
                counters.get("hits", 0) + counters.get("misses", 0),
            )
    slb = per_structure.get("slb")
    if slb:
        rates["slb_access_hit_rate"] = _rate(
            slb.get("access_hits", 0),
            slb.get("access_hits", 0) + slb.get("access_misses", 0),
        )
        rates["slb_preload_hit_rate"] = _rate(
            slb.get("preload_hits", 0),
            slb.get("preload_hits", 0) + slb.get("preload_misses", 0),
        )
    seccomp = per_structure.get("seccomp")
    if seccomp:
        rates["seccomp_memo_hit_rate"] = _rate(
            seccomp.get("memo_hits", 0), seccomp.get("checks", 0)
        )
    return rates


def build_report(report: RunReport) -> Dict[str, Any]:
    """The flow-report JSON document for *report*."""
    flows = report.flows()
    structures = report.structures()
    regimes: Dict[str, Any] = {}
    for regime, block in flows.items():
        entry: Dict[str, Any] = {
            "events": block["events"],
            "check_cycles": round(block["check_cycles"], 3),
            "counts": dict(sorted(block["counts"].items())),
            "cycles": {k: round(v, 3) for k, v in sorted(block["cycles"].items())},
        }
        hw = hw_hit_rates(block["counts"])
        if hw["argument_flows"]:
            # Derived from measured-window flow counts (Figure 13).
            entry["hit_rates"] = hw
        per_structure = structures.get(regime)
        if per_structure:
            entry["structures"] = {
                name: dict(sorted(counters.items()))
                for name, counters in sorted(per_structure.items())
            }
            rates = structure_hit_rates(per_structure)
            if rates:
                # Raw-counter rates cover the whole run, warm-up
                # included, so they are kept apart from the
                # measured-window flow-derived rates above.
                entry["structure_hit_rates"] = rates
        regimes[regime] = entry
    problems = report.audit_flow_conservation()
    return {
        "schema": SCHEMA,
        "code_fingerprint": report.code_fingerprint,
        "experiments": len(report.records),
        "simulation": {
            # Batched-kernel telemetry: how much consecutive-identical
            # locality the RLE fast path had to work with.
            "events_simulated": report.events_simulated(),
            "runs_coalesced": report.runs_coalesced(),
            "mean_run_length": report.mean_run_length(),
        },
        "regimes": regimes,
        "conservation": {"ok": not problems, "problems": problems},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.flowreport",
        description="Emit a Figure-13-style per-regime flow breakdown as JSON.",
    )
    parser.add_argument(
        "--report", type=str, default=None,
        help="run report to read (default: <cache>/runs/latest.json)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="cache directory to look for runs/latest.json in",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="write the JSON here instead of stdout",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the conservation audit finds drift "
        "or the report carries no flow telemetry",
    )
    args = parser.parse_args(argv)
    if args.cache_dir:
        import os

        os.environ[result_cache.CACHE_DIR_ENV] = args.cache_dir
    path = (
        Path(args.report)
        if args.report
        else result_cache.cache_root() / "runs" / "latest.json"
    )
    if not path.exists():
        print(f"no run report at {path} — run some experiments first", file=sys.stderr)
        return 1
    document = build_report(RunReport.read(path))
    rendered = json.dumps(document, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    else:
        print(rendered)
    if args.check:
        if not document["regimes"]:
            print(
                "no flow telemetry in the report — was it produced with "
                "REPRO_LEDGER=0 or by a pre-ledger build?",
                file=sys.stderr,
            )
            return 1
        if not document["conservation"]["ok"]:
            for problem in document["conservation"]["problems"]:
                print(f"conservation drift: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
