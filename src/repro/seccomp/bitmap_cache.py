"""The Linux seccomp action-cache bitmap — the paper's upstream legacy.

Linux 5.11 added a per-filter bitmap (``SECCOMP_ARCH_NATIVE``) marking
syscall numbers whose filter result is *always allow*, regardless of
argument values; those syscalls skip filter execution.  The feature was
motivated by the same locality observation as Draco, but it caches only
argument-**independent** allows: any syscall whose verdict depends on
arguments still runs the full filter every time.

This module builds the bitmap exactly as the kernel does — by emulating
the filter per syscall number with unknown arguments
(:mod:`repro.bpf.abstract`) — and exposes it as a checking regime, so
the Draco-vs-bitmap comparison the paper implies can be measured:

* on ``syscall-noargs``-style profiles, the bitmap is as good as Draco;
* on ``syscall-complete`` profiles, the bitmap degenerates to plain
  Seccomp while Draco's VAT keeps caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.bpf.abstract import constant_action_for
from repro.common import analytic as analytic_backend
from repro.common.bulk import bulk_enabled
from repro.core.software import CheckOutcome
from repro.kernel.regimes import (
    CheckingRegime,
    _attach,
    _merge_segment,
    _shared_outcome_memo,
)
from repro.cpu.params import DEFAULT_SW_COSTS, SoftwareCostParams
from repro.seccomp.actions import SECCOMP_RET_ALLOW, action_of
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallEvent
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class BitmapStats:
    cacheable_syscalls: int
    checked_syscalls: int

    @property
    def coverage(self) -> float:
        total = self.cacheable_syscalls + self.checked_syscalls
        return self.cacheable_syscalls / total if total else 0.0


class SeccompActionCache:
    """Per-process allow-bitmap over syscall numbers (kernel 5.11+)."""

    def __init__(
        self,
        module: SeccompKernelModule,
        table: SyscallTable = LINUX_X86_64,
    ) -> None:
        self._allow_bitmap: Set[int] = set()
        self._considered = 0
        # The kernel prepares the cache at filter-attach time by running
        # the emulator for every native syscall number.
        for entry in table:
            self._considered += 1
            if self._always_allows(module, entry.sid):
                self._allow_bitmap.add(entry.sid)

    @staticmethod
    def _always_allows(module: SeccompKernelModule, sid: int) -> bool:
        for attached in module.filters:
            action = constant_action_for(attached.program, sid)
            if action is None or action_of(action) != SECCOMP_RET_ALLOW:
                return False
        return bool(module.filters)

    def hit(self, sid: int) -> bool:
        return sid in self._allow_bitmap

    @property
    def stats(self) -> BitmapStats:
        return BitmapStats(
            cacheable_syscalls=len(self._allow_bitmap),
            checked_syscalls=self._considered - len(self._allow_bitmap),
        )


class SeccompBitmapRegime(CheckingRegime):
    """Seccomp with the 5.11 action-cache bitmap in front of the filter."""

    #: Cost of a bitmap test at syscall entry (a bit test in hot kernel
    #: text — a handful of cycles).
    BITMAP_HIT_CYCLES = 15

    def __init__(
        self,
        profile: SeccompProfile,
        times: int = 1,
        compiler: str = "linear",
        use_jit: bool = True,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        name: Optional[str] = None,
    ) -> None:
        self.name = name or f"seccomp-bitmap:{profile.name}" + (
            "" if times == 1 else f"x{times}"
        )
        self.profile = profile
        self.costs = costs
        self.use_jit = use_jit
        self.module = _attach(profile, times, compiler)
        self.cache = SeccompActionCache(self.module, table=profile.table)
        self.bitmap_hits = 0
        self.filter_runs = 0
        self._hit_outcome = CheckOutcome(
            allowed=True, cycles=self.BITMAP_HIT_CYCLES, path="bitmap_hit"
        )
        #: Filter outcomes are pure functions of the masked argument
        #: bytes (same argument as SeccompRegime's memo), shared across
        #: instances with the same configuration.
        self._outcome_memo = _shared_outcome_memo(
            profile, times, compiler, use_jit, costs, kind="bitmap"
        )
        self._bulk = bulk_enabled()

    def check(self, event: SyscallEvent) -> CheckOutcome:
        if self.cache.hit(event.sid):
            self.bitmap_hits += 1
            return self._hit_outcome
        self.filter_runs += 1
        decision = self.module.check(event)
        per_insn = (
            self.costs.cycles_per_bpf_insn_jit
            if self.use_jit
            else self.costs.cycles_per_bpf_insn_interpreted
        )
        cycles = (
            self.BITMAP_HIT_CYCLES
            + self.costs.seccomp_fixed_cycles
            + decision.instructions_executed * per_insn
        )
        return CheckOutcome(
            allowed=decision.allowed,
            cycles=cycles,
            path="filter_run" if decision.allowed else "denied",
        )

    def check_run(
        self, event: SyscallEvent, count: int, work_cycles: float = 0.0
    ) -> List[Tuple[CheckOutcome, int]]:
        """The bitmap is static after attach and the filter decision is
        a pure function of the masked argument bytes, so a run collapses
        to one counter bump on the cached outcome."""
        if not self._bulk or count <= 1:
            return super().check_run(event, count, work_cycles)
        if self.cache.hit(event.sid):
            self.bitmap_hits += count
            return [(self._hit_outcome, count)]
        key = self.module.memo_key(event)
        if key is None:
            return super().check_run(event, count, work_cycles)
        segments: List[Tuple[CheckOutcome, int]] = []
        remaining = count
        if key not in self._outcome_memo:
            # Cold first check runs the filter and installs the memo.
            outcome = self.check(event)
            self._outcome_memo[key] = outcome
            _merge_segment(segments, outcome, 1)
            remaining -= 1
        cached = self._outcome_memo[key]
        self.filter_runs += remaining
        _merge_segment(segments, cached, remaining)
        return segments

    def analytic_plan(self, windows, work_cycles: float = 0.0):
        # The bitmap never changes after attach, decisions are pure
        # functions of the event value, and advance() is a no-op —
        # histogram replay is value-identical.
        return analytic_backend.EXACT_PLAN
