"""The Linux seccomp action-cache bitmap — the paper's upstream legacy.

Linux 5.11 added a per-filter bitmap (``SECCOMP_ARCH_NATIVE``) marking
syscall numbers whose filter result is *always allow*, regardless of
argument values; those syscalls skip filter execution.  The feature was
motivated by the same locality observation as Draco, but it caches only
argument-**independent** allows: any syscall whose verdict depends on
arguments still runs the full filter every time.

This module builds the bitmap exactly as the kernel does — by emulating
the filter per syscall number with unknown arguments
(:mod:`repro.bpf.abstract`) — and exposes it as a checking regime, so
the Draco-vs-bitmap comparison the paper implies can be measured:

* on ``syscall-noargs``-style profiles, the bitmap is as good as Draco;
* on ``syscall-complete`` profiles, the bitmap degenerates to plain
  Seccomp while Draco's VAT keeps caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.bpf.abstract import constant_action_for
from repro.core.software import CheckOutcome
from repro.cpu.params import DEFAULT_SW_COSTS, SoftwareCostParams
from repro.kernel.regimes import CheckingRegime, _attach
from repro.seccomp.actions import SECCOMP_RET_ALLOW, action_of
from repro.seccomp.engine import SeccompKernelModule
from repro.seccomp.profile import SeccompProfile
from repro.syscalls.events import SyscallEvent
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class BitmapStats:
    cacheable_syscalls: int
    checked_syscalls: int

    @property
    def coverage(self) -> float:
        total = self.cacheable_syscalls + self.checked_syscalls
        return self.cacheable_syscalls / total if total else 0.0


class SeccompActionCache:
    """Per-process allow-bitmap over syscall numbers (kernel 5.11+)."""

    def __init__(
        self,
        module: SeccompKernelModule,
        table: SyscallTable = LINUX_X86_64,
    ) -> None:
        self._allow_bitmap: Set[int] = set()
        self._considered = 0
        # The kernel prepares the cache at filter-attach time by running
        # the emulator for every native syscall number.
        for entry in table:
            self._considered += 1
            if self._always_allows(module, entry.sid):
                self._allow_bitmap.add(entry.sid)

    @staticmethod
    def _always_allows(module: SeccompKernelModule, sid: int) -> bool:
        for attached in module.filters:
            action = constant_action_for(attached.program, sid)
            if action is None or action_of(action) != SECCOMP_RET_ALLOW:
                return False
        return bool(module.filters)

    def hit(self, sid: int) -> bool:
        return sid in self._allow_bitmap

    @property
    def stats(self) -> BitmapStats:
        return BitmapStats(
            cacheable_syscalls=len(self._allow_bitmap),
            checked_syscalls=self._considered - len(self._allow_bitmap),
        )


class SeccompBitmapRegime(CheckingRegime):
    """Seccomp with the 5.11 action-cache bitmap in front of the filter."""

    #: Cost of a bitmap test at syscall entry (a bit test in hot kernel
    #: text — a handful of cycles).
    BITMAP_HIT_CYCLES = 15

    def __init__(
        self,
        profile: SeccompProfile,
        times: int = 1,
        compiler: str = "linear",
        use_jit: bool = True,
        costs: SoftwareCostParams = DEFAULT_SW_COSTS,
        name: Optional[str] = None,
    ) -> None:
        self.name = name or f"seccomp-bitmap:{profile.name}" + (
            "" if times == 1 else f"x{times}"
        )
        self.profile = profile
        self.costs = costs
        self.use_jit = use_jit
        self.module = _attach(profile, times, compiler)
        self.cache = SeccompActionCache(self.module, table=profile.table)
        self.bitmap_hits = 0
        self.filter_runs = 0

    def check(self, event: SyscallEvent) -> CheckOutcome:
        if self.cache.hit(event.sid):
            self.bitmap_hits += 1
            return CheckOutcome(
                allowed=True, cycles=self.BITMAP_HIT_CYCLES, path="bitmap_hit"
            )
        self.filter_runs += 1
        decision = self.module.check(event)
        per_insn = (
            self.costs.cycles_per_bpf_insn_jit
            if self.use_jit
            else self.costs.cycles_per_bpf_insn_interpreted
        )
        cycles = (
            self.BITMAP_HIT_CYCLES
            + self.costs.seccomp_fixed_cycles
            + decision.instructions_executed * per_insn
        )
        return CheckOutcome(
            allowed=decision.allowed,
            cycles=cycles,
            path="filter_run" if decision.allowed else "denied",
        )
