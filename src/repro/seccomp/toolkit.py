"""Application-specific profile generation toolkit.

Reproduces the paper's Section X-B toolkit: "(1) attaching strace onto a
running application to collect the system call traces, and (2)
generating the Seccomp profiles that only allow the system call IDs and
argument sets that appeared in the recorded traces."

Our strace equivalent records a :class:`SyscallTrace` from a workload
model; from a trace this module derives:

* ``syscall-noargs``  — whitelist of the exact SIDs observed;
* ``syscall-complete`` — whitelist of the exact (SID, argument set)
  combinations observed, with EQ comparisons over every checkable
  (non-pointer) argument;
* ``syscall-complete-2x`` — the complete profile attached twice in a
  row, modelling a near-future environment with twice the checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.common.errors import ProfileError
from repro.seccomp.profile import ArgCmp, ArgSetRule, CmpOp, SeccompProfile, SyscallRule
from repro.syscalls.events import SyscallTrace
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class ProfileBundle:
    """The three application-specific profiles for one workload.

    ``complete_2x`` reuses the ``complete`` profile; the doubling is an
    *attachment count*, consumed by the checking configuration.
    """

    noargs: SeccompProfile
    complete: SeccompProfile

    @property
    def complete_2x(self) -> SeccompProfile:
        return self.complete


def observed_argument_sets(
    trace: SyscallTrace, table: SyscallTable = LINUX_X86_64
) -> Dict[int, Set[Tuple[int, ...]]]:
    """Map each observed SID to its distinct checkable-argument tuples."""
    by_sid: Dict[int, Set[Tuple[int, ...]]] = {}
    for event in trace:
        sdef = table.by_sid(event.sid)
        checkable = tuple(event.args[i] for i in sdef.checkable_args)
        by_sid.setdefault(event.sid, set()).add(checkable)
    return by_sid


def generate_noargs(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> SeccompProfile:
    """ID-only whitelist of the syscalls observed in *trace*."""
    rules = [SyscallRule(sid=sid) for sid in trace.unique_sids()]
    return SeccompProfile(f"{name}:syscall-noargs", rules, table=table)


def generate_complete(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> SeccompProfile:
    """Whitelist of the exact (SID, argument set) pairs observed."""
    rules: List[SyscallRule] = []
    for sid, arg_sets in sorted(observed_argument_sets(trace, table).items()):
        sdef = table.by_sid(sid)
        checkable = sdef.checkable_args
        if not checkable:
            rules.append(SyscallRule(sid=sid))
            continue
        arg_rules = tuple(
            ArgSetRule(
                tuple(
                    ArgCmp(arg_index, value)
                    for arg_index, value in zip(checkable, values)
                )
            )
            for values in sorted(arg_sets)
        )
        rules.append(SyscallRule(sid=sid, arg_rules=arg_rules))
    return SeccompProfile(f"{name}:syscall-complete", rules, table=table)


def generate_bundle(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> ProfileBundle:
    """Produce all application-specific profiles for a recorded trace."""
    return ProfileBundle(
        noargs=generate_noargs(trace, name, table),
        complete=generate_complete(trace, name, table),
    )


# ---------------------------------------------------------------------------
# Context-cache serialisation
# ---------------------------------------------------------------------------
#
# Generated bundles are pure functions of the profiling trace, which
# makes them cacheable on disk (repro.experiments.cache).  The payload
# preserves rule order explicitly — rule order shapes the compiled
# filter's instruction counts, so a round-tripped bundle must compile
# to the same programs the generated one did.


def bundle_to_payload(bundle: ProfileBundle) -> Dict[str, Any]:
    """JSON-ready encoding of a *generated* bundle.

    ``noargs`` is the ordered sid list; ``complete`` is per-sid ordered
    argument-set rules as ``[arg_index, value]`` pairs.  Only EQ
    comparisons are representable — exactly what the generators emit; a
    hand-built bundle with masked rules is rejected loudly rather than
    silently flattened.
    """
    complete: List[Any] = []
    for rule in bundle.complete.rules:
        arg_rules = []
        for arg_rule in rule.arg_rules:
            for cmp_ in arg_rule.comparisons:
                if cmp_.op is not CmpOp.EQ:
                    raise ProfileError(
                        f"cannot serialise non-EQ comparison in "
                        f"{bundle.complete.name!r} (sid {rule.sid})"
                    )
            arg_rules.append(
                [[cmp_.arg_index, cmp_.value] for cmp_ in arg_rule.comparisons]
            )
        complete.append([rule.sid, arg_rules])
    return {
        "noargs": [rule.sid for rule in bundle.noargs.rules],
        "complete": complete,
    }


def bundle_from_payload(
    payload: Mapping[str, Any], name: str, table: SyscallTable = LINUX_X86_64
) -> Optional[ProfileBundle]:
    """Rebuild a bundle from :func:`bundle_to_payload` output.

    Returns ``None`` on *any* validation failure (unknown sids,
    malformed shapes, duplicate rules) — the caller falls back to
    regenerating from the profiling trace.
    """
    try:
        noargs_rules = [SyscallRule(sid=int(sid)) for sid in payload["noargs"]]
        complete_rules = []
        for sid, arg_rules in payload["complete"]:
            rules = tuple(
                ArgSetRule(
                    tuple(
                        ArgCmp(int(arg_index), int(value))
                        for arg_index, value in comparisons
                    )
                )
                for comparisons in arg_rules
            )
            complete_rules.append(SyscallRule(sid=int(sid), arg_rules=rules))
        return ProfileBundle(
            noargs=SeccompProfile(
                f"{name}:syscall-noargs", noargs_rules, table=table
            ),
            complete=SeccompProfile(
                f"{name}:syscall-complete", complete_rules, table=table
            ),
        )
    except (ProfileError, KeyError, TypeError, ValueError):
        return None
