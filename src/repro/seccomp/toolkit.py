"""Application-specific profile generation toolkit.

Reproduces the paper's Section X-B toolkit: "(1) attaching strace onto a
running application to collect the system call traces, and (2)
generating the Seccomp profiles that only allow the system call IDs and
argument sets that appeared in the recorded traces."

Our strace equivalent records a :class:`SyscallTrace` from a workload
model; from a trace this module derives:

* ``syscall-noargs``  — whitelist of the exact SIDs observed;
* ``syscall-complete`` — whitelist of the exact (SID, argument set)
  combinations observed, with EQ comparisons over every checkable
  (non-pointer) argument;
* ``syscall-complete-2x`` — the complete profile attached twice in a
  row, modelling a near-future environment with twice the checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.seccomp.profile import ArgCmp, ArgSetRule, SeccompProfile, SyscallRule
from repro.syscalls.events import SyscallTrace
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class ProfileBundle:
    """The three application-specific profiles for one workload.

    ``complete_2x`` reuses the ``complete`` profile; the doubling is an
    *attachment count*, consumed by the checking configuration.
    """

    noargs: SeccompProfile
    complete: SeccompProfile

    @property
    def complete_2x(self) -> SeccompProfile:
        return self.complete


def observed_argument_sets(
    trace: SyscallTrace, table: SyscallTable = LINUX_X86_64
) -> Dict[int, Set[Tuple[int, ...]]]:
    """Map each observed SID to its distinct checkable-argument tuples."""
    by_sid: Dict[int, Set[Tuple[int, ...]]] = {}
    for event in trace:
        sdef = table.by_sid(event.sid)
        checkable = tuple(event.args[i] for i in sdef.checkable_args)
        by_sid.setdefault(event.sid, set()).add(checkable)
    return by_sid


def generate_noargs(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> SeccompProfile:
    """ID-only whitelist of the syscalls observed in *trace*."""
    rules = [SyscallRule(sid=sid) for sid in trace.unique_sids()]
    return SeccompProfile(f"{name}:syscall-noargs", rules, table=table)


def generate_complete(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> SeccompProfile:
    """Whitelist of the exact (SID, argument set) pairs observed."""
    rules: List[SyscallRule] = []
    for sid, arg_sets in sorted(observed_argument_sets(trace, table).items()):
        sdef = table.by_sid(sid)
        checkable = sdef.checkable_args
        if not checkable:
            rules.append(SyscallRule(sid=sid))
            continue
        arg_rules = tuple(
            ArgSetRule(
                tuple(
                    ArgCmp(arg_index, value)
                    for arg_index, value in zip(checkable, values)
                )
            )
            for values in sorted(arg_sets)
        )
        rules.append(SyscallRule(sid=sid, arg_rules=arg_rules))
    return SeccompProfile(f"{name}:syscall-complete", rules, table=table)


def generate_bundle(
    trace: SyscallTrace, name: str, table: SyscallTable = LINUX_X86_64
) -> ProfileBundle:
    """Produce all application-specific profiles for a recorded trace."""
    return ProfileBundle(
        noargs=generate_noargs(trace, name, table),
        complete=generate_complete(trace, name, table),
    )
