"""Seccomp filter return actions, as defined by ``<linux/seccomp.h>``.

A filter returns a 32-bit value whose high half selects the action and
whose low half carries action-specific data (e.g. the errno for
``SECCOMP_RET_ERRNO``).  When multiple filters are attached, the kernel
keeps the *most restrictive* result, which is the lowest action value in
the precedence order below.
"""

from __future__ import annotations

from typing import Tuple

SECCOMP_RET_KILL_PROCESS = 0x80000000
SECCOMP_RET_KILL_THREAD = 0x00000000
SECCOMP_RET_TRAP = 0x00030000
SECCOMP_RET_ERRNO = 0x00050000
SECCOMP_RET_USER_NOTIF = 0x7FC00000
SECCOMP_RET_TRACE = 0x7FF00000
SECCOMP_RET_LOG = 0x7FFC0000
SECCOMP_RET_ALLOW = 0x7FFF0000

SECCOMP_RET_ACTION_FULL = 0xFFFF0000
SECCOMP_RET_DATA = 0x0000FFFF

#: Most-restrictive-first precedence (seccomp(2) man page).
ACTION_PRECEDENCE: Tuple[int, ...] = (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_TRAP,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_USER_NOTIF,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_LOG,
    SECCOMP_RET_ALLOW,
)

_ACTION_NAMES = {
    SECCOMP_RET_KILL_PROCESS: "SECCOMP_RET_KILL_PROCESS",
    SECCOMP_RET_KILL_THREAD: "SECCOMP_RET_KILL_THREAD",
    SECCOMP_RET_TRAP: "SECCOMP_RET_TRAP",
    SECCOMP_RET_ERRNO: "SECCOMP_RET_ERRNO",
    SECCOMP_RET_USER_NOTIF: "SECCOMP_RET_USER_NOTIF",
    SECCOMP_RET_TRACE: "SECCOMP_RET_TRACE",
    SECCOMP_RET_LOG: "SECCOMP_RET_LOG",
    SECCOMP_RET_ALLOW: "SECCOMP_RET_ALLOW",
}


def action_of(return_value: int) -> int:
    """Strip the data half, keeping only the action selector."""
    return return_value & SECCOMP_RET_ACTION_FULL


def data_of(return_value: int) -> int:
    """The action-specific data half (e.g. errno value)."""
    return return_value & SECCOMP_RET_DATA


def action_name(return_value: int) -> str:
    return _ACTION_NAMES.get(action_of(return_value), f"0x{action_of(return_value):08x}")


def is_allow(return_value: int) -> bool:
    return action_of(return_value) == SECCOMP_RET_ALLOW


def most_restrictive(a: int, b: int) -> int:
    """Combine two filter results the way the kernel stacks filters."""
    rank = {action: i for i, action in enumerate(ACTION_PRECEDENCE)}
    ra = rank.get(action_of(a), len(ACTION_PRECEDENCE))
    rb = rank.get(action_of(b), len(ACTION_PRECEDENCE))
    return a if ra <= rb else b


def errno_action(errno: int) -> int:
    """Build a ``SECCOMP_RET_ERRNO`` return value carrying *errno*."""
    if not 0 <= errno <= SECCOMP_RET_DATA:
        raise ValueError("errno must fit in 16 bits")
    return SECCOMP_RET_ERRNO | errno
