"""Seccomp substrate: actions, profiles, filter compilers, kernel engine."""

from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_LOG,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    action_name,
    action_of,
    errno_action,
    is_allow,
    most_restrictive,
)
from repro.seccomp.compiler import (
    COMPILERS,
    compile_binary_tree,
    compile_linear,
    compile_profile,
)
# NOTE: repro.seccomp.bitmap_cache sits above repro.core (it wraps a
# checking regime); import it directly to avoid a package cycle.
from repro.seccomp.engine import AttachedFilter, SeccompDecision, SeccompKernelModule
from repro.seccomp.json_io import (
    profile_from_dict,
    profile_from_json,
    profile_to_dict,
    profile_to_json,
)
from repro.seccomp.profile import (
    ArgCmp,
    ArgSetRule,
    CmpOp,
    SeccompProfile,
    SyscallRule,
)
from repro.seccomp.profiles import build_docker_default, build_firecracker, build_gvisor
from repro.seccomp.toolkit import (
    ProfileBundle,
    generate_bundle,
    generate_complete,
    generate_noargs,
    observed_argument_sets,
)

__all__ = [
    "SECCOMP_RET_ALLOW",
    "SECCOMP_RET_ERRNO",
    "SECCOMP_RET_KILL_PROCESS",
    "SECCOMP_RET_KILL_THREAD",
    "SECCOMP_RET_LOG",
    "SECCOMP_RET_TRACE",
    "SECCOMP_RET_TRAP",
    "action_name",
    "action_of",
    "errno_action",
    "is_allow",
    "most_restrictive",
    "COMPILERS",
    "compile_binary_tree",
    "compile_linear",
    "compile_profile",
    "AttachedFilter",
    "SeccompDecision",
    "SeccompKernelModule",
    "profile_from_dict",
    "profile_from_json",
    "profile_to_dict",
    "profile_to_json",
    "ArgCmp",
    "ArgSetRule",
    "CmpOp",
    "SeccompProfile",
    "SyscallRule",
    "build_docker_default",
    "build_firecracker",
    "build_gvisor",
    "ProfileBundle",
    "generate_bundle",
    "generate_complete",
    "generate_noargs",
    "observed_argument_sets",
]
