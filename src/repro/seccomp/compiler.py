"""Compile Seccomp profiles into classic BPF filter programs.

Two strategies are provided:

* :func:`compile_linear` — the conventional layout the paper measures: a
  sequential chain of ``if`` statements (Figure 1), so checking cost
  grows linearly with profile position.
* :func:`compile_binary_tree` — the libseccomp optimisation discussed in
  Section XII (Hromatka): binary search over sorted syscall IDs, so the
  dispatch cost is logarithmic.  Argument checks within a syscall body
  remain sequential in both strategies.

Both produce verified programs whose decisions match
:meth:`SeccompProfile.evaluate` exactly; a property test asserts this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bpf.assembler import ProgramBuilder
from repro.bpf.insn import Insn
from repro.bpf.seccomp_data import ARCH_OFFSET, NR_OFFSET, args_off, args_off_high
from repro.bpf.verifier import verify
from repro.common.errors import ProfileError
from repro.seccomp.actions import SECCOMP_RET_ALLOW, SECCOMP_RET_KILL_PROCESS
from repro.seccomp.profile import ArgSetRule, CmpOp, SeccompProfile, SyscallRule
from repro.syscalls.abi import AUDIT_ARCH_X86_64

U32 = 0xFFFFFFFF

#: Below this many syscalls, the tree compiler falls back to a jeq chain.
TREE_LEAF_SIZE = 4


def compile_linear(profile: SeccompProfile) -> Tuple[Insn, ...]:
    """Sequential whitelist filter, the Figure-1 layout."""
    builder = ProgramBuilder()
    _emit_arch_check(builder, profile)
    builder.ld_abs(NR_OFFSET)
    rules = profile.rules
    for index, rule in enumerate(rules):
        builder.jeq(rule.sid, 0, 1)
        builder.jmp(_body_label(index))
    builder.label("miss")
    builder.ret_k(profile.default_action)
    _emit_bodies(builder, rules, profile.default_action)
    program = builder.assemble()
    verify(program)
    return program


def compile_binary_tree(profile: SeccompProfile) -> Tuple[Insn, ...]:
    """Binary-search dispatch over sorted SIDs (libseccomp-style)."""
    builder = ProgramBuilder()
    _emit_arch_check(builder, profile)
    builder.ld_abs(NR_OFFSET)
    rules = profile.rules  # already sorted by sid
    counter = [0]

    def emit_node(lo: int, hi: int) -> None:
        if hi - lo <= TREE_LEAF_SIZE:
            for index in range(lo, hi):
                builder.jeq(rules[index].sid, 0, 1)
                builder.jmp(_body_label(index))
            builder.jmp("miss")
            return
        mid = (lo + hi) // 2
        pivot = rules[mid].sid
        right_label = f"tree_{counter[0]}"
        counter[0] += 1
        # A >= pivot  -> fall through to the long jump into the right half;
        # A <  pivot  -> skip it and continue into the left half inline.
        builder.jge(pivot, 0, 1)
        builder.jmp(right_label)
        emit_node(lo, mid)
        builder.label(right_label)
        emit_node(mid, hi)

    if rules:
        emit_node(0, len(rules))
    builder.label("miss")
    builder.ret_k(profile.default_action)
    _emit_bodies(builder, rules, profile.default_action)
    program = builder.assemble()
    verify(program)
    return program


#: Registry used by configuration layers ("linear" | "binary_tree").
COMPILERS: Dict[str, Callable[[SeccompProfile], Tuple[Insn, ...]]] = {
    "linear": compile_linear,
    "binary_tree": compile_binary_tree,
}


def compile_profile(profile: SeccompProfile, strategy: str = "linear") -> Tuple[Insn, ...]:
    try:
        compiler = COMPILERS[strategy]
    except KeyError:
        raise ProfileError(f"unknown compile strategy {strategy!r}") from None
    return compiler(profile)


def _estimate_rule_insns(rule: SyscallRule) -> int:
    """Upper bound on the instructions a rule contributes (dispatch + body)."""
    if not rule.arg_rules:
        return 3  # jeq + ja + ret
    body = 1  # trailing default return
    for arg_rule in rule.arg_rules:
        per_set = 1  # ret ALLOW
        for cmp_ in arg_rule.comparisons:
            per_set += 4 if cmp_.op is CmpOp.EQ else 6
        body += per_set
    return 2 + body


def compile_profile_chunked(
    profile: SeccompProfile,
    strategy: str = "linear",
    max_insns: int = 4096,
) -> Tuple[Tuple[Insn, ...], ...]:
    """Compile into one or more filters, each within ``BPF_MAXINSNS``.

    Large ``syscall-complete`` profiles (e.g. Elasticsearch's) do not fit
    in a single classic-BPF program, exactly as on real kernels; the
    standard remedy is to split the whitelist into several stacked
    filters, each *owning* a contiguous SID range: a filter returns ALLOW
    for syscalls outside its range (deferring to the owner) and applies
    the whitelist inside it.  The kernel combines stacked results with
    most-restrictive-wins, so exactly one filter decides each syscall.
    """
    rules = profile.rules
    if not rules:
        return (compile_profile(profile, strategy),)

    # Greedily pack rules into chunks under the instruction budget.
    budget = max_insns - 64  # headroom for arch check, guards, dispatch
    chunks: List[List[SyscallRule]] = [[]]
    used = 0
    for rule in rules:
        cost = _estimate_rule_insns(rule)
        if chunks[-1] and used + cost > budget:
            chunks.append([])
            used = 0
        chunks[-1].append(rule)
        used += cost

    if len(chunks) == 1:
        return (compile_profile(profile, strategy),)

    programs: List[Tuple[Insn, ...]] = []
    for index, chunk in enumerate(chunks):
        lo = chunk[0].sid if index > 0 else None
        hi = chunks[index + 1][0].sid if index + 1 < len(chunks) else None
        sub = SeccompProfile(
            f"{profile.name}[chunk{index}]",
            chunk,
            default_action=profile.default_action,
            table=profile.table,
        )
        programs.append(_compile_ranged(sub, strategy, lo, hi))
    return tuple(programs)


def _compile_ranged(
    profile: SeccompProfile, strategy: str, lo: Optional[int], hi: Optional[int]
) -> Tuple[Insn, ...]:
    """Compile *profile* with an owning SID range [lo, hi) guard that
    returns ALLOW (defers) outside the range."""
    inner = compile_profile(profile, strategy)
    # Prepend the range guard before the existing program.  The inner
    # program starts with its own arch check; the guard must come after a
    # fresh nr load, so emit: arch check, ld nr, guards, then splice the
    # inner program minus nothing (jump offsets inside `inner` are
    # relative, so we can only prepend).  Rebuild instead via builder.
    builder = ProgramBuilder()
    builder.ld_abs(ARCH_OFFSET)
    builder.jeq(AUDIT_ARCH_X86_64, 1, 0)
    builder.ret_k(SECCOMP_RET_KILL_PROCESS)
    builder.ld_abs(NR_OFFSET)
    if lo is not None:
        builder.jge(lo, 1, 0)
        builder.ret_k(SECCOMP_RET_ALLOW)  # below our range: defer
    if hi is not None:
        builder.jge(hi, 0, 1)
        builder.ret_k(SECCOMP_RET_ALLOW)  # at/above our range end: defer
    guard = builder.assemble()
    # The inner program is self-contained (forward jumps only), so the
    # guard prefix plus the whole inner program is a valid filter.
    program = guard + inner
    verify(program)
    return program


# ---------------------------------------------------------------------------


def _body_label(index: int) -> str:
    return f"body_{index}"


def _emit_arch_check(builder: ProgramBuilder, profile: SeccompProfile) -> None:
    builder.ld_abs(ARCH_OFFSET)
    builder.jeq(AUDIT_ARCH_X86_64, 1, 0)
    builder.ret_k(SECCOMP_RET_KILL_PROCESS)


def _emit_bodies(
    builder: ProgramBuilder, rules: Sequence[SyscallRule], default_action: int
) -> None:
    for index, rule in enumerate(rules):
        builder.label(_body_label(index))
        if not rule.arg_rules:
            builder.ret_k(SECCOMP_RET_ALLOW)
            continue
        for set_index, arg_rule in enumerate(rule.arg_rules):
            next_label = f"body_{index}_set_{set_index + 1}"
            _emit_arg_set(builder, arg_rule, fail_label=next_label)
            builder.ret_k(SECCOMP_RET_ALLOW)
            builder.label(next_label)
        builder.ret_k(default_action)


def _emit_arg_set(builder: ProgramBuilder, arg_rule: ArgSetRule, fail_label: str) -> None:
    """Emit the comparisons of one whitelisted argument set.

    cBPF is a 32-bit machine, so each 64-bit comparison is a pair of
    word loads and conditional jumps (this doubling is part of why the
    paper finds argument checking expensive).
    """
    for cmp_ in arg_rule.comparisons:
        low_off = args_off(cmp_.arg_index)
        high_off = args_off_high(cmp_.arg_index)
        value_lo = cmp_.value & U32
        value_hi = cmp_.value >> 32 & U32
        if cmp_.op is CmpOp.EQ:
            builder.ld_abs(low_off)
            builder.jeq(value_lo, 0, fail_label)
            builder.ld_abs(high_off)
            builder.jeq(value_hi, 0, fail_label)
        elif cmp_.op is CmpOp.MASKED_EQ:
            mask_lo = cmp_.mask & U32
            mask_hi = cmp_.mask >> 32 & U32
            builder.ld_abs(low_off)
            builder.and_k(mask_lo)
            builder.jeq(value_lo & mask_lo, 0, fail_label)
            builder.ld_abs(high_off)
            builder.and_k(mask_hi)
            builder.jeq(value_hi & mask_hi, 0, fail_label)
        else:  # pragma: no cover - CmpOp is closed
            raise ProfileError(f"unsupported comparison {cmp_.op}")
