"""AWS Firecracker microVM Seccomp profile.

Section II-C: "the profile for the AWS Firecracker microVMs contains 37
system calls and 8 argument checks."  Firecracker's VMM attaches a very
small whitelist (its ``default_syscalls/filters.rs``); this module
reconstructs a profile with the same shape.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.seccomp.profile import ArgCmp, ArgSetRule, SeccompProfile
from repro.syscalls.table import LINUX_X86_64, SyscallTable

#: The 37 syscalls the Firecracker VMM whitelist covers.
FIRECRACKER_ALLOWED: Tuple[str, ...] = (
    "read", "write", "open", "close", "stat", "fstat", "lseek", "mmap",
    "mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask",
    "rt_sigreturn", "ioctl", "readv", "writev", "pipe", "dup",
    "socket", "connect", "accept", "bind", "listen", "exit", "fcntl",
    "futex", "epoll_ctl", "exit_group", "epoll_pwait", "timerfd_create",
    "timerfd_settime", "openat", "eventfd2", "epoll_create1",
    "getrandom", "recvfrom",
)

#: 8 argument checks: KVM/TUN ioctls, fcntl F_SETFD, eventfd2/timerfd flags.
_ARG_PINS: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    ("ioctl", 1, (0xAE80, 0xAE41, 0x400454CA, 0x4020AEA5)),  # KVM_RUN etc.
    ("fcntl", 1, (2,)),  # F_SETFD
    ("eventfd2", 1, (0,)),
    ("timerfd_create", 0, (1,)),  # CLOCK_MONOTONIC
    ("socket", 0, (1,)),  # AF_UNIX only
)


def _build_arg_rules() -> Dict[str, Sequence[ArgSetRule]]:
    per_syscall: Dict[str, list] = {}
    for name, arg_index, values in _ARG_PINS:
        rules = per_syscall.setdefault(name, [])
        for value in values:
            rules.append(ArgSetRule((ArgCmp(arg_index, value),)))
    return per_syscall


def build_firecracker(table: SyscallTable = LINUX_X86_64) -> SeccompProfile:
    """Construct the Firecracker-style VMM profile."""
    return SeccompProfile.from_names(
        "firecracker",
        FIRECRACKER_ALLOWED,
        arg_rules=_build_arg_rules(),
        table=table,
    )
