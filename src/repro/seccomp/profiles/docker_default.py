"""Docker's default Seccomp profile (the paper's baseline profile).

Modeled on the Moby project's ``profiles/seccomp/default.json``: a broad
whitelist (everything in the ABI except a deny list of administrative
and historically dangerous syscalls) plus argument checks on
``personality`` and ``clone``.

The paper's kernel exposed 403 syscalls of which Docker allowed 358 and
checked 7 argument values; our transcribed table is slightly smaller, so
the absolute counts differ a little while the *structure* (ID whitelist
+ a handful of arg values) is identical.  Experiments report both.
"""

from __future__ import annotations

from typing import Tuple

from repro.seccomp.actions import errno_action
from repro.seccomp.profile import ArgCmp, ArgSetRule, CmpOp, SeccompProfile
from repro.syscalls.table import LINUX_X86_64, SyscallTable

EPERM = 1

#: Syscalls the Moby default profile does NOT whitelist (subset present
#: in our table).  Transcribed from profiles/seccomp/default.json.
DOCKER_DENIED: Tuple[str, ...] = (
    "_sysctl",
    "acct",
    "add_key",
    "afs_syscall",
    "bpf",
    "clock_adjtime",
    "clock_settime",
    "create_module",
    "delete_module",
    "finit_module",
    "fsconfig",
    "fsmount",
    "fsopen",
    "fspick",
    "get_kernel_syms",
    "get_mempolicy",
    "getpmsg",
    "init_module",
    "ioperm",
    "iopl",
    "kcmp",
    "kexec_file_load",
    "kexec_load",
    "keyctl",
    "lookup_dcookie",
    "mbind",
    "mount",
    "move_mount",
    "move_pages",
    "name_to_handle_at",
    "nfsservctl",
    "open_by_handle_at",
    "open_tree",
    "perf_event_open",
    "pivot_root",
    "process_vm_readv",
    "process_vm_writev",
    "ptrace",
    "putpmsg",
    "query_module",
    "quotactl",
    "reboot",
    "request_key",
    "security",
    "set_mempolicy",
    "setns",
    "settimeofday",
    "swapoff",
    "swapon",
    "sysfs",
    "tuxcall",
    "umount2",
    "unshare",
    "uselib",
    "userfaultfd",
    "ustat",
    "vhangup",
    "vserver",
)

#: personality(2) values Docker permits (PER_LINUX, UNAME26, PER_LINUX32,
#: PER_LINUX32|UNAME26, and the "query" value 0xffffffff).
DOCKER_PERSONALITY_VALUES: Tuple[int, ...] = (0x0, 0x0008, 0x20000, 0x20008, 0xFFFFFFFF)

#: clone(2): flags (arg 0) must not request new namespaces without
#: CAP_SYS_ADMIN — masked compare against the namespace flag bits.
DOCKER_CLONE_FLAGS_MASK = 0x7E020000


def build_docker_default(table: SyscallTable = LINUX_X86_64) -> SeccompProfile:
    """Construct the docker-default profile over *table*."""
    denied = set(DOCKER_DENIED)
    allowed = [d.name for d in table if d.name not in denied]
    arg_rules = {
        "personality": [
            ArgSetRule((ArgCmp(0, value),)) for value in DOCKER_PERSONALITY_VALUES
        ],
        "clone": [
            ArgSetRule(
                (ArgCmp(0, 0x0, op=CmpOp.MASKED_EQ, mask=DOCKER_CLONE_FLAGS_MASK),)
            )
        ],
    }
    return SeccompProfile.from_names(
        "docker-default",
        allowed,
        arg_rules=arg_rules,
        default_action=errno_action(EPERM),
        table=table,
    )
