"""Canned real-world Seccomp profiles (Section II-C of the paper)."""

from repro.seccomp.profiles.docker_default import (
    DOCKER_CLONE_FLAGS_MASK,
    DOCKER_DENIED,
    DOCKER_PERSONALITY_VALUES,
    build_docker_default,
)
from repro.seccomp.profiles.firecracker import FIRECRACKER_ALLOWED, build_firecracker
from repro.seccomp.profiles.gvisor import GVISOR_ALLOWED, build_gvisor

__all__ = [
    "DOCKER_CLONE_FLAGS_MASK",
    "DOCKER_DENIED",
    "DOCKER_PERSONALITY_VALUES",
    "build_docker_default",
    "FIRECRACKER_ALLOWED",
    "build_firecracker",
    "GVISOR_ALLOWED",
    "build_gvisor",
]
