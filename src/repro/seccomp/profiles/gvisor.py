"""gVisor Sentry-style Seccomp profile.

Section II-C: "the default gVisor profile ... is a whitelist of 74
system calls and 130 argument checks."  gVisor's Sentry runs with a
tight profile (``runsc/boot/filter/config.go``) that whitelists the
small syscall surface the Go runtime and the Sentry need, and pins many
of them to exact argument values (fcntl commands, ioctl requests, socket
options, mmap protections, ...).

This module reconstructs a profile with the same shape: 74 syscalls and
130 argument comparisons distributed over the control-plane syscalls.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.seccomp.profile import ArgCmp, ArgSetRule, SeccompProfile
from repro.syscalls.table import LINUX_X86_64, SyscallTable

#: The 74 syscalls the Sentry whitelist covers (modeled after config.go).
GVISOR_ALLOWED: Tuple[str, ...] = (
    "read", "write", "close", "fstat", "lseek", "mmap", "mprotect", "munmap",
    "brk", "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "ioctl",
    "pread64", "pwrite64", "readv", "writev", "mincore", "madvise", "dup",
    "nanosleep", "getpid", "socket", "connect", "accept", "sendmsg",
    "recvmsg", "shutdown", "bind", "listen", "getsockname", "getpeername",
    "socketpair", "setsockopt", "getsockopt", "clone", "exit", "fcntl",
    "fsync", "fdatasync", "ftruncate", "getcwd", "sigaltstack", "gettid",
    "futex", "sched_yield", "epoll_create", "getdents64", "restart_syscall",
    "fadvise64", "clock_gettime", "exit_group", "epoll_wait", "epoll_ctl",
    "tgkill", "openat", "newfstatat", "unlinkat", "ppoll", "sync_file_range",
    "utimensat", "epoll_pwait", "eventfd2", "epoll_create1", "dup3", "pipe2",
    "preadv", "pwritev", "sendmmsg", "getrandom", "memfd_create", "membarrier",
    "rseq", "tee",
)

# Exact-value pins modeled on gVisor's filter: (syscall, arg index, values).
_ARG_PINS: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    # fcntl: F_GETFL, F_SETFL, F_GETFD, F_SETFD, F_DUPFD_CLOEXEC, F_GETLK
    ("fcntl", 1, (3, 4, 1, 2, 1030, 5)),
    # ioctl: FIONREAD, FIONBIO, TCGETS, TIOCGWINSZ, TIOCSPTLCK, FIOASYNC
    ("ioctl", 1, (0x541B, 0x5421, 0x5401, 0x5413, 0x40045431, 0x5452)),
    # socket: AF_UNIX, AF_INET, AF_INET6, AF_NETLINK / types below
    ("socket", 0, (1, 2, 10, 16)),
    ("socket", 1, (1, 2, 5, 0x80001, 0x80002)),
    # setsockopt levels and options
    ("setsockopt", 1, (1, 6, 0)),
    ("setsockopt", 2, (2, 3, 9, 13, 20)),
    ("getsockopt", 1, (1, 6)),
    ("getsockopt", 2, (3, 4, 7, 21)),
    # mmap prot and flags combinations the Go runtime issues
    ("mmap", 2, (0, 1, 3, 5)),
    ("mmap", 3, (0x22, 0x32, 0x2, 0x812, 0x1002)),
    # madvise advice values
    ("madvise", 2, (4, 8, 9, 12, 14)),
    # futex ops (private wait/wake/requeue variants)
    ("futex", 1, (0, 1, 9, 10, 128, 129, 137)),
    # clone flags the Go runtime uses for new threads
    ("clone", 0, (0x3D0F00, 0x50F00)),
    # epoll_ctl ops
    ("epoll_ctl", 1, (1, 2, 3)),
    # shutdown how
    ("shutdown", 1, (0, 1, 2)),
    # membarrier commands
    ("membarrier", 0, (0, 1, 8, 16)),
    # tgkill: only SIGABRT-class signals to self-group (values modeled)
    ("tgkill", 2, (6, 11)),
    # sync_file_range flags
    ("sync_file_range", 3, (2, 7)),
    # eventfd2 flags
    ("eventfd2", 1, (0, 0x80000, 0x80800)),
    # fadvise64 advice
    ("fadvise64", 3, (0, 3, 4)),
    # madvise-like prctl-ish pins on dup3 flags
    ("dup3", 2, (0, 0x80000)),
    # getrandom flags
    ("getrandom", 2, (0, 1)),
    # socketpair domain/type
    ("socketpair", 0, (1,)),
    ("socketpair", 1, (1, 0x80001)),
    # preadv/pwritev flags-free, pin iovcnt=1 fast path plus 8
    ("sendmmsg", 3, (0x4000, 0x4040)),
    # epoll_create size (legacy, must be positive; gVisor pins 1)
    ("epoll_create", 0, (1,)),
    # clock_gettime clock ids
    ("clock_gettime", 0, (0, 1, 4, 6, 7)),
    # rseq flags
    ("rseq", 2, (0,)),
    # memfd_create flags
    ("memfd_create", 1, (0, 1, 3)),
    # ppoll: no pins; ftruncate length 0 guard used by shm
    ("ftruncate", 1, (0,)),
    # madvise fd guard-page protections via mprotect prot values
    ("mprotect", 2, (0, 1, 3, 5)),
)


def _build_arg_rules() -> Dict[str, Sequence[ArgSetRule]]:
    per_syscall: Dict[str, List[List[ArgCmp]]] = {}
    for name, arg_index, values in _ARG_PINS:
        rules = per_syscall.setdefault(name, [])
        for value in values:
            rules.append([ArgCmp(arg_index, value)])
    return {
        name: [ArgSetRule(tuple(cmps)) for cmps in rule_lists]
        for name, rule_lists in per_syscall.items()
    }


def build_gvisor(table: SyscallTable = LINUX_X86_64) -> SeccompProfile:
    """Construct the gVisor-style Sentry profile."""
    return SeccompProfile.from_names(
        "gvisor",
        GVISOR_ALLOWED,
        arg_rules=_build_arg_rules(),
        table=table,
    )
