"""The in-kernel Seccomp checking engine.

Models the kernel side of Seccomp: filters are verified when attached
(``seccomp(2)`` semantics: once attached they cannot be removed, and
every syscall runs *all* attached filters, keeping the most restrictive
result).  The engine also accounts for executed BPF instructions, which
the OS cost model converts into cycles.

The paper's ``syscall-complete-2x`` configuration — "running the
syscall-complete profile twice in a row" (Section IV-A) — is expressed
here by attaching the same program twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bpf.insn import Insn
from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import SeccompData
from repro.bpf.verifier import verify
from repro.common.errors import SimulationError
from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    action_of,
    is_allow,
    most_restrictive,
)
from repro.syscalls.events import SyscallEvent


@dataclass(frozen=True)
class SeccompDecision:
    """Result of running the attached filters on one syscall."""

    return_value: int
    instructions_executed: int
    filters_run: int

    @property
    def action(self) -> int:
        return action_of(self.return_value)

    @property
    def allowed(self) -> bool:
        return is_allow(self.return_value)


@dataclass(frozen=True)
class AttachedFilter:
    name: str
    program: Tuple[Insn, ...]


class SeccompKernelModule:
    """Per-process stack of attached seccomp filters."""

    def __init__(self, memoize: bool = True) -> None:
        self._filters: List[AttachedFilter] = []
        # Filters are pure functions of (sid, args) over immutable
        # programs, so decisions can be memoised; this is a simulation
        # speed-up with identical semantics (the same statelessness
        # property Draco's caching relies on, Section V).
        self._memoize = memoize
        self._memo: Dict[Tuple[int, Tuple[int, ...]], SeccompDecision] = {}

    @property
    def filters(self) -> Tuple[AttachedFilter, ...]:
        return tuple(self._filters)

    @property
    def enabled(self) -> bool:
        return bool(self._filters)

    @property
    def total_instructions(self) -> int:
        """Static size of all attached programs."""
        return sum(len(f.program) for f in self._filters)

    def attach(self, program: Sequence[Insn], name: str = "") -> None:
        """Verify and attach a filter; attached filters are permanent."""
        program = tuple(program)
        verify(program)
        self._filters.append(AttachedFilter(name=name, program=program))
        self._memo.clear()

    def check(self, event: SyscallEvent) -> SeccompDecision:
        """Run every attached filter on *event*, kernel-style."""
        if not self._filters:
            return SeccompDecision(
                return_value=SECCOMP_RET_ALLOW, instructions_executed=0, filters_run=0
            )
        memo_key = (event.sid, event.args)
        if self._memoize:
            cached = self._memo.get(memo_key)
            if cached is not None:
                return cached
        data = SeccompData.from_event(event)
        combined: Optional[int] = None
        executed = 0
        for attached in self._filters:
            result = run(attached.program, data)
            executed += result.instructions_executed
            combined = (
                result.return_value
                if combined is None
                else most_restrictive(combined, result.return_value)
            )
        if combined is None:  # pragma: no cover - guarded by the early return
            raise SimulationError("no filter produced a result")
        decision = SeccompDecision(
            return_value=combined,
            instructions_executed=executed,
            filters_run=len(self._filters),
        )
        if self._memoize:
            self._memo[memo_key] = decision
        return decision
