"""The in-kernel Seccomp checking engine.

Models the kernel side of Seccomp: filters are verified when attached
(``seccomp(2)`` semantics: once attached they cannot be removed, and
every syscall runs *all* attached filters, keeping the most restrictive
result).  The engine also accounts for executed BPF instructions, which
the OS cost model converts into cycles.

Two simulation fast paths ride on the statelessness property Draco's
caching relies on (Section V):

* attached programs are **compiled once** into specialized closures
  (:mod:`repro.bpf.compile`), so repeated executions skip instruction
  decode and ``seccomp_data`` packing;
* decisions are **memoized** keyed by the SID plus the masked argument
  bytes the attached filters can actually observe (the union of their
  statically-derived ``seccomp_data`` reads — the simulator analogue of
  the paper's VAT keyed on Selector-masked bytes).  Events that agree on
  every observable word are guaranteed the same decision, so keying on
  the mask is exact; in particular a filter that inspects the
  instruction pointer or architecture words gets those folded into the
  key rather than silently aliased (the old ``(sid, args)`` key ignored
  them).

The paper's ``syscall-complete-2x`` configuration — "running the
syscall-complete profile twice in a row" (Section IV-A) — is expressed
here by attaching the same program twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bpf.compile import (
    CompiledFilter,
    build_key_fn,
    compile_program,
    event_words,
    fastpath_enabled,
    read_word_indices,
)
from repro.bpf.insn import Insn
from repro.bpf.interpreter import run
from repro.bpf.seccomp_data import SeccompData
from repro.bpf.verifier import verify
from repro.common.errors import SimulationError
from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    action_of,
    is_allow,
    most_restrictive,
)
from repro.syscalls.events import SyscallEvent


@dataclass(frozen=True)
class SeccompDecision:
    """Result of running the attached filters on one syscall."""

    return_value: int
    instructions_executed: int
    filters_run: int

    @property
    def action(self) -> int:
        return action_of(self.return_value)

    @property
    def allowed(self) -> bool:
        return is_allow(self.return_value)


@dataclass(frozen=True)
class AttachedFilter:
    name: str
    program: Tuple[Insn, ...]
    compiled: Optional[CompiledFilter] = None


class SeccompKernelModule:
    """Per-process stack of attached seccomp filters."""

    def __init__(
        self, memoize: bool = True, compile_filters: Optional[bool] = None
    ) -> None:
        self._filters: List[AttachedFilter] = []
        self._memoize = memoize
        self._compile = fastpath_enabled() if compile_filters is None else compile_filters
        self._memo: Dict[Any, SeccompDecision] = {}
        self._key_fn: Optional[Callable[[SyscallEvent], Any]] = None
        #: Execution accounting (ledger observability layer): how often
        #: the filter stack was consulted, how often the decision memo
        #: short-circuited it, and how many BPF instructions actually
        #: ran (memo hits model instruction cost without executing).
        self.checks = 0
        self.memo_hits = 0
        self.instructions_executed = 0

    @property
    def filters(self) -> Tuple[AttachedFilter, ...]:
        return tuple(self._filters)

    @property
    def enabled(self) -> bool:
        return bool(self._filters)

    @property
    def compiles_filters(self) -> bool:
        return self._compile

    @property
    def total_instructions(self) -> int:
        """Static size of all attached programs."""
        return sum(len(f.program) for f in self._filters)

    def attach(self, program: Sequence[Insn], name: str = "") -> None:
        """Verify and attach a filter; attached filters are permanent."""
        program = tuple(program)
        if self._compile:
            compiled: Optional[CompiledFilter] = compile_program(program)
        else:
            verify(program)
            compiled = None
        self._filters.append(
            AttachedFilter(name=name, program=program, compiled=compiled)
        )
        # A new filter may observe words earlier ones did not: rebuild
        # the memo key over the union and drop now-stale decisions.
        observed = frozenset().union(
            *(read_word_indices(f.program) for f in self._filters)
        )
        self._key_fn = build_key_fn(observed)
        self._memo.clear()

    def memo_key(self, event: SyscallEvent) -> Optional[Any]:
        """The masked-argument-bytes memo key for *event* (None when
        memoization is off or nothing is attached).  Regimes reuse this
        key to memoize their own per-decision outcomes."""
        if not self._memoize or self._key_fn is None:
            return None
        return self._key_fn(event)

    def execution_stats(self) -> Dict[str, int]:
        """Filter-execution counters for the run ledger."""
        return {
            "checks": self.checks,
            "memo_hits": self.memo_hits,
            "instructions_executed": self.instructions_executed,
        }

    def check(self, event: SyscallEvent) -> SeccompDecision:
        """Run every attached filter on *event*, kernel-style."""
        filters = self._filters
        self.checks += 1
        if not filters:
            return SeccompDecision(
                return_value=SECCOMP_RET_ALLOW, instructions_executed=0, filters_run=0
            )
        memo_key = self._key_fn(event) if self._memoize else None
        if memo_key is not None:
            cached = self._memo.get(memo_key)
            if cached is not None:
                self.memo_hits += 1
                return cached
        combined: Optional[int] = None
        executed = 0
        if self._compile:
            words = event_words(event)
            for attached in filters:
                result = attached.compiled.run_words(words)
                executed += result.instructions_executed
                combined = (
                    result.return_value
                    if combined is None
                    else most_restrictive(combined, result.return_value)
                )
        else:
            data = SeccompData.from_event(event)
            for attached in filters:
                result = run(attached.program, data)
                executed += result.instructions_executed
                combined = (
                    result.return_value
                    if combined is None
                    else most_restrictive(combined, result.return_value)
                )
        if combined is None:  # pragma: no cover - guarded by the early return
            raise SimulationError("no filter produced a result")
        self.instructions_executed += executed
        decision = SeccompDecision(
            return_value=combined,
            instructions_executed=executed,
            filters_run=len(filters),
        )
        if memo_key is not None:
            self._memo[memo_key] = decision
        return decision
