"""Seccomp profile model.

A profile is a whitelist: a default action plus per-syscall rules.  A
syscall rule either allows any argument values (ID-only check, as in
``docker-default`` for most syscalls) or carries a list of *argument set
rules*; each argument set rule is a conjunction of comparisons that must
all hold for the syscall to be allowed.

Two comparison operators are supported, matching what real-world
profiles use (Section II-B: "most real-world profiles simply check
system call IDs and argument values based on a whitelist of exact IDs
and values"):

* ``EQ`` — the argument equals a 64-bit constant;
* ``MASKED_EQ`` — ``arg & mask == value`` (Docker's ``clone`` rule).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ProfileError
from repro.seccomp.actions import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
    action_of,
)
from repro.syscalls.events import SyscallEvent
from repro.syscalls.table import LINUX_X86_64, SyscallTable

U64_MASK = 0xFFFFFFFFFFFFFFFF


class CmpOp(enum.Enum):
    """Argument comparison operator (subset of ``scmp_compare``)."""

    EQ = "eq"
    MASKED_EQ = "masked_eq"


@dataclass(frozen=True)
class ArgCmp:
    """One comparison against one argument slot."""

    arg_index: int
    value: int
    op: CmpOp = CmpOp.EQ
    mask: int = U64_MASK

    def __post_init__(self) -> None:
        if not 0 <= self.arg_index < 6:
            raise ProfileError(f"argument index out of range: {self.arg_index}")
        object.__setattr__(self, "value", self.value & U64_MASK)
        object.__setattr__(self, "mask", self.mask & U64_MASK)
        if self.op is CmpOp.EQ:
            object.__setattr__(self, "mask", U64_MASK)

    def matches(self, args: Sequence[int]) -> bool:
        actual = int(args[self.arg_index]) & U64_MASK if self.arg_index < len(args) else 0
        return (actual & self.mask) == (self.value & self.mask)


@dataclass(frozen=True)
class ArgSetRule:
    """A conjunction of argument comparisons — one whitelisted arg set."""

    comparisons: Tuple[ArgCmp, ...]

    def __post_init__(self) -> None:
        seen = set()
        for cmp_ in self.comparisons:
            if cmp_.arg_index in seen:
                raise ProfileError(
                    f"duplicate comparison on argument {cmp_.arg_index}"
                )
            seen.add(cmp_.arg_index)
        ordered = tuple(sorted(self.comparisons, key=lambda c: c.arg_index))
        object.__setattr__(self, "comparisons", ordered)

    def matches(self, args: Sequence[int]) -> bool:
        return all(cmp_.matches(args) for cmp_ in self.comparisons)


@dataclass(frozen=True)
class SyscallRule:
    """Whitelist entry for one syscall."""

    sid: int
    arg_rules: Tuple[ArgSetRule, ...] = ()

    @property
    def checks_args(self) -> bool:
        return bool(self.arg_rules)

    def allows(self, event: SyscallEvent) -> bool:
        if event.sid != self.sid:
            return False
        if not self.arg_rules:
            return True
        return any(rule.matches(event.args) for rule in self.arg_rules)


class SeccompProfile:
    """A named whitelist profile over the syscall table."""

    def __init__(
        self,
        name: str,
        rules: Iterable[SyscallRule],
        default_action: int = SECCOMP_RET_KILL_PROCESS,
        table: SyscallTable = LINUX_X86_64,
    ) -> None:
        self.name = name
        self.default_action = default_action
        self.table = table
        self._rules: Dict[int, SyscallRule] = {}
        for rule in rules:
            if rule.sid in self._rules:
                raise ProfileError(f"duplicate rule for sid {rule.sid}")
            if rule.sid not in table:
                raise ProfileError(f"profile {name!r}: unknown sid {rule.sid}")
            self._rules[rule.sid] = rule

    # -- construction helpers --------------------------------------------

    @classmethod
    def from_names(
        cls,
        name: str,
        allowed: Iterable[str],
        arg_rules: Optional[Mapping[str, Sequence[ArgSetRule]]] = None,
        default_action: int = SECCOMP_RET_KILL_PROCESS,
        table: SyscallTable = LINUX_X86_64,
    ) -> "SeccompProfile":
        """Build a profile from syscall names plus optional arg rules."""
        arg_rules = dict(arg_rules or {})
        rules = []
        for sys_name in allowed:
            sdef = table.by_name(sys_name)
            per_sys = tuple(arg_rules.pop(sys_name, ()))
            rules.append(SyscallRule(sid=sdef.sid, arg_rules=per_sys))
        if arg_rules:
            raise ProfileError(
                f"arg rules for syscalls not in the allow list: {sorted(arg_rules)}"
            )
        return cls(name, rules, default_action=default_action, table=table)

    # -- queries -----------------------------------------------------------

    def rule_for(self, sid: int) -> Optional[SyscallRule]:
        return self._rules.get(sid)

    @property
    def rules(self) -> Tuple[SyscallRule, ...]:
        return tuple(self._rules[sid] for sid in sorted(self._rules))

    @property
    def allowed_sids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._rules))

    def allows(self, event: SyscallEvent) -> bool:
        """Reference semantics: would this profile allow the event?"""
        rule = self._rules.get(event.sid)
        if rule is None:
            return action_of(self.default_action) == SECCOMP_RET_ALLOW
        return rule.allows(event)

    def evaluate(self, event: SyscallEvent) -> int:
        """Reference action for *event* (ALLOW or the default action)."""
        return SECCOMP_RET_ALLOW if self.allows(event) else self.default_action

    # -- security metrics (Figure 15) ---------------------------------------

    @property
    def num_syscalls(self) -> int:
        return len(self._rules)

    @property
    def num_arguments_checked(self) -> int:
        """Total argument comparisons across all rules (Figure 15b)."""
        return sum(
            len(arg_rule.comparisons)
            for rule in self._rules.values()
            for arg_rule in rule.arg_rules
        )

    @property
    def num_argument_values_allowed(self) -> int:
        """Distinct (sid, arg, value) triples whitelisted (Figure 15b)."""
        values = {
            (rule.sid, cmp_.arg_index, cmp_.value, cmp_.mask)
            for rule in self._rules.values()
            for arg_rule in rule.arg_rules
            for cmp_ in arg_rule.comparisons
        }
        return len(values)

    def __repr__(self) -> str:
        return (
            f"SeccompProfile(name={self.name!r}, syscalls={self.num_syscalls}, "
            f"arg_checks={self.num_arguments_checked})"
        )
