"""Analysis layer: locality, profile security, hardware cost models."""

from repro.analysis.hwcost import (
    CRC_COST,
    PAPER_TABLE3,
    SramGeometry,
    StructureCost,
    draco_hardware_costs,
    slb_geometry,
    spt_geometry,
    sram_cost,
    stb_geometry,
)
from repro.analysis.locality import (
    LocalityReport,
    SyscallLocality,
    analyze_locality,
    merge_reports,
    reuse_distances,
)
from repro.analysis.security import (
    CONTAINER_RUNTIME_SYSCALLS,
    ProfileSecurityMetrics,
    analyze_profile,
    argument_slots_checked,
    argument_values_allowed,
)

__all__ = [
    "CRC_COST",
    "PAPER_TABLE3",
    "SramGeometry",
    "StructureCost",
    "draco_hardware_costs",
    "slb_geometry",
    "spt_geometry",
    "sram_cost",
    "stb_geometry",
    "LocalityReport",
    "SyscallLocality",
    "analyze_locality",
    "merge_reports",
    "reuse_distances",
    "CONTAINER_RUNTIME_SYSCALLS",
    "ProfileSecurityMetrics",
    "analyze_profile",
    "argument_slots_checked",
    "argument_values_allowed",
]
