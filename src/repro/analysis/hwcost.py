"""Analytical hardware cost model — Table III.

The paper evaluates the Draco structures with CACTI 7 (SRAM arrays) and
a Synopsys Design Compiler synthesis of the CRC generator at 22 nm.
Offline we reproduce Table III with a first-order SRAM model: area,
access time, read energy, and leakage scale with bit count, wordline
width, and associativity.  The model's constants are fitted so the four
published design points are recovered; the *scaling* (what happens when
a structure is resized, e.g. the SLB sweep ablation) is analytic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cpu.params import DEFAULT_DRACO_HW, DracoHwParams

#: Technology node the paper evaluates at.
TECHNOLOGY_NM = 22


@dataclass(frozen=True)
class StructureCost:
    """One Table III column."""

    name: str
    area_mm2: float
    access_time_ps: float
    dynamic_read_energy_pj: float
    leakage_power_mw: float


@dataclass(frozen=True)
class SramGeometry:
    """Bit-level geometry of one SRAM structure."""

    name: str
    entries: int
    entry_bits: int
    ways: int = 1

    @property
    def total_bits(self) -> int:
        return self.entries * self.entry_bits


# Fitted per-bit constants (22 nm, derived from the published SPT point:
# 384 x 64 b approx 24.5 kbit -> 0.0036 mm^2, 1.32 pJ, 1.39 mW).
_AREA_MM2_PER_KBIT = 0.000140
_ENERGY_PJ_PER_KBIT = 0.0512
_LEAKAGE_MW_PER_KBIT = 0.0542
_ACCESS_PS_BASE = 95.0
_ACCESS_PS_PER_LOG_KBIT = 7.5
_ACCESS_PS_PER_WAY = 3.4

# Entry widths (bits) of the Draco structures.
SPT_ENTRY_BITS = 64          # valid + base pointer + 48b argument bitmask
STB_ENTRY_BITS = 128         # PC tag + valid + SID + 64b hash
SLB_ENTRY_BITS = 64 * 6 + 80  # up to six 64b args + SID/valid/hash metadata


def sram_cost(geometry: SramGeometry) -> StructureCost:
    """First-order SRAM area/time/energy/leakage for a structure."""
    kbits = geometry.total_bits / 1024.0
    area = _AREA_MM2_PER_KBIT * kbits
    access = (
        _ACCESS_PS_BASE
        + _ACCESS_PS_PER_LOG_KBIT * math.log2(max(kbits, 1.0))
        + _ACCESS_PS_PER_WAY * (geometry.ways - 1)
    )
    energy = _ENERGY_PJ_PER_KBIT * kbits
    leakage = _LEAKAGE_MW_PER_KBIT * kbits
    return StructureCost(
        name=geometry.name,
        area_mm2=area,
        access_time_ps=access,
        dynamic_read_energy_pj=energy,
        leakage_power_mw=leakage,
    )


#: The CRC hash generator is synthesised logic (an LFSR), not SRAM; the
#: paper's numbers are taken as the design point.
CRC_COST = StructureCost(
    name="CRC Hash",
    area_mm2=0.0019,
    access_time_ps=964.0,
    dynamic_read_energy_pj=0.98,
    leakage_power_mw=0.106,
)

#: Published Table III values, for comparison in tests and EXPERIMENTS.md.
PAPER_TABLE3 = {
    "SPT": StructureCost("SPT", 0.0036, 105.41, 1.32, 1.39),
    "STB": StructureCost("STB", 0.0063, 131.61, 1.78, 2.63),
    "SLB": StructureCost("SLB", 0.01549, 112.75, 2.69, 3.96),
    "CRC Hash": CRC_COST,
}


def spt_geometry(hw: DracoHwParams = DEFAULT_DRACO_HW) -> SramGeometry:
    return SramGeometry("SPT", hw.spt_entries, SPT_ENTRY_BITS, hw.spt_ways)


def stb_geometry(hw: DracoHwParams = DEFAULT_DRACO_HW) -> SramGeometry:
    return SramGeometry("STB", hw.stb_entries, STB_ENTRY_BITS, hw.stb_ways)


def slb_geometry(hw: DracoHwParams = DEFAULT_DRACO_HW) -> SramGeometry:
    """The whole SLB: all subtables plus the Temporary Buffer (the paper
    includes it in the SLB area/leakage analysis, Section XI-C).  Each
    subtable's entries are sized for their argument count."""
    total_bits = sum(
        sub.entries * (sub.arg_count * 64 + 80) for sub in hw.slb_subtables
    )
    total_bits += hw.temp_buffer_entries * SLB_ENTRY_BITS
    three_arg = hw.slb_subtable_for(3)
    return SramGeometry("SLB", 1, total_bits, three_arg.ways)


def slb_timing_geometry(hw: DracoHwParams = DEFAULT_DRACO_HW) -> SramGeometry:
    """Access time and read energy are reported for the largest
    subtable, the 3-argument one (Section XI-C), whose entries hold
    three 64-bit arguments plus metadata."""
    three_arg = hw.slb_subtable_for(3)
    return SramGeometry("SLB(3-arg)", three_arg.entries, 3 * 64 + 80, three_arg.ways)


#: Per-structure correction factors fitted so the analytic model lands
#: on the published CACTI design points at the default geometry; a
#: resized structure (e.g. the SLB sweep ablation) scales analytically
#: from there.  Computed once at import from the unscaled model.
_FITTED_SCALE: Dict[str, Tuple[float, float, float, float]] = {}


def _raw_costs(hw: DracoHwParams) -> Dict[str, StructureCost]:
    slb_full = sram_cost(slb_geometry(hw))
    slb_timing = sram_cost(slb_timing_geometry(hw))
    slb = StructureCost(
        name="SLB",
        area_mm2=slb_full.area_mm2,
        access_time_ps=slb_timing.access_time_ps,
        dynamic_read_energy_pj=slb_timing.dynamic_read_energy_pj,
        leakage_power_mw=slb_full.leakage_power_mw,
    )
    return {
        "SPT": sram_cost(spt_geometry(hw)),
        "STB": sram_cost(stb_geometry(hw)),
        "SLB": slb,
        "CRC Hash": CRC_COST,
    }


def _fit_scales() -> None:
    raw = _raw_costs(DEFAULT_DRACO_HW)
    for name, paper in PAPER_TABLE3.items():
        ours = raw[name]
        _FITTED_SCALE[name] = (
            paper.area_mm2 / ours.area_mm2,
            paper.access_time_ps / ours.access_time_ps,
            paper.dynamic_read_energy_pj / ours.dynamic_read_energy_pj,
            paper.leakage_power_mw / ours.leakage_power_mw,
        )


def draco_hardware_costs(hw: DracoHwParams = DEFAULT_DRACO_HW):
    """Compute Table III for a (possibly resized) Draco configuration.

    The SLB row follows the paper's convention: area and leakage cover
    all subtables plus the Temporary Buffer; access time and dynamic
    energy are for the largest (3-argument) subtable.
    """
    if not _FITTED_SCALE:
        _fit_scales()
    out = {}
    for name, raw in _raw_costs(hw).items():
        s_area, s_access, s_energy, s_leak = _FITTED_SCALE[name]
        out[name] = StructureCost(
            name=name,
            area_mm2=raw.area_mm2 * s_area,
            access_time_ps=raw.access_time_ps * s_access,
            dynamic_read_energy_pj=raw.dynamic_read_energy_pj * s_energy,
            leakage_power_mw=raw.leakage_power_mw * s_leak,
        )
    return out
