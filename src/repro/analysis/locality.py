"""System-call locality analysis (Section IV-C, Figure 3).

Computes, from a trace: per-syscall frequency, the breakdown of each
syscall's calls across its argument sets, and the *reuse distance* —
"the number of other system calls between two system calls with the
same ID and argument set".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.stats import mean
from repro.syscalls.events import SyscallTrace
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class SyscallLocality:
    """Figure 3 data for one syscall."""

    name: str
    sid: int
    fraction: float
    #: Fraction of this syscall's calls issued with each argument set,
    #: most popular first.
    arg_set_fractions: Tuple[float, ...]
    #: Mean number of other syscalls between reuses of the same
    #: (SID, argument set); None if never reused.
    mean_reuse_distance: Optional[float]


@dataclass(frozen=True)
class LocalityReport:
    total_calls: int
    syscalls: Tuple[SyscallLocality, ...]  # sorted by frequency, descending

    def top(self, n: int) -> Tuple[SyscallLocality, ...]:
        return self.syscalls[:n]

    def top_fraction(self, n: int) -> float:
        """Fraction of all calls covered by the top *n* syscalls.

        The paper: "20 system calls account for 86% of all the calls."
        """
        return sum(s.fraction for s in self.top(n))


def reuse_distances(trace: SyscallTrace) -> Dict[Tuple[int, Tuple[int, ...]], List[int]]:
    """Per (SID, argument set): the distances between successive uses."""
    last_seen: Dict[Tuple[int, Tuple[int, ...]], int] = {}
    distances: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
    for position, event in enumerate(trace):
        key = event.key
        if key in last_seen:
            distances.setdefault(key, []).append(position - last_seen[key] - 1)
        last_seen[key] = position
    return distances


def analyze_locality(
    trace: SyscallTrace, table: SyscallTable = LINUX_X86_64
) -> LocalityReport:
    """Produce the Figure 3 view of a trace."""
    total = len(trace)
    if total == 0:
        return LocalityReport(total_calls=0, syscalls=())

    call_counts: Dict[int, int] = {}
    arg_set_counts: Dict[int, Dict[Tuple[int, ...], int]] = {}
    for event in trace:
        call_counts[event.sid] = call_counts.get(event.sid, 0) + 1
        per_sid = arg_set_counts.setdefault(event.sid, {})
        per_sid[event.args] = per_sid.get(event.args, 0) + 1

    distances = reuse_distances(trace)
    per_sid_distances: Dict[int, List[int]] = {}
    for (sid, _args), dists in distances.items():
        per_sid_distances.setdefault(sid, []).extend(dists)

    entries = []
    for sid, count in sorted(call_counts.items(), key=lambda kv: -kv[1]):
        arg_fracs = tuple(
            sorted((c / count for c in arg_set_counts[sid].values()), reverse=True)
        )
        sid_distances = per_sid_distances.get(sid)
        entries.append(
            SyscallLocality(
                name=table.by_sid(sid).name if sid in table else f"sys_{sid}",
                sid=sid,
                fraction=count / total,
                arg_set_fractions=arg_fracs,
                mean_reuse_distance=mean(sid_distances) if sid_distances else None,
            )
        )
    return LocalityReport(total_calls=total, syscalls=tuple(entries))


def merge_reports(reports: Mapping[str, LocalityReport]) -> LocalityReport:
    """Aggregate several workloads' locality into one Figure-3-style view
    (each workload contributes in proportion to its call count)."""
    total = sum(r.total_calls for r in reports.values())
    if total == 0:
        return LocalityReport(total_calls=0, syscalls=())
    by_sid: Dict[int, Dict[str, object]] = {}
    for report in reports.values():
        weight = report.total_calls
        for entry in report.syscalls:
            slot = by_sid.setdefault(
                entry.sid,
                {"name": entry.name, "calls": 0.0, "dist_sum": 0.0, "dist_n": 0.0,
                 "arg_fracs": []},
            )
            slot["calls"] += entry.fraction * weight
            if entry.mean_reuse_distance is not None:
                slot["dist_sum"] += entry.mean_reuse_distance * weight
                slot["dist_n"] += weight
            slot["arg_fracs"].append(entry.arg_set_fractions)
    entries = []
    for sid, slot in sorted(by_sid.items(), key=lambda kv: -kv[1]["calls"]):
        longest = max(slot["arg_fracs"], key=len)
        entries.append(
            SyscallLocality(
                name=slot["name"],
                sid=sid,
                fraction=slot["calls"] / total,
                arg_set_fractions=longest,
                mean_reuse_distance=(
                    slot["dist_sum"] / slot["dist_n"] if slot["dist_n"] else None
                ),
            )
        )
    return LocalityReport(total_calls=total, syscalls=tuple(entries))
