"""Profile security metrics (Section XI-D, Figure 15).

Quantifies the attack-surface reduction of application-specific profiles
versus ``docker-default``: how many syscalls are allowed, how many
argument positions are checked, and how many distinct argument values
are whitelisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.seccomp.profile import SeccompProfile
from repro.syscalls.table import LINUX_X86_64, SyscallTable

#: Syscalls any containerised process needs regardless of the
#: application: process/memory setup, dynamic linking, runtime plumbing.
#: Figure 15a shades the fraction of an app-specific profile that is
#: runtime-required (~20%) versus truly application-specific.
CONTAINER_RUNTIME_SYSCALLS: FrozenSet[str] = frozenset(
    {
        "read", "write", "close", "fstat", "mmap", "mprotect", "munmap",
        "brk", "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "access",
        "execve", "exit", "exit_group", "arch_prctl", "set_tid_address",
        "set_robust_list", "prlimit64", "openat", "getrandom", "futex",
        "clone", "wait4", "getpid", "gettid",
    }
)


@dataclass(frozen=True)
class ProfileSecurityMetrics:
    """One bar group of Figure 15."""

    profile_name: str
    num_syscalls: int
    num_runtime_syscalls: int
    num_argument_slots_checked: int
    num_argument_values_allowed: int

    @property
    def num_application_syscalls(self) -> int:
        return self.num_syscalls - self.num_runtime_syscalls


def argument_slots_checked(profile: SeccompProfile) -> int:
    """Distinct (syscall, argument position) pairs with a check
    (Figure 15b, "# Arguments Checked")."""
    slots = {
        (rule.sid, cmp_.arg_index)
        for rule in profile.rules
        for arg_rule in rule.arg_rules
        for cmp_ in arg_rule.comparisons
    }
    return len(slots)


def argument_values_allowed(profile: SeccompProfile) -> int:
    """Distinct (syscall, argument, value) whitelist entries
    (Figure 15b, "# Argument Values Allowed")."""
    return profile.num_argument_values_allowed


def analyze_profile(
    profile: SeccompProfile, table: SyscallTable = LINUX_X86_64
) -> ProfileSecurityMetrics:
    runtime = sum(
        1
        for sid in profile.allowed_sids
        if table.by_sid(sid).name in CONTAINER_RUNTIME_SYSCALLS
    )
    return ProfileSecurityMetrics(
        profile_name=profile.name,
        num_syscalls=profile.num_syscalls,
        num_runtime_syscalls=runtime,
        num_argument_slots_checked=argument_slots_checked(profile),
        num_argument_values_allowed=argument_values_allowed(profile),
    )
