"""The fifteen paper workloads (Section X-A), as synthetic models.

Eight macro benchmarks (long-running server applications and two
FaaS-style functions) and seven micro benchmarks.  Each model specifies
the syscall population: relative frequencies, argument-set populations,
call-site counts, and per-call-site stickiness.  The shapes follow the
paper's characterisation:

* Figure 3 — read/futex/recvfrom/close/epoll_wait/... dominate; most
  syscalls use three or fewer argument sets heavily; reuse distances are
  tens of syscalls.
* Figure 13 — Elasticsearch and Redis have lower STB hit rates (more
  syscall call sites: JIT'd code, command dispatch tables); HTTPD,
  Elasticsearch, MySQL and Redis have lower SLB hit rates (larger
  argument-set working sets: many client fds in flight).
* Figure 15b — application-specific profiles allow between ~10^2 and
  ~2.5x10^3 distinct argument values.

``fig2_targets`` records the normalised execution times read off the
paper's Figure 2 bars; they calibrate each workload's application-work
parameter (see ``repro.experiments.runner``) and give EXPERIMENTS.md its
paper-side column.  Averages across workloads match the paper's reported
1.05/1.04/1.14/1.21x (macro) and 1.12/1.09/1.25/1.42x (micro).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.workloads.model import (
    ArgSetSpec,
    SyscallSpec,
    WorkloadSpec,
    fd_arg_sets,
    single_arg_sets,
)

# Profile regime names used across experiments.
REGIME_INSECURE = "insecure"
REGIME_DOCKER = "docker-default"
REGIME_NOARGS = "syscall-noargs"
REGIME_COMPLETE = "syscall-complete"
REGIME_COMPLETE_2X = "syscall-complete-2x"

SECCOMP_REGIMES = (REGIME_DOCKER, REGIME_NOARGS, REGIME_COMPLETE, REGIME_COMPLETE_2X)


def _targets(docker: float, noargs: float, complete: float, complete_2x: float) -> Dict[str, float]:
    return {
        REGIME_DOCKER: docker,
        REGIME_NOARGS: noargs,
        REGIME_COMPLETE: complete,
        REGIME_COMPLETE_2X: complete_2x,
    }


def _rw_sets(fds: Sequence[int], sizes: Sequence[int], skew: float = 1.0):
    return fd_arg_sets(fds, sizes, skew=skew)


def _epoll_wait_sets(epfds: Sequence[int], maxevents: Sequence[int], timeouts: Sequence[int]):
    """epoll_wait(epfd, events*, maxevents, timeout) -> checkable (0, 2, 3)."""
    specs: List[ArgSetSpec] = []
    rank = 1
    for epfd in epfds:
        for maxev in maxevents:
            for timeout in timeouts:
                specs.append(ArgSetSpec(values=(epfd, maxev, timeout), weight=1.0 / rank))
                rank += 1
    return tuple(specs)


def _epoll_ctl_sets(epfds: Sequence[int], ops: Sequence[int], fds: Sequence[int]):
    """epoll_ctl(epfd, op, fd, event*) -> checkable (0, 1, 2)."""
    specs: List[ArgSetSpec] = []
    rank = 1
    for epfd in epfds:
        for op in ops:
            for fd in fds:
                specs.append(ArgSetSpec(values=(epfd, op, fd), weight=1.0 / rank))
                rank += 1
    return tuple(specs)


def _futex_sets(ops: Sequence[int], vals: Sequence[int]):
    """futex(uaddr*, op, val, timeout*, uaddr2*, val3) -> checkable (1, 2, 5)."""
    specs: List[ArgSetSpec] = []
    rank = 1
    for op in ops:
        for val in vals:
            specs.append(ArgSetSpec(values=(op, val, 0), weight=1.0 / rank))
            rank += 1
    return tuple(specs)


def _accept4_sets(fds: Sequence[int], flags: int = 0x80800):
    """accept4(fd, addr*, len*, flags) -> checkable (0, 3)."""
    return tuple(
        ArgSetSpec(values=(fd, flags), weight=1.0 / rank)
        for rank, fd in enumerate(fds, start=1)
    )


def _sendto_sets(fds: Sequence[int], sizes: Sequence[int], flags: Sequence[int] = (0,)):
    """sendto(fd, buf*, len, flags, addr*, addrlen) -> checkable (0, 2, 3, 5)."""
    specs: List[ArgSetSpec] = []
    rank = 1
    for fd in fds:
        for size in sizes:
            for flag in flags:
                specs.append(ArgSetSpec(values=(fd, size, flag, 0), weight=1.0 / rank))
                rank += 1
    return tuple(specs)


def _recvfrom_sets(fds: Sequence[int], sizes: Sequence[int], flags: Sequence[int] = (0,)):
    """recvfrom(fd, buf*, len, flags, addr*, len*) -> checkable (0, 2, 3)."""
    specs: List[ArgSetSpec] = []
    rank = 1
    for fd in fds:
        for size in sizes:
            for flag in flags:
                specs.append(ArgSetSpec(values=(fd, size, flag), weight=1.0 / rank))
                rank += 1
    return tuple(specs)


def _openat_sets(flags_modes: Sequence[Tuple[int, int]], dirfd: int = -100):
    """openat(dirfd, path*, flags, mode) -> checkable (0, 2, 3)."""
    return tuple(
        ArgSetSpec(values=(dirfd & 0xFFFFFFFF, flags, mode), weight=1.0 / rank)
        for rank, (flags, mode) in enumerate(flags_modes, start=1)
    )


def _mmap_sets(combos: Sequence[Tuple[int, int, int, int, int]]):
    """mmap(addr*, len, prot, flags, fd, off) -> checkable (1, 2, 3, 4, 5)."""
    return tuple(
        ArgSetSpec(values=tuple(combo), weight=1.0 / rank)
        for rank, combo in enumerate(combos, start=1)
    )


_OPEN_RDONLY = (0x0, 0)
_OPEN_RDONLY_CLOEXEC = (0x80000, 0)
_OPEN_WRONLY_APPEND = (0x401, 0o644)
_OPEN_RDWR = (0x2, 0o600)
_OPEN_CREAT = (0x241, 0o644)

_MMAP_ANON_RW = (65536, 3, 0x22, 0xFFFFFFFF, 0)
_MMAP_ANON_RW_BIG = (1 << 21, 3, 0x22, 0xFFFFFFFF, 0)
_MMAP_FILE_RO = (4096, 1, 0x2, 10, 0)
_MMAP_FILE_SHARED = (8192, 3, 0x1, 11, 0)


# ---------------------------------------------------------------------------
# Macro benchmarks
# ---------------------------------------------------------------------------


def _httpd() -> WorkloadSpec:
    client_fds = list(range(8, 72))  # ab churns through many connection fds
    return WorkloadSpec(
        name="httpd",
        kind="macro",
        description="Apache HTTP server under ab with 30 concurrent requests",
        syscalls=(
            SyscallSpec("read", 16, _rw_sets(client_fds, (8000,)), callsites=6, stickiness=0.6),
            SyscallSpec("writev", 12, _rw_sets(client_fds, (4096, 11000)), callsites=4, stickiness=0.55),
            SyscallSpec("close", 9, single_arg_sets(client_fds), callsites=4, stickiness=0.6),
            SyscallSpec("epoll_wait", 9, _epoll_wait_sets((4,), (512,), (100, 0, 10000)), callsites=2),
            SyscallSpec("accept4", 8, _accept4_sets((3,)), callsites=2),
            SyscallSpec("epoll_ctl", 6, _epoll_ctl_sets((4,), (1, 2, 3), client_fds[:16]), callsites=3, stickiness=0.55),
            SyscallSpec("sendfile", 5, tuple(
                ArgSetSpec(values=(fd, 12, size), weight=1.0 / r)
                for r, (fd, size) in enumerate(
                    [(fd, size) for fd in client_fds[:12] for size in (11000,)], start=1
                )
            ), callsites=2, stickiness=0.6),
            SyscallSpec("openat", 5, _openat_sets((_OPEN_RDONLY_CLOEXEC, _OPEN_RDONLY, _OPEN_WRONLY_APPEND)), callsites=3),
            SyscallSpec("fstat", 5, single_arg_sets(list(range(10, 22))), callsites=3),
            SyscallSpec("stat", 4, arg_sets=()),  # both args are pointers
            SyscallSpec("futex", 4, _futex_sets((128, 129), (1, 2)), callsites=4),
            SyscallSpec("times", 3, arg_sets=()),
            SyscallSpec("poll", 3, tuple(ArgSetSpec(values=(n, t), weight=1.0 / r) for r, (n, t) in enumerate([(1, 100), (1, 0), (2, 100)], start=1))),
            SyscallSpec("write", 3, _rw_sets((2, 7), (120, 256))),
            SyscallSpec("shutdown", 2, tuple(ArgSetSpec(values=(fd, 1), weight=1.0 / r) for r, fd in enumerate(client_fds[:8], start=1))),
            SyscallSpec("setsockopt", 2, tuple(
                ArgSetSpec(values=(fd, 6, 1, 4), weight=1.0 / r) for r, fd in enumerate(client_fds[:8], start=1)
            )),
            SyscallSpec("mmap", 1, _mmap_sets((_MMAP_ANON_RW, _MMAP_FILE_RO))),
            SyscallSpec("munmap", 1, single_arg_sets((65536, 4096))),
            SyscallSpec("getpid", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.08, 1.06, 1.26, 1.39),
    )


def _nginx() -> WorkloadSpec:
    client_fds = list(range(6, 62))
    return WorkloadSpec(
        name="nginx",
        kind="macro",
        description="NGINX under ab with 30 concurrent requests",
        syscalls=(
            SyscallSpec("recvfrom", 14, _recvfrom_sets(client_fds[:40], (1024,)), callsites=6, stickiness=0.65),
            SyscallSpec("writev", 12, _rw_sets(client_fds[:36], (238, 4096)), callsites=6, stickiness=0.6),
            SyscallSpec("epoll_wait", 11, _epoll_wait_sets((8,), (512,), (-1 & 0xFFFFFFFF, 60000)), callsites=1),
            SyscallSpec("close", 9, single_arg_sets(client_fds), callsites=2),
            SyscallSpec("accept4", 8, _accept4_sets((5, 6))),
            SyscallSpec("epoll_ctl", 6, _epoll_ctl_sets((8,), (1, 3), client_fds[:12]), callsites=2),
            SyscallSpec("write", 6, _rw_sets((2, 4), (90, 180))),
            SyscallSpec("openat", 5, _openat_sets((_OPEN_RDONLY_CLOEXEC, _OPEN_RDONLY))),
            SyscallSpec("fstat", 5, single_arg_sets(list(range(9, 17)))),
            SyscallSpec("sendfile", 4, tuple(
                ArgSetSpec(values=(fd, 9, 615), weight=1.0 / r) for r, fd in enumerate(client_fds[:10], start=1)
            ), callsites=2),
            SyscallSpec("read", 4, _rw_sets((9, 10), (4096, 8192))),
            SyscallSpec("setsockopt", 3, tuple(
                ArgSetSpec(values=(fd, 6, 3, 4), weight=1.0 / r) for r, fd in enumerate(client_fds[:6], start=1)
            )),
            SyscallSpec("futex", 2, _futex_sets((128, 129), (1,))),
            SyscallSpec("getpid", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.06, 1.04, 1.18, 1.27),
    )


def _elasticsearch() -> WorkloadSpec:
    # JVM: futex-heavy, many JIT'd call sites -> low STB locality.
    jvm_fds = list(range(100, 160))
    return WorkloadSpec(
        name="elasticsearch",
        kind="macro",
        description="Elasticsearch driven by YCSB workloada, 10 clients",
        syscalls=(
            SyscallSpec("futex", 22, _futex_sets((0, 1, 128, 129, 137), (1, 2, 0x7FFFFFFF)), callsites=130, stickiness=0.55),
            SyscallSpec("read", 14, _rw_sets(jvm_fds[:56], (8192, 16384)), callsites=60, stickiness=0.5),
            SyscallSpec("write", 10, _rw_sets(jvm_fds[:30], (512, 8192)), callsites=45, stickiness=0.5),
            SyscallSpec("epoll_wait", 8, _epoll_wait_sets((90, 91), (1024,), (0, 100, 1000)), callsites=12),
            SyscallSpec("epoll_ctl", 5, _epoll_ctl_sets((90, 91), (1, 2, 3), jvm_fds[:20]), callsites=14, stickiness=0.45),
            SyscallSpec("close", 5, single_arg_sets(jvm_fds), callsites=30, stickiness=0.5),
            SyscallSpec("mmap", 4, _mmap_sets((_MMAP_ANON_RW, _MMAP_ANON_RW_BIG, _MMAP_FILE_RO, _MMAP_FILE_SHARED)), callsites=10),
            SyscallSpec("mprotect", 3, tuple(ArgSetSpec(values=(sz, prot), weight=1.0 / r) for r, (sz, prot) in enumerate([(4096, 3), (4096, 0), (8192, 1), (1 << 20, 3)], start=1)), callsites=8),
            SyscallSpec("openat", 4, _openat_sets((_OPEN_RDONLY_CLOEXEC, _OPEN_RDONLY, _OPEN_CREAT, _OPEN_RDWR)), callsites=16),
            SyscallSpec("fstat", 4, single_arg_sets(jvm_fds[:24]), callsites=12),
            SyscallSpec("lseek", 3, tuple(ArgSetSpec(values=(fd, off, 0), weight=1.0 / r) for r, (fd, off) in enumerate([(f, o) for f in jvm_fds[:8] for o in (0, 4096)], start=1)), callsites=8),
            SyscallSpec("stat", 3, arg_sets=()),
            SyscallSpec("sched_yield", 2, arg_sets=(), callsites=6),
            SyscallSpec("munmap", 2, single_arg_sets((65536, 1 << 21)), callsites=6),
            SyscallSpec("getrusage", 1, single_arg_sets((0,))),
            SyscallSpec("sendto", 2, _sendto_sets(jvm_fds[:10], (256, 4096)), callsites=10, stickiness=0.5),
            SyscallSpec("recvfrom", 2, _recvfrom_sets(jvm_fds[:10], (65536,)), callsites=10, stickiness=0.5),
        ),
        fig2_targets=_targets(1.03, 1.02, 1.08, 1.12),
    )


def _mysql() -> WorkloadSpec:
    data_fds = list(range(20, 70))
    return WorkloadSpec(
        name="mysql",
        kind="macro",
        description="MySQL under SysBench OLTP with 10 clients",
        syscalls=(
            SyscallSpec("futex", 18, _futex_sets((0, 1, 128, 129), (1, 2)), callsites=40, stickiness=0.6),
            SyscallSpec("recvfrom", 13, _recvfrom_sets(data_fds[:40], (4, 16384)), callsites=8, stickiness=0.55),
            SyscallSpec("sendto", 12, _sendto_sets(data_fds[:36], (11, 64, 1024)), callsites=8, stickiness=0.55),
            SyscallSpec("pread64", 9, tuple(
                ArgSetSpec(values=(fd, 16384, off), weight=1.0 / r)
                for r, (fd, off) in enumerate([(f, o) for f in data_fds[:12] for o in (0, 16384, 32768)], start=1)
            ), callsites=6, stickiness=0.5),
            SyscallSpec("pwrite64", 8, tuple(
                ArgSetSpec(values=(fd, 16384, off), weight=1.0 / r)
                for r, (fd, off) in enumerate([(f, o) for f in data_fds[:10] for o in (0, 16384)], start=1)
            ), callsites=5, stickiness=0.5),
            SyscallSpec("read", 7, _rw_sets(data_fds[:10], (4096,)), callsites=4),
            SyscallSpec("write", 6, _rw_sets(data_fds[:10], (512, 4096)), callsites=4),
            SyscallSpec("fsync", 5, single_arg_sets(data_fds[:10]), callsites=3),
            SyscallSpec("poll", 4, tuple(ArgSetSpec(values=(1, t), weight=1.0 / r) for r, t in enumerate((-1 & 0xFFFFFFFF, 0), start=1))),
            SyscallSpec("lseek", 3, tuple(ArgSetSpec(values=(fd, 0, 2), weight=1.0 / r) for r, fd in enumerate(data_fds[:8], start=1))),
            SyscallSpec("times", 3, arg_sets=()),
            SyscallSpec("openat", 2, _openat_sets((_OPEN_RDWR, _OPEN_RDONLY, _OPEN_CREAT))),
            SyscallSpec("close", 2, single_arg_sets(data_fds[:16])),
            SyscallSpec("fcntl", 2, tuple(ArgSetSpec(values=(fd, 3, 0), weight=1.0 / r) for r, fd in enumerate(data_fds[:6], start=1))),
            SyscallSpec("getpid", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.04, 1.03, 1.10, 1.15),
    )


def _cassandra() -> WorkloadSpec:
    jvm_fds = list(range(80, 120))
    return WorkloadSpec(
        name="cassandra",
        kind="macro",
        description="Cassandra driven by YCSB workloadc, 30 clients",
        syscalls=(
            SyscallSpec("futex", 20, _futex_sets((0, 1, 128, 129), (1, 2)), callsites=60, stickiness=0.65),
            SyscallSpec("read", 14, _rw_sets(jvm_fds[:36], (4096, 65536)), callsites=24, stickiness=0.6),
            SyscallSpec("write", 10, _rw_sets(jvm_fds[:16], (4096,)), callsites=20, stickiness=0.6),
            SyscallSpec("epoll_wait", 9, _epoll_wait_sets((70,), (1024,), (0, 200)), callsites=6),
            SyscallSpec("epoll_ctl", 5, _epoll_ctl_sets((70,), (1, 3), jvm_fds[:10]), callsites=6),
            SyscallSpec("close", 4, single_arg_sets(jvm_fds[:20]), callsites=10),
            SyscallSpec("mmap", 4, _mmap_sets((_MMAP_ANON_RW, _MMAP_FILE_SHARED, _MMAP_ANON_RW_BIG)), callsites=6),
            SyscallSpec("fstat", 4, single_arg_sets(jvm_fds[:14]), callsites=6),
            SyscallSpec("openat", 3, _openat_sets((_OPEN_RDONLY_CLOEXEC, _OPEN_CREAT))),
            SyscallSpec("lseek", 3, tuple(ArgSetSpec(values=(fd, 0, 0), weight=1.0 / r) for r, fd in enumerate(jvm_fds[:8], start=1))),
            SyscallSpec("sendto", 3, _sendto_sets(jvm_fds[:8], (128, 1024))),
            SyscallSpec("recvfrom", 3, _recvfrom_sets(jvm_fds[:8], (65536,))),
            SyscallSpec("sched_yield", 2, arg_sets=(), callsites=4),
            SyscallSpec("stat", 2, arg_sets=()),
            SyscallSpec("getpid", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.03, 1.02, 1.07, 1.11),
    )


def _redis() -> WorkloadSpec:
    client_fds = list(range(7, 100))  # redis-benchmark cycles through many client fds
    return WorkloadSpec(
        name="redis",
        kind="macro",
        description="Redis under redis-benchmark with 30 concurrent requests",
        syscalls=(
            SyscallSpec("read", 20, _rw_sets(client_fds[:72], (16384,)), callsites=110, stickiness=0.5),
            SyscallSpec("write", 18, _rw_sets(client_fds[:56], (5, 4096)), callsites=100, stickiness=0.5),
            SyscallSpec("epoll_wait", 14, _epoll_wait_sets((5,), (10128,), (100, 0)), callsites=8),
            SyscallSpec("epoll_ctl", 6, _epoll_ctl_sets((5,), (1, 2, 3), client_fds[:24]), callsites=60, stickiness=0.45),
            SyscallSpec("close", 5, single_arg_sets(client_fds[:32]), callsites=40, stickiness=0.5),
            SyscallSpec("accept4", 5, _accept4_sets((4,)), callsites=6),
            SyscallSpec("openat", 2, _openat_sets((_OPEN_CREAT, _OPEN_RDONLY))),
            SyscallSpec("fstat", 2, single_arg_sets(client_fds[:12]), callsites=8),
            SyscallSpec("getpid", 2, arg_sets=(), callsites=4),
            SyscallSpec("futex", 2, _futex_sets((128, 129), (1,)), callsites=8),
            SyscallSpec("fcntl", 2, tuple(ArgSetSpec(values=(fd, 4, 0x800), weight=1.0 / r) for r, fd in enumerate(client_fds[:16], start=1)), callsites=20, stickiness=0.5),
            SyscallSpec("setsockopt", 1, tuple(ArgSetSpec(values=(fd, 6, 1, 4), weight=1.0 / r) for r, fd in enumerate(client_fds[:8], start=1))),
            SyscallSpec("mmap", 1, _mmap_sets((_MMAP_ANON_RW,))),
            SyscallSpec("brk", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.08, 1.06, 1.22, 1.33),
    )


def _grep() -> WorkloadSpec:
    file_fds = list(range(3, 12))
    return WorkloadSpec(
        name="grep",
        kind="macro",
        description="FaaS grep function searching the Linux source tree",
        syscalls=(
            SyscallSpec("read", 30, _rw_sets(file_fds, (32768, 65536)), callsites=2, stickiness=0.8),
            SyscallSpec("openat", 18, _openat_sets((_OPEN_RDONLY_CLOEXEC, _OPEN_RDONLY)), callsites=2),
            SyscallSpec("close", 17, single_arg_sets(file_fds), callsites=2),
            SyscallSpec("fstat", 12, single_arg_sets(file_fds), callsites=2),
            SyscallSpec("getdents64", 9, tuple(ArgSetSpec(values=(fd, 32768), weight=1.0 / r) for r, fd in enumerate(file_fds[:4], start=1))),
            SyscallSpec("write", 6, _rw_sets((1,), (80, 4096))),
            SyscallSpec("lseek", 3, tuple(ArgSetSpec(values=(fd, 0, 1), weight=1.0 / r) for r, fd in enumerate(file_fds[:4], start=1))),
            SyscallSpec("mmap", 2, _mmap_sets((_MMAP_ANON_RW,))),
            SyscallSpec("munmap", 2, single_arg_sets((65536,))),
            SyscallSpec("brk", 1, arg_sets=()),
        ),
        fig2_targets=_targets(1.03, 1.02, 1.06, 1.09),
    )


def _pwgen() -> WorkloadSpec:
    return WorkloadSpec(
        name="pwgen",
        kind="macro",
        description="FaaS pwgen function generating 10K secure passwords",
        syscalls=(
            SyscallSpec("getrandom", 34, tuple(
                ArgSetSpec(values=(size, 0), weight=1.0 / r) for r, size in enumerate((16, 32, 64), start=1)
            ), callsites=2, stickiness=0.85),
            SyscallSpec("write", 28, _rw_sets((1,), (17, 33, 4096)), callsites=2),
            SyscallSpec("read", 14, _rw_sets((0, 3), (4096,))),
            SyscallSpec("openat", 8, _openat_sets((_OPEN_RDONLY_CLOEXEC,))),
            SyscallSpec("close", 8, single_arg_sets((3, 4))),
            SyscallSpec("fstat", 4, single_arg_sets((1, 3))),
            SyscallSpec("brk", 2, arg_sets=()),
            SyscallSpec("mmap", 2, _mmap_sets((_MMAP_ANON_RW,))),
        ),
        fig2_targets=_targets(1.05, 1.04, 1.12, 1.18),
    )


# ---------------------------------------------------------------------------
# Micro benchmarks
# ---------------------------------------------------------------------------


def _sysbench_fio() -> WorkloadSpec:
    file_fds = list(range(4, 132))  # 128 files (Section X-A)
    return WorkloadSpec(
        name="sysbench-fio",
        kind="micro",
        description="SysBench FIO over 128 files totalling 512 MB",
        syscalls=(
            SyscallSpec("pread64", 28, tuple(
                ArgSetSpec(values=(fd, 16384, off), weight=1.0 / r)
                for r, (fd, off) in enumerate([(f, o) for f in file_fds[:32] for o in (0, 16384)], start=1)
            ), callsites=2, stickiness=0.85),
            SyscallSpec("pwrite64", 26, tuple(
                ArgSetSpec(values=(fd, 16384, off), weight=1.0 / r)
                for r, (fd, off) in enumerate([(f, o) for f in file_fds[:32] for o in (0, 16384)], start=1)
            ), callsites=2, stickiness=0.85),
            SyscallSpec("fsync", 18, single_arg_sets(file_fds[:32]), callsites=2, stickiness=0.85),
            SyscallSpec("lseek", 10, tuple(ArgSetSpec(values=(fd, 0, 0), weight=1.0 / r) for r, fd in enumerate(file_fds[:16], start=1))),
            SyscallSpec("openat", 6, _openat_sets((_OPEN_RDWR, _OPEN_CREAT))),
            SyscallSpec("close", 6, single_arg_sets(file_fds[:32])),
            SyscallSpec("fstat", 4, single_arg_sets(file_fds[:16])),
            SyscallSpec("futex", 2, _futex_sets((128, 129), (1,))),
        ),
        fig2_targets=_targets(1.10, 1.08, 1.22, 1.40),
    )


def _hpcc() -> WorkloadSpec:
    return WorkloadSpec(
        name="hpcc",
        kind="micro",
        description="GUPS from the HPC Challenge benchmark (compute-bound)",
        syscalls=(
            SyscallSpec("write", 10, _rw_sets((1,), (64, 512))),
            SyscallSpec("read", 6, _rw_sets((0, 3), (4096,))),
            SyscallSpec("mmap", 4, _mmap_sets((_MMAP_ANON_RW_BIG, _MMAP_ANON_RW))),
            SyscallSpec("munmap", 3, single_arg_sets((1 << 21,))),
            SyscallSpec("futex", 3, _futex_sets((0, 1), (1,))),
            SyscallSpec("brk", 2, arg_sets=()),
            SyscallSpec("sched_yield", 2, arg_sets=()),
        ),
        fig2_targets=_targets(1.04, 1.03, 1.08, 1.13),
    )


def _unixbench_syscall() -> WorkloadSpec:
    return WorkloadSpec(
        name="unixbench-syscall",
        kind="micro",
        description="UnixBench syscall exercise in mix mode",
        syscalls=(
            SyscallSpec("dup", 20, single_arg_sets(tuple(range(0, 12))), callsites=4, stickiness=0.85),
            SyscallSpec("close", 20, single_arg_sets(tuple(range(3, 67)), skew=0.8), callsites=8, stickiness=0.85),
            SyscallSpec("getpid", 16, arg_sets=()),
            SyscallSpec("getuid", 14, arg_sets=()),
            SyscallSpec("umask", 14, single_arg_sets((0o22, 0o77, 0o27, 0, 0o02, 0o07, 0o70, 0o72))),
            SyscallSpec("getgid", 8, arg_sets=()),
            SyscallSpec("getppid", 8, arg_sets=()),
        ),
        fig2_targets=_targets(1.20, 1.16, 1.40, 1.68),
    )


def _ipc(name: str, description: str, syscalls: Tuple[SyscallSpec, ...], targets) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, kind="micro", description=description, syscalls=syscalls,
        fig2_targets=targets,
    )


def _fifo_ipc() -> WorkloadSpec:
    return _ipc(
        "fifo-ipc",
        "IPC Bench FIFO ping-pong with 1000-byte packets",
        (
            SyscallSpec("read", 40, _rw_sets((3,), tuple([1000] + list(range(24, 1000, 48))), skew=1.4), callsites=4, stickiness=0.9),
            SyscallSpec("write", 40, _rw_sets((4,), tuple([1000] + list(range(16, 1000, 56))), skew=1.4), callsites=4, stickiness=0.9),
            SyscallSpec("poll", 10, tuple((ArgSetSpec(values=(1, 0)),))),
            SyscallSpec("openat", 5, _openat_sets((_OPEN_RDONLY, _OPEN_WRONLY_APPEND))),
            SyscallSpec("close", 5, single_arg_sets((3, 4))),
        ),
        _targets(1.14, 1.10, 1.30, 1.52),
    )


def _pipe_ipc() -> WorkloadSpec:
    return _ipc(
        "pipe-ipc",
        "IPC Bench pipe ping-pong with 1000-byte packets",
        (
            SyscallSpec("read", 46, _rw_sets((3,), tuple([1000] + list(range(24, 1000, 48))), skew=1.4), callsites=4, stickiness=0.9),
            SyscallSpec("write", 46, _rw_sets((4,), tuple([1000] + list(range(16, 1000, 56))), skew=1.4), callsites=4, stickiness=0.9),
            SyscallSpec("pipe2", 4, single_arg_sets((0,))),
            SyscallSpec("close", 4, single_arg_sets((3, 4))),
        ),
        _targets(1.14, 1.10, 1.30, 1.52),
    )


def _domain_ipc() -> WorkloadSpec:
    return _ipc(
        "domain-ipc",
        "IPC Bench Unix-domain-socket ping-pong with 1000-byte packets",
        (
            SyscallSpec("sendto", 42, _sendto_sets((5,), tuple([1000] + list(range(32, 1000, 64)))), callsites=4, stickiness=0.9),
            SyscallSpec("recvfrom", 42, _recvfrom_sets((5,), tuple([1000] + list(range(24, 1000, 72)))), callsites=4, stickiness=0.9),
            SyscallSpec("socket", 4, tuple((ArgSetSpec(values=(1, 1, 0)),))),
            SyscallSpec("connect", 4, tuple((ArgSetSpec(values=(5, 110)),))),
            SyscallSpec("close", 4, single_arg_sets((5,))),
            SyscallSpec("futex", 4, _futex_sets((128, 129), (1,))),
        ),
        _targets(1.12, 1.09, 1.28, 1.48),
    )


def _mq_ipc() -> WorkloadSpec:
    return _ipc(
        "mq-ipc",
        "IPC Bench POSIX message-queue ping-pong with 1000-byte packets",
        (
            SyscallSpec("mq_timedsend", 42, tuple(
                ArgSetSpec(values=(3, size, prio), weight=1.0 / r)
                for r, (size, prio) in enumerate(
                    [(s, p) for s in [1000] + list(range(40, 1000, 96)) for p in (0, 1)], start=1
                )
            ), callsites=3, stickiness=0.9),
            SyscallSpec("mq_timedreceive", 42, tuple(
                ArgSetSpec(values=(3, size), weight=1.0 / r)
                for r, size in enumerate([1000] + list(range(40, 1000, 80)), start=1)
            ), callsites=3, stickiness=0.9),
            SyscallSpec("mq_open", 4, tuple((ArgSetSpec(values=(0x42, 0o644)),))),
            SyscallSpec("close", 4, single_arg_sets((3,))),
            SyscallSpec("futex", 8, _futex_sets((0, 1), (1,))),
        ),
        _targets(1.10, 1.07, 1.17, 1.32),
    )


# ---------------------------------------------------------------------------


def build_catalog() -> Dict[str, WorkloadSpec]:
    """All fifteen workloads, keyed by name."""
    workloads = (
        _httpd(),
        _nginx(),
        _elasticsearch(),
        _mysql(),
        _cassandra(),
        _redis(),
        _grep(),
        _pwgen(),
        _sysbench_fio(),
        _hpcc(),
        _unixbench_syscall(),
        _fifo_ipc(),
        _pipe_ipc(),
        _domain_ipc(),
        _mq_ipc(),
    )
    return {w.name: w for w in workloads}


CATALOG = build_catalog()
MACRO_WORKLOADS = tuple(w for w in CATALOG.values() if w.kind == "macro")
MICRO_WORKLOADS = tuple(w for w in CATALOG.values() if w.kind == "micro")
