"""Trace generation from workload models.

Produces :class:`SyscallTrace` streams whose locality matches the
paper's characterisation (Section IV-C): skewed syscall popularity,
few argument sets per syscall with sticky per-call-site preferences,
and short reuse distances.
"""

from __future__ import annotations

import hashlib
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Iterator, List, Optional, Tuple

from repro.common.rng import DEFAULT_SEED, make_rng
from repro.syscalls.events import SyscallEvent, SyscallTrace, iter_runs, make_event
from repro.workloads.model import ArgSetSpec, SyscallSpec, WorkloadSpec

#: Synthetic text segment base for generated call-site PCs.
TEXT_BASE = 0x0000_5555_5555_0000


def _preferred_set(workload: str, syscall: str, site: int, num_sets: int) -> int:
    """Stable hash-spread preferred argument set for one call site."""
    digest = hashlib.sha256(f"{workload}/{syscall}/pref{site}".encode()).digest()
    return int.from_bytes(digest[4:8], "little") % num_sets


def callsite_pc(workload: str, syscall: str, site_index: int) -> int:
    """A stable, 4-byte-aligned synthetic PC for one call site."""
    digest = hashlib.sha256(f"{workload}/{syscall}/{site_index}".encode()).digest()
    offset = int.from_bytes(digest[:4], "little") & 0x00FF_FFFC
    return TEXT_BASE + offset


@dataclass
class _SyscallSampler:
    spec: SyscallSpec
    pcs: Tuple[int, ...]
    arg_sets: Tuple[ArgSetSpec, ...]
    arg_weights: Tuple[float, ...]
    #: Preferred argument-set index per call site (locality anchor).
    preferred: Tuple[int, ...]
    # Derived sampling state, precomputed so the per-event loop does no
    # repeated weight accumulation (see ``iter_events``).
    callsites: int = 1
    stickiness: float = 0.0
    #: ``random.choices`` internals, replicated: cumulative weights,
    #: their float total, and the bisect ``hi`` bound.  Drawing with
    #: ``bisect(cum, random() * total, 0, hi)`` consumes the RNG and
    #: selects indices exactly as ``rng.choices(..., k=1)`` does.
    cum_weights: List[float] = field(default_factory=list)
    total_weight: float = 0.0
    hi: int = 0
    #: ``[site][set_index]`` -> reusable frozen event (filled lazily).
    grid: List[List[Optional[SyscallEvent]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.callsites = self.spec.callsites
        self.stickiness = self.spec.stickiness
        self.cum_weights = list(accumulate(self.arg_weights))
        self.total_weight = self.cum_weights[-1] + 0.0
        self.hi = len(self.arg_sets) - 1
        self.grid = [[None] * len(self.arg_sets) for _ in range(self.callsites)]


class TraceGenerator:
    """Deterministic trace generator for one workload model."""

    def __init__(self, workload: WorkloadSpec, seed: int = DEFAULT_SEED) -> None:
        self.workload = workload
        self._rng = make_rng(seed, f"trace:{workload.name}")
        self._samplers: List[_SyscallSampler] = []
        self._weights: List[float] = []
        for spec in workload.syscalls:
            pcs = tuple(
                callsite_pc(workload.name, spec.name, i) for i in range(spec.callsites)
            )
            arg_sets = spec.arg_sets or (ArgSetSpec(values=()),)
            # Each call site anchors on a hash-spread argument set, so
            # preferences cover the whole population (a server's accept
            # loop sees whichever fds the kernel handed it, not the
            # numerically first ones).
            preferred = tuple(
                _preferred_set(workload.name, spec.name, i, len(arg_sets))
                for i in range(spec.callsites)
            )
            self._samplers.append(
                _SyscallSampler(
                    spec=spec,
                    pcs=pcs,
                    arg_sets=arg_sets,
                    arg_weights=tuple(s.weight for s in arg_sets),
                    preferred=preferred,
                )
            )
            self._weights.append(spec.weight)

    def events(self, count: int) -> SyscallTrace:
        """Generate *count* syscall events."""
        return SyscallTrace(self.iter_events(count))

    def iter_runs(self, count: int) -> Iterator[Tuple[SyscallEvent, int]]:
        """Stream *count* events as run-length-encoded ``(event, n)``
        pairs.  Same RNG draw order as :meth:`iter_events`, so the
        expansion is exactly the sequence :meth:`events` produces; the
        identity check in the coalescer is nearly free because the
        generator reuses frozen event instances."""
        return iter_runs(self.iter_events(count))

    def iter_events(self, count: int) -> Iterator[SyscallEvent]:
        """Stream *count* syscall events lazily.

        Yields the same event sequence :meth:`events` materializes (the
        RNG draw order is identical), so regimes can consume a trace as
        it is produced without holding the whole list.  Events are
        frozen dataclasses, so each distinct (syscall, argument set,
        call site) combination is built once and the instance reused —
        event construction dominated generation time before.
        """
        rng = self._rng
        rng_random = rng.random
        rng_randrange = rng.randrange
        samplers = self._samplers
        chosen = rng.choices(range(len(samplers)), weights=self._weights, k=count)
        for sampler_index in chosen:
            sampler = samplers[sampler_index]
            site = (
                rng_randrange(sampler.callsites) if sampler.callsites > 1 else 0
            )
            if sampler.hi == 0:
                set_index = 0
            elif rng_random() < sampler.stickiness:
                set_index = sampler.preferred[site]
            else:
                # Inlined rng.choices(range(n), weights=..., k=1)[0]:
                # same single random() draw, same bisect over the same
                # cumulative weights, so the stream is bit-identical.
                set_index = bisect(
                    sampler.cum_weights,
                    rng_random() * sampler.total_weight,
                    0,
                    sampler.hi,
                )
            row = sampler.grid[site]
            event = row[set_index]
            if event is None:
                event = make_event(
                    sampler.spec.name,
                    sampler.arg_sets[set_index].values,
                    pc=sampler.pcs[site],
                    table=self.workload.table,
                )
                row[set_index] = event
            yield event


def generate_trace(
    workload: WorkloadSpec, count: int, seed: int = DEFAULT_SEED
) -> SyscallTrace:
    """Convenience wrapper: one-shot trace for *workload*."""
    return TraceGenerator(workload, seed=seed).events(count)


def coverage_trace(workload: WorkloadSpec) -> SyscallTrace:
    """One event per (syscall, argument set): a full-coverage profiling
    pass.  The paper's toolkit assumes the profiling run observes every
    combination the application will issue in production (otherwise the
    production process would be killed); this makes that coverage
    explicit and deterministic."""
    trace = SyscallTrace()
    for spec in workload.syscalls:
        pc = callsite_pc(workload.name, spec.name, 0)
        arg_sets = spec.arg_sets or (ArgSetSpec(values=()),)
        for arg_set in arg_sets:
            trace.append(
                make_event(spec.name, arg_set.values, pc=pc, table=workload.table)
            )
    return trace


def profile_trace(
    workload: WorkloadSpec,
    seed: int = DEFAULT_SEED,
    count: int = 20_000,
    include_startup: bool = True,
) -> SyscallTrace:
    """The trace the strace-based toolkit records to build profiles.

    An independent RNG stream models a separate profiling execution; the
    coverage pass is prepended so the generated profile whitelists every
    argument set the application can produce.  Like a real strace
    session, the recording includes the process *start-up* tail (dynamic
    linker, runtime init) — those syscalls end up in every application's
    profile even though steady-state measurement never re-issues them
    (the runtime-required share of Figure 15a).
    """
    from repro.workloads.startup import startup_events

    trace = SyscallTrace(startup_events() if include_startup else ())
    trace.extend(coverage_trace(workload))
    trace.extend(TraceGenerator(workload, seed=seed ^ 0x5EED).events(count))
    return trace
