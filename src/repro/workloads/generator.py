"""Trace generation from workload models.

Produces :class:`SyscallTrace` streams whose locality matches the
paper's characterisation (Section IV-C): skewed syscall popularity,
few argument sets per syscall with sticky per-call-site preferences,
and short reuse distances.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.common.rng import DEFAULT_SEED, make_rng
from repro.syscalls.events import SyscallEvent, SyscallTrace, make_event
from repro.workloads.model import ArgSetSpec, SyscallSpec, WorkloadSpec

#: Synthetic text segment base for generated call-site PCs.
TEXT_BASE = 0x0000_5555_5555_0000


def _preferred_set(workload: str, syscall: str, site: int, num_sets: int) -> int:
    """Stable hash-spread preferred argument set for one call site."""
    digest = hashlib.sha256(f"{workload}/{syscall}/pref{site}".encode()).digest()
    return int.from_bytes(digest[4:8], "little") % num_sets


def callsite_pc(workload: str, syscall: str, site_index: int) -> int:
    """A stable, 4-byte-aligned synthetic PC for one call site."""
    digest = hashlib.sha256(f"{workload}/{syscall}/{site_index}".encode()).digest()
    offset = int.from_bytes(digest[:4], "little") & 0x00FF_FFFC
    return TEXT_BASE + offset


@dataclass
class _SyscallSampler:
    spec: SyscallSpec
    pcs: Tuple[int, ...]
    arg_sets: Tuple[ArgSetSpec, ...]
    arg_weights: Tuple[float, ...]
    #: Preferred argument-set index per call site (locality anchor).
    preferred: Tuple[int, ...]


class TraceGenerator:
    """Deterministic trace generator for one workload model."""

    def __init__(self, workload: WorkloadSpec, seed: int = DEFAULT_SEED) -> None:
        self.workload = workload
        self._rng = make_rng(seed, f"trace:{workload.name}")
        self._samplers: List[_SyscallSampler] = []
        self._weights: List[float] = []
        #: (sampler, arg set, site) -> reusable frozen event instance.
        self._event_cache: Dict[Tuple[int, int, int], SyscallEvent] = {}
        for spec in workload.syscalls:
            pcs = tuple(
                callsite_pc(workload.name, spec.name, i) for i in range(spec.callsites)
            )
            arg_sets = spec.arg_sets or (ArgSetSpec(values=()),)
            # Each call site anchors on a hash-spread argument set, so
            # preferences cover the whole population (a server's accept
            # loop sees whichever fds the kernel handed it, not the
            # numerically first ones).
            preferred = tuple(
                _preferred_set(workload.name, spec.name, i, len(arg_sets))
                for i in range(spec.callsites)
            )
            self._samplers.append(
                _SyscallSampler(
                    spec=spec,
                    pcs=pcs,
                    arg_sets=arg_sets,
                    arg_weights=tuple(s.weight for s in arg_sets),
                    preferred=preferred,
                )
            )
            self._weights.append(spec.weight)

    def events(self, count: int) -> SyscallTrace:
        """Generate *count* syscall events."""
        return SyscallTrace(self.iter_events(count))

    def iter_events(self, count: int) -> Iterator[SyscallEvent]:
        """Stream *count* syscall events lazily.

        Yields the same event sequence :meth:`events` materializes (the
        RNG draw order is identical), so regimes can consume a trace as
        it is produced without holding the whole list.  Events are
        frozen dataclasses, so each distinct (syscall, argument set,
        call site) combination is built once and the instance reused —
        event construction dominated generation time before.
        """
        rng = self._rng
        samplers = self._samplers
        event_cache: Dict[Tuple[int, int, int], SyscallEvent] = self._event_cache
        chosen = rng.choices(range(len(samplers)), weights=self._weights, k=count)
        for sampler_index in chosen:
            sampler = samplers[sampler_index]
            spec = sampler.spec
            site = rng.randrange(spec.callsites) if spec.callsites > 1 else 0
            if len(sampler.arg_sets) == 1:
                set_index = 0
            elif rng.random() < spec.stickiness:
                set_index = sampler.preferred[site]
            else:
                set_index = rng.choices(
                    range(len(sampler.arg_sets)), weights=sampler.arg_weights, k=1
                )[0]
            cache_key = (sampler_index, set_index, site)
            event = event_cache.get(cache_key)
            if event is None:
                event = make_event(
                    spec.name,
                    sampler.arg_sets[set_index].values,
                    pc=sampler.pcs[site],
                    table=self.workload.table,
                )
                event_cache[cache_key] = event
            yield event


def generate_trace(
    workload: WorkloadSpec, count: int, seed: int = DEFAULT_SEED
) -> SyscallTrace:
    """Convenience wrapper: one-shot trace for *workload*."""
    return TraceGenerator(workload, seed=seed).events(count)


def coverage_trace(workload: WorkloadSpec) -> SyscallTrace:
    """One event per (syscall, argument set): a full-coverage profiling
    pass.  The paper's toolkit assumes the profiling run observes every
    combination the application will issue in production (otherwise the
    production process would be killed); this makes that coverage
    explicit and deterministic."""
    trace = SyscallTrace()
    for spec in workload.syscalls:
        pc = callsite_pc(workload.name, spec.name, 0)
        arg_sets = spec.arg_sets or (ArgSetSpec(values=()),)
        for arg_set in arg_sets:
            trace.append(
                make_event(spec.name, arg_set.values, pc=pc, table=workload.table)
            )
    return trace


def profile_trace(
    workload: WorkloadSpec,
    seed: int = DEFAULT_SEED,
    count: int = 20_000,
    include_startup: bool = True,
) -> SyscallTrace:
    """The trace the strace-based toolkit records to build profiles.

    An independent RNG stream models a separate profiling execution; the
    coverage pass is prepended so the generated profile whitelists every
    argument set the application can produce.  Like a real strace
    session, the recording includes the process *start-up* tail (dynamic
    linker, runtime init) — those syscalls end up in every application's
    profile even though steady-state measurement never re-issues them
    (the runtime-required share of Figure 15a).
    """
    from repro.workloads.startup import startup_events

    trace = SyscallTrace(startup_events() if include_startup else ())
    trace.extend(coverage_trace(workload))
    trace.extend(TraceGenerator(workload, seed=seed ^ 0x5EED).events(count))
    return trace
