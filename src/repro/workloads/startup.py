"""Process start-up syscalls: the dynamic-linker / runtime-init tail.

Profiling a real application with strace records its start-up — execve,
the dynamic linker mapping libraries, TLS and signal setup — before the
steady-state loop begins.  Those syscalls appear in every application's
profile (part of the ~20% "runtime-required" share of Figure 15a) even
though steady-state measurement windows never re-execute them.

:func:`startup_events` reproduces a typical glibc/ld.so start-up
sequence; the trace generator prepends it to *profiling* traces only.
"""

from __future__ import annotations

from typing import List

from repro.syscalls.events import SyscallEvent, make_event

#: Synthetic text address for start-up call sites (ld.so / libc init).
_STARTUP_PC_BASE = 0x7F00_0000_0000

# (syscall, checkable-arg values) in realistic start-up order.
_SEQUENCE = (
    ("execve", ()),
    ("brk", ()),
    ("arch_prctl", (0x3001, 0)),            # ARCH_CET_STATUS probe
    ("access", (4,)),                        # R_OK on ld.so.preload
    ("openat", (0xFFFFFF9C, 0x80000, 0)),    # ld.so.cache, O_RDONLY|O_CLOEXEC
    ("fstat", (3,)),
    ("mmap", (65536, 1, 0x2, 3, 0)),         # cache map, PROT_READ, MAP_PRIVATE
    ("close", (3,)),
    # Library loading loop: open/read ELF header/map segments, per lib.
    ("openat", (0xFFFFFF9C, 0x80000, 0)),
    ("read", (3, 832)),                      # ELF header
    ("pread64", (3, 784, 64)),               # program headers
    ("fstat", (3,)),
    ("mmap", (2 << 20, 1, 0x802, 3, 0)),     # map text, MAP_PRIVATE|MAP_DENYWRITE
    ("mmap", (1 << 20, 5, 0x812, 3, 0x26000)),
    ("mmap", (360448, 1, 0x812, 3, 0x160000)),
    ("mmap", (24576, 3, 0x812, 3, 0x1B8000)),
    ("mprotect", (16384, 1)),
    ("close", (3,)),
    # Anonymous mappings for TLS and the stack guard.
    ("mmap", (12288, 3, 0x22, 0xFFFFFFFF, 0)),
    ("arch_prctl", (0x1002, 0)),             # ARCH_SET_FS
    ("set_tid_address", ()),
    ("set_robust_list", (24,)),
    ("rseq", (32, 0, 0x53053053)),
    ("mprotect", (16384, 1)),
    ("mprotect", (8192, 1)),
    ("prlimit64", (0, 3)),                   # RLIMIT_STACK query
    ("munmap", (65536,)),
    ("getrandom", (8, 1)),                   # AT_RANDOM-style seeding
    ("brk", ()),
    ("rt_sigaction", (13, 8)),               # SIGPIPE
    ("rt_sigaction", (17, 8)),               # SIGCHLD
    ("rt_sigprocmask", (0, 8)),              # SIG_BLOCK
    ("futex", (129, 2147483647, 0)),         # first wake on init locks
    ("exit_group", (0,)),                    # recorded when tracing to exit
)


def startup_events() -> List[SyscallEvent]:
    """One realistic process start-up, as strace would record it."""
    events = []
    for index, (name, args) in enumerate(_SEQUENCE):
        pc = _STARTUP_PC_BASE + 4 * index
        events.append(make_event(name, args, pc=pc))
    return events


#: Names contributed by start-up (useful for assertions/metrics).
STARTUP_SYSCALL_NAMES = tuple(sorted({name for name, _ in _SEQUENCE}))
