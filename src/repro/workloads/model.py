"""Workload models: syscall mixes with controlled locality.

The paper's workloads are real applications in Docker containers; we
model each as a *syscall population*: which syscalls it issues, with
what relative frequencies, from how many distinct call sites, and with
which argument-set populations.  Frequencies and argument-set counts are
shaped to match the paper's characterisation (Figure 3: 20 syscalls
cover 86% of calls, argument sets per syscall are few and skewed, reuse
distances are tens of syscalls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.syscalls.table import LINUX_X86_64, SyscallTable


@dataclass(frozen=True)
class ArgSetSpec:
    """One argument set a syscall is issued with, and its weight.

    ``values`` are positional over the syscall's *checkable* (non-
    pointer) argument slots, exactly as profiles whitelist them.
    """

    values: Tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("argument-set weight must be positive")


@dataclass(frozen=True)
class SyscallSpec:
    """One syscall in a workload's population."""

    name: str
    weight: float
    arg_sets: Tuple[ArgSetSpec, ...] = ()
    callsites: int = 1
    #: Probability that a call site re-issues its preferred argument set
    #: (temporal locality knob; high values produce Figure 3's locality).
    stickiness: float = 0.9

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"{self.name}: weight must be positive")
        if self.callsites < 1:
            raise ConfigError(f"{self.name}: needs at least one call site")
        if not 0.0 <= self.stickiness <= 1.0:
            raise ConfigError(f"{self.name}: stickiness must be within [0, 1]")

    def validate_against(self, table: SyscallTable) -> None:
        sdef = table.by_name(self.name)
        width = len(sdef.checkable_args)
        for arg_set in self.arg_sets:
            if len(arg_set.values) != width:
                raise ConfigError(
                    f"{self.name}: argument set {arg_set.values} does not match "
                    f"{width} checkable arguments"
                )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete workload model plus its calibration targets."""

    name: str
    kind: str  # "macro" | "micro"
    description: str
    syscalls: Tuple[SyscallSpec, ...]
    #: Paper-reported (or Figure-2-estimated) normalised execution times
    #: for the Seccomp regimes, used to calibrate application work and to
    #: report paper-vs-measured in EXPERIMENTS.md.
    fig2_targets: Mapping[str, float] = field(default_factory=dict)
    table: SyscallTable = LINUX_X86_64

    def __post_init__(self) -> None:
        if self.kind not in ("macro", "micro"):
            raise ConfigError(f"{self.name}: kind must be macro or micro")
        if not self.syscalls:
            raise ConfigError(f"{self.name}: needs at least one syscall")
        seen = set()
        for spec in self.syscalls:
            if spec.name in seen:
                raise ConfigError(f"{self.name}: duplicate syscall {spec.name}")
            seen.add(spec.name)
            spec.validate_against(self.table)

    @property
    def total_weight(self) -> float:
        return sum(s.weight for s in self.syscalls)

    @property
    def num_distinct_arg_sets(self) -> int:
        return sum(max(1, len(s.arg_sets)) for s in self.syscalls)

    def syscall_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.syscalls)


def uniform_arg_sets(value_lists: Sequence[Sequence[int]]) -> Tuple[ArgSetSpec, ...]:
    """Cartesian-free helper: each entry of *value_lists* is one argument
    set (a tuple of values over the checkable args), weighted by a
    Zipf-like decay so early sets dominate, as observed in Figure 3."""
    specs = []
    for rank, values in enumerate(value_lists, start=1):
        specs.append(ArgSetSpec(values=tuple(values), weight=1.0 / rank))
    return tuple(specs)


def fd_arg_sets(
    fds: Sequence[int], sizes: Sequence[int], skew: float = 1.0
) -> Tuple[ArgSetSpec, ...]:
    """Argument sets for (fd, size)-shaped syscalls like read/write."""
    specs = []
    rank = 1
    for fd in fds:
        for size in sizes:
            specs.append(ArgSetSpec(values=(fd, size), weight=1.0 / rank**skew))
            rank += 1
    return tuple(specs)


def single_arg_sets(values: Sequence[int], skew: float = 1.0) -> Tuple[ArgSetSpec, ...]:
    """Argument sets for syscalls with a single checkable argument."""
    return tuple(
        ArgSetSpec(values=(value,), weight=1.0 / rank**skew)
        for rank, value in enumerate(values, start=1)
    )
