"""Workload substrate: models, trace generation, the 15-workload catalog."""

from repro.workloads.catalog import (
    CATALOG,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    REGIME_COMPLETE,
    REGIME_COMPLETE_2X,
    REGIME_DOCKER,
    REGIME_INSECURE,
    REGIME_NOARGS,
    SECCOMP_REGIMES,
    build_catalog,
)
from repro.workloads.generator import (
    TraceGenerator,
    callsite_pc,
    coverage_trace,
    generate_trace,
    profile_trace,
)
from repro.workloads.model import (
    ArgSetSpec,
    SyscallSpec,
    WorkloadSpec,
    fd_arg_sets,
    single_arg_sets,
    uniform_arg_sets,
)

__all__ = [
    "CATALOG",
    "MACRO_WORKLOADS",
    "MICRO_WORKLOADS",
    "REGIME_COMPLETE",
    "REGIME_COMPLETE_2X",
    "REGIME_DOCKER",
    "REGIME_INSECURE",
    "REGIME_NOARGS",
    "SECCOMP_REGIMES",
    "build_catalog",
    "TraceGenerator",
    "callsite_pc",
    "coverage_trace",
    "generate_trace",
    "profile_trace",
    "ArgSetSpec",
    "SyscallSpec",
    "WorkloadSpec",
    "fd_arg_sets",
    "single_arg_sets",
    "uniform_arg_sets",
]
