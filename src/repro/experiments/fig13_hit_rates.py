"""Figure 13 — STB and SLB hit rates under hardware Draco.

Per workload: STB hit rate, SLB access hit rate (at the ROB head) and
SLB preload hit rate (at ROB insertion), under the syscall-complete
profile.  The paper: STB is over 93% everywhere except Elasticsearch
and Redis; SLB preload is near 99% except for HTTPD, Elasticsearch,
MySQL and Redis, whose SLB access rates are 75-93%.

The rates are read from the shared ``draco-hw-complete`` evaluation
(the same one Figure 12 and the flow-mix extension consume), whose
:class:`~repro.kernel.simulator.RunResult` carries the per-structure
counters when the analytic backend ran.  On sampled (``derived``)
runs the counters are extrapolated projections — see
``docs/PERFORMANCE.md``.  When the evaluation carries no structure
payload (``REPRO_ANALYTIC=0`` or ``REPRO_LEDGER=0``) the figure falls
back to driving a fresh regime and reading its counters directly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.common.rng import DEFAULT_SEED
from repro.experiments.results import ExperimentResult, merge_shard_rows
from repro.experiments.runner import get_context
from repro.experiments.stages import EvalPlan
from repro.kernel.simulator import run_trace
from repro.workloads.catalog import CATALOG

#: Stage-graph DAG: one shared ``draco-hw-complete`` evaluation per
#: workload (the same stage fig12 and flow-mix consume); the hit rates
#: are read from its structure counters, with the fresh-run fallback
#: below when the payload carries none.
STAGE_PLAN = EvalPlan(regimes=("draco-hw-complete",))

#: The four applications the paper singles out for lower SLB rates.
PAPER_LOW_SLB = ("httpd", "elasticsearch", "mysql", "redis")
#: The two the paper singles out for lower STB rates.
PAPER_LOW_STB = ("elasticsearch", "redis")


def _rates_from_structures(structures) -> Optional[Tuple[float, float, float, int]]:
    """(stb, slb access, slb preload, os invocations) or ``None``."""
    try:
        return (
            structures["stb"]["hit_rate"],
            structures["slb"]["access_hit_rate"],
            structures["slb"]["preload_hit_rate"],
            int(structures["counters"]["os_invocations"]),
        )
    except (KeyError, TypeError):
        return None


def _rates_from_fresh_run(ctx, name: str) -> Tuple[float, float, float, int]:
    """Fallback: drive a fresh regime and read its counters directly."""
    regime = ctx.make_regime("draco-hw-complete")
    run_trace(
        ctx.trace,
        regime,
        work_cycles_per_syscall=ctx.work_cycles,
        syscall_base_cycles=ctx.syscall_base_cycles,
        workload_name=name,
    )
    draco = regime.draco
    return (
        draco.stb.hit_rate,
        draco.slb.access_hit_rate,
        draco.slb.preload_hit_rate,
        draco.stats.os_invocations,
    )


def run(
    events: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    workloads: Optional[Tuple[str, ...]] = None,
) -> ExperimentResult:
    names = workloads or tuple(CATALOG)
    rows = []
    for name in names:
        kwargs = dict(seed=seed)
        if events is not None:
            kwargs["events"] = events
        ctx = get_context(name, **kwargs)
        result = ctx.evaluate("draco-hw-complete")
        rates = (
            _rates_from_structures(result.structures)
            if result.structures is not None
            else None
        )
        if rates is None:
            rates = _rates_from_fresh_run(ctx, name)
        stb, access, preload, os_invocations = rates
        rows.append(
            (
                name,
                CATALOG[name].kind,
                round(stb, 4),
                round(access, 4),
                round(preload, 4),
                os_invocations,
            )
        )
    return ExperimentResult(
        experiment_id="Fig 13",
        title="STB and SLB hit rates (syscall-complete, hardware Draco)",
        columns=(
            "workload",
            "kind",
            "stb_hit_rate",
            "slb_access_hit_rate",
            "slb_preload_hit_rate",
            "os_invocations",
        ),
        rows=tuple(rows),
        notes=(
            f"paper: STB > 93% except {PAPER_LOW_STB}",
            f"paper: SLB access 75-93% for {PAPER_LOW_SLB}, higher elsewhere",
        ),
    )


def merge_shards(parts: Sequence[ExperimentResult]) -> ExperimentResult:
    """Merge per-workload shard results (catalog order): a plain
    row concatenation — this figure has no summary rows."""
    return merge_shard_rows(parts)


def main() -> None:
    print(run().format_table())


if __name__ == "__main__":
    main()
