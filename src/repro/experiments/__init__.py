"""Experiment layer: one module per paper table/figure plus the runner,
the parallel engine, and the on-disk result cache."""

from repro.experiments.results import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_EVENTS,
    WorkloadContext,
    build_context,
    calibrate_work_cycles,
    get_context,
)

__all__ = [
    "ExperimentResult",
    "DEFAULT_EVENTS",
    "WorkloadContext",
    "build_context",
    "calibrate_work_cycles",
    "get_context",
    "run_suite",
    "SuiteRun",
]


def run_suite(*args, **kwargs):
    """Engine entry point (lazy import keeps the registry load cheap)."""
    from repro.experiments.engine import run_suite as _run_suite

    return _run_suite(*args, **kwargs)


def __getattr__(name):
    if name == "SuiteRun":
        from repro.experiments.engine import SuiteRun

        return SuiteRun
    raise AttributeError(name)
