"""Experiment layer: one module per paper table/figure plus the runner."""

from repro.experiments.results import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_EVENTS,
    WorkloadContext,
    build_context,
    calibrate_work_cycles,
    get_context,
)

__all__ = [
    "ExperimentResult",
    "DEFAULT_EVENTS",
    "WorkloadContext",
    "build_context",
    "calibrate_work_cycles",
    "get_context",
]
