"""Stage-graph orchestrator: experiments as DAGs of cacheable stages.

The flat engine treats each registry entry as one opaque task, so a
change that only affects an experiment's *analysis* still re-runs its
simulations, and two experiments that consume the same evaluation
(fig13 and the flow-mix extension both read ``draco-hw-complete``)
each recompute it.  This module decomposes the catalog-loop
experiments into a DAG of **stages**::

    trace ──► calibration ──► eval (one per workload × regime) ──► analysis

Each stage is content-addressed: its digest folds the stage kind and
parameters, the digests of its upstream stages, the source
fingerprint, the compiler / simulation-kernel / analytic format
versions, ``STAGE_FORMAT_VERSION``, and the runtime knobs that change
what a stage records.  Identical stages requested by several
experiments execute **once** per suite run (and dedupe on disk); a
parameter change invalidates exactly the affected stages and their
descendants.

Stage payloads are plain JSON: ``trace`` and ``calibration`` stages
return tiny manifests (their real output lands in the persistent
context cache, which downstream stages read), ``eval`` stages return
the exact :meth:`~repro.kernel.simulator.RunResult.to_json_dict`
payload, and terminal stages return the experiment's
:class:`~repro.experiments.results.ExperimentResult`.  Intermediate
payloads persist in the ``stages/<kind>/<digest>.json`` tier of
:class:`repro.experiments.cache.ResultCache`; terminal payloads are
stored in the existing ``results/`` tier under the flat per-experiment
digest, so warm runs, ``summary`` and every existing cache tool keep
working unchanged.

Byte-identity with the flat engine is structural, not incidental: the
analysis stage rebuilds each workload context and **seeds** the staged
evaluations into its memo
(:meth:`~repro.experiments.runner.WorkloadContext.seed_evaluation`),
then calls the experiment's unmodified ``run()`` — the same row
assembly, rounding and note text as a flat run.  A differential test
asserts the full-registry markdown matches under
``REPRO_STAGE_GRAPH=0`` and ``=1``.

``--refresh`` is stage-scoped here: terminal stages always recompute
(and restore the ``results/`` entry) while intermediate stages are
served from the ``stages/`` tier, so a warm refresh re-renders every
table without re-simulating.  ``REPRO_STAGE_GRAPH=0`` falls back to
the flat engine.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common import storage, telemetry
from repro.common.analytic import ANALYTIC_VERSION, analytic_enabled
from repro.common.rng import DEFAULT_SEED
from repro.cpu.params import DEFAULT_SW_COSTS
from repro.experiments import cache as result_cache
from repro.experiments import pool as warm_pool
from repro.experiments import runner
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import DEFAULT_EVENTS, get_context
from repro.kernel.simulator import RunResult
from repro.workloads.catalog import CATALOG

#: Cache modes, string-compatible with :mod:`repro.experiments.engine`
#: (not imported from there: the engine imports this module).
CACHE_ON = "on"
CACHE_OFF = "off"
CACHE_REFRESH = "refresh"

#: Stage kinds, in pipeline order.
KIND_TRACE = "trace"
KIND_CALIBRATION = "calibration"
KIND_EVAL = "eval"
KIND_ANALYSIS = "analysis"
KIND_EXPERIMENT = "experiment"  # monolithic fallback: the whole run()
#: Fleet-serving stage kinds (see :class:`FleetPlan`): load and
#: calibration are provenance manifests (their outputs are cheap, pure
#: functions of the stage params that downstream stages recompute
#: in-process), one ``fleet-eval`` per dispatch policy carries the full
#: :meth:`~repro.kernel.fleet.FleetResult.to_json_dict` payload.
KIND_FLEET_LOAD = "fleet-load"
KIND_FLEET_CALIBRATION = "fleet-calibration"
KIND_FLEET_EVAL = "fleet-eval"

#: Kinds persisted in the ``stages/`` tier.  Terminal kinds
#: (analysis / experiment) store their ExperimentResult in the
#: ``results/`` tier under the flat per-experiment digest instead.
_INTERMEDIATE_KINDS = frozenset(
    {KIND_TRACE, KIND_CALIBRATION, KIND_EVAL,
     KIND_FLEET_LOAD, KIND_FLEET_CALIBRATION, KIND_FLEET_EVAL}
)

#: Runtime knobs folded into every stage digest.  These change what a
#: stage payload *contains* (per-flow ledgers, structure counters) or
#: which execution tier produced it, so a payload computed under one
#: setting must never be served under another — the same contract as
#: the per-context evaluation memo key in :mod:`repro.experiments.runner`.
_STAGE_ENV_KNOBS = (
    "REPRO_BULK",
    "REPRO_FASTPATH",
    "REPRO_LEDGER",
    "REPRO_LEDGER_AUDIT",
)

#: run() keyword arguments the DAG planner understands.  Anything else
#: (unknown overrides) falls back to a monolithic experiment stage.
_PLANNABLE_KWARGS = frozenset({"events", "seed", "workloads", "old_kernel"})


@dataclass(frozen=True)
class EvalPlan:
    """Declarative stage plan for a catalog-loop experiment.

    Experiments whose ``run()`` is "for each workload, evaluate these
    regimes, then assemble rows" declare one of these (module-level
    ``STAGE_PLAN``) and the planner derives the full DAG.  ``old_kernel``
    is the fixed default for wrappers like fig16/fig17 whose ``run()``
    hard-codes the Appendix A cost model; a ``run_kwargs`` override
    still wins when the experiment accepts one.
    """

    regimes: Tuple[str, ...]
    old_kernel: bool = False


@dataclass(frozen=True)
class FleetPlan:
    """Declarative stage plan for the fleet-serving experiment.

    Expands to load + calibration provenance stages shared by one
    ``fleet-eval`` stage per dispatch policy, feeding the terminal
    analysis.  Parameter resolution is delegated to
    :func:`repro.experiments.fleet_serving.resolve_params` so staged
    and flat runs derive identical :class:`~repro.kernel.fleet.FleetParams`.
    """

    policies: Tuple[str, ...]


#: ``run()`` kwargs the fleet planner understands.
_FLEET_PLANNABLE_KWARGS = frozenset({"events", "seed", "tenants", "invocations"})


@dataclass(frozen=True)
class Stage:
    """One content-addressed unit of work in the suite DAG."""

    key: str  # content digest; the identity used for dedup and storage
    kind: str
    label: str  # human-readable, e.g. "eval:redis:draco-hw-complete"
    params: Mapping[str, Any]
    deps: Tuple[str, ...]


@dataclass
class ExperimentPlan:
    """One experiment's stages plus its terminal (result-producing) stage."""

    experiment_id: str
    run_kwargs: Dict[str, Any]
    flat_digest: str  # the flat engine's result_key, for the results/ tier
    stages: Dict[str, Stage]  # insertion order is topological
    terminal: str


def _stage_digest(kind: str, params: Mapping[str, Any], deps: Sequence[str]) -> str:
    payload = {
        "stage_kind": kind,
        "params": dict(params),
        "deps": list(deps),
        "code": result_cache.code_fingerprint(),
        "stage_format": result_cache.STAGE_FORMAT_VERSION,
        "bpf_compiler": result_cache.COMPILER_VERSION,
        "sim_kernel": result_cache.SIM_KERNEL_VERSION,
        "analytic": ANALYTIC_VERSION if analytic_enabled() else 0,
        "env": {name: os.environ.get(name) for name in _STAGE_ENV_KNOBS},
    }
    return result_cache.params_digest(payload)


def build_plan(
    experiment_id: str,
    plan: "EvalPlan | FleetPlan",
    run_kwargs: Mapping[str, Any],
    flat_digest: str,
) -> Optional[ExperimentPlan]:
    """Expand a declarative :class:`EvalPlan` into a concrete DAG.

    Returns ``None`` when ``run_kwargs`` carries overrides the planner
    does not understand — the caller then falls back to a monolithic
    experiment stage, which executes the exact flat-engine semantics.
    """
    if isinstance(plan, FleetPlan):
        return _build_fleet_plan(experiment_id, plan, run_kwargs, flat_digest)
    if not _PLANNABLE_KWARGS.issuperset(run_kwargs):
        return None
    names = tuple(run_kwargs.get("workloads") or tuple(CATALOG))
    if any(name not in CATALOG for name in names):
        return None  # let run() raise its own error, monolithically
    events = run_kwargs.get("events")
    events = DEFAULT_EVENTS if events is None else int(events)
    seed = int(run_kwargs.get("seed", DEFAULT_SEED))
    old_kernel = bool(run_kwargs.get("old_kernel", plan.old_kernel))

    stages: Dict[str, Stage] = {}

    def add(kind: str, label: str, params: Dict[str, Any], deps: Tuple[str, ...] = ()) -> str:
        key = _stage_digest(kind, params, deps)
        stages.setdefault(
            key, Stage(key=key, kind=kind, label=label, params=params, deps=deps)
        )
        return key

    eval_keys: List[str] = []
    for name in names:
        # Trace and calibration are cost-model independent (calibration
        # always solves W against the modern-kernel costs — see
        # runner.build_context), so modern and old-kernel experiments
        # share these stages; only evals key on ``old_kernel``.
        trace_key = add(
            KIND_TRACE,
            f"trace:{name}",
            {"workload": name, "events": events, "seed": seed},
        )
        calib_key = add(
            KIND_CALIBRATION,
            f"calibration:{name}",
            {"workload": name, "events": events, "seed": seed, "compiler": "binary_tree"},
            (trace_key,),
        )
        for regime in plan.regimes:
            eval_keys.append(
                add(
                    KIND_EVAL,
                    f"eval:{name}:{regime}" + (":old-kernel" if old_kernel else ""),
                    {
                        "workload": name,
                        "events": events,
                        "seed": seed,
                        "regime": regime,
                        "old_kernel": old_kernel,
                    },
                    (trace_key, calib_key),
                )
            )
    terminal = add(
        KIND_ANALYSIS,
        f"analysis:{experiment_id}",
        {"experiment_id": experiment_id, "run_kwargs": dict(run_kwargs)},
        tuple(eval_keys),
    )
    return ExperimentPlan(
        experiment_id=experiment_id,
        run_kwargs=dict(run_kwargs),
        flat_digest=flat_digest,
        stages=stages,
        terminal=terminal,
    )


def _build_fleet_plan(
    experiment_id: str,
    plan: FleetPlan,
    run_kwargs: Mapping[str, Any],
    flat_digest: str,
) -> Optional[ExperimentPlan]:
    """Expand a :class:`FleetPlan` into load/calibration/eval stages."""
    if not _FLEET_PLANNABLE_KWARGS.issuperset(run_kwargs):
        return None
    from repro.experiments import fleet_serving

    params = fleet_serving.resolve_params(
        run_kwargs.get("events"),
        seed=int(run_kwargs.get("seed", DEFAULT_SEED)),
        tenants=run_kwargs.get("tenants"),
        invocations=run_kwargs.get("invocations"),
    )
    fleet = {
        "tenants": params.tenants,
        "invocations": params.invocations,
        "seed": params.seed,
    }
    stages: Dict[str, Stage] = {}

    def add(kind: str, label: str, params: Dict[str, Any], deps: Tuple[str, ...] = ()) -> str:
        key = _stage_digest(kind, params, deps)
        stages.setdefault(
            key, Stage(key=key, kind=kind, label=label, params=params, deps=deps)
        )
        return key

    load_key = add(KIND_FLEET_LOAD, "fleet-load", {"fleet": fleet})
    calib_key = add(KIND_FLEET_CALIBRATION, "fleet-calibration", {"fleet": fleet})
    eval_keys = tuple(
        add(
            KIND_FLEET_EVAL,
            f"fleet-eval:{policy}",
            {"fleet": fleet, "policy": policy},
            (load_key, calib_key),
        )
        for policy in plan.policies
    )
    terminal = add(
        KIND_ANALYSIS,
        f"analysis:{experiment_id}",
        {"experiment_id": experiment_id, "run_kwargs": dict(run_kwargs)},
        eval_keys,
    )
    return ExperimentPlan(
        experiment_id=experiment_id,
        run_kwargs=dict(run_kwargs),
        flat_digest=flat_digest,
        stages=stages,
        terminal=terminal,
    )


def monolithic_plan(
    experiment_id: str, run_kwargs: Mapping[str, Any], flat_digest: str
) -> ExperimentPlan:
    """Single-stage plan wrapping the whole ``run()`` (non-DAG experiments)."""
    params = {"experiment_id": experiment_id, "run_kwargs": dict(run_kwargs)}
    key = _stage_digest(KIND_EXPERIMENT, params, ())
    stage = Stage(
        key=key, kind=KIND_EXPERIMENT, label=f"run:{experiment_id}", params=params, deps=()
    )
    return ExperimentPlan(
        experiment_id=experiment_id,
        run_kwargs=dict(run_kwargs),
        flat_digest=flat_digest,
        stages={key: stage},
        terminal=key,
    )


# -- in-memory stage tier ----------------------------------------------
#
# A small LRU of hot stage payloads sitting *above* the ``stages/``
# disk tier: a repeat hit is served without a stat, file read, or JSON
# parse.  Safe because stage digests are fully content-addressed (code
# fingerprint, format versions, env knobs, dep digests) — a payload
# valid on disk under a digest is equally valid in memory under it.
# Disabled by default (limit 0): batch CLI runs gain little, and tests
# that corrupt the disk tier to force re-execution must keep seeing
# the disk as the source of truth.  The experiment service turns it on.

_STAGE_MEMORY_LOCK = threading.Lock()
_STAGE_MEMORY: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
_STAGE_MEMORY_LIMIT = 0
_STAGE_MEMORY_STATS = {"hits": 0, "misses": 0, "stored": 0, "evicted": 0}


def configure_stage_memory(limit: int) -> None:
    """Set the in-memory tier's capacity (entries); 0 disables it."""
    global _STAGE_MEMORY_LIMIT
    with _STAGE_MEMORY_LOCK:
        _STAGE_MEMORY_LIMIT = max(0, int(limit))
        while len(_STAGE_MEMORY) > _STAGE_MEMORY_LIMIT:
            _STAGE_MEMORY.popitem(last=False)
            _STAGE_MEMORY_STATS["evicted"] += 1


def reset_stage_memory() -> None:
    """Drop all entries and zero the counters (tests, code drift)."""
    with _STAGE_MEMORY_LOCK:
        _STAGE_MEMORY.clear()
        for name in _STAGE_MEMORY_STATS:
            _STAGE_MEMORY_STATS[name] = 0


def stage_memory_stats() -> Dict[str, int]:
    with _STAGE_MEMORY_LOCK:
        snapshot = dict(_STAGE_MEMORY_STATS)
        snapshot["entries"] = len(_STAGE_MEMORY)
        snapshot["limit"] = _STAGE_MEMORY_LIMIT
    return snapshot


def _stage_memory_get(kind: str, key: str) -> Any:
    with _STAGE_MEMORY_LOCK:
        if _STAGE_MEMORY_LIMIT <= 0:
            return None
        entry = _STAGE_MEMORY.get((kind, key))
        if entry is None:
            _STAGE_MEMORY_STATS["misses"] += 1
            return None
        _STAGE_MEMORY.move_to_end((kind, key))
        _STAGE_MEMORY_STATS["hits"] += 1
        return entry


def _stage_memory_put(kind: str, key: str, payload: Any) -> None:
    with _STAGE_MEMORY_LOCK:
        if _STAGE_MEMORY_LIMIT <= 0:
            return
        _STAGE_MEMORY[(kind, key)] = payload
        _STAGE_MEMORY.move_to_end((kind, key))
        _STAGE_MEMORY_STATS["stored"] += 1
        while len(_STAGE_MEMORY) > _STAGE_MEMORY_LIMIT:
            _STAGE_MEMORY.popitem(last=False)
            _STAGE_MEMORY_STATS["evicted"] += 1


# -- stage executors (run in workers; must stay module-top-level) -------


def _run_trace_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    spec = CATALOG[params["workload"]]
    trace = runner._trace_for(spec, params["events"], params["seed"])
    # The trace itself lands in the persistent context cache (or the
    # in-process memo); the stage payload is just a manifest.
    return {"events": len(trace)}


def _run_calibration_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    spec = CATALOG[params["workload"]]
    trace = runner._trace_for(spec, params["events"], params["seed"])
    bundle = runner._bundle_for(spec, params["seed"])
    work = runner.calibrate_work_cycles(
        spec, trace, bundle, DEFAULT_SW_COSTS, params["compiler"], seed=params["seed"]
    )
    return {"work_cycles": work}


def _run_eval_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    ctx = get_context(
        params["workload"],
        events=params["events"],
        seed=params["seed"],
        old_kernel=params["old_kernel"],
    )
    return ctx.evaluate(params["regime"]).to_json_dict()


def _run_fleet_params(params: Mapping[str, Any]):
    from repro.kernel.fleet import FleetParams

    fleet = params["fleet"]
    return FleetParams(
        tenants=int(fleet["tenants"]),
        invocations=int(fleet["invocations"]),
        seed=int(fleet["seed"]),
    )


def _run_fleet_load_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.kernel.fleet import generate_load

    load = generate_load(_run_fleet_params(params))
    # Provenance manifest only: the load is a pure function of the
    # stage params, which the eval stages regenerate in-process.
    return {
        "invocations": len(load),
        "last_arrival_ms": round(load[-1].arrival_ms, 3),
    }


def _run_fleet_calibration_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.kernel.fleet import calibrate_classes

    classes = calibrate_classes(_run_fleet_params(params))
    return {
        "classes": len(classes),
        "footprint_bytes": [c.footprint_bytes for c in classes],
    }


def _run_fleet_eval_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments import fleet_serving

    return fleet_serving.eval_payload(_run_fleet_params(params), params["policy"])


def _run_analysis_stage(
    params: Mapping[str, Any], dep_info: Sequence[Tuple[str, Dict[str, Any], Any]]
) -> Dict[str, Any]:
    from repro.experiments.registry import by_id

    for kind, dep_params, payload in dep_info:
        if kind == KIND_FLEET_EVAL:
            from repro.experiments import fleet_serving

            fleet_serving.seed_eval(dep_params, payload)
            continue
        if kind != KIND_EVAL:
            continue
        ctx = get_context(
            dep_params["workload"],
            events=dep_params["events"],
            seed=dep_params["seed"],
            old_kernel=dep_params["old_kernel"],
        )
        ctx.seed_evaluation(dep_params["regime"], RunResult.from_json_dict(payload))
    result = by_id(params["experiment_id"]).run(**params["run_kwargs"])
    return result.to_json_dict()


def _run_experiment_stage(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.registry import by_id

    result = by_id(params["experiment_id"]).run(**params["run_kwargs"])
    return result.to_json_dict()


def _execute_stage(
    kind: str,
    key: str,
    params: Dict[str, Any],
    dep_info: List[Tuple[str, Dict[str, Any], Any]],
    cache_mode: str,
    result_digest: Optional[str],
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Worker entry point: run one stage, capture failure + telemetry.

    ``cache_dir`` is the suite's resolved cache root, re-applied here
    because warm-pool workers outlive any single suite and must not
    trust environment inherited at fork time (see
    :func:`repro.experiments.engine._execute_one`).

    Returns a JSON/pickle-safe envelope; never raises.  Intermediate
    payloads are written to the ``stages/`` tier here (in the worker,
    which already holds the payload); terminal payloads go to the flat
    ``results/`` tier exactly like the flat engine's workers.
    """
    with storage.cache_overrides(
        cache_dir=cache_dir, disable=(cache_mode == CACHE_OFF)
    ):
        return _execute_stage_inner(
            kind, key, params, dep_info, cache_mode, result_digest
        )


def _execute_stage_inner(
    kind: str,
    key: str,
    params: Dict[str, Any],
    dep_info: List[Tuple[str, Dict[str, Any], Any]],
    cache_mode: str,
    result_digest: Optional[str],
) -> Dict[str, Any]:
    telemetry.reset_counters()
    started = time.perf_counter()
    out: Dict[str, Any] = {"key": key, "error": None, "payload": None, "stored": False}
    try:
        if kind == KIND_TRACE:
            payload = _run_trace_stage(params)
        elif kind == KIND_CALIBRATION:
            payload = _run_calibration_stage(params)
        elif kind == KIND_EVAL:
            payload = _run_eval_stage(params)
        elif kind == KIND_FLEET_LOAD:
            payload = _run_fleet_load_stage(params)
        elif kind == KIND_FLEET_CALIBRATION:
            payload = _run_fleet_calibration_stage(params)
        elif kind == KIND_FLEET_EVAL:
            payload = _run_fleet_eval_stage(params)
        elif kind == KIND_ANALYSIS:
            payload = _run_analysis_stage(params, dep_info)
        elif kind == KIND_EXPERIMENT:
            payload = _run_experiment_stage(params)
        else:
            raise RuntimeError(f"unknown stage kind {kind!r}")
    except Exception:
        out["error"] = traceback.format_exc()
    else:
        out["payload"] = payload
        if kind in _INTERMEDIATE_KINDS:
            if cache_mode != CACHE_OFF and result_cache.cache_enabled():
                result_cache.ResultCache().store_stage(kind, key, payload)
                out["stored"] = True
        elif cache_mode in (CACHE_ON, CACHE_REFRESH):
            result_cache.ResultCache().store_result(
                params["experiment_id"],
                result_digest,
                ExperimentResult.from_json_dict(payload),
            )
            out["stored"] = True
    out["elapsed_s"] = time.perf_counter() - started
    out["simulation"] = telemetry.counters_snapshot()
    return out


# -- scheduler ----------------------------------------------------------


def execute_suite(
    tasks: Sequence[Tuple[str, Dict[str, Any]]],
    *,
    jobs: int = 1,
    cache_mode: str = CACHE_ON,
    cache_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run ``[(experiment_id, run_kwargs), ...]`` through the stage graph.

    Returns one ``{"result", "record"}`` payload per task, in task
    order — the same envelope the flat engine's workers produce, so
    :func:`repro.experiments.engine.run_suite` assembles outcomes
    identically on both paths.  Must be called with the cache
    overrides already applied (run_suite does this); ``cache_dir`` is
    the resolved root, forwarded to pool workers as a task argument.
    """
    from repro.experiments.registry import by_id

    store = result_cache.ResultCache()
    prebuilt: Dict[int, Dict[str, Any]] = {}
    plans: List[Tuple[int, ExperimentPlan]] = []

    for index, (experiment_id, run_kwargs) in enumerate(tasks):
        experiment = by_id(experiment_id)
        flat_digest = store.result_key(experiment_id, run_kwargs)
        if cache_mode == CACHE_ON:
            probe_started = time.perf_counter()
            cached = store.load_result(experiment_id, flat_digest)
            if cached is not None:
                # Whole result cached: serve it without touching the
                # subgraph, same as the flat engine's warm path.
                record = telemetry.ExperimentRecord(
                    experiment_id=experiment_id,
                    title=experiment.title,
                    cache=telemetry.CACHE_HIT,
                    wall_time_s=time.perf_counter() - probe_started,
                    params_digest=flat_digest,
                    simulation=telemetry.SimulationCounters().as_dict(),
                )
                prebuilt[index] = {
                    "result": cached.to_json_dict(),
                    "record": record.to_json_dict(),
                }
                continue
        plan = None
        if getattr(experiment, "stage_plan", None) is not None:
            plan = build_plan(experiment_id, experiment.stage_plan, run_kwargs, flat_digest)
        if plan is None:
            plan = monolithic_plan(experiment_id, run_kwargs, flat_digest)
        plans.append((index, plan))

    # Union graph.  Stage insertion order is topological: a stage's
    # deps are created before it within each plan, and setdefault keeps
    # the earliest position for shared stages.
    stages: Dict[str, Stage] = {}
    owner: Dict[str, int] = {}  # stage key -> first requesting task index
    for index, plan in plans:
        for key, stage in plan.stages.items():
            stages.setdefault(key, stage)
            owner.setdefault(key, index)
    terminal_digest = {plan.terminal: plan.flat_digest for _, plan in plans}

    payloads: Dict[str, Any] = {}
    status: Dict[str, str] = {}  # key -> "hit" | "exec"
    meta: Dict[str, Dict[str, Any]] = {}  # key -> executed-stage envelope
    failed: Dict[str, str] = {}  # key -> originating traceback
    done: set = set()

    # Probe the stages/ tier for intermediates (terminals live in the
    # results/ tier and were probed per experiment above; under
    # --refresh they must recompute, which is exactly what falls out of
    # never probing them here).
    if cache_mode != CACHE_OFF:
        for key, stage in stages.items():
            if stage.kind in _INTERMEDIATE_KINDS:
                # Memory tier first (service hot path: no stat, no JSON
                # parse), then the stages/ disk tier, which backfills
                # the memory tier on a hit.
                cached = _stage_memory_get(stage.kind, key)
                if cached is None:
                    cached = store.load_stage(stage.kind, key)
                    if cached is not None:
                        _stage_memory_put(stage.kind, key, cached)
                if cached is not None:
                    payloads[key] = cached
                    status[key] = "hit"
                    done.add(key)

    # Prune to the stages actually needed: the transitive dependency
    # closure of unsatisfied terminals.  (A trace stage whose evals all
    # hit has no reason to run.)
    needed: set = set()
    stack = [plan.terminal for _, plan in plans if plan.terminal not in done]
    while stack:
        key = stack.pop()
        if key in needed or key in done:
            continue
        needed.add(key)
        stack.extend(d for d in stages[key].deps if d not in done and d not in needed)

    order = [key for key in stages if key in needed]
    dependents: Dict[str, List[str]] = {}
    unmet: Dict[str, int] = {}
    for key in order:
        missing = [d for d in stages[key].deps if d not in done]
        unmet[key] = len(missing)
        for dep in missing:
            dependents.setdefault(dep, []).append(key)

    def _propagate_failure(key: str, error: str) -> None:
        stack = [key]
        while stack:
            current = stack.pop()
            if current in failed:
                continue
            failed[current] = error
            stack.extend(dependents.get(current, ()))

    def _finish(out: Dict[str, Any]) -> List[str]:
        """Record one executed stage; return its newly-ready dependents."""
        key = out["key"]
        meta[key] = out
        if out["error"] is not None:
            _propagate_failure(key, out["error"])
            return []
        payloads[key] = out["payload"]
        status[key] = "exec"
        done.add(key)
        if stages[key].kind in _INTERMEDIATE_KINDS and cache_mode != CACHE_OFF:
            _stage_memory_put(stages[key].kind, key, out["payload"])
        ready: List[str] = []
        for dependent in dependents.get(key, ()):
            unmet[dependent] -= 1
            if unmet[dependent] == 0 and dependent not in failed:
                ready.append(dependent)
        return ready

    def _submit_args(key: str):
        stage = stages[key]
        dep_info: List[Tuple[str, Dict[str, Any], Any]] = []
        if stage.kind == KIND_ANALYSIS:
            dep_info = [
                (stages[d].kind, dict(stages[d].params), payloads[d])
                for d in stage.deps
            ]
        return (
            stage.kind,
            key,
            dict(stage.params),
            dep_info,
            cache_mode,
            terminal_digest.get(key),
            cache_dir,
        )

    if jobs == 1 or len(order) <= 1:
        # Insertion order is topological, so a single pass suffices.
        for key in order:
            if key in failed:
                continue
            _finish(_execute_stage(*_submit_args(key)))
    elif order:
        with warm_pool.suite_executor(jobs, len(order)) as executor:
            futures: Dict[Any, str] = {}
            ready = [key for key in order if unmet[key] == 0]
            while ready or futures:
                for key in ready:
                    futures[executor.submit(_execute_stage, *_submit_args(key))] = key
                ready = []
                if not futures:
                    break
                completed, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in completed:
                    futures.pop(future)
                    ready.extend(_finish(future.result()))

    # Assemble per-task payloads in task order.
    out: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    for index, payload in prebuilt.items():
        out[index] = payload
    if cache_mode == CACHE_OFF:
        suite_cache_status = telemetry.CACHE_OFF
    elif cache_mode == CACHE_REFRESH:
        suite_cache_status = telemetry.CACHE_REFRESH
    else:
        suite_cache_status = telemetry.CACHE_MISS

    for index, plan in plans:
        experiment = by_id(plan.experiment_id)
        error = failed.get(plan.terminal, "")
        counters = {"executed": 0, "hit": 0, "dedup": 0, "stored": 0, "failed": 0}
        detail: List[Dict[str, Any]] = []
        owned_sims: List[Dict[str, Any]] = []
        owned_elapsed = 0.0
        for key, stage in plan.stages.items():
            if key in failed:
                stage_status = "failed"
                counters["failed"] += 1
            elif status.get(key) == "hit":
                stage_status = "hit"
                counters["hit"] += 1
            elif owner[key] != index:
                # Executed this run, but on behalf of an earlier
                # experiment — the cross-experiment dedup win.
                stage_status = "dedup"
                counters["dedup"] += 1
            else:
                stage_status = "exec"
                counters["executed"] += 1
            elapsed = 0.0
            if stage_status == "exec" and key in meta:
                elapsed = meta[key]["elapsed_s"]
                owned_elapsed += elapsed
                owned_sims.append(meta[key]["simulation"])
                if meta[key].get("stored"):
                    counters["stored"] += 1
            detail.append(
                {
                    "kind": stage.kind,
                    "label": stage.label,
                    "status": stage_status,
                    "elapsed_s": round(elapsed, 4),
                }
            )
        simulation = (
            telemetry.merge_simulations(owned_sims)
            if owned_sims
            else telemetry.SimulationCounters().as_dict()
        )
        simulation["stages"] = {"counters": counters, "detail": detail}
        record = telemetry.ExperimentRecord(
            experiment_id=plan.experiment_id,
            title=experiment.title,
            status="failed" if error else "ok",
            cache=suite_cache_status,
            wall_time_s=owned_elapsed,
            cpu_time_s=owned_elapsed,
            params_digest=plan.flat_digest,
            error=error,
            simulation=simulation,
        )
        out[index] = {
            "result": payloads.get(plan.terminal) if not error else None,
            "record": record.to_json_dict(),
        }
    return out  # type: ignore[return-value]
