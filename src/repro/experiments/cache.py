"""Content-addressed on-disk cache for experiment artifacts.

Draco's thesis is that repeated checking work should be validated once
and then served from a cache; this module applies the same discipline to
the experiment pipeline itself.  Two artifact kinds are cached:

* **experiment results** — the full :class:`ExperimentResult` of a
  registry entry, keyed by ``(experiment id, code fingerprint, params
  digest)``, so an unchanged experiment is instant on re-run;
* **calibration values** — the solved application work per syscall
  ``W`` from :func:`repro.experiments.runner.calibrate_work_cycles`,
  keyed by the full calibration input (workload spec, events, seed,
  cost params, compiler, code fingerprint), so rebuilding contexts
  skips the expensive filter-probe run.

The *code fingerprint* is a SHA-256 over every ``.py`` file under
``src/repro`` — any source edit invalidates the whole cache, which is
the safe direction for a research repo.  The *params digest* is a
SHA-256 of the canonical-JSON encoding of the run parameters.

Layout (under :func:`cache_root`, default ``~/.cache/repro-draco`` or
``$REPRO_CACHE_DIR``)::

    results/<experiment_id>/<digest>.json    cached ExperimentResult
    calibration/<digest>.json                cached work-cycle value
    runs/latest.json                         most recent run report
    runs/run-<timestamp>.json                archived run reports

Set ``REPRO_CACHE_DISABLE=1`` (or pass ``--no-cache`` to the CLI) to
bypass both reads and writes.  All writes are atomic
(temp-file-then-rename) so concurrent engine workers never observe a
torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.bpf.compile import COMPILER_VERSION
from repro.common.analytic import ANALYTIC_VERSION, analytic_enabled
from repro.kernel.simulator import SIM_KERNEL_VERSION
from repro.experiments.results import ExperimentResult

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache entirely (any non-empty value).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"


def cache_enabled() -> bool:
    """True unless ``REPRO_CACHE_DISABLE`` is set to a non-empty value."""
    return not os.environ.get(CACHE_DISABLE_ENV)


def cache_root() -> Path:
    """The cache directory (not created until first write)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-draco"


@lru_cache(maxsize=1)
def _fingerprint_of_tree(package_root: str) -> str:
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py"), key=lambda p: p.relative_to(root).as_posix()):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:20]


def code_fingerprint() -> str:
    """Fingerprint of the ``repro`` package source (any edit invalidates)."""
    return _fingerprint_of_tree(str(Path(__file__).resolve().parents[1]))


def params_digest(params: Mapping[str, Any]) -> str:
    """Digest of canonical-JSON-encoded parameters (order-insensitive)."""
    encoded = json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(encoded.encode()).hexdigest()[:20]


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None  # missing or torn entry: treat as a miss


class ResultCache:
    """On-disk store for :class:`ExperimentResult` payloads."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else cache_root()

    # -- experiment results --------------------------------------------

    def result_key(self, experiment_id: str, run_params: Mapping[str, Any]) -> str:
        payload = dict(run_params)
        payload["experiment_id"] = experiment_id
        payload["code"] = code_fingerprint()
        # The BPF filter compiler sits under every simulated check; a
        # semantics change there must invalidate cached results even if
        # it ships without a source diff (e.g. a vendored build).
        payload["bpf_compiler"] = COMPILER_VERSION
        # Likewise the simulation kernel's numerical contract: grouping
        # or summation-order changes alter result floats without any
        # experiment parameter changing.
        payload["sim_kernel"] = SIM_KERNEL_VERSION
        # The analytic backend extrapolates some hardware-Draco results,
        # so its results are keyed separately from exact-kernel results
        # (0 when disabled) and on its own numerical-contract version.
        payload["analytic"] = ANALYTIC_VERSION if analytic_enabled() else 0
        return params_digest(payload)

    def result_path(self, experiment_id: str, digest: str) -> Path:
        return self.root / "results" / experiment_id / f"{digest}.json"

    def load_result(self, experiment_id: str, digest: str) -> Optional[ExperimentResult]:
        payload = _read_json(self.result_path(experiment_id, digest))
        if payload is None:
            return None
        try:
            return ExperimentResult.from_json_dict(payload)
        except (KeyError, TypeError):
            return None  # schema drifted under an unchanged fingerprint

    def store_result(
        self, experiment_id: str, digest: str, result: ExperimentResult
    ) -> None:
        _atomic_write(self.result_path(experiment_id, digest), result.to_json())

    # -- calibration values --------------------------------------------

    def calibration_path(self, digest: str) -> Path:
        return self.root / "calibration" / f"{digest}.json"

    def load_calibration(self, digest: str) -> Optional[float]:
        payload = _read_json(self.calibration_path(digest))
        if isinstance(payload, (int, float)):
            return float(payload)
        return None

    def store_calibration(self, digest: str, value: float) -> None:
        _atomic_write(self.calibration_path(digest), json.dumps(value))


def spec_payload(spec) -> Mapping[str, Any]:
    """Stable JSON-ready description of a WorkloadSpec for digesting.

    Deliberately hand-rolled rather than ``dataclasses.asdict``: the
    spec's syscall table is a large non-dataclass object whose repr is
    not stable across processes, so it is summarised by its entries.
    """
    return {
        "name": spec.name,
        "kind": spec.kind,
        "syscalls": [
            {
                "name": s.name,
                "weight": s.weight,
                "callsites": s.callsites,
                "stickiness": s.stickiness,
                "arg_sets": [[list(a.values), a.weight] for a in s.arg_sets],
            }
            for s in spec.syscalls
        ],
        "fig2_targets": dict(spec.fig2_targets),
        "table": sorted(
            (d.sid, d.name, d.nargs, d.pointer_mask) for d in spec.table
        ),
    }
