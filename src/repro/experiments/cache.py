"""Content-addressed on-disk cache for experiment artifacts.

Draco's thesis is that repeated checking work should be validated once
and then served from a cache; this module applies the same discipline to
the experiment pipeline itself.  Two artifact kinds are cached:

* **experiment results** — the full :class:`ExperimentResult` of a
  registry entry, keyed by ``(experiment id, code fingerprint, params
  digest)``, so an unchanged experiment is instant on re-run;
* **calibration values** — the solved application work per syscall
  ``W`` from :func:`repro.experiments.runner.calibrate_work_cycles`,
  keyed by the full calibration input (workload spec, events, seed,
  cost params, compiler, code fingerprint), so rebuilding contexts
  skips the expensive filter-probe run.

The *code fingerprint* is a SHA-256 over every ``.py`` file under
``src/repro`` — any source edit invalidates the whole cache, which is
the safe direction for a research repo.  The *params digest* is a
SHA-256 of the canonical-JSON encoding of the run parameters.

A third tier is the **context cache**: the expensive inputs a
simulation consumes — materialised traces, derived profile bundles,
compiled-filter sweep artifacts — persisted so ``--refresh`` (or a
regime-only change) re-runs simulation without re-deriving contexts.
Context entries are versioned JSON documents keyed by
:func:`context_digest` (spec payload + parameters + code fingerprint +
``CONTEXT_FORMAT_VERSION``); traces use the RLE trace format from
:mod:`repro.syscalls.serialize`.  A corrupt, truncated, or
schema-drifted entry always reads as a miss and the caller rebuilds.

A fourth tier is the **stage cache** (``stages/``): intermediate
payloads of the stage-graph orchestrator
(:mod:`repro.experiments.stages`) — trace/calibration manifests and
full evaluation ``RunResult`` JSON — keyed by content digests that
fold each stage's parameters, its upstream stage digests, the code
fingerprint, and ``STAGE_FORMAT_VERSION``.  Terminal analysis results
do *not* live here: they store in ``results/`` under the flat
per-experiment digest, so both engine paths share warm hits.

Layout (under :func:`cache_root`, default ``~/.cache/repro-draco`` or
``$REPRO_CACHE_DIR``)::

    results/<experiment_id>/<digest>.json    cached ExperimentResult
    stages/<kind>/<digest>.json              intermediate stage payloads
    calibration/<digest>.json                cached work-cycle value
    contexts/trace/<digest>.jsonl            RLE-serialised traces
    contexts/<kind>/<digest>.json            other context artifacts
    contexts/bpf-code/<tag>/<digest>.bin     marshalled filter code objects
                                             (owned by repro.bpf.compile;
                                             <tag> pins interpreter + magic)
    runs/latest.json                         most recent run report
    runs/run-<timestamp>.json                archived run reports

Set ``REPRO_CACHE_DISABLE=1`` (or pass ``--no-cache`` to the CLI) to
bypass both reads and writes.  ``REPRO_CONTEXT_CACHE=0`` disables only
the context tier (results and calibration still cache).  All writes are
atomic (temp-file-then-rename) so concurrent engine workers never
observe a torn entry.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.bpf.compile import COMPILER_VERSION
from repro.common.analytic import ANALYTIC_VERSION, analytic_enabled
from repro.common.storage import (
    CACHE_DIR_ENV,
    CACHE_DISABLE_ENV,
    CONTEXT_CACHE_ENV,
    STAGE_GRAPH_ENV,
    cache_enabled,
    cache_root,
    context_cache_enabled,
    stage_graph_enabled,
)
from repro.common.storage import atomic_write_text as _atomic_write
from repro.common.storage import read_json as _read_json
from repro.kernel.simulator import SIM_KERNEL_VERSION
from repro.experiments.results import ExperimentResult
from repro.syscalls import serialize
from repro.syscalls.events import SyscallTrace

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "CONTEXT_CACHE_ENV",
    "CONTEXT_FORMAT_VERSION",
    "COMPILER_VERSION",
    "SIM_KERNEL_VERSION",
    "STAGE_FORMAT_VERSION",
    "STAGE_GRAPH_ENV",
    "ResultCache",
    "cache_enabled",
    "cache_root",
    "code_fingerprint",
    "context_cache_enabled",
    "context_digest",
    "params_digest",
    "spec_payload",
    "stage_graph_enabled",
]

#: Version of the context-cache serialisation contract.  Bumped when
#: the on-disk shape of any context artifact changes, so stale entries
#: read as misses instead of deserialising into the wrong shape.
CONTEXT_FORMAT_VERSION = 1

#: Wrapper format marker on every generic context document.
_CONTEXT_FORMAT_NAME = "repro-context"

#: Version of the per-stage cache serialisation contract
#: (:mod:`repro.experiments.stages`).  Folded into every stage digest,
#: so bumping it invalidates the whole ``stages/`` tier at once.
STAGE_FORMAT_VERSION = 1

#: Wrapper format marker on every stage document.
_STAGE_FORMAT_NAME = "repro-stage"


@lru_cache(maxsize=1)
def _fingerprint_of_tree(package_root: str) -> str:
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py"), key=lambda p: p.relative_to(root).as_posix()):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:20]


def code_fingerprint() -> str:
    """Fingerprint of the ``repro`` package source (any edit invalidates)."""
    return _fingerprint_of_tree(str(Path(__file__).resolve().parents[1]))


def params_digest(params: Mapping[str, Any]) -> str:
    """Digest of canonical-JSON-encoded parameters (order-insensitive)."""
    encoded = json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(encoded.encode()).hexdigest()[:20]




class ResultCache:
    """On-disk store for :class:`ExperimentResult` payloads."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else cache_root()

    # -- experiment results --------------------------------------------

    def result_key(self, experiment_id: str, run_params: Mapping[str, Any]) -> str:
        payload = dict(run_params)
        payload["experiment_id"] = experiment_id
        payload["code"] = code_fingerprint()
        # The BPF filter compiler sits under every simulated check; a
        # semantics change there must invalidate cached results even if
        # it ships without a source diff (e.g. a vendored build).
        payload["bpf_compiler"] = COMPILER_VERSION
        # Likewise the simulation kernel's numerical contract: grouping
        # or summation-order changes alter result floats without any
        # experiment parameter changing.
        payload["sim_kernel"] = SIM_KERNEL_VERSION
        # The analytic backend extrapolates some hardware-Draco results,
        # so its results are keyed separately from exact-kernel results
        # (0 when disabled) and on its own numerical-contract version.
        payload["analytic"] = ANALYTIC_VERSION if analytic_enabled() else 0
        return params_digest(payload)

    def result_path(self, experiment_id: str, digest: str) -> Path:
        return self.root / "results" / experiment_id / f"{digest}.json"

    def has_result(self, experiment_id: str, digest: str) -> bool:
        """Cheap stat-based existence probe, for callers that only need
        to know *whether* a result is cached (the engine's pre-shard
        check) without paying the JSON parse + deserialize of
        :meth:`load_result`.  A torn entry can stat as present and
        still read as a miss later — the existence answer is advisory,
        never load-bearing."""
        return self.result_path(experiment_id, digest).is_file()

    def load_result(self, experiment_id: str, digest: str) -> Optional[ExperimentResult]:
        payload = _read_json(self.result_path(experiment_id, digest))
        if payload is None:
            return None
        try:
            return ExperimentResult.from_json_dict(payload)
        except (KeyError, TypeError):
            return None  # schema drifted under an unchanged fingerprint

    def store_result(
        self, experiment_id: str, digest: str, result: ExperimentResult
    ) -> None:
        _atomic_write(self.result_path(experiment_id, digest), result.to_json())

    # -- calibration values --------------------------------------------

    def calibration_path(self, digest: str) -> Path:
        return self.root / "calibration" / f"{digest}.json"

    def load_calibration(self, digest: str) -> Optional[float]:
        payload = _read_json(self.calibration_path(digest))
        if isinstance(payload, (int, float)):
            return float(payload)
        return None

    def store_calibration(self, digest: str, value: float) -> None:
        _atomic_write(self.calibration_path(digest), json.dumps(value))

    # -- context artifacts ---------------------------------------------

    def context_path(self, kind: str, digest: str, suffix: str = ".json") -> Path:
        return self.root / "contexts" / kind / f"{digest}{suffix}"

    def load_context(self, kind: str, digest: str) -> Optional[Any]:
        """The ``data`` payload of a stored context document, or ``None``
        on any miss: absent file, torn write, bad JSON, wrong wrapper
        format/kind, or a ``CONTEXT_FORMAT_VERSION`` mismatch."""
        payload = _read_json(self.context_path(kind, digest))
        if not isinstance(payload, Mapping):
            return None
        if (
            payload.get("format") != _CONTEXT_FORMAT_NAME
            or payload.get("version") != CONTEXT_FORMAT_VERSION
            or payload.get("kind") != kind
            or "data" not in payload
        ):
            return None
        return payload["data"]

    def store_context(self, kind: str, digest: str, data: Any) -> None:
        document = {
            "format": _CONTEXT_FORMAT_NAME,
            "version": CONTEXT_FORMAT_VERSION,
            "kind": kind,
            "data": data,
        }
        _atomic_write(
            self.context_path(kind, digest),
            json.dumps(document, sort_keys=True, separators=(",", ":")),
        )

    def load_trace_context(self, digest: str) -> Optional[SyscallTrace]:
        """A stored trace, or ``None`` on any miss or corruption (the
        trace parser validates the header, every record, and the
        declared event count)."""
        path = self.context_path("trace", digest, suffix=".jsonl")
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return serialize.loads(text)
        except serialize.TraceFormatError:
            return None

    def store_trace_context(self, digest: str, trace: SyscallTrace) -> None:
        _atomic_write(
            self.context_path("trace", digest, suffix=".jsonl"),
            serialize.dumps(trace, version=serialize.FORMAT_VERSION_RLE),
        )

    # -- stage payloads -------------------------------------------------

    def stage_path(self, kind: str, digest: str) -> Path:
        return self.root / "stages" / kind / f"{digest}.json"

    def load_stage(self, kind: str, digest: str) -> Optional[Any]:
        """The ``data`` payload of a stored stage document, or ``None``
        on any miss: absent file, torn write, bad JSON, wrong wrapper
        format/kind, or a ``STAGE_FORMAT_VERSION`` mismatch."""
        payload = _read_json(self.stage_path(kind, digest))
        if not isinstance(payload, Mapping):
            return None
        if (
            payload.get("format") != _STAGE_FORMAT_NAME
            or payload.get("version") != STAGE_FORMAT_VERSION
            or payload.get("kind") != kind
            or "data" not in payload
        ):
            return None
        return payload["data"]

    def store_stage(self, kind: str, digest: str, data: Any) -> None:
        document = {
            "format": _STAGE_FORMAT_NAME,
            "version": STAGE_FORMAT_VERSION,
            "kind": kind,
            "data": data,
        }
        _atomic_write(
            self.stage_path(kind, digest),
            json.dumps(document, sort_keys=True, separators=(",", ":")),
        )


def context_digest(kind: str, spec, **params: Any) -> str:
    """Content digest for one context artifact.

    Folds the full workload-spec payload, the artifact kind and its
    parameters, the source fingerprint, and the context serialisation
    version — the same keying discipline as results, so a context entry
    can never outlive a code or parameter change.
    """
    payload: Dict[str, Any] = {
        "context_kind": kind,
        "spec": spec_payload(spec),
        "code": code_fingerprint(),
        "context_format": CONTEXT_FORMAT_VERSION,
    }
    payload.update(params)
    return params_digest(payload)


def spec_payload(spec) -> Mapping[str, Any]:
    """Stable JSON-ready description of a WorkloadSpec for digesting.

    Deliberately hand-rolled rather than ``dataclasses.asdict``: the
    spec's syscall table is a large non-dataclass object whose repr is
    not stable across processes, so it is summarised by its entries.
    """
    return {
        "name": spec.name,
        "kind": spec.kind,
        "syscalls": [
            {
                "name": s.name,
                "weight": s.weight,
                "callsites": s.callsites,
                "stickiness": s.stickiness,
                "arg_sets": [[list(a.values), a.weight] for a in s.arg_sets],
            }
            for s in spec.syscalls
        ],
        "fig2_targets": dict(spec.fig2_targets),
        "table": sorted(
            (d.sid, d.name, d.nargs, d.pointer_mask) for d in spec.table
        ),
    }
